"""Tests for the unified name registry (repro.registry)."""

from __future__ import annotations

import pytest

from repro import registry
from repro.perf.scenarios import CANONICAL_SCENARIOS, Scenario
from repro.policies import POLICIES, make_policy
from repro.workloads.registry import BENCHMARKS


class TestSeeding:
    def test_policies_seeded_from_legacy_table(self):
        assert set(registry.policies.names()) == set(POLICIES)
        assert registry.policies.get("mlp_flush") is POLICIES["mlp_flush"]

    def test_benchmarks_seeded_from_legacy_table(self):
        assert set(registry.benchmarks.names()) == set(BENCHMARKS)
        assert registry.benchmarks.get("mcf") is BENCHMARKS["mcf"]

    def test_scenarios_seeded_from_canonical_tuple(self):
        assert set(registry.scenarios.names()) \
            == {sc.name for sc in CANONICAL_SCENARIOS}

    def test_contains_and_len(self):
        assert "icount" in registry.policies
        assert "nope" not in registry.policies
        assert len(registry.benchmarks) == len(BENCHMARKS)
        assert list(registry.policies) == sorted(POLICIES)


class TestUniformAccess:
    def test_module_level_helpers(self):
        assert registry.get("policies", "flush") is POLICIES["flush"]
        assert registry.get("policy", "flush") is POLICIES["flush"]
        assert "mcf" in registry.names("benchmarks")
        assert "smt2_mlp_stall" in registry.names("scenarios")

    def test_unknown_kind(self):
        with pytest.raises(registry.RegistryError, match="unknown registry"):
            registry.registry_for("widgets")

    def test_canonical_kind(self):
        assert registry.canonical_kind("policy") == "policies"
        assert registry.canonical_kind("policies") == "policies"
        assert registry.canonical_kind("benchmark") == "benchmarks"
        assert registry.canonical_kind("scenario") == "scenarios"
        with pytest.raises(registry.RegistryError):
            registry.canonical_kind("widgets")

    def test_unknown_name_error_names_kind_and_known(self):
        with pytest.raises(registry.RegistryError) as exc:
            registry.policies.get("zippy")
        msg = str(exc.value)
        assert "policy" in msg and "zippy" in msg and "icount" in msg

    def test_registry_error_is_a_keyerror(self):
        # Legacy callers catch KeyError; the unified error must still be one.
        with pytest.raises(KeyError):
            registry.benchmarks.get("zippy")


class TestRuntimeRegistration:
    def test_register_and_resolve_scenario(self):
        sc = Scenario("test_registered_sc", ("mcf", "swim"), "icount",
                      commits=1000, warmup=100, quick_commits=500)
        try:
            registry.scenarios.register(sc.name, sc)
            from repro.perf.scenarios import scenario_by_name
            assert scenario_by_name(sc.name) is sc
        finally:
            registry.scenarios.unregister(sc.name)

    def test_duplicate_registration_refused(self):
        with pytest.raises(registry.RegistryError, match="already"):
            registry.policies.register("icount", object())

    def test_overwrite_requires_opt_in(self):
        original = registry.policies.get("icount")
        registry.policies.register("icount", original, overwrite=True)
        assert registry.policies.get("icount") is original

    def test_unregister_returns_entry_and_forgets_it(self):
        sc = Scenario("test_unregister_sc", ("mcf", "swim"), "icount",
                      commits=1000, warmup=100, quick_commits=500)
        registry.scenarios.register(sc.name, sc)
        assert registry.scenarios.unregister(sc.name) is sc
        assert sc.name not in registry.scenarios
        with pytest.raises(registry.RegistryError, match="unregister"):
            registry.scenarios.unregister(sc.name)

    def test_registered_policy_reaches_make_policy(self):
        from repro.policies.icount import ICountPolicy

        class _TestPolicy(ICountPolicy):
            name = "test_registered_policy"

        try:
            registry.register("policies", _TestPolicy.name, _TestPolicy)
            assert isinstance(make_policy(_TestPolicy.name), _TestPolicy)
        finally:
            registry.policies.unregister(_TestPolicy.name)

    def test_make_policy_unknown_still_raises_keyerror(self):
        with pytest.raises(KeyError):
            make_policy("definitely_not_a_policy")
