"""Runahead execution: entry/exit, INV propagation, accounting, benefit."""

import pytest

from repro.config import scaled_config
from repro.experiments.runner import (
    core_for,
    run_single,
    run_workload,
    trace_for,
)
from repro.pipeline import SMTCore
from repro.policies import MLPRunaheadPolicy, RunaheadPolicy, make_policy
from repro.runahead import RunaheadCore
from tests.test_flush_invariants import check_invariants


def _runahead_core(names, policy="runahead", num_threads=None, **kwargs):
    cfg = scaled_config(num_threads=num_threads or len(names), scale=16)
    traces = [trace_for(n, cfg, slot=i) for i, n in enumerate(names)]
    pol = make_policy(policy, **kwargs)
    return RunaheadCore(cfg, traces, pol)


class TestCoreSelection:
    def test_runahead_policies_request_runahead_core(self):
        assert core_for(RunaheadPolicy()) is RunaheadCore
        assert core_for(MLPRunaheadPolicy()) is RunaheadCore

    def test_plain_policies_request_base_core(self):
        assert core_for(make_policy("icount")) is SMTCore
        assert core_for(make_policy("mlp_flush")) is SMTCore

    def test_base_core_reports_no_runahead(self):
        cfg = scaled_config(num_threads=1, scale=16)
        core = SMTCore(cfg, [trace_for("mcf", cfg)], make_policy("icount"))
        assert core.in_runahead(core.threads[0]) is False


class TestEntryExit:
    def test_memory_bound_thread_enters_and_exits(self):
        core = _runahead_core(("mcf",))
        core.run(4000)
        t = core.threads[0].stats
        assert t.runahead_entries > 0
        assert t.runahead_pseudo_retired > 0
        # Every exit pairs with an entry; at most one episode can still be
        # open when the run stops.
        assert t.runahead_entries - t.runahead_exits in (0, 1)

    def test_cache_resident_thread_rarely_enters(self):
        # Warmup absorbs the cold compulsory misses; in steady state eon
        # has essentially no long-latency loads (Table I: 0.00 per 1K).
        core = _runahead_core(("eon",))
        core.run(3000, warmup=1500)
        assert core.threads[0].stats.runahead_entries <= 1

    def test_refetched_entry_load_hits(self):
        """After an episode, fetch rewinds to the entry load, which must
        now hit (its fill completed) — committed keeps advancing."""
        core = _runahead_core(("mcf",))
        stats = core.run(4000)
        assert stats.threads[0].committed >= 4000
        # Runahead refetches everything it speculated past.
        assert stats.threads[0].fetched > stats.threads[0].committed

    def test_exit_flush_does_not_cancel_fills(self):
        """Runahead must *help* a miss-heavy thread even with SMTSIM-style
        squash semantics, because exit flushes keep fills alive."""
        cfg = scaled_config(num_threads=1, scale=16)
        assert cfg.memory.cancel_squashed_fills
        base = run_single("mcf", cfg, 4000, policy="icount", warmup=500)
        ahead = run_single("mcf", cfg, 4000, policy="runahead", warmup=500)
        assert ahead.cycles < base.cycles * 1.02


class TestAccounting:
    @pytest.mark.parametrize("policy", ["runahead", "mlp_runahead"])
    def test_resource_accounting_stays_exact(self, policy):
        core = _runahead_core(("mcf", "swim"), policy=policy)
        for step in range(6000):
            core.step()
            if step % 97 == 0:
                check_invariants(core)
        assert sum(t.runahead_entries for t in core.stats.threads) > 0, \
            "test never exercised runahead"
        check_invariants(core)

    def test_no_commit_credit_for_pseudo_retirement(self):
        """Pseudo-retired instructions must not count as committed: the
        committed total equals the per-thread trace positions reached."""
        core = _runahead_core(("mcf",))
        core.run(3000)
        ts = core.threads[0]
        in_flight = len(ts.window) + len(ts.fe_queue)
        assert ts.stats.committed <= ts.fetch_index - in_flight


class TestINVPropagation:
    def test_inv_never_reaches_memory(self):
        """INV loads skip the hierarchy: every recorded demand load must
        come from a non-INV execution (checked via the level stamp)."""
        core = _runahead_core(("mcf", "twolf"))
        seen_inv_levels = []
        orig_execute = core._execute

        def spy(di, cycle):
            orig_execute(di, cycle)
            if di.inv and di.is_load and di.level is not None:
                seen_inv_levels.append(di)

        core._execute = spy
        for _ in range(5000):
            core.step()
        assert not seen_inv_levels

    def test_dependents_of_entry_load_become_inv(self):
        core = _runahead_core(("mcf",))
        inv_seen = 0
        for _ in range(20000):
            core.step()
            ts = core.threads[0]
            if core.in_runahead(ts):
                inv_seen += sum(1 for di in ts.window if di.inv)
                if inv_seen > 5:
                    break
        assert inv_seen > 5, "runahead never propagated INV"


class TestMLPGating:
    def test_huge_threshold_degenerates_to_mlp_flush(self):
        cfg = scaled_config(num_threads=2, scale=16)
        stats, core = run_workload(
            ("mcf", "swim"), cfg, "mlp_runahead", 3000, warmup=500,
            runahead_threshold=10_000)
        assert all(t.runahead_entries == 0 for t in stats.threads)
        # The fallback path is MLP-aware flush: episodes stall fetch.
        assert sum(t.policy_stall_cycles for t in stats.threads) > 0

    def test_low_threshold_prefers_runahead(self):
        cfg = scaled_config(num_threads=2, scale=16)
        stats, _ = run_workload(("mcf", "swim"), cfg, "mlp_runahead", 3000,
                                warmup=500, runahead_threshold=1)
        assert sum(t.runahead_entries for t in stats.threads) > 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            MLPRunaheadPolicy(runahead_threshold=0)


class TestFastForwardEquivalence:
    @pytest.mark.parametrize("policy", ["runahead", "mlp_runahead"])
    def test_fast_forward_is_cycle_exact(self, policy):
        def final_state(fast_forward):
            cfg = scaled_config(num_threads=2, scale=16,
                                fast_forward=fast_forward)
            traces = [trace_for(n, cfg, slot=i)
                      for i, n in enumerate(("mcf", "galgel"))]
            core = RunaheadCore(cfg, traces, make_policy(policy))
            stats = core.run(1500)
            return (stats.cycles,
                    tuple(t.committed for t in stats.threads),
                    tuple(t.runahead_entries for t in stats.threads))

        assert final_state(True) == final_state(False)
