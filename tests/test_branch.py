"""Tests for the gshare predictor and the BTB."""

from repro.branch import BTB, GShare


class TestGShare:
    def test_learns_always_taken(self):
        g = GShare(64)
        for _ in range(8):
            g.update(5, True)
        assert g.predict(5)

    def test_learns_never_taken(self):
        g = GShare(64)
        for _ in range(8):
            g.update(5, False)
        assert not g.predict(5)

    def test_learns_alternating_pattern_via_history(self):
        g = GShare(1024)
        # T,N,T,N... becomes predictable through global history.
        outcomes = [bool(i % 2) for i in range(400)]
        mispredicts_late = 0
        for i, taken in enumerate(outcomes):
            prediction = g.update(7, taken)
            if i >= 200 and prediction != taken:
                mispredicts_late += 1
        assert mispredicts_late <= 5

    def test_accuracy_metric(self):
        g = GShare(64)
        for _ in range(100):
            g.update(3, True)
        assert g.accuracy > 0.9

    def test_per_thread_history_isolation(self):
        g = GShare(1024, num_threads=2)
        # Thread 0 runs a pure pattern; thread 1 injects noise.  With
        # per-thread history, thread 0 stays predictable.
        import random
        rng = random.Random(42)
        wrong = 0
        for i in range(600):
            taken0 = bool(i % 2)
            prediction = g.update(11, taken0, thread=0)
            if i >= 300 and prediction != taken0:
                wrong += 1
            g.update(rng.randrange(512), rng.random() < 0.5, thread=1)
        assert wrong <= 30

    def test_rejects_non_power_of_two(self):
        import pytest
        with pytest.raises(ValueError):
            GShare(1000)


class TestBTB:
    def test_miss_until_inserted(self):
        b = BTB(16, 4)
        assert not b.lookup(3)
        b.insert(3)
        assert b.lookup(3)

    def test_lru_within_set(self):
        b = BTB(8, 4)   # 2 sets, pcs map by pc % 2
        for pc in (0, 2, 4, 6):
            b.insert(pc)
        b.lookup(0)       # refresh
        b.insert(8)       # evicts LRU (pc 2)
        assert b.lookup(0)
        assert not b.lookup(2)

    def test_set_isolation(self):
        b = BTB(8, 4)
        for pc in (0, 2, 4, 6, 8):
            b.insert(pc)
        b.insert(1)
        assert b.lookup(1)

    def test_rejects_bad_geometry(self):
        import pytest
        with pytest.raises(ValueError):
            BTB(10, 4)
