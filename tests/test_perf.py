"""Unit tests for the repro.perf benchmark subsystem.

Covers the JSON schema round-trip, baseline merge semantics, and the
compare/tolerance logic (including calibration normalization) without
running full-size simulations; one smoke test drives the real harness on
a miniature scenario.
"""

from __future__ import annotations

import json

import pytest

from repro import perf
from repro.perf.baselines import result_from_dict, result_to_dict
from repro.perf.harness import BenchResult, SuiteResult


def _result(name="smt2_mlp_stall", wall=0.5, cycles=26_000,
            instructions=24_000, quick=False):
    return BenchResult(name=name, wall_s=wall, runs=[wall, wall * 1.1],
                       cycles=cycles, instructions=instructions,
                       quick=quick, policy="mlp_stall", threads=2,
                       commits=12_000)


def _suite(results=None, calibration=0.04, quick=False):
    return SuiteResult(results=results or [_result(quick=quick)],
                       calibration_s=calibration, quick=quick)


class TestSchemaRoundTrip:
    def test_result_round_trip(self):
        r = _result()
        back = result_from_dict(r.name, result_to_dict(r), quick=False)
        assert back.name == r.name
        assert back.wall_s == pytest.approx(r.wall_s)
        assert back.cycles == r.cycles
        assert back.instructions == r.instructions
        assert back.policy == r.policy
        assert back.threads == r.threads
        assert back.commits == r.commits

    def test_suite_doc_is_schema_stamped_and_json_clean(self):
        doc = perf.suite_to_doc(_suite())
        assert doc["schema"] == perf.SCHEMA
        assert "full" in doc["modes"]
        assert doc["modes"]["full"]["calibration_s"] == pytest.approx(0.04)
        json.dumps(doc)  # must be serializable as-is
        perf.validate_doc(doc)

    def test_write_then_load(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        perf.write_baseline(_suite(), path)
        doc = perf.load_baseline(path)
        entry = doc["modes"]["full"]["scenarios"]["smt2_mlp_stall"]
        assert entry["cycles"] == 26_000

    def test_merge_keeps_other_mode(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        perf.write_baseline(_suite(quick=False), path)
        perf.write_baseline(_suite([_result(quick=True)], quick=True), path)
        doc = perf.load_baseline(path)
        assert set(doc["modes"]) == {"full", "quick"}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(perf.BaselineError, match="no baseline"):
            perf.load_baseline(tmp_path / "nope.json")

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(perf.BaselineError, match="not valid JSON"):
            perf.load_baseline(path)

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": "repro.perf/0", "modes": {}}))
        with pytest.raises(perf.BaselineError, match="schema"):
            perf.load_baseline(path)

    def test_incomplete_entry_raises(self):
        doc = perf.suite_to_doc(_suite())
        del doc["modes"]["full"]["scenarios"]["smt2_mlp_stall"]["cycles"]
        with pytest.raises(perf.BaselineError, match="lacks 'cycles'"):
            perf.validate_doc(doc)

    def test_merge_keeps_per_mode_calibration(self, tmp_path):
        # Refreshing quick on a slower machine must not re-stamp the
        # retained full mode's calibration (it would skew normalization).
        path = tmp_path / "BENCH_perf.json"
        perf.write_baseline(_suite(calibration=0.02), path)
        perf.write_baseline(
            _suite([_result(quick=True)], calibration=0.08, quick=True),
            path)
        doc = perf.load_baseline(path)
        assert doc["modes"]["full"]["calibration_s"] == pytest.approx(0.02)
        assert doc["modes"]["quick"]["calibration_s"] == pytest.approx(0.08)


class TestCompareTolerance:
    def _baseline_doc(self, wall=0.5, calibration=0.04):
        return perf.suite_to_doc(_suite([_result(wall=wall)],
                                        calibration=calibration))

    def test_equal_is_ok(self):
        report = perf.compare(_suite(), self._baseline_doc())
        assert report.ok
        assert report.deltas[0].speedup == pytest.approx(1.0)

    def test_within_tolerance_is_ok(self):
        suite = _suite([_result(wall=0.6)])  # 20% slower < 25% gate
        report = perf.compare(suite, self._baseline_doc())
        assert report.ok
        assert not report.deltas[0].regressed

    def test_beyond_tolerance_regresses(self):
        suite = _suite([_result(wall=0.7)])  # 40% slower
        report = perf.compare(suite, self._baseline_doc())
        assert not report.ok
        assert [d.name for d in report.regressions] == ["smt2_mlp_stall"]

    def test_custom_tolerance(self):
        suite = _suite([_result(wall=0.6)])
        report = perf.compare(suite, self._baseline_doc(),
                              max_regression=0.10)
        assert not report.ok

    def test_calibration_normalizes_machine_speed(self):
        # 2x slower machine (calibration 0.08 vs 0.04) posting 2x the wall
        # time is NOT a regression once normalized.
        suite = _suite([_result(wall=1.0)], calibration=0.08)
        report = perf.compare(suite, self._baseline_doc())
        assert report.calibration_ratio == pytest.approx(2.0)
        assert report.ok
        assert report.deltas[0].speedup == pytest.approx(1.0)

    def test_work_drift_is_flagged(self):
        suite = _suite([_result(cycles=25_000)])
        report = perf.compare(suite, self._baseline_doc())
        assert report.deltas[0].work_drift

    def test_missing_scenario_listed_not_failed(self):
        suite = _suite([_result(), _result(name="brand_new")])
        report = perf.compare(suite, self._baseline_doc())
        assert report.missing == ["brand_new"]
        assert report.ok

    def test_geomean_speedup(self):
        baseline = perf.suite_to_doc(_suite(
            [_result(), _result(name="other", wall=0.4)]))
        suite = _suite([_result(wall=0.25),          # 2x faster
                        _result(name="other", wall=0.8)])  # 2x slower
        report = perf.compare(suite, baseline, max_regression=2.0)
        assert report.geomean_speedup == pytest.approx(1.0)

    def test_quick_mode_compares_quick_entries(self):
        baseline = perf.suite_to_doc(_suite([_result(quick=True)],
                                            quick=True))
        report = perf.compare(_suite([_result(quick=True)], quick=True),
                              baseline)
        assert report.mode == "quick"
        assert report.ok


class TestProfileVerb:
    def test_profile_scenario_miniature(self):
        report = perf.profile_scenario("st_icount", top=5, quick=True)
        assert report.total_calls > 0
        assert report.total_time > 0
        assert report.scenario.name == "st_icount"
        text = perf.format_report(report)
        assert "cProfile: st_icount" in text
        assert "_run_until" in text       # the hot loop must show up
        assert "repro perf compare" in text  # magnitude caveat stated

    def test_unknown_scenario_raises_key_error(self):
        import pytest
        with pytest.raises(KeyError):
            perf.profile_scenario("no_such_scenario", quick=True)

    def test_bad_sort_and_top_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            perf.profile_scenario("st_icount", sort="ncalls", quick=True)
        with pytest.raises(ValueError):
            perf.profile_scenario("st_icount", top=0, quick=True)


class TestHarnessSmoke:
    def test_time_scenario_miniature(self):
        sc = perf.Scenario("mini_2t", ("mcf", "swim"), "icount",
                           commits=400, warmup=100, quick_commits=400)
        result = perf.time_scenario(sc, repeats=1)
        assert result.wall_s > 0
        assert result.cycles > 0
        assert result.instructions >= 400
        assert result.cycles_per_sec > 0
        assert len(result.runs) == 1

    def test_canonical_scenarios_are_unique_and_resolvable(self):
        names = [sc.name for sc in perf.CANONICAL_SCENARIOS]
        assert len(names) == len(set(names))
        assert perf.scenario_by_name(perf.CANONICAL_2T).num_threads == 2
        with pytest.raises(KeyError):
            perf.scenario_by_name("definitely_not_a_scenario")


class TestSchemaMismatchGuards:
    """The compare path and the golden regenerator refuse to run across
    schema/mode boundaries instead of silently comparing nothing."""

    def test_compare_missing_mode_raises(self):
        # Quick suite against a baseline holding only a "full" section:
        # pre-guard this passed vacuously (zero deltas => ok).
        full_only = perf.suite_to_doc(_suite([_result()]))
        quick_suite = _suite([_result(quick=True)], quick=True)
        with pytest.raises(perf.BaselineError, match="no 'quick' mode"):
            perf.compare(quick_suite, full_only)

    def test_golden_regenerator_refuses_wrong_schema(self, tmp_path):
        from repro.perf import golden

        fixture = tmp_path / "golden_stats.json"
        fixture.write_text(json.dumps({"schema": "repro.golden/0",
                                       "cells": {}}))
        assert golden.main([str(fixture)]) == 1
        # the stale fixture was left untouched
        assert json.loads(fixture.read_text())["schema"] == "repro.golden/0"

    def test_golden_regenerator_refuses_corrupt_fixture(self, tmp_path):
        from repro.perf import golden

        fixture = tmp_path / "golden_stats.json"
        fixture.write_text("{not json")
        assert golden.main([str(fixture)]) == 1
        assert fixture.read_text() == "{not json"

    def test_golden_schema_check_accepts_current(self, tmp_path):
        from repro.perf import golden

        fixture = tmp_path / "golden_stats.json"
        fixture.write_text(json.dumps({"schema": golden.GOLDEN_SCHEMA,
                                       "cells": {}}))
        golden.check_fixture_schema(fixture)  # must not raise
