"""Dependence-aware LLSR (paper §4.2 future work): unit + integration."""


from dataclasses import replace

from repro.config import scaled_config
from repro.experiments.runner import run_single, trace_for
from repro.pipeline import SMTCore
from repro.policies import make_policy
from repro.predictors import LLSR


def drive(llsr, bits, deps=None):
    """Feed (is_ll, dependent) pairs; collect measured distances."""
    deps = deps or [False] * len(bits)
    out = []
    for i, (bit, dep) in enumerate(zip(bits, deps)):
        d = llsr.commit(bool(bit), pc=i, dependent=dep)
        if d is not None:
            out.append(d)
    return out


class TestUnitBehaviour:
    def test_plain_llsr_counts_dependent_loads(self):
        llsr = LLSR(4)
        # LL at 0, dependent LL at 2; head exits after 5 more commits.
        distances = drive(llsr, [1, 0, 1, 0, 0, 0, 0],
                          deps=[False, False, True] + [False] * 4)
        assert distances[0] == 2  # the dependent load still counted

    def test_dependence_aware_llsr_suppresses_dependent_loads(self):
        llsr = LLSR(4, exclude_dependent=True)
        distances = drive(llsr, [1, 0, 1, 0, 0, 0, 0],
                          deps=[False, False, True] + [False] * 4)
        assert distances[0] == 0  # isolated once the dependent one is gone
        assert llsr.suppressed == 1

    def test_independent_loads_still_measure(self):
        llsr = LLSR(4, exclude_dependent=True)
        distances = drive(llsr, [1, 0, 1, 0, 0, 0, 0])
        assert distances[0] == 2

    def test_suppressed_load_never_triggers_measurement(self):
        llsr = LLSR(3, exclude_dependent=True)
        distances = drive(llsr, [0, 1, 0, 0, 0, 0],
                          deps=[False, True] + [False] * 4)
        assert distances == []
        assert llsr.measured == []


def _dependence_cfg(num_threads=1):
    cfg = scaled_config(num_threads=num_threads, scale=16)
    return replace(cfg, predictors=replace(cfg.predictors,
                                           dependence_aware=True))


class TestCoreIntegration:
    def test_chase_loads_are_marked_dependent(self):
        """mcf's pointer-chase misses depend on each other; the
        dependence-aware LLSR must suppress a visible fraction."""
        cfg = _dependence_cfg()
        core = SMTCore(cfg, [trace_for("mcf", cfg)], make_policy("icount"))
        core.run(4000)
        llsr = core.threads[0].llsr
        assert llsr.exclude_dependent
        assert llsr.suppressed > 0

    def test_stream_loads_stay_independent(self):
        """swim's strided stream misses share no register dependences, so
        almost nothing should be suppressed."""
        cfg = _dependence_cfg()
        core = SMTCore(cfg, [trace_for("swim", cfg)], make_policy("icount"))
        core.run(4000)
        llsr = core.threads[0].llsr
        total = llsr.suppressed + len(llsr.measured)
        assert total > 0
        assert llsr.suppressed <= total * 0.1

    def test_dependence_tracking_off_by_default(self):
        cfg = scaled_config(num_threads=1, scale=16)
        core = SMTCore(cfg, [trace_for("mcf", cfg)], make_policy("icount"))
        core.run(2000)
        assert core.threads[0].llsr.suppressed == 0
        assert not core._track_ll_dep

    def test_distances_never_grow_with_filtering(self):
        """Filtering can only remove 1-bits, so per-PC measured distances
        under the dependence-aware LLSR must not exceed the plain ones on
        a deterministic single-thread run."""

        def distances(dep_aware):
            cfg = scaled_config(num_threads=1, scale=16)
            if dep_aware:
                cfg = replace(cfg, predictors=replace(
                    cfg.predictors, dependence_aware=True))
            core = SMTCore(cfg, [trace_for("equake", cfg)],
                           make_policy("icount"))
            core.run(4000)
            per_pc = {}
            for pc, d in core.threads[0].llsr.measured:
                per_pc.setdefault(pc, []).append(d)
            return per_pc

        plain = distances(False)
        aware = distances(True)
        # Same program, same commit stream: compare max distance per PC.
        for pc, ds in aware.items():
            if pc in plain:
                assert max(ds) <= max(plain[pc])

    def test_policy_runs_under_dependence_aware_mode(self):
        cfg = _dependence_cfg()
        stats = run_single("mcf", cfg, 3000, policy="mlp_flush",
                           warmup=500)
        assert stats.threads[0].committed >= 3000
