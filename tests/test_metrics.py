"""Tests for STP / ANTT and the averaging rules (Section 5)."""

from hypothesis import given, settings, strategies as st
import pytest

from repro.metrics import (
    antt,
    arithmetic_mean,
    harmonic_mean,
    stp,
    summarize_antt,
    summarize_stp,
)

cpis = st.lists(st.floats(min_value=0.1, max_value=100.0),
                min_size=1, max_size=8)


class TestSTP:
    def test_no_interference_gives_n(self):
        assert stp([1.0, 2.0], [1.0, 2.0]) == pytest.approx(2.0)

    def test_halved_throughput(self):
        assert stp([1.0, 1.0], [2.0, 2.0]) == pytest.approx(1.0)

    def test_paper_definition(self):
        # STP = sum CPI_ST/CPI_MT
        assert stp([1.0, 3.0], [2.0, 4.0]) == pytest.approx(0.5 + 0.75)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            stp([1.0], [1.0, 2.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            stp([0.0], [1.0])

    @settings(max_examples=50)
    @given(cpis)
    def test_perfect_sharing_upper_bound(self, st_cpis):
        """Multithreaded CPI can't beat single-threaded: STP <= n."""
        mt = list(st_cpis)  # equal CPIs: no slowdown at all
        assert stp(st_cpis, mt) == pytest.approx(len(st_cpis))


class TestANTT:
    def test_no_slowdown(self):
        assert antt([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_uniform_double_slowdown(self):
        assert antt([1.0, 1.0], [2.0, 2.0]) == pytest.approx(2.0)

    def test_paper_definition(self):
        assert antt([1.0, 2.0], [3.0, 3.0]) == pytest.approx((3.0 + 1.5) / 2)

    @settings(max_examples=50)
    @given(cpis, st.floats(min_value=1.0, max_value=10.0))
    def test_slowdown_scales(self, st_cpis, factor):
        mt = [c * factor for c in st_cpis]
        assert antt(st_cpis, mt) == pytest.approx(factor)

    @settings(max_examples=50)
    @given(cpis)
    def test_reciprocal_relation_single_program(self, st_cpis):
        """For one program, ANTT = 1/STP exactly."""
        one_st, one_mt = [st_cpis[0]], [st_cpis[0] * 3]
        assert antt(one_st, one_mt) == pytest.approx(1.0 / stp(one_st, one_mt))


class TestMeans:
    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 4.0]) == pytest.approx(8 / 3)

    def test_harmonic_below_arithmetic(self):
        values = [1.0, 2.0, 7.0]
        assert harmonic_mean(values) < arithmetic_mean(values)

    def test_summarize_uses_paper_rules(self):
        # STP averaged harmonically, ANTT arithmetically (John 2006).
        assert summarize_stp([2.0, 4.0]) == pytest.approx(harmonic_mean([2.0, 4.0]))
        assert summarize_antt([2.0, 4.0]) == pytest.approx(3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_harmonic_rejects_zero(self):
        with pytest.raises(ValueError):
            harmonic_mean([0.0, 1.0])
