"""Tests for the experiment harness (runner, baselines, drivers)."""

import pytest

from repro.config import scaled_config
from repro.experiments import (
    clear_baseline_cache,
    evaluate_workload,
    run_single,
    single_thread_baseline,
    trace_for,
)
from repro.experiments.profile import characterization_budget
from repro.experiments.runner import stable_seed
from repro.metrics import stp as stp_fn

CFG = scaled_config(num_threads=2, scale=16)


class TestSeedsAndTraces:
    def test_stable_seed_is_name_determined(self):
        assert stable_seed("swim") == stable_seed("swim")
        assert stable_seed("swim") != stable_seed("mcf")

    def test_trace_slots_have_disjoint_address_spaces(self):
        t0 = trace_for("swim", CFG, slot=0)
        t1 = trace_for("swim", CFG, slot=1)
        assert t0.base != t1.base
        a0 = {t0.get(i).addr for i in range(400) if t0.get(i).addr}
        a1 = {t1.get(i).addr for i in range(400) if t1.get(i).addr}
        assert not (a0 & a1)


class TestSingleThreadBaseline:
    def test_baseline_is_cached(self):
        clear_baseline_cache()
        a = single_thread_baseline("gap", CFG, 2000)
        b = single_thread_baseline("gap", CFG, 2000)
        assert a is b

    def test_distinct_budgets_distinct_entries(self):
        clear_baseline_cache()
        a = single_thread_baseline("gap", CFG, 2000)
        b = single_thread_baseline("gap", CFG, 2500)
        assert a is not b

    def test_commit_cycles_monotone(self):
        clear_baseline_cache()
        r = single_thread_baseline("gap", CFG, 2000)
        cc = r.commit_cycles
        assert len(cc) >= 2000
        assert all(b >= a for a, b in zip(cc, cc[1:]))

    def test_cpi_at_matches_direct_ratio(self):
        clear_baseline_cache()
        r = single_thread_baseline("gap", CFG, 2000)
        assert r.cpi_at(1000) == pytest.approx(r.commit_cycles[999] / 1000)

    def test_cpi_at_rejects_zero(self):
        clear_baseline_cache()
        r = single_thread_baseline("gap", CFG, 1500)
        with pytest.raises(ValueError):
            r.cpi_at(0)


class TestRunSingle:
    def test_warmup_discards_cold_start(self):
        cold = run_single("gap", CFG, 2000, warmup=0)
        warm = run_single("gap", CFG, 2000, warmup=1500)
        # Warmed measurement should never be slower than the cold one.
        assert warm.ipc(0) >= cold.ipc(0) * 0.95

    def test_commit_cycle_trace_is_a_real_field(self):
        plain = run_single("gap", CFG, 1500, warmup=0)
        assert plain.commit_cycle_trace is None
        traced = run_single("gap", CFG, 1500, warmup=0,
                            record_commits=True)
        assert traced.commit_cycle_trace is not None
        assert len(traced.commit_cycle_trace) >= 1500


class TestEvaluateWorkload:
    def test_result_shape(self):
        clear_baseline_cache()
        r = evaluate_workload(("mcf", "twolf"), CFG, "icount", 2000,
                              warmup=500)
        assert r.names == ("mcf", "twolf")
        assert len(r.st_cpis) == 2
        assert len(r.mt_cpis) == 2
        assert r.stp == pytest.approx(stp_fn(r.st_cpis, r.mt_cpis))
        assert 0 < r.stp <= 2.0 + 1e-6
        assert r.antt >= 0.9

    def test_wrong_thread_count_rejected(self):
        with pytest.raises(ValueError):
            evaluate_workload(("mcf",), CFG, "icount", 1000)

    def test_multithreading_slows_each_program(self):
        clear_baseline_cache()
        r = evaluate_workload(("swim", "mcf"), CFG, "icount", 2500,
                              warmup=500)
        # Each program's MT CPI should be at least ~its ST CPI.
        for st, mt in zip(r.st_cpis, r.mt_cpis):
            assert mt >= st * 0.9


class TestCharacterizationBudget:
    def test_burst_benchmarks_get_bigger_budgets(self):
        assert characterization_budget("art", 10_000) > 10_000

    def test_stream_benchmarks_keep_default(self):
        assert characterization_budget("swim", 10_000) == 10_000

    def test_budget_is_capped(self):
        assert characterization_budget("gcc", 10_000) <= 150_000
