"""Array-backed rename map vs a dict-oracle implementation.

The dispatch stage renames through a fixed per-thread array indexed by
the dense architectural register number (``ThreadState.rename_map``); the
pre-optimization engine used a plain dict with ``.get`` defaulting to
``None``.  These tests run the *same* randomized simulation twice — once
on the real array-backed thread state and once with a dict-backed
stand-in implementing exactly the original semantics injected into every
thread — drive random flush/commit/dispatch event mixes through the real
engine (random programs, random mid-run flush injections), and require
bit-identical architectural outcomes plus structurally identical rename
state at every checkpoint.

Same style as ``tests/test_fetch_priority.py``: hypothesis generates the
event sequences, the production transition functions execute them, and
an independent implementation is the oracle.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import StubTrace
from repro.config import SMTConfig
from repro.isa import NUM_ARCH_REGS, Instr, Op
from repro.pipeline.core import SMTCore
from repro.policies import make_policy


class DictRenameMap:
    """The original dict-based rename map, as an indexable stand-in.

    Implements exactly the pre-optimization semantics: a missing
    register reads as ``None`` (the dict used ``.get``), any register
    may be written, and flush undo may store ``None`` back.  The engine
    only uses ``[reg]`` reads and writes, so this drops into
    ``ThreadState.rename_map`` unchanged.
    """

    def __init__(self):
        self._d = {}

    def __getitem__(self, reg):
        return self._d.get(reg)

    def __setitem__(self, reg, value):
        self._d[reg] = value

    def __iter__(self):
        # Iteration support mirrors the array's: dense register order.
        return (self._d.get(reg) for reg in range(NUM_ARCH_REGS))


def _random_program(draw, length: int) -> list[Instr]:
    """A random register-pressure-heavy loop body."""
    kinds = st.sampled_from(("alu", "fp", "load", "store", "branch"))
    instrs: list[Instr] = []
    int_reg = st.integers(min_value=1, max_value=31)
    fp_reg = st.integers(min_value=32, max_value=63)
    for pc in range(length):
        kind = draw(kinds)
        srcs = tuple(draw(int_reg) for _ in range(draw(
            st.integers(min_value=0, max_value=2))))
        if kind == "alu":
            instrs.append(Instr(pc, Op.IALU, draw(int_reg), srcs))
        elif kind == "fp":
            instrs.append(Instr(pc, Op.FALU, draw(fp_reg),
                                (draw(fp_reg),)))
        elif kind == "load":
            instrs.append(Instr(pc, Op.LOAD, draw(int_reg), srcs,
                                addr=draw(st.integers(0, 1 << 14)) * 8))
        elif kind == "store":
            instrs.append(Instr(pc, Op.STORE, None, srcs or (1,),
                                addr=draw(st.integers(0, 1 << 14)) * 8))
        else:
            instrs.append(Instr(pc, Op.BRANCH, None, srcs,
                                taken=draw(st.booleans())))
    return instrs


def _build_core(programs, dict_oracle: bool) -> SMTCore:
    cfg = SMTConfig(num_threads=len(programs))
    traces = [StubTrace(body, base=(tid + 1) << 33)
              for tid, body in enumerate(programs)]
    core = SMTCore(cfg, traces, make_policy("icount"))
    if dict_oracle:
        for ts in core.threads:
            ts.rename_map = DictRenameMap()
    return core


def _rename_shape(core: SMTCore):
    """Structural (identity-free) view of every thread's rename state."""
    shape = []
    for ts in core.threads:
        regs = []
        for reg, prod in enumerate(ts.rename_map):
            if prod is None:
                regs.append(None)
            else:
                regs.append((reg, prod.seq, prod.gseq, prod.retired,
                             prod.completed, prod.squashed, prod.refs))
        shape.append(regs)
    return shape


def _stats_shape(core: SMTCore):
    return [(t.fetched, t.committed, t.squashed, t.flushes,
             t.loads_executed)
            for t in (ts.stats for ts in core.threads)]


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_array_rename_matches_dict_oracle(data):
    """Random dispatch/flush/commit mixes: array == dict, exactly."""
    draw = data.draw
    # The shared ROB (256) must divide evenly across threads.
    num_threads = draw(st.sampled_from((1, 2, 4)))
    programs = [_random_program(draw, draw(st.integers(6, 14)))
                for _ in range(num_threads)]
    real = _build_core(programs, dict_oracle=False)
    oracle = _build_core(programs, dict_oracle=True)

    # A schedule of (run-this-many-cycles, flush-event) segments; the
    # flushes hit both cores identically, injecting the squash/undo path
    # at arbitrary points of the dispatch/commit interleaving.
    segments = draw(st.lists(
        st.tuples(st.integers(min_value=5, max_value=120),
                  st.booleans(),
                  st.integers(min_value=0, max_value=num_threads - 1),
                  st.integers(min_value=0, max_value=40)),
        min_size=2, max_size=8))
    for cycles, do_flush, tid, rewind in segments:
        for _ in range(cycles):
            real.step()
            oracle.step()
        if do_flush:
            ts_r = real.threads[tid]
            ts_o = oracle.threads[tid]
            assert ts_r.fetch_index == ts_o.fetch_index
            after_seq = max(ts_r.fetch_index - 1 - rewind, 0)
            real.flush_thread(ts_r, after_seq)
            oracle.flush_thread(ts_o, after_seq)
        assert real.cycle == oracle.cycle
        assert _rename_shape(real) == _rename_shape(oracle)
        assert _stats_shape(real) == _stats_shape(oracle)

    assert _rename_shape(real) == _rename_shape(oracle)
    assert _stats_shape(real) == _stats_shape(oracle)


def _soa_rename_shape(core):
    """The SoA columns' rename state, in the object engine's shape.

    The soa map holds slot numbers; project each mapped slot's columns
    onto the same (reg, seq, gseq, retired, completed, squashed) tuple
    ``_rename_shape`` builds from record attributes.  Reference counts
    are *not* compared: the arena counts rename-current occupancy as a
    reference (slot lifetime), the object engine does not (GC does).
    """
    from repro.pipeline.dyninstr import (
        F_COMPLETED,
        F_RETIRED,
        F_SQUASHED,
    )

    shape = []
    for ts in core.threads:
        regs = []
        for reg, slot in enumerate(ts.rename_map):
            if slot < 0:
                regs.append(None)
            else:
                fl = core._col_flags[slot]
                regs.append((reg, core._col_seq[slot],
                             core._col_gseq[slot],
                             bool(fl & F_RETIRED),
                             bool(fl & F_COMPLETED),
                             bool(fl & F_SQUASHED)))
        shape.append(regs)
    return shape


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_soa_rename_columns_match_object_records(data):
    """Object engine as the oracle for the SoA rename columns.

    The same random programs and flush injections drive an
    :class:`SMTCore` and a :class:`SoACore` in lockstep; at every
    checkpoint the arena's slot-number map must project onto exactly
    the object engine's record map (minus identity and refcounts), and
    the architectural stats must agree cycle for cycle.
    """
    from repro.pipeline.soa import SoACore

    draw = data.draw
    num_threads = draw(st.sampled_from((1, 2, 4)))
    programs = [_random_program(draw, draw(st.integers(6, 14)))
                for _ in range(num_threads)]
    obj = _build_core(programs, dict_oracle=False)
    cfg = SMTConfig(num_threads=num_threads)
    traces = [StubTrace(body, base=(tid + 1) << 33)
              for tid, body in enumerate(programs)]
    soa = SoACore(cfg, traces, make_policy("icount"))

    def _obj_shape_no_refs():
        return [[None if entry is None else entry[:6]
                 for entry in regs]
                for regs in _rename_shape(obj)]

    segments = draw(st.lists(
        st.tuples(st.integers(min_value=5, max_value=120),
                  st.booleans(),
                  st.integers(min_value=0, max_value=num_threads - 1),
                  st.integers(min_value=0, max_value=40)),
        min_size=2, max_size=8))
    for cycles, do_flush, tid, rewind in segments:
        for _ in range(cycles):
            obj.step()
            soa.step()
        if do_flush:
            ts_o = obj.threads[tid]
            ts_s = soa.threads[tid]
            assert ts_o.fetch_index == ts_s.fetch_index
            after_seq = max(ts_o.fetch_index - 1 - rewind, 0)
            obj.flush_thread(ts_o, after_seq)
            soa.flush_thread(ts_s, after_seq)
        assert obj.cycle == soa.cycle
        assert _obj_shape_no_refs() == _soa_rename_shape(soa)
        assert _stats_shape(obj) == _stats_shape(soa)

    assert _obj_shape_no_refs() == _soa_rename_shape(soa)
    assert _stats_shape(obj) == _stats_shape(soa)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_rename_entries_are_youngest_unsquashed_writers(data):
    """The array holds, per register, the youngest surviving writer.

    Independent invariant (no second engine): after any random run and
    flush mix, each non-``None`` rename entry must be the writer with
    the largest ``seq`` among this thread's dispatched, un-squashed
    instructions targeting that register — and must never be squashed
    (flush undo restores the older mapping).
    """
    draw = data.draw
    num_threads = draw(st.integers(min_value=1, max_value=2))
    programs = [_random_program(draw, draw(st.integers(6, 12)))
                for _ in range(num_threads)]
    core = _build_core(programs, dict_oracle=False)
    for cycles, do_flush, rewind in draw(st.lists(
            st.tuples(st.integers(5, 150), st.booleans(),
                      st.integers(0, 30)),
            min_size=1, max_size=6)):
        for _ in range(cycles):
            core.step()
        if do_flush:
            ts = core.threads[draw(st.integers(0, num_threads - 1))]
            core.flush_thread(ts, max(ts.fetch_index - 1 - rewind, 0))
    for ts in core.threads:
        in_window = {}
        for di in ts.window:
            if di.has_dest and not di.squashed:
                dest = di.instr.dest
                if dest not in in_window or di.seq > in_window[dest].seq:
                    in_window[dest] = di
        for reg, prod in enumerate(ts.rename_map):
            if prod is None:
                continue
            assert not prod.squashed, (
                f"r{reg} maps to a squashed producer")
            newest = in_window.get(reg)
            if newest is not None:
                assert prod is newest, (
                    f"r{reg}: map entry seq={prod.seq} but window holds "
                    f"younger writer seq={newest.seq}")
