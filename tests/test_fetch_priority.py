"""Incremental fetch-priority structure vs a rebuild-from-scratch oracle.

The core maintains fetch eligibility *incrementally*: a per-thread
``policy_stalled_flag`` plus the ``_fetch_candidates`` list are updated
only on policy-relevant events (owner set/clear, fetch-index advance,
flush rewind), and the base policy's ``fetch_order``/``fetch_pending``
read them instead of re-deriving eligibility per thread per cycle.

These tests drive randomized event sequences through the real
``ThreadState``/``SMTCore`` transition functions and compare, after every
event, against oracles that recompute everything from the raw per-thread
fields — including a verbatim reimplementation of the original
(pre-incremental) fetch-order algorithm.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import StubTrace, alu
from repro.config import SMTConfig
from repro.pipeline.core import SMTCore
from repro.pipeline.dyninstr import DynInstr
from repro.policies import make_policy


def _make_core(num_threads: int) -> SMTCore:
    cfg = SMTConfig(num_threads=num_threads)
    traces = [StubTrace([alu(pc) for pc in range(4)])
              for _ in range(num_threads)]
    return SMTCore(cfg, traces, make_policy("stall"))


def _owner(tid: int, seq: int, gseq: int) -> DynInstr:
    return DynInstr(alu(seq), tid, seq, gseq, fe_ready=0)


# --------------------------------------------------------------------- #
# oracles: recompute from raw fields, the way the original code did
# --------------------------------------------------------------------- #

def oracle_candidates(core: SMTCore) -> list:
    return [ts for ts in core.threads
            if not (ts.allowed_end is not None
                    and ts.fetch_index > ts.allowed_end)]


def oracle_fetch_order(core: SMTCore, cycle: int) -> list:
    """The original per-cycle rebuild+sort fetch order, verbatim."""
    threads = core.threads
    fe_capacity = core._fe_capacity
    eligible = []
    any_fetchable = False
    for ts in threads:
        if (ts.fetch_blocked_until <= cycle
                and ts.waiting_branch is None
                and len(ts.fe_queue) < fe_capacity):
            any_fetchable = True
            allowed_end = ts.allowed_end
            if allowed_end is None or ts.fetch_index <= allowed_end:
                eligible.append(ts)
    if eligible:
        if len(eligible) > 1:
            eligible.sort(key=lambda t: t.icount)
        return [(ts, False) for ts in eligible]
    if not any_fetchable:
        return []
    for ts in threads:
        allowed_end = ts.allowed_end
        if allowed_end is None or ts.fetch_index <= allowed_end:
            return []
    oldest = None
    for ts in threads:
        if core.fetchable(ts, cycle) and (
                oldest is None or ts.stall_start < oldest.stall_start):
            oldest = ts
    return [] if oldest is None else [(oldest, True)]


# --------------------------------------------------------------------- #
# randomized event sequences
# --------------------------------------------------------------------- #

_EVENT = st.tuples(
    st.sampled_from(
        ("set_owner", "clear_owner", "advance", "rewind", "block", "icount")),
    st.integers(min_value=0, max_value=3),     # thread index
    st.integers(min_value=-3, max_value=12),   # magnitude / end offset
)


@settings(max_examples=200, deadline=None)
@given(num_threads=st.sampled_from((1, 2, 4)),
       events=st.lists(_EVENT, max_size=40))
def test_incremental_state_matches_rebuild_oracle(num_threads, events):
    core = _make_core(num_threads)
    gseq = 0
    cycle = 0
    owners: list[list[DynInstr]] = [[] for _ in range(num_threads)]
    for kind, raw_tid, mag in events:
        cycle += 1
        ts = core.threads[raw_tid % num_threads]
        if kind == "set_owner":
            gseq += 1
            di = _owner(ts.tid, max(ts.fetch_index + mag, 0), gseq)
            ts.set_owner(di, di.seq, cycle)
            owners[ts.tid].append(di)
        elif kind == "clear_owner":
            if owners[ts.tid]:
                ts.clear_owner(owners[ts.tid].pop(), cycle)
        elif kind == "advance":
            # A fetch burst: the index moves, then the end-of-burst sync
            # folds any allowed_end crossing into the incremental state.
            ts.fetch_index += max(mag, 0)
            ts._sync_policy_stall(cycle)
        elif kind == "rewind":
            # A flush: the index rewinds, then flush_thread syncs.
            ts.fetch_index = max(ts.fetch_index - max(mag, 0), 0)
            ts._sync_policy_stall(cycle)
        elif kind == "block":
            # Time-based eligibility is not part of the incremental
            # state; no sync is required for it.
            ts.fetch_blocked_until = cycle + max(mag, 0)
        elif kind == "icount":
            ts.icount = max(mag, 0)

        # the event-maintained structures equal a from-scratch rebuild
        assert ts.policy_stalled_flag == ts.policy_stalled
        assert core._fetch_candidates == oracle_candidates(core)
        # and the incremental fetch order equals the original algorithm
        policy = core.policy
        assert list(policy.fetch_order(cycle)) == \
            list(oracle_fetch_order(core, cycle))
        assert policy.fetch_pending(cycle) == \
            bool(oracle_fetch_order(core, cycle))


@settings(max_examples=100, deadline=None)
@given(events=st.lists(_EVENT, min_size=1, max_size=30),
       probe_offset=st.integers(min_value=0, max_value=5))
def test_fetch_pending_matches_order_truthiness_at_future_cycles(
        events, probe_offset):
    """fetch_pending(c') must mirror fetch_order(c') for any probed c'."""
    core = _make_core(2)
    gseq = 0
    cycle = 0
    for kind, raw_tid, mag in events:
        cycle += 1
        ts = core.threads[raw_tid % 2]
        if kind == "set_owner":
            gseq += 1
            di = _owner(ts.tid, max(ts.fetch_index + mag, 0), gseq)
            ts.set_owner(di, di.seq, cycle)
        elif kind == "advance":
            ts.fetch_index += max(mag, 0)
            ts._sync_policy_stall(cycle)
        elif kind == "block":
            ts.fetch_blocked_until = cycle + max(mag, 0)
        elif kind == "icount":
            ts.icount = max(mag, 0)
    probe = cycle + probe_offset
    policy = core.policy
    assert policy.fetch_pending(probe) == bool(policy.fetch_order(probe))
