"""Tests for the paper's predictors: miss-pattern/last-value/two-bit LLL
predictors, the LLSR, the MLP distance predictor, and the binary MLP
predictor (Sections 4.1 and 4.2)."""

from hypothesis import given, settings, strategies as st
import pytest

from repro.predictors import (
    LLSR,
    BinaryMLPPredictor,
    LastValuePredictor,
    MLPDistancePredictor,
    MissPatternPredictor,
    TwoBitMissPredictor,
)


class TestMissPatternPredictor:
    def test_cold_entry_predicts_hit(self):
        p = MissPatternPredictor()
        assert not p.predict(10)

    def test_learns_periodic_pattern(self):
        """A load that misses every 8th execution (stream behaviour)."""
        p = MissPatternPredictor()
        # Train two full periods so the period register is learned.
        for rep in range(2):
            for i in range(7):
                p.train(5, False)
            p.train(5, True)
        # Third period: the predictor must flag exactly the 8th access.
        for i in range(7):
            assert not p.predict(5)
            p.train(5, False)
        assert p.predict(5)

    def test_alternating_pattern(self):
        p = MissPatternPredictor()
        for _ in range(4):
            p.train(5, True)
            p.train(5, False)
        # period == 1 hit between misses; after one hit, predict miss
        assert p.predict(5)

    def test_always_miss_pattern(self):
        p = MissPatternPredictor()
        for _ in range(3):
            p.train(5, True)
        assert p.predict(5)  # period 0: every execution misses

    def test_saturated_period_never_predicts(self):
        """A load with a very long hit run must not wedge into
        predicted-miss-forever once its 6-bit counters saturate."""
        p = MissPatternPredictor(counter_bits=6)
        p.train(5, True)
        for _ in range(200):
            p.train(5, False)
        p.train(5, True)
        for _ in range(200):
            p.train(5, False)
            assert not p.predict(5)

    def test_aliasing_shares_entries(self):
        p = MissPatternPredictor(entries=4)
        for _ in range(3):
            p.train(1, True)
        assert p.predict(1 + 4)  # same table slot

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            MissPatternPredictor(entries=0)


class TestLastValuePredictor:
    def test_tracks_last_outcome(self):
        p = LastValuePredictor()
        p.train(3, True)
        assert p.predict(3)
        p.train(3, False)
        assert not p.predict(3)

    def test_cold_predicts_hit(self):
        assert not LastValuePredictor().predict(9)


class TestTwoBitPredictor:
    def test_needs_two_misses_to_predict(self):
        p = TwoBitMissPredictor()
        p.train(3, True)
        assert not p.predict(3)
        p.train(3, True)
        assert p.predict(3)

    def test_hysteresis(self):
        p = TwoBitMissPredictor()
        for _ in range(3):
            p.train(3, True)
        p.train(3, False)   # one hit shouldn't flip a saturated entry
        assert p.predict(3)
        p.train(3, False)
        assert not p.predict(3)


class TestLLSR:
    def test_isolated_miss_distance_zero(self):
        """Figure 3 semantics: a lone 1 exiting the head measures 0."""
        llsr = LLSR(8)
        distances = []
        llsr.commit(True, pc=7)
        for _ in range(20):
            d = llsr.commit(False)
            if d is not None:
                distances.append(d)
        assert distances == [0]

    def test_paper_figure3_example_distance(self):
        """A second 1 six instructions behind the head gives distance 6."""
        llsr = LLSR(8)
        llsr.commit(True, pc=1)          # will exit first
        for _ in range(5):
            llsr.commit(False)
        llsr.commit(True, pc=2)          # 6 instructions later
        distances = []
        for _ in range(3):
            d = llsr.commit(False)
            if d is not None:
                distances.append(d)
        # The first 1 exits on the 9th commit; the furthest 1 sits 6 in.
        assert distances[0] == 6

    def test_adjacent_misses(self):
        llsr = LLSR(8)
        llsr.commit(True, pc=1)
        llsr.commit(True, pc=2)
        results = [llsr.commit(False) for _ in range(10)]
        measured = [d for d in results if d is not None]
        assert measured[0] == 1   # pc=1 exits, pc=2 is 1 behind
        assert measured[1] == 0   # pc=2 exits isolated

    def test_distance_bounded_by_length(self):
        llsr = LLSR(16)
        for _ in range(3):
            llsr.commit(True, pc=1)
            for _ in range(4):
                llsr.commit(False)
        for _ in range(40):
            d = llsr.commit(False)
            if d is not None:
                assert 0 <= d < 16

    def test_callback_fired_with_pc(self):
        seen = []
        llsr = LLSR(4, on_measure=lambda pc, d: seen.append((pc, d)))
        llsr.commit(True, pc=42)
        for _ in range(6):
            llsr.commit(False)
        assert seen == [(42, 0)]

    def test_measured_log(self):
        llsr = LLSR(4)
        llsr.commit(True, pc=9)
        for _ in range(5):
            llsr.commit(False)
        assert llsr.measured == [(9, 0)]

    def test_rejects_tiny_length(self):
        with pytest.raises(ValueError):
            LLSR(1)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=200),
           st.integers(min_value=2, max_value=64))
    def test_distances_always_in_range(self, bits, length):
        llsr = LLSR(length)
        for bit in bits:
            d = llsr.commit(bit, pc=1)
            if d is not None:
                assert 0 <= d <= length

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.booleans(), min_size=50, max_size=300))
    def test_one_measurement_per_exiting_miss(self, bits):
        """Every 1 that shifts out of the head produces one measurement."""
        length = 8
        llsr = LLSR(length)
        measured = 0
        for bit in bits:
            if llsr.commit(bit, pc=1) is not None:
                measured += 1
        exited = sum(bits[:max(0, len(bits) - length)])
        assert measured == exited


class TestMLPDistancePredictor:
    def test_last_value_semantics(self):
        p = MLPDistancePredictor()
        p.train(5, 17)
        assert p.predict(5) == 17
        p.train(5, 3)
        assert p.predict(5) == 3

    def test_cold_default(self):
        assert MLPDistancePredictor().predict(5) == 0
        assert MLPDistancePredictor().predict(5, default=9) == 9

    def test_distance_capped(self):
        p = MLPDistancePredictor(max_distance=127)
        p.train(5, 400)
        assert p.predict(5) == 127

    def test_binary_classification_counts(self):
        p = MLPDistancePredictor()
        p.train(5, 10)   # predicted 0, actual 10 -> false negative
        p.train(5, 12)   # predicted 10, actual 12 -> true positive
        p.train(5, 0)    # predicted 12, actual 0 -> false positive
        p.train(5, 0)    # predicted 0, actual 0 -> true negative
        assert p.false_neg == 1
        assert p.true_pos == 1
        assert p.false_pos == 1
        assert p.true_neg == 1
        assert p.binary_accuracy == 0.5

    def test_far_enough_counts(self):
        p = MLPDistancePredictor()
        p.train(5, 10)   # predicted 0 < 10: too short
        p.train(5, 8)    # predicted 10 >= 8: far enough
        assert p.too_short == 1
        assert p.far_enough == 1
        assert p.distance_accuracy == 0.5

    def test_fraction_sum_is_one(self):
        p = MLPDistancePredictor()
        for d in (0, 5, 0, 9, 9, 2):
            p.train(3, d)
        assert abs(sum(p.classification_fractions().values()) - 1.0) < 1e-12


class TestBinaryMLPPredictor:
    def test_tracks_mlp_presence(self):
        p = BinaryMLPPredictor()
        p.train(5, 12)
        assert p.predict(5)
        p.train(5, 0)
        assert not p.predict(5)

    def test_cold_predicts_mlp_optimistically(self):
        # Pessimistic cold-start would flush a thread on first sight of
        # every load and could starve it before its predictor ever trains
        # (see the module docstring); the default is therefore "assume
        # MLP until evidence says otherwise".
        assert BinaryMLPPredictor().predict(8)
