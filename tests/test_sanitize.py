"""The REPRO_SANITIZE runtime sanitizer: wiring, exactness, detection.

Pins the three contracts of :mod:`repro.pipeline.sanitize`: the env
knob swaps the checked engine subclasses in through ``core_for`` (and
only then — off means the module is not even imported); a sanitized
run is bit-exact with a stock one on both backends; and the checks
actually fire — planted double-frees, a record mutated while pooled,
and a slot mutated while on the arena free list all raise
:class:`~repro.pipeline.sanitize.SanitizerError`.
"""

from __future__ import annotations

import pytest

from repro.config import scaled_config
from repro.experiments.runner import core_for, trace_for
from repro.pipeline.core import SMTCore
from repro.pipeline.sanitize import (
    CheckedFreeList,
    CheckedPool,
    CheckedSMTCore,
    CheckedSoACore,
    SanitizerError,
    checked_variant,
    sanitize_enabled,
)
from repro.pipeline.soa import SoACore
from repro.policies import make_policy
from repro.runahead import RunaheadCore

CFG2 = scaled_config(num_threads=2, scale=16)


def _build(core_cls, policy="mlp_flush", cfg=CFG2):
    pol = make_policy(policy)
    traces = [trace_for(name, cfg, slot=i)
              for i, name in enumerate(("mcf", "swim"))]
    return core_cls(cfg, traces, pol)


def _run(core_cls, commits=1_500):
    core = _build(core_cls)
    stats = core.run(commits, warmup=300)
    return core, stats


class TestWiring:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()
        assert core_for(make_policy("icount")) is SMTCore
        assert core_for(make_policy("icount"), "soa") is SoACore

    def test_env_selects_checked_cores(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()
        assert core_for(make_policy("icount")) is CheckedSMTCore
        assert core_for(make_policy("icount"), "soa") is CheckedSoACore

    def test_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_enabled()
        assert core_for(make_policy("icount")) is SMTCore

    def test_specialized_cores_bypass(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert core_for(make_policy("runahead")) is RunaheadCore
        assert checked_variant(RunaheadCore) is RunaheadCore


class TestBitExactness:
    def test_object_engine(self):
        _, stock = _run(SMTCore)
        _, checked = _run(CheckedSMTCore)
        assert checked == stock

    def test_soa_engine(self):
        _, stock = _run(SoACore)
        _, checked = _run(CheckedSoACore)
        assert checked == stock


class TestObjectEngineDetection:
    def test_double_free_caught(self):
        core, _ = _run(CheckedSMTCore)
        pool = core._di_pool
        assert isinstance(pool, CheckedPool) and pool
        di = pool.pop()
        pool.append(di)
        with pytest.raises(SanitizerError, match="double free"):
            pool.append(di)

    def test_unretired_free_caught(self):
        core, _ = _run(CheckedSMTCore)
        pool = core._di_pool
        di = pool.pop()
        di.retired = False
        with pytest.raises(SanitizerError, match="not retired"):
            pool.append(di)
        di.retired = True   # leave the pool record consistent

    def test_mutated_while_pooled_caught(self):
        core, _ = _run(CheckedSMTCore)
        pool = core._di_pool
        pool[-1].refs = 1
        with pytest.raises(SanitizerError, match="mutated while pooled"):
            pool.pop()

    def test_use_after_free_scan(self):
        core, _ = _run(CheckedSMTCore)
        pool = core._di_pool
        core.threads[0].window.append(pool[-1])
        with pytest.raises(SanitizerError, match="use after free"):
            core.sanitize_check()
        core.threads[0].window.pop()
        core.sanitize_check()   # restored state passes again


class TestSoAEngineDetection:
    def test_double_free_caught(self):
        core, _ = _run(CheckedSoACore)
        free = core._free
        assert isinstance(free, CheckedFreeList) and free
        with pytest.raises(SanitizerError, match="double free"):
            free.append(free[-1])

    def test_dirty_slot_free_caught(self):
        core, _ = _run(CheckedSoACore)
        free = core._free
        s = free.pop()
        core._col_pending[s] = 1
        with pytest.raises(SanitizerError, match="not pristine"):
            free.append(s)
        core._col_pending[s] = 0
        free.append(s)

    def test_mutated_while_freed_caught(self):
        core, _ = _run(CheckedSoACore)
        free = core._free
        s = free[-1]
        core._col_waiter0[s] = 7
        with pytest.raises(SanitizerError, match="mutated while freed"):
            free.pop()
        core._col_waiter0[s] = -1

    def test_leak_scan_flags_lost_slot(self):
        from repro.pipeline.dyninstr import F_FREED
        core, _ = _run(CheckedSoACore)
        s = core._free.pop()                 # allocated...
        core._col_flags[s] &= ~F_FREED      # ...but reachable from nowhere
        with pytest.raises(SanitizerError, match="leak"):
            core.sanitize_check()
        core._col_flags[s] |= F_FREED
        core._free.append(s)
        core.sanitize_check()
