"""Tests for the deterministic hashing utilities."""

from hypothesis import given, strategies as st
import pytest

from repro.util import bounded, mix64, uniform_double

keys = st.integers(min_value=0, max_value=2**63)


class TestMix64:
    def test_deterministic(self):
        assert mix64(1, 2, 3) == mix64(1, 2, 3)

    def test_key_order_matters(self):
        assert mix64(1, 2) != mix64(2, 1)

    def test_distinct_keys_distinct_hashes(self):
        values = {mix64(i) for i in range(10_000)}
        assert len(values) == 10_000

    @given(keys, keys)
    def test_fits_64_bits(self, a, b):
        assert 0 <= mix64(a, b) < 2**64

    def test_avalanche_single_bit(self):
        # Flipping one input bit should flip roughly half the output bits.
        base = mix64(0x1234)
        flipped = mix64(0x1234 ^ 1)
        differing = bin(base ^ flipped).count("1")
        assert 16 <= differing <= 48


class TestUniformDouble:
    @given(keys, keys)
    def test_unit_interval(self, a, b):
        assert 0.0 <= uniform_double(a, b) < 1.0

    def test_mean_is_half(self):
        n = 5000
        mean = sum(uniform_double(7, i) for i in range(n)) / n
        assert abs(mean - 0.5) < 0.02


class TestBounded:
    @given(st.integers(min_value=1, max_value=10**9), keys)
    def test_in_range(self, n, k):
        assert 0 <= bounded(n, k) < n

    def test_rejects_zero_bound(self):
        with pytest.raises(ValueError):
            bounded(0, 1)

    def test_covers_small_range(self):
        seen = {bounded(4, i) for i in range(100)}
        assert seen == {0, 1, 2, 3}
