"""CLI smoke tests: every subcommand runs and prints sane output."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "-w", "mcf,swim", "-p", "not_a_policy",
                  "-c", "1000"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "-w", "mcf,notabench", "-c", "1000"])

    def test_mismatched_workload_sizes_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "-w", "mcf,swim", "-w", "mcf,swim,vpr,gap",
                  "-c", "1000"])


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert any(ch.isdigit() for ch in out)

    def test_source_fallback_matches_pyproject(self):
        # Installed or not, --version must report the distribution
        # version from pyproject.toml, never the content-key stamp.
        import tomllib

        from repro.cli import package_version
        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        expected = tomllib.loads(pyproject.read_text())["project"]["version"]
        assert package_version() == expected


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "mlp_flush" in out
        assert "runahead" in out
        assert "smt2_mlp_stall" in out   # scenarios are enumerated too

    def test_list_single_kind(self, capsys):
        assert main(["list", "policies"]) == 0
        out = capsys.readouterr().out
        assert "mlp_flush" in out
        assert "smt2_mlp_stall" not in out
        capsys.readouterr()
        assert main(["list", "scenario"]) == 0   # singular alias
        assert "smt2_mlp_stall" in capsys.readouterr().out

    def test_list_unknown_kind_fails_helpfully(self, capsys):
        assert main(["list", "widgets"]) == 2
        err = capsys.readouterr().err
        assert "widgets" in err
        assert "benchmarks" in err and "policies" in err \
            and "scenarios" in err

    def test_parse_policies_sees_runtime_registrations(self):
        from repro import registry
        from repro.cli import _parse_policies
        from repro.policies.icount import ICountPolicy

        class _CliTestPolicy(ICountPolicy):
            name = "cli_test_policy"

        try:
            registry.register("policies", _CliTestPolicy.name,
                              _CliTestPolicy)
            assert _parse_policies("icount,cli_test_policy") \
                == ("icount", "cli_test_policy")
        finally:
            registry.policies.unregister(_CliTestPolicy.name)

    def test_characterize_subset(self, capsys):
        assert main(["characterize", "-b", "mcf,twolf",
                     "-c", "3000"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "class agreement" in out

    def test_compare(self, capsys):
        assert main(["compare", "-w", "mcf,twolf",
                     "-p", "icount,mlp_flush", "-c", "2000"]) == 0
        out = capsys.readouterr().out
        assert "STP" in out
        assert "ANTT" in out
        assert "mlp_flush" in out

    def test_mlp_cdf(self, capsys):
        assert main(["mlp-cdf", "-b", "swim", "-c", "3000"]) == 0
        out = capsys.readouterr().out
        assert "swim" in out
        assert "MLP distance" in out

    def test_figure_lists_targets_without_args(self, capsys):
        assert main(["figure"]) == 1
        out = capsys.readouterr().out
        assert "table1" in out

    def test_sweep_memlat(self, capsys):
        assert main(["sweep", "memlat", "-w", "mcf,twolf",
                     "-p", "mlp_flush", "-c", "1500"]) == 0
        out = capsys.readouterr().out
        assert "relative to ICOUNT" in out


class TestPerfProfileCommand:
    def test_profile_prints_top_frames(self, capsys):
        assert main(["perf", "profile", "st_icount", "--quick",
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "cProfile: st_icount" in out
        assert "_run_until" in out

    def test_profile_unknown_scenario_fails_helpfully(self):
        with pytest.raises(SystemExit) as exc:
            main(["perf", "profile", "definitely_not_a_scenario"])
        assert "repro list scenarios" in str(exc.value)


class TestJobsCommands:
    def test_jobs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["jobs"])

    def test_jobs_run_reports_batch(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["jobs", "run", "-w", "mcf,twolf", "-p",
                     "icount,flush", "-c", "1500", "-j", "2"]) == 0
        out = capsys.readouterr().out
        assert "STP=" in out
        assert "2 unique" in out
        assert "2 worker(s)" in out

    def test_jobs_run_then_status_then_clear(self, capsys, monkeypatch,
                                             tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["jobs", "run", "-w", "mcf,twolf", "-p", "icount",
                     "-c", "1500"]) == 0
        capsys.readouterr()
        assert main(["jobs", "status"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "entries:      3" in out    # 1 workload + 2 baselines
        assert main(["jobs", "cache-clear"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        assert main(["jobs", "status"]) == 0
        assert "entries:      0" in capsys.readouterr().out

    def test_jobs_status_with_cache_disabled(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["jobs", "status"]) == 0
        assert "disabled" in capsys.readouterr().out


class TestSpecCommands:
    def test_spec_make_show_run_roundtrip(self, capsys, monkeypatch,
                                          tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = tmp_path / "spec.json"
        assert main(["spec", "make", "-w", "mcf,twolf", "-p", "mlp_flush",
                     "-c", "1500", "--warmup", "300",
                     "-o", str(path)]) == 0
        out = capsys.readouterr().out
        assert "hash:" in out
        assert path.exists()

        assert main(["spec", "show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro.runspec/2" in out
        assert "mcf-twolf:mlp_flush@1500" in out

        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "STP=" in out
        assert "[jobs]" in out

        # Same spec again: everything resolves from the warm store.
        assert main(["run", str(path)]) == 0
        assert "1 cache hits, 0 simulated" in capsys.readouterr().out

    def test_spec_make_prints_json_without_output(self, capsys):
        assert main(["spec", "make", "-w", "mcf,twolf",
                     "-c", "1500"]) == 0
        out = capsys.readouterr().out
        assert '"schema": "repro.runspec/2"' in out

    def test_spec_make_rejects_bad_policy(self):
        with pytest.raises(SystemExit):
            main(["spec", "make", "-w", "mcf,twolf", "-p", "nope",
                  "-c", "1500"])

    def test_run_rejects_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["run", str(tmp_path / "nope.json")])

    def test_run_rejects_invalid_spec(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "repro.runspec/1"}')
        with pytest.raises(SystemExit, match="missing"):
            main(["run", str(bad)])

    def test_show_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "repro.runspec/999"}')
        with pytest.raises(SystemExit, match="schema"):
            main(["spec", "show", str(bad)])
