"""CLI smoke tests: every subcommand runs and prints sane output."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "-w", "mcf,swim", "-p", "not_a_policy",
                  "-c", "1000"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "-w", "mcf,notabench", "-c", "1000"])

    def test_mismatched_workload_sizes_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "-w", "mcf,swim", "-w", "mcf,swim,vpr,gap",
                  "-c", "1000"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "mlp_flush" in out
        assert "runahead" in out

    def test_characterize_subset(self, capsys):
        assert main(["characterize", "-b", "mcf,twolf",
                     "-c", "3000"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "class agreement" in out

    def test_compare(self, capsys):
        assert main(["compare", "-w", "mcf,twolf",
                     "-p", "icount,mlp_flush", "-c", "2000"]) == 0
        out = capsys.readouterr().out
        assert "STP" in out
        assert "ANTT" in out
        assert "mlp_flush" in out

    def test_mlp_cdf(self, capsys):
        assert main(["mlp-cdf", "-b", "swim", "-c", "3000"]) == 0
        out = capsys.readouterr().out
        assert "swim" in out
        assert "MLP distance" in out

    def test_figure_lists_targets_without_args(self, capsys):
        assert main(["figure"]) == 1
        out = capsys.readouterr().out
        assert "table1" in out

    def test_sweep_memlat(self, capsys):
        assert main(["sweep", "memlat", "-w", "mcf,twolf",
                     "-p", "mlp_flush", "-c", "1500"]) == 0
        out = capsys.readouterr().out
        assert "relative to ICOUNT" in out


class TestJobsCommands:
    def test_jobs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["jobs"])

    def test_jobs_run_reports_batch(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["jobs", "run", "-w", "mcf,twolf", "-p",
                     "icount,flush", "-c", "1500", "-j", "2"]) == 0
        out = capsys.readouterr().out
        assert "STP=" in out
        assert "2 unique" in out
        assert "2 worker(s)" in out

    def test_jobs_run_then_status_then_clear(self, capsys, monkeypatch,
                                             tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["jobs", "run", "-w", "mcf,twolf", "-p", "icount",
                     "-c", "1500"]) == 0
        capsys.readouterr()
        assert main(["jobs", "status"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "entries:      3" in out    # 1 workload + 2 baselines
        assert main(["jobs", "cache-clear"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        assert main(["jobs", "status"]) == 0
        assert "entries:      0" in capsys.readouterr().out

    def test_jobs_status_with_cache_disabled(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["jobs", "status"]) == 0
        assert "disabled" in capsys.readouterr().out
