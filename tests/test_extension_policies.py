"""Behavioural tests for the related-work and future-work policies:
DG/PDG gating, learning-based partitioning, MLP-aware DCRA, and CGMT."""

import pytest

from repro.config import scaled_config
from repro.experiments.runner import run_workload, trace_for
from repro.pipeline import SMTCore
from repro.policies import (
    CGMTPolicy,
    DataGatingPolicy,
    LearningPartitionPolicy,
    MLPAwareDCRAPolicy,
    PredictiveDataGatingPolicy,
    make_policy,
)


def _core(names, policy, **kwargs):
    cfg = scaled_config(num_threads=len(names), scale=16)
    traces = [trace_for(n, cfg, slot=i) for i, n in enumerate(names)]
    pol = make_policy(policy, **kwargs) if isinstance(policy, str) else policy
    return SMTCore(cfg, traces, pol)


class TestDataGating:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DataGatingPolicy(threshold=0)
        with pytest.raises(ValueError):
            PredictiveDataGatingPolicy(threshold=0)

    def test_gates_thread_with_many_outstanding_misses(self):
        core = _core(("swim", "twolf"), "dg", threshold=2)
        policy = core.policy
        miss_thread = core.threads[0]
        miss_thread.outstanding_misses = 3
        order = policy.fetch_order(core.cycle)
        assert all(ts.tid != 0 for ts, _ in order)
        miss_thread.outstanding_misses = 1
        order = policy.fetch_order(core.cycle)
        assert any(ts.tid == 0 for ts, _ in order)

    def test_dg_progress_on_memory_mix(self):
        stats, _ = run_workload(
            ("swim", "applu"), scaled_config(num_threads=2, scale=16),
            "dg", 2500, warmup=500)
        assert all(t.committed > 200 for t in stats.threads)

    def test_pdg_tracks_predicted_misses_in_flight(self):
        core = _core(("swim", "twolf"), "pdg", threshold=1)
        for _ in range(4000):
            core.step()
        policy = core.policy
        # The streaming thread's loads train the predictor; gating must
        # have fired at least once (i.e. the in-flight set saw members).
        assert policy._miss_pred[0].lookups > 0

    def test_pdg_inflight_set_stays_bounded(self):
        core = _core(("mcf", "swim"), "pdg", threshold=2)
        for _ in range(6000):
            core.step()
        for inflight in core.policy._inflight:
            live = [di for di in inflight
                    if not di.squashed and not di.completed]
            assert len(live) <= 3 * core.cfg.rob_size


class TestLearningPartition:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LearningPartitionPolicy(epoch_cycles=5)
        with pytest.raises(ValueError):
            LearningPartitionPolicy(step=0.9)
        with pytest.raises(ValueError):
            LearningPartitionPolicy(metric="magic")
        with pytest.raises(ValueError):
            LearningPartitionPolicy(min_share=0.0)

    def test_shares_start_equal_and_stay_normalized(self):
        core = _core(("mcf", "twolf"), "learning", epoch_cycles=200)
        policy = core.policy
        assert policy.shares == pytest.approx([0.5, 0.5])
        for _ in range(8000):
            core.step()
        assert sum(policy.shares) == pytest.approx(1.0)
        assert all(s >= policy.min_share - 1e-9 for s in policy.shares)

    def test_hill_climbing_runs_epochs(self):
        core = _core(("mcf", "swim"), "learning", epoch_cycles=150)
        for _ in range(8000):
            core.step()
        policy = core.policy
        assert policy.epochs_run >= 3
        assert policy.adopted, "no share vector was ever adopted"

    def test_hmean_metric_variant_progresses(self):
        stats, _ = run_workload(
            ("mcf", "twolf"), scaled_config(num_threads=2, scale=16),
            "learning", 2500, warmup=500, metric="hmean",
            epoch_cycles=300)
        assert all(t.committed > 200 for t in stats.threads)

    def test_share_caps_are_enforced(self):
        core = _core(("swim", "mcf"), "learning", epoch_cycles=500)
        cfg = core.cfg
        for step in range(5000):
            core.step()
            if step % 67 == 0:
                for ts in core.threads:
                    cap = (cfg.rob_size * core.policy.shares[ts.tid]
                           + cfg.decode_width)
                    assert ts.rob_count <= cap


class TestMLPAwareDCRA:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MLPAwareDCRAPolicy(ema_alpha=0.0)
        with pytest.raises(ValueError):
            MLPAwareDCRAPolicy(slow_weight=0.5)

    def test_no_mlp_slow_thread_gets_no_bonus(self):
        core = _core(("mcf", "twolf"), "mlp_dcra")
        policy = core.policy
        slow, fast = core.threads
        slow.outstanding_misses = 1
        # EMA is zero: the slow thread has shown no MLP, so shares match.
        assert policy._limits(slow) == pytest.approx(policy._limits(fast))

    def test_high_mlp_slow_thread_gets_full_bonus(self):
        core = _core(("swim", "twolf"), "mlp_dcra", slow_weight=2.0)
        policy = core.policy
        slow, fast = core.threads
        slow.outstanding_misses = 1
        policy._mlp_need[0] = 1.0
        s_lim, f_lim = policy._limits(slow), policy._limits(fast)
        for s, f in zip(s_lim, f_lim):
            assert s == pytest.approx(2 * f)

    def test_ema_updates_on_detection(self):
        core = _core(("swim", "twolf"), "mlp_dcra")
        for _ in range(4000):
            core.step()
        # swim's clustered stream misses must have produced nonzero need.
        assert core.policy._mlp_need[0] > 0.0

    def test_progress_on_mlp_mix(self):
        stats, _ = run_workload(
            ("swim", "galgel"), scaled_config(num_threads=2, scale=16),
            "mlp_dcra", 2500, warmup=500)
        assert all(t.committed > 200 for t in stats.threads)


class TestCGMT:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CGMTPolicy(switch_penalty=-1)
        with pytest.raises(ValueError):
            CGMTPolicy(quantum=0)

    def test_only_active_thread_fetches(self):
        core = _core(("swim", "twolf"), "cgmt")
        policy = core.policy
        order = policy.fetch_order(core.cycle)
        assert len(order) <= 1
        if order:
            assert order[0][0].tid == policy.active_tid

    def test_switches_happen_on_memory_mix(self):
        core = _core(("mcf", "swim"), "cgmt")
        for _ in range(6000):
            core.step()
        assert core.policy.switches > 1

    def test_quantum_prevents_starvation(self):
        """A never-missing co-runner must not monopolize the machine."""
        stats, core = run_workload(
            ("twolf", "mcf"), scaled_config(num_threads=2, scale=16),
            "cgmt", 3000, warmup=500, quantum=800)
        assert all(t.committed > 100 for t in stats.threads)

    def test_switch_penalty_blocks_incoming_fetch(self):
        core = _core(("mcf", "swim"), "cgmt", switch_penalty=50)
        policy = core.policy
        before = policy.switches
        # Drive until a switch occurs, then check the incoming thread's
        # fetch hold.
        for _ in range(20000):
            core.step()
            if policy.switches > before:
                break
        assert policy.switches > before, "no switch ever happened"

    def test_mlp_cgmt_waits_for_the_burst(self):
        """MLP-aware CGMT must stall-switch *after* filling the window:
        the switched-out thread keeps its post-miss instructions, so it
        squashes fewer instructions than plain CGMT on an MLP thread."""
        cfg = scaled_config(num_threads=2, scale=16)
        plain, _ = run_workload(("swim", "twolf"), cfg, "cgmt", 2500,
                                warmup=500)
        aware, _ = run_workload(("swim", "twolf"), cfg, "mlp_cgmt", 2500,
                                warmup=500)
        committed = plain.threads[0].committed
        assert aware.threads[0].squashed <= plain.threads[0].squashed \
            or aware.threads[0].committed >= committed

    def test_single_thread_never_switches(self):
        core = _core(("mcf",), "cgmt")
        for _ in range(3000):
            core.step()
        assert core.policy.switches == 0
        assert core.policy.active_tid == 0
