"""Tests for the repro.jobs subsystem: spec hashing, the persistent
result store, and the parallel batch executor."""

from __future__ import annotations

import json
import os
from pathlib import Path
import subprocess
import sys

import pytest

from repro.config import scaled_config
from repro.experiments import (
    clear_baseline_cache,
    default_config,
    evaluate_workload,
    single_thread_baseline,
)
from repro.experiments.policy_comparison import compare_policies
from repro.jobs import (
    SCHEMA_VERSION,
    JobSpec,
    ResultStore,
    UncacheableJobError,
    run_jobs,
)
from repro.jobs.executor import counters, default_workers
from repro.jobs.store import default_store

CFG = scaled_config(num_threads=2, scale=16)
COMMITS = 1500
WARMUP = 300


def _specs(policies=("icount", "flush"), workloads=(("mcf", "twolf"),)):
    return [JobSpec.workload(names, CFG, policy, COMMITS, warmup=WARMUP)
            for names in workloads for policy in policies]


class TestJobSpec:
    def test_key_is_stable(self):
        a = JobSpec.workload(("mcf", "twolf"), CFG, "flush", COMMITS,
                             warmup=WARMUP)
        b = JobSpec.workload(("mcf", "twolf"), CFG, "flush", COMMITS,
                             warmup=WARMUP)
        assert a == b
        assert a.cache_key() == b.cache_key()

    @pytest.mark.parametrize("other", [
        JobSpec.workload(("mcf", "twolf"), CFG, "icount", COMMITS,
                         warmup=WARMUP),
        JobSpec.workload(("twolf", "mcf"), CFG, "flush", COMMITS,
                         warmup=WARMUP),
        JobSpec.workload(("mcf", "twolf"), CFG, "flush", COMMITS + 1,
                         warmup=WARMUP),
        JobSpec.workload(("mcf", "twolf"), CFG, "flush", COMMITS,
                         warmup=WARMUP + 1),
        JobSpec.workload(("mcf", "twolf"),
                         scaled_config(num_threads=2, scale=8),
                         "flush", COMMITS, warmup=WARMUP),
        JobSpec.workload(("mcf", "twolf"), CFG, "flush", COMMITS,
                         warmup=WARMUP, threshold=3),
    ])
    def test_key_sees_every_field(self, other):
        base = JobSpec.workload(("mcf", "twolf"), CFG, "flush", COMMITS,
                                warmup=WARMUP)
        assert base.cache_key() != other.cache_key()

    def test_thread_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            JobSpec.workload(("mcf",), CFG, "icount", COMMITS)

    def test_baseline_specs_follow_workload_order(self):
        spec = JobSpec.workload(("swim", "mcf"), CFG, "flush", COMMITS,
                                warmup=WARMUP)
        bases = spec.baseline_specs()
        assert [b.names[0] for b in bases] == ["swim", "mcf"]
        assert all(b.config.num_threads == 1 for b in bases)
        assert all(b.policy == "icount" for b in bases)

    def test_unserializable_kwargs_are_uncacheable(self):
        spec = JobSpec.workload(("mcf", "twolf"), CFG, "flush", COMMITS,
                                warmup=WARMUP, hook=object())
        with pytest.raises(UncacheableJobError):
            spec.cache_key()

    def test_config_cache_key_is_content_based(self):
        assert CFG.cache_key() == scaled_config(num_threads=2,
                                                scale=16).cache_key()
        assert CFG.cache_key() != scaled_config(num_threads=4,
                                                scale=16).cache_key()


class TestResultStore:
    def test_workload_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _specs()[0]
        result = run_jobs([spec], workers=1, store=None)[spec]
        assert store.put(spec, result)
        back = store.get(spec)
        assert back is not result
        assert back.names == result.names
        assert back.stp == result.stp and back.antt == result.antt
        assert back.st_cpis == result.st_cpis
        assert back.stats.cycles == result.stats.cycles
        assert back.stats.threads == result.stats.threads
        assert back.stats.ll_intervals == result.stats.ll_intervals

    def test_baseline_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = JobSpec.baseline("gap", CFG, COMMITS, warmup=WARMUP)
        result = run_jobs([spec], workers=1, store=None)[spec]
        store.put(spec, result)
        back = store.get(spec)
        assert back.commit_cycles == result.commit_cycles
        assert back.cpi_at(1000) == result.cpi_at(1000)

    def test_corrupt_entry_reads_as_miss_and_is_removed(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = JobSpec.baseline("gap", CFG, COMMITS, warmup=WARMUP)
        result = run_jobs([spec], workers=1, store=None)[spec]
        store.put(spec, result)
        store.path_for(spec).write_text("{not json")
        assert store.get(spec) is None
        assert not store.path_for(spec).exists()
        # The store still works after the bad entry is discarded.
        store.put(spec, result)
        assert store.get(spec) is not None

    def test_stale_schema_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = JobSpec.baseline("gap", CFG, COMMITS, warmup=WARMUP)
        result = run_jobs([spec], workers=1, store=None)[spec]
        store.put(spec, result)
        entry = json.loads(store.path_for(spec).read_text())
        entry["schema"] = SCHEMA_VERSION + 1
        store.path_for(spec).write_text(json.dumps(entry))
        assert store.get(spec) is None

    def test_missing_dir_is_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "never-created")
        assert len(store) == 0
        assert store.clear() == 0
        assert store.get(_specs()[0]) is None


class TestExecutor:
    def test_second_batch_simulates_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = _specs(policies=("icount", "flush"),
                       workloads=(("mcf", "twolf"), ("swim", "mcf")))
        first = run_jobs(specs, workers=1, store=store)
        assert first.report.executed > 0
        second = run_jobs(specs, workers=1, store=store)
        assert second.report.executed == 0
        assert second.report.cache_hits == len(specs)
        for spec in specs:
            assert second[spec].stp == first[spec].stp
            assert second[spec].antt == first[spec].antt

    def test_shared_baselines_simulate_once_per_batch(self, tmp_path):
        # Three workloads over only three distinct benchmarks: the batch
        # must run exactly three baseline simulations, not six.
        specs = _specs(policies=("icount",),
                       workloads=(("mcf", "twolf"), ("mcf", "swim"),
                                  ("swim", "twolf")))
        batch = run_jobs(specs, workers=1, store=ResultStore(tmp_path))
        assert batch.report.baselines_executed == 3

    def test_parallel_is_bit_identical_to_serial(self):
        specs = _specs(policies=("icount", "flush", "mlp_flush"))
        serial = run_jobs(specs, workers=1, store=None)
        parallel = run_jobs(specs, workers=4, store=None)
        assert parallel.report.workers == 4
        for spec in specs:
            assert parallel[spec].stp == serial[spec].stp
            assert parallel[spec].antt == serial[spec].antt
            assert parallel[spec].committed == serial[spec].committed
            assert parallel[spec].st_cpis == serial[spec].st_cpis

    def test_engine_matches_evaluate_workload(self, tmp_path):
        spec = _specs(policies=("flush",))[0]
        engine = run_jobs([spec], workers=2, store=None)[spec]
        clear_baseline_cache()
        direct = evaluate_workload(("mcf", "twolf"), CFG, "flush", COMMITS,
                                   warmup=WARMUP)
        assert engine.stp == direct.stp
        assert engine.antt == direct.antt

    def test_progress_reports_every_job(self, tmp_path):
        lines = []
        specs = _specs(policies=("icount", "flush"))
        store = ResultStore(tmp_path)
        run_jobs(specs, workers=1, store=store, progress=lines.append)
        assert sum("[baseline]" in line for line in lines) == 2
        assert sum("STP=" in line for line in lines) == 2
        lines.clear()
        run_jobs(specs, workers=1, store=store, progress=lines.append)
        assert all(line.startswith("[cached]") for line in lines)

    def test_duplicate_submissions_collapse(self, tmp_path):
        spec = _specs(policies=("icount",))[0]
        batch = run_jobs([spec, spec, spec], workers=1,
                         store=ResultStore(tmp_path))
        assert batch.report.submitted == 3
        assert batch.report.unique == 1

    def test_store_resolved_baselines_count_as_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        run_jobs(_specs(policies=("icount",)), workers=1, store=store)
        # New policy, same workload: the workload cell misses but both
        # baselines come from the store — that must show in the report.
        batch = run_jobs(_specs(policies=("flush",)), workers=1,
                         store=store)
        assert batch.report.cache_hits == 0
        assert batch.report.baselines_cached == 2
        assert batch.report.baselines_executed == 0
        assert batch.report.executed == 1

    def test_list_kwargs_are_hashable_and_cacheable(self, tmp_path):
        # JSON-able container kwargs must flow through the batch
        # machinery (specs are bookkept by content key, not object hash).
        store = ResultStore(tmp_path)
        plain = _specs(policies=("icount",))[0]
        result = run_jobs([plain], workers=1, store=None)[plain]
        spec = JobSpec.workload(("mcf", "twolf"), CFG, "icount", COMMITS,
                                warmup=WARMUP, weights=[1, 2])
        twin = JobSpec.workload(("mcf", "twolf"), CFG, "icount", COMMITS,
                                warmup=WARMUP, weights=[1, 2])
        assert spec.cache_key() == twin.cache_key()
        store.put(spec, result)
        batch = run_jobs([spec, twin], workers=1, store=store)
        assert batch.report.unique == 1
        assert batch.report.executed == 0
        assert batch[twin].stp == result.stp

    def test_unpicklable_kwargs_do_not_poison_the_pool(self):
        # An uncacheable spec runs in-process even with a pool active, so
        # the failure surfaced is the policy's own TypeError for the bad
        # kwarg — not a PicklingError that kills the whole batch.
        good = _specs(policies=("icount",))[0]
        bad = JobSpec.workload(("mcf", "twolf"), CFG, "icount", COMMITS,
                               warmup=WARMUP, hook=lambda: None)
        with pytest.raises(TypeError):
            run_jobs([good, bad], workers=4, store=None)

    def test_unhashable_kwargs_do_not_crash_dedup(self):
        from repro.jobs.executor import _key
        a = JobSpec.workload(("mcf", "twolf"), CFG, "icount", COMMITS,
                             warmup=WARMUP, hook=object())
        b = JobSpec.workload(("mcf", "twolf"), CFG, "icount", COMMITS,
                             warmup=WARMUP, hook=object())
        # Uncacheable specs degrade to identity keys: distinct, stable,
        # and never colliding with real content keys.
        assert _key(a) != _key(b)
        assert _key(a) == _key(a)
        assert _key(a).startswith("uncacheable:")

    def test_default_workers_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_workers() == 6
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert default_workers() == 1


class TestCrossProcessReuse:
    def test_results_persist_across_processes(self, tmp_path):
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(tmp_path)
        src = Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        script = (
            "from repro.config import scaled_config\n"
            "from repro.jobs import JobSpec, run_jobs\n"
            "cfg = scaled_config(num_threads=2, scale=16)\n"
            "spec = JobSpec.workload(('mcf', 'twolf'), cfg, 'icount', "
            f"{COMMITS}, warmup={WARMUP})\n"
            "batch = run_jobs([spec], workers=1)\n"
            "print(batch.report.executed)\n")
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == "3"   # 1 workload + 2 baselines
        # This process now resolves the same job purely from disk.
        spec = JobSpec.workload(("mcf", "twolf"), CFG, "icount", COMMITS,
                                warmup=WARMUP)
        batch = run_jobs([spec], workers=1, store=ResultStore(tmp_path))
        assert batch.report.executed == 0
        assert batch.report.cache_hits == 1


class TestExperimentLayerIntegration:
    def test_policy_comparison_second_run_is_pure_cache(self, monkeypatch,
                                                        tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_baseline_cache(disk=False)
        cfg = default_config(num_threads=2)
        workloads = [("mcf", "twolf"), ("swim", "mcf")]
        policies = ("icount", "flush")
        first = compare_policies(workloads, policies, cfg, COMMITS)
        executed_after_first = counters()["executed"]
        clear_baseline_cache(disk=False)   # drop in-process cache only
        second = compare_policies(workloads, policies, cfg, COMMITS)
        assert counters()["executed"] == executed_after_first
        for key, cell in first.items():
            assert second[key].stp == cell.stp
            assert second[key].antt == cell.antt

    def test_repro_jobs_env_is_bit_identical(self, monkeypatch, tmp_path):
        cfg = default_config(num_threads=2)
        workloads = [("mcf", "twolf")]
        policies = ("icount", "mlp_flush")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        clear_baseline_cache(disk=False)
        serial = compare_policies(workloads, policies, cfg, COMMITS)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        monkeypatch.setenv("REPRO_JOBS", "4")
        clear_baseline_cache(disk=False)
        parallel = compare_policies(workloads, policies, cfg, COMMITS)
        for key, cell in serial.items():
            assert parallel[key].stp == cell.stp
            assert parallel[key].antt == cell.antt
            assert parallel[key].ipcs == cell.ipcs

    def test_clear_baseline_cache_clears_disk_store(self, monkeypatch,
                                                    tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        single_thread_baseline("gap", CFG, COMMITS, warmup=WARMUP)
        store = default_store()
        assert store is not None and len(store) == 1
        clear_baseline_cache()
        assert len(store) == 0

    def test_clear_disk_false_keeps_store(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        single_thread_baseline("gap", CFG, COMMITS, warmup=WARMUP)
        clear_baseline_cache(disk=False)
        store = default_store()
        assert store is not None and len(store) == 1

    def test_cache_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert default_store() is None
