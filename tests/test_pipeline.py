"""Directed tests of the SMT pipeline core."""


import pytest

from repro.config import scaled_config
from repro.isa import Instr, Op
from repro.pipeline import SMTCore
from repro.policies import make_policy
from tests.conftest import StubTrace, alu, branch, load, store


def run_stub(instrs, max_commits=2000, cfg=None, policy="icount",
             num_threads=1, max_cycles=500_000, warmup=300):
    cfg = cfg or scaled_config(num_threads=num_threads, scale=16)
    traces = [StubTrace(instrs, base=(t + 1) << 48)
              for t in range(cfg.num_threads)]
    core = SMTCore(cfg, traces, make_policy(policy))
    stats = core.run(max_commits, max_cycles=max_cycles, warmup=warmup)
    return stats, core


class TestThroughput:
    def test_independent_alus_reach_full_width(self):
        """Four independent ALU ops per cycle: IPC should approach 4."""
        instrs = [alu(pc, dest=4 + pc % 4, srcs=(2,)) for pc in range(8)]
        stats, _ = run_stub(instrs, max_commits=4000)
        assert stats.ipc(0) > 3.0

    def test_serial_chain_is_ipc_one(self):
        """A self-dependent chain of 1-cycle ALUs commits ~1 per cycle."""
        instrs = [alu(pc, dest=4, srcs=(4,)) for pc in range(8)]
        stats, _ = run_stub(instrs, max_commits=2000)
        assert 0.8 < stats.ipc(0) <= 1.1

    def test_fp_ops_use_fp_units(self):
        """Two FP units cap independent FP throughput at 2/cycle."""
        instrs = [Instr(pc, Op.FALU, 36 + pc % 4, (34,)) for pc in range(8)]
        stats, _ = run_stub(instrs, max_commits=2000)
        assert 1.5 < stats.ipc(0) <= 2.1

    def test_ldst_units_cap_load_throughput(self):
        """Two load/store units cap cache-hit loads at 2/cycle."""
        instrs = [load(pc, addr=4096 + 64 * (pc % 4), dest=8 + pc % 4,
                       srcs=(2,)) for pc in range(8)]
        stats, _ = run_stub(instrs, max_commits=2000)
        assert 1.4 < stats.ipc(0) <= 2.1


class TestDependences:
    def test_consumer_waits_for_long_load(self):
        """An ALU op reading a missing load's register can't commit until
        the miss returns, so IPC collapses toward mem-latency pacing."""
        far = 1 << 30
        instrs = [
            load(0, addr=far, dest=8, srcs=(2,)),
            alu(1, dest=9, srcs=(8,)),
            alu(2, dest=4, srcs=(2,)),
        ]
        # Every iteration loads a *new* line: always a miss.
        class FreshLoadTrace(StubTrace):
            def get(self, index):
                instr = super().get(index)
                if instr.op is Op.LOAD:
                    iteration = index // self.body_len
                    return Instr(instr.pc, Op.LOAD, instr.dest, instr.srcs,
                                 addr=far + 4096 * iteration)
                return instr

        cfg = scaled_config(num_threads=1, scale=16)
        trace = FreshLoadTrace(instrs, base=1 << 48)
        core = SMTCore(cfg, [trace], make_policy("icount"))
        stats = core.run(300, max_cycles=2_000_000)
        # 3 instructions per ~350-cycle miss => IPC far below 1.
        assert stats.ipc(0) < 0.5


class TestBranches:
    def test_predictable_branch_costs_nothing(self):
        instrs = [alu(pc) for pc in range(7)] + [branch(7, taken=True)]
        stats, core = run_stub(instrs, max_commits=4000)
        assert core.gshare.accuracy > 0.95
        assert stats.ipc(0) > 2.0

    def test_random_branches_hurt(self):
        import random
        rng = random.Random(1)

        class RandomBranchTrace(StubTrace):
            def get(self, index):
                instr = super().get(index)
                if instr.op is Op.BRANCH and instr.pc == 3:
                    from repro.util import uniform_double
                    taken = uniform_double(99, index) < 0.5
                    return Instr(3, Op.BRANCH, None, instr.srcs, taken=taken)
                return instr

        instrs = [alu(0), alu(1), alu(2), branch(3, taken=False),
                  alu(4), alu(5), alu(6), branch(7, taken=True)]
        cfg = scaled_config(num_threads=1, scale=16)
        base_stats, _ = run_stub(instrs, max_commits=3000, cfg=cfg)
        core = SMTCore(cfg, [RandomBranchTrace(instrs, base=1 << 48)],
                       make_policy("icount"))
        rand_stats = core.run(3000)
        assert rand_stats.ipc(0) < base_stats.ipc(0)

    def test_branch_stall_cycles_counted(self):
        class NoisyBranchTrace(StubTrace):
            def get(self, index):
                instr = super().get(index)
                if instr.op is Op.BRANCH:
                    from repro.util import uniform_double
                    return Instr(instr.pc, Op.BRANCH, None, instr.srcs,
                                 taken=uniform_double(5, index) < 0.5)
                return instr

        instrs = [alu(0), alu(1), branch(2, taken=False)]
        cfg = scaled_config(num_threads=1, scale=16)
        core = SMTCore(cfg, [NoisyBranchTrace(instrs, base=1 << 48)],
                       make_policy("icount"))
        stats = core.run(2000)
        assert stats.threads[0].branch_stall_cycles > 0


class TestStoresAndWriteBuffer:
    def test_store_hits_commit_freely(self):
        instrs = [store(0, addr=4096, srcs=(2, 3)), alu(1), alu(2), alu(3)]
        stats, _ = run_stub(instrs, max_commits=2000)
        assert stats.ipc(0) > 1.5

    def test_write_buffer_backpressure_on_store_misses(self):
        """Streams of store misses fill the 8-entry write buffer and block
        commit, capping throughput."""
        far = 1 << 30

        class MissingStoreTrace(StubTrace):
            def get(self, index):
                instr = super().get(index)
                if instr.op is Op.STORE:
                    iteration = index // self.body_len
                    return Instr(instr.pc, Op.STORE, None, instr.srcs,
                                 addr=far + 8192 * iteration + instr.pc * 64)
                return instr

        instrs = [store(pc, addr=0, srcs=(2, 3)) for pc in range(4)]
        cfg = scaled_config(num_threads=1, scale=16)
        core = SMTCore(cfg, [MissingStoreTrace(instrs, base=1 << 48)],
                       make_policy("icount"))
        stats = core.run(500, max_cycles=2_000_000)
        assert stats.ipc(0) < 1.0


class TestSharedResources:
    def test_rob_blocks_on_unresolved_head(self):
        """With a missing load at the window head, the thread's in-flight
        count is bounded by the ROB size."""
        far = 1 << 30

        class OneMissTrace(StubTrace):
            def get(self, index):
                instr = super().get(index)
                if instr.pc == 0:
                    iteration = index // self.body_len
                    return Instr(0, Op.LOAD, 8, (2,),
                                 addr=far + 8192 * iteration)
                return instr

        instrs = [load(0, addr=0, dest=8, srcs=(2,))] + \
                 [alu(pc, dest=4 + pc % 3, srcs=(2,)) for pc in range(1, 16)]
        cfg = scaled_config(num_threads=1, scale=16)
        core = SMTCore(cfg, [OneMissTrace(instrs, base=1 << 48)],
                       make_policy("icount"))
        for _ in range(3000):
            core.step()
            assert core.rob_used <= cfg.rob_size
            assert core.int_regs_used <= cfg.int_rename_regs
            assert core.lsq_used <= cfg.lsq_size

    def test_smt_threads_share_capacity(self, smt2_config):
        instrs = [alu(pc, dest=4 + pc % 4, srcs=(2,)) for pc in range(8)]
        stats, core = run_stub(instrs, max_commits=3000, cfg=smt2_config,
                               num_threads=2)
        # Two compute-bound threads share the 4-wide machine.
        assert stats.ipc(0) + stats.ipc(1) > 3.0
        assert abs(stats.ipc(0) - stats.ipc(1)) < 0.8


class TestDeterminism:
    def test_same_run_is_bit_identical(self):
        from repro.experiments.runner import run_workload
        cfg = scaled_config(num_threads=2, scale=16)
        s1, _ = run_workload(("mcf", "galgel"), cfg, "mlp_flush", 3000,
                             warmup=500)
        s2, _ = run_workload(("mcf", "galgel"), cfg, "mlp_flush", 3000,
                             warmup=500)
        assert s1.cycles == s2.cycles
        assert [t.committed for t in s1.threads] == \
               [t.committed for t in s2.threads]
        assert [t.flushes for t in s1.threads] == \
               [t.flushes for t in s2.threads]


class TestFastForward:
    @pytest.mark.parametrize("workload,policy", [
        (("mcf", "galgel"), "icount"),
        (("mcf", "galgel"), "flush"),
        (("swim", "twolf"), "mlp_flush"),
        (("lucas", "fma3d"), "stall"),
    ])
    def test_fast_forward_is_cycle_exact(self, workload, policy):
        from repro.experiments.runner import run_workload
        results = {}
        for ff in (True, False):
            cfg = scaled_config(num_threads=2, scale=16, fast_forward=ff)
            stats, _ = run_workload(workload, cfg, policy, 2500, warmup=500)
            results[ff] = (stats.cycles,
                           tuple(t.committed for t in stats.threads))
        assert results[True] == results[False]
