"""Tests for the benchmark registry (Table I) and workload mixes (II/III)."""

import pytest

from repro.workloads import (
    BENCHMARKS,
    ILP_BENCHMARKS,
    MLP_BENCHMARKS,
    TABLE_I,
    TWO_THREAD_ILP,
    TWO_THREAD_MLP,
    TWO_THREAD_MIXED,
    FOUR_THREAD_WORKLOADS,
    benchmark,
    workload_category,
)
from repro.workloads.mixes import (
    all_four_thread_workloads,
    all_two_thread_workloads,
)


class TestTableI:
    def test_all_26_spec_benchmarks_present(self):
        assert len(TABLE_I) == 26
        assert len(BENCHMARKS) == 26
        assert set(TABLE_I) == set(BENCHMARKS)

    def test_published_values_spotcheck(self):
        assert TABLE_I["mcf"].lll_per_kilo == 17.36
        assert TABLE_I["mcf"].mlp == 5.17
        assert TABLE_I["fma3d"].mlp_impact == 0.7787
        assert TABLE_I["art"].category == "ILP"
        assert TABLE_I["swim"].category == "MLP"

    def test_category_partition(self):
        assert set(MLP_BENCHMARKS) | set(ILP_BENCHMARKS) == set(TABLE_I)
        assert not set(MLP_BENCHMARKS) & set(ILP_BENCHMARKS)
        assert len(MLP_BENCHMARKS) == 12  # Table I: 12 MLP-intensive programs

    def test_classification_follows_10pct_rule(self):
        for name, row in TABLE_I.items():
            expected = "MLP" if row.mlp_impact > 0.10 else "ILP"
            assert row.category == expected, name

    def test_lookup_helper(self):
        assert benchmark("swim").name == "swim"
        with pytest.raises(KeyError):
            benchmark("doom3")


class TestSpecCalibration:
    """The analytic miss rate of each spec must match Table I."""

    @pytest.mark.parametrize("name", sorted(TABLE_I))
    def test_expected_rate_close_to_paper(self, name):
        spec = BENCHMARKS[name]
        target = TABLE_I[name].lll_per_kilo
        got = spec.expected_lll_per_kilo
        assert abs(got - target) <= max(0.25 * target, 0.06), \
            f"{name}: expected {target}, spec gives {got:.2f}"

    @pytest.mark.parametrize("name", sorted(TABLE_I))
    def test_bodies_are_reasonable(self, name):
        spec = BENCHMARKS[name]
        assert 20 <= spec.body_length <= 300


class TestTableII:
    def test_group_sizes(self):
        assert len(TWO_THREAD_ILP) == 6
        assert len(TWO_THREAD_MLP) == 12
        assert len(TWO_THREAD_MIXED) == 18

    def test_spotcheck_pairs(self):
        assert ("mcf", "swim") in TWO_THREAD_MLP
        assert ("vpr", "mcf") in TWO_THREAD_MIXED
        assert ("vortex", "parser") in TWO_THREAD_ILP

    def test_all_members_are_known_benchmarks(self):
        for pair in all_two_thread_workloads():
            for name in pair:
                assert name in BENCHMARKS

    def test_ilp_group_is_pure_ilp(self):
        for pair in TWO_THREAD_ILP:
            assert workload_category(pair) == "ILP"

    def test_mlp_group_is_pure_mlp(self):
        for pair in TWO_THREAD_MLP:
            assert workload_category(pair) == "MLP"

    def test_mixed_group_is_mixed(self):
        for pair in TWO_THREAD_MIXED:
            assert workload_category(pair) == "MIX"


class TestTableIII:
    def test_workload_counts_by_mlp_members(self):
        assert len(FOUR_THREAD_WORKLOADS[0]) == 5
        assert len(FOUR_THREAD_WORKLOADS[1]) == 6
        assert len(FOUR_THREAD_WORKLOADS[2]) == 10
        assert len(FOUR_THREAD_WORKLOADS[3]) == 6
        assert len(FOUR_THREAD_WORKLOADS[4]) == 3

    def test_total_thirty_workloads(self):
        assert len(all_four_thread_workloads()) == 30

    def test_every_member_is_a_benchmark(self):
        for quad in all_four_thread_workloads():
            assert len(quad) == 4
            for name in quad:
                assert name in BENCHMARKS

    def test_spotcheck(self):
        assert ("applu", "galgel", "swim", "mesa") in FOUR_THREAD_WORKLOADS[4]
        assert ("vortex", "parser", "crafty", "twolf") in FOUR_THREAD_WORKLOADS[0]


class TestWorkloadCategory:
    def test_categories(self):
        assert workload_category(("crafty", "twolf")) == "ILP"
        assert workload_category(("mcf", "swim")) == "MLP"
        assert workload_category(("mcf", "twolf")) == "MIX"
