"""Tests for the declarative run-spec layer (repro.api).

Covers construction-time validation (including unknown policy kwargs),
JSON round-tripping across the full policy × thread-count grid, hash
compatibility with the legacy JobSpec keys (the warm-cache guarantee),
Session execution equivalence with the golden matrix, and the
interval-streaming driver.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.api import (
    IntervalSnapshot,
    RunSpec,
    Session,
    SpecError,
    policy_kwarg_names,
    validate_policy_kwargs,
)
from repro.config import config_from_dict, config_to_dict, scaled_config
from repro.jobs import JobSpec, ResultStore
from repro.perf.golden import GOLDEN_POLICIES
from repro.perf.scenarios import scenario_by_name

CFG2 = scaled_config(num_threads=2, scale=16)
COMMITS = 1500
WARMUP = 300

#: Workload pool sliced per thread count for grid tests.
_POOL = ("mcf", "swim", "mgrid", "vortex", "twolf", "equake", "art", "lucas")
_THREAD_COUNTS = (1, 2, 4, 8)


def _spec(policy="icount", threads=2, **kw):
    kw.setdefault("max_commits", COMMITS)
    kw.setdefault("warmup", WARMUP)
    return RunSpec(workload=_POOL[:threads],
                   config=scaled_config(num_threads=threads, scale=16),
                   policy=policy, **kw)


class TestValidation:
    def test_unknown_benchmark(self):
        with pytest.raises(SpecError, match="unknown benchmark"):
            RunSpec(("mcf", "notabench"), CFG2)

    def test_unknown_policy(self):
        with pytest.raises(SpecError, match="unknown policy"):
            RunSpec(("mcf", "swim"), CFG2, "not_a_policy")

    def test_thread_count_mismatch(self):
        with pytest.raises(SpecError, match="2-thread config"):
            RunSpec(("mcf", "swim"),
                    scaled_config(num_threads=4, scale=16))

    def test_unknown_policy_kwarg_names_policy_and_key(self):
        with pytest.raises(SpecError) as exc:
            RunSpec(("mcf", "swim"), CFG2, "dcra",
                    policy_kwargs={"slow_weight": 2.0, "bogus": 1})
        assert "dcra" in str(exc.value)
        assert "bogus" in str(exc.value)
        assert "slow_weight" in str(exc.value)   # the accepted-kwargs hint

    def test_known_policy_kwarg_accepted(self):
        spec = RunSpec(("mcf", "swim"), CFG2, "dcra",
                       policy_kwargs={"slow_weight": 3.0})
        assert spec.policy_kwargs == (("slow_weight", 3.0),)

    def test_kwargless_policy_rejects_everything(self):
        with pytest.raises(SpecError, match="accepts no kwargs"):
            RunSpec(("mcf", "swim"), CFG2, "icount",
                    policy_kwargs={"anything": 1})

    def test_unserializable_kwarg_rejected_at_construction(self):
        with pytest.raises(SpecError, match="no canonical form"):
            RunSpec(("mcf", "swim"), CFG2, "dcra",
                    policy_kwargs={"slow_weight": object()})

    def test_bad_budgets(self):
        with pytest.raises(SpecError, match="max_commits"):
            _spec(max_commits=0)
        with pytest.raises(SpecError, match="warmup"):
            _spec(warmup=-1)
        with pytest.raises(SpecError, match="seed"):
            _spec(seed=-1)

    def test_wrong_typed_fields_raise_spec_error_not_typeerror(self):
        # A hand-edited JSON document is the realistic source of these.
        doc = _spec().to_doc()
        doc["max_commits"] = "1000"
        with pytest.raises(SpecError, match="max_commits must be an"):
            RunSpec.from_doc(doc)
        doc = _spec().to_doc()
        doc["warmup"] = 1.5
        with pytest.raises(SpecError, match="warmup must be an"):
            RunSpec.from_doc(doc)
        with pytest.raises(SpecError, match="seed"):
            _spec(seed=True)

    def test_policy_kwarg_names(self):
        assert policy_kwarg_names("icount") == frozenset()
        assert "slow_weight" in policy_kwarg_names("dcra")
        with pytest.raises(SpecError):
            policy_kwarg_names("nope")
        validate_policy_kwargs("dcra", {"slow_weight": 2.0})
        with pytest.raises(SpecError):
            validate_policy_kwargs("dcra", {"typo": 1})

    def test_warmup_none_resolves_to_default(self):
        a = RunSpec(("mcf", "swim"), CFG2, max_commits=COMMITS)
        assert isinstance(a.warmup, int) and a.warmup >= 0

    def test_kwarg_container_spellings_normalize(self):
        a = _spec("dcra", policy_kwargs={"slow_weight": 2.0})
        b = _spec("dcra", policy_kwargs=(("slow_weight", 2.0),))
        assert a == b
        assert a.content_hash() == b.content_hash()


class TestRoundTrip:
    @pytest.mark.parametrize("policy", GOLDEN_POLICIES)
    @pytest.mark.parametrize("threads", _THREAD_COUNTS)
    def test_json_roundtrip_grid(self, policy, threads):
        spec = _spec(policy, threads=threads)
        back = RunSpec.from_json(spec.to_json())
        assert back == spec
        assert back.content_hash() == spec.content_hash()

    def test_roundtrip_preserves_kwargs_and_seed(self):
        spec = _spec("dcra", policy_kwargs={"slow_weight": 2.5}, seed=7)
        back = RunSpec.from_json(spec.to_json())
        assert back == spec
        assert back.seed == 7
        assert back.content_hash() == spec.content_hash()

    def test_config_roundtrips_through_dict(self):
        for cfg in (CFG2, scaled_config(num_threads=4, scale=8),
                    scaled_config(num_threads=1, scale=16,
                                  rob_size=128, lsq_size=64)):
            back = config_from_dict(config_to_dict(cfg))
            assert back == cfg
            assert back.cache_key() == cfg.cache_key()

    def test_config_rejects_unknown_keys(self):
        tree = config_to_dict(CFG2)
        tree["bogus_knob"] = 1
        with pytest.raises(TypeError):
            config_from_dict(tree)

    def test_config_rejects_missing_keys(self):
        # A truncated tree must never alias onto the defaults.
        tree = config_to_dict(CFG2)
        del tree["rob_size"]
        with pytest.raises(TypeError, match="rob_size"):
            config_from_dict(tree)
        tree = config_to_dict(CFG2)
        del tree["memory"]["l3"]
        with pytest.raises(TypeError, match="l3"):
            config_from_dict(tree)
        with pytest.raises(TypeError, match="missing"):
            config_from_dict({})

    def test_bad_schema_refused(self):
        doc = _spec().to_doc()
        doc["schema"] = "repro.runspec/999"
        with pytest.raises(SpecError, match="schema"):
            RunSpec.from_doc(doc)
        with pytest.raises(SpecError, match="valid JSON"):
            RunSpec.from_json("{not json")

    def test_unknown_document_field_refused(self):
        doc = _spec().to_doc()
        doc["surprise"] = True
        with pytest.raises(SpecError, match="surprise"):
            RunSpec.from_doc(doc)

    @settings(max_examples=60, deadline=None)
    @given(
        policy_a=st.sampled_from(GOLDEN_POLICIES),
        policy_b=st.sampled_from(GOLDEN_POLICIES),
        threads_a=st.sampled_from((1, 2, 4)),
        threads_b=st.sampled_from((1, 2, 4)),
        commits_a=st.sampled_from((1000, 1500)),
        commits_b=st.sampled_from((1000, 1500)),
        warmup_a=st.sampled_from((0, 300)),
        warmup_b=st.sampled_from((0, 300)),
        seed_a=st.sampled_from((0, 1)),
        seed_b=st.sampled_from((0, 1)),
    )
    def test_hash_equality_implies_spec_equality(
            self, policy_a, policy_b, threads_a, threads_b, commits_a,
            commits_b, warmup_a, warmup_b, seed_a, seed_b):
        a = _spec(policy_a, threads=threads_a, max_commits=commits_a,
                  warmup=warmup_a, seed=seed_a)
        b = _spec(policy_b, threads=threads_b, max_commits=commits_b,
                  warmup=warmup_b, seed=seed_b)
        if a.content_hash() == b.content_hash():
            assert a == b
        # The converse always holds for a content hash:
        if a == b:
            assert a.content_hash() == b.content_hash()
        # And a round-tripped copy never changes identity:
        assert RunSpec.from_json(a.to_json()).content_hash() \
            == a.content_hash()


class TestJobSpecCompatibility:
    def test_content_hash_matches_jobspec_cache_key(self):
        spec = _spec("mlp_flush")
        job = JobSpec.workload(("mcf", "swim"), CFG2, "mlp_flush",
                               COMMITS, warmup=WARMUP)
        assert spec.content_hash() == job.cache_key()
        assert spec.to_job() == job

    def test_kwargs_and_seed_flow_into_the_job(self):
        spec = _spec("dcra", policy_kwargs={"slow_weight": 2.5}, seed=3)
        job = spec.to_job()
        assert job.policy_kwargs == (("slow_weight", 2.5),)
        assert job.seed == 3
        assert all(b.seed == 3 for b in job.baseline_specs())
        assert job.cache_key() == spec.content_hash()

    def test_seed_participates_in_the_hash(self):
        assert _spec().content_hash() != _spec(seed=1).content_hash()
        # seed=0 keys are unchanged from the pre-seed era layout:
        legacy = JobSpec.workload(("mcf", "swim"), CFG2, "icount",
                                  COMMITS, warmup=WARMUP)
        assert _spec().content_hash() == legacy.cache_key()


class TestSession:
    def test_serialized_spec_hits_the_warm_cache(self, tmp_path):
        """Acceptance: serialize -> reload -> execute is zero-simulation."""
        store = ResultStore(tmp_path)
        spec = _spec("flush")
        first = Session(store=store).run(spec)
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        reloaded = RunSpec.from_json(path.read_text())
        session = Session(store=store)
        again = session.run(reloaded)
        assert session.last_report.executed == 0
        assert session.last_report.cache_hits == 1
        assert again.stp == first.stp and again.antt == first.antt

    def test_old_jobs_path_primes_cache_for_new_api(self, tmp_path):
        """Hash stability across the old and new submission paths."""
        from repro.jobs import run_jobs
        store = ResultStore(tmp_path)
        job = JobSpec.workload(("mcf", "swim"), CFG2, "icount", COMMITS,
                               warmup=WARMUP)
        run_jobs([job], workers=1, store=store)
        session = Session(store=store)
        session.run(_spec("icount"))
        assert session.last_report.executed == 0
        assert session.last_report.cache_hits == 1

    def test_run_many_orders_and_dedups(self, tmp_path):
        specs = [_spec("icount"), _spec("flush"), _spec("icount")]
        session = Session(store=ResultStore(tmp_path))
        results = session.run_many(specs)
        assert len(results) == 3
        assert results[0].stp == results[2].stp
        assert session.last_report.unique == 2

    def test_session_matches_evaluate_workload(self, tmp_path):
        from repro.experiments import clear_baseline_cache, evaluate_workload
        result = Session(store=ResultStore(tmp_path)).run(_spec("flush"))
        clear_baseline_cache(disk=False)
        direct = evaluate_workload(("mcf", "swim"), CFG2, "flush",
                                   COMMITS, warmup=WARMUP)
        assert result.stp == direct.stp
        assert result.antt == direct.antt

    def test_simulate_matches_scenario_runner(self):
        """Session.simulate is the path the golden matrix runs on."""
        from repro.perf.golden import snapshot_cell
        from repro.perf.scenarios import Scenario
        sc = Scenario("api_equiv", ("mcf", "swim"), "mlp_stall",
                      commits=1200, warmup=300, quick_commits=1200)
        direct = snapshot_cell(sc)
        stats, core = Session().simulate(sc.to_runspec())
        assert stats.cycles == direct["cycles"]
        assert core.cycle == direct["total_cycles"]
        assert [t.committed for t in stats.threads] \
            == [t["committed"] for t in direct["threads"]]

    def test_seed_changes_the_trace_instance(self):
        from repro.experiments.runner import stable_seed, trace_for
        cfg1 = scaled_config(num_threads=1, scale=16)
        canonical = trace_for("mcf", cfg1)
        seeds = {trace_for("mcf", cfg1, seed=s).seed for s in range(1, 6)}
        # Five distinct deterministic instances, none the canonical one
        # (cycle *counts* may still coincide at tiny budgets — identity
        # lives in the trace seed, which drives every address/branch).
        assert len(seeds) == 5
        assert canonical.seed not in seeds
        # Salted seeds are domain-separated from every canonical stream:
        # no benchmark name's canonical seed can equal a salted one.
        from repro.workloads.registry import BENCHMARKS
        all_canonical = {stable_seed(n) for n in BENCHMARKS}
        assert not (seeds & all_canonical)

    def test_seeded_runs_are_deterministic_and_distinct_in_the_store(
            self, tmp_path):
        store = ResultStore(tmp_path)
        base = Session(store=store).run(_spec("icount"))
        seeded = Session(store=store).run(_spec("icount", seed=12))
        # seed=12 visibly perturbs this cell; both entries coexist in the
        # store under distinct content keys.
        assert seeded.stats.cycles != base.stats.cycles
        assert len(store) == 6    # 2 workloads + 2 baselines each
        again = Session(store=store)
        rerun = again.run(_spec("icount", seed=12))
        assert again.last_report.executed == 0
        assert rerun.stats.cycles == seeded.stats.cycles

    def test_canonical_scenario_expressed_as_runspec(self):
        sc = scenario_by_name("smt2_mlp_stall")
        spec = sc.to_runspec()
        assert spec.workload == sc.workload
        assert spec.policy == sc.policy
        assert spec.max_commits == sc.commits
        assert sc.to_runspec(quick=True).max_commits == sc.quick_commits


class TestIterIntervals:
    def test_streaming_matches_one_shot_run(self):
        spec = _spec("mlp_stall", max_commits=1200, warmup=300)
        snapshots = list(Session().iter_intervals(spec, every=250))
        assert len(snapshots) >= 2
        assert snapshots[-1].done
        assert all(not s.done for s in snapshots[:-1])
        # Monotone progress, 0-based contiguous indices.
        assert [s.index for s in snapshots] == list(range(len(snapshots)))
        for a, b in zip(snapshots, snapshots[1:]):
            assert b.cycles > a.cycles
            assert b.total_committed >= a.total_committed
        # The final snapshot is bit-identical to an uninterrupted run.
        stats, _core = Session().simulate(spec)
        final = snapshots[-1]
        assert final.cycles == stats.cycles
        assert final.committed == tuple(t.committed for t in stats.threads)
        assert final.ipcs == tuple(
            stats.ipc(i) for i in range(len(stats.threads)))
        assert final.total_ipc == stats.total_ipc

    def test_interval_boundaries_respect_every(self):
        spec = _spec("icount", max_commits=1000, warmup=0)
        snaps = list(Session().iter_intervals(spec, every=300))
        for i, snap in enumerate(snaps[:-1]):
            # The leading thread has crossed this interval's boundary but
            # not yet the next one (commit bursts may overshoot a little).
            assert max(snap.committed) >= (i + 1) * 300
        assert max(snaps[-1].committed) >= 1000

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            next(Session().iter_intervals(_spec(), every=0))

    def test_snapshot_is_a_value(self):
        snap = IntervalSnapshot(0, 10, (5, 5), (0.5, 0.5), 1.0, True)
        assert snap.total_committed == 10
        assert json.dumps(snap.committed) == "[5, 5]"
