"""Cross-module property-based tests (hypothesis).

Each class pins one invariant of a core data structure against a reference
model or an algebraic identity, over randomly generated inputs — the
properties the rest of the system silently relies on.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.metrics import antt, harmonic_mean, stp
from repro.predictors import LLSR
from repro.report import format_table, hbar_chart, markdown_table
from repro.workloads import BenchmarkSpec, SlotKind, build_body

# --------------------------------------------------------------------- #
# LLSR vs. reference model
# --------------------------------------------------------------------- #

bits_and_deps = st.lists(
    st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=300)


def reference_distances(length, events):
    """Straight-line reimplementation of the LLSR semantics."""
    register = []  # (bit, pc)
    out = []
    for pc, (is_ll, _dep) in enumerate(events):
        register.append((1 if is_ll else 0, pc if is_ll else -1))
        if len(register) <= length:
            continue
        head_bit, head_pc = register.pop(0)
        if head_bit:
            distance = 0
            for idx in range(len(register) - 1, -1, -1):
                if register[idx][0]:
                    distance = idx + 1
                    break
            out.append((head_pc, distance))
    return out


class TestLLSRModel:
    @settings(max_examples=60, deadline=None)
    @given(bits_and_deps, st.integers(min_value=2, max_value=64))
    def test_matches_reference_model(self, events, length):
        llsr = LLSR(length)
        for pc, (is_ll, _) in enumerate(events):
            llsr.commit(is_ll, pc=pc)
        assert llsr.measured == reference_distances(length, events)

    @settings(max_examples=60, deadline=None)
    @given(bits_and_deps, st.integers(min_value=2, max_value=64))
    def test_dependence_filter_equals_masked_plain_llsr(self, events, length):
        """Filtering dependent loads is exactly masking their bits to 0."""
        aware = LLSR(length, exclude_dependent=True)
        masked = LLSR(length)
        for pc, (is_ll, dep) in enumerate(events):
            aware.commit(is_ll, pc=pc, dependent=dep)
            masked.commit(is_ll and not dep, pc=pc)
        assert aware.measured == masked.measured
        assert aware.suppressed == sum(
            1 for is_ll, dep in events if is_ll and dep)

    @settings(max_examples=60, deadline=None)
    @given(bits_and_deps, st.integers(min_value=2, max_value=64))
    def test_distances_bounded_by_length(self, events, length):
        llsr = LLSR(length)
        for pc, (is_ll, _) in enumerate(events):
            llsr.commit(is_ll, pc=pc)
        assert all(0 <= d <= length for _, d in llsr.measured)
        assert llsr.occupancy <= length


# --------------------------------------------------------------------- #
# STP / ANTT algebra
# --------------------------------------------------------------------- #

cpis = st.lists(st.floats(min_value=0.1, max_value=100.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=8)


class TestMetricsAlgebra:
    @settings(max_examples=100, deadline=None)
    @given(cpis)
    def test_no_interference_limits(self, st_cpis):
        """MT == ST means STP = n (perfect scaling) and ANTT = 1."""
        assert stp(st_cpis, st_cpis) == (len(st_cpis))
        assert antt(st_cpis, st_cpis) == 1.0

    @settings(max_examples=100, deadline=None)
    @given(cpis, st.floats(min_value=1.0, max_value=10.0))
    def test_uniform_slowdown_scales_both_metrics(self, st_cpis, k):
        mt_cpis = [c * k for c in st_cpis]
        n = len(st_cpis)
        assert math.isclose(stp(st_cpis, mt_cpis), n / k, rel_tol=1e-9)
        assert math.isclose(antt(st_cpis, mt_cpis), k, rel_tol=1e-9)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.1, max_value=100.0)),
        min_size=2, max_size=8))
    def test_permutation_invariance(self, pairs):
        st_cpis = [p[0] for p in pairs]
        mt_cpis = [p[1] for p in pairs]
        rev_st, rev_mt = st_cpis[::-1], mt_cpis[::-1]
        assert math.isclose(stp(st_cpis, mt_cpis), stp(rev_st, rev_mt))
        assert math.isclose(antt(st_cpis, mt_cpis), antt(rev_st, rev_mt))

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=1000.0),
                    min_size=1, max_size=10))
    def test_harmonic_mean_below_arithmetic(self, values):
        hm = harmonic_mean(values)
        am = sum(values) / len(values)
        assert hm <= am * (1 + 1e-9)
        assert min(values) * (1 - 1e-9) <= hm <= max(values) * (1 + 1e-9)


# --------------------------------------------------------------------- #
# workload body construction
# --------------------------------------------------------------------- #

specs = st.builds(
    BenchmarkSpec,
    name=st.just("prop"),
    streams=st.integers(min_value=0, max_value=6),
    chase_chains=st.integers(min_value=0, max_value=4),
    chase_dependents=st.integers(min_value=0, max_value=3),
    burst_loads=st.integers(min_value=0, max_value=8),
    random_loads=st.integers(min_value=0, max_value=4),
    hot_loads=st.integers(min_value=0, max_value=6),
    stores=st.integers(min_value=0, max_value=3),
    int_ops=st.integers(min_value=0, max_value=20),
    fp_ops=st.integers(min_value=0, max_value=10),
    cond_branches=st.integers(min_value=0, max_value=3),
    spread=st.floats(min_value=0.0, max_value=1.0),
    fp_data=st.booleans(),
)


class TestBodyConstruction:
    @settings(max_examples=80, deadline=None)
    @given(specs)
    def test_body_length_matches_spec(self, spec):
        body = build_body(spec)
        assert len(body) == spec.body_length

    @settings(max_examples=80, deadline=None)
    @given(specs)
    def test_structure_and_pcs(self, spec):
        body = build_body(spec)
        assert body[0].kind is SlotKind.INDUCTION
        assert body[-1].kind is SlotKind.LOOP_BRANCH
        assert [s.pc for s in body] == list(range(len(body)))

    @settings(max_examples=80, deadline=None)
    @given(specs)
    def test_every_kernel_slot_materializes(self, spec):
        body = build_body(spec)
        counts = {}
        for slot in body:
            counts[slot.kind] = counts.get(slot.kind, 0) + 1
        assert counts.get(SlotKind.STREAM_LOAD, 0) == spec.streams
        assert counts.get(SlotKind.CHASE_LOAD, 0) == spec.chase_chains
        assert counts.get(SlotKind.BURST_LOAD, 0) == spec.burst_loads
        assert counts.get(SlotKind.STORE, 0) == spec.stores
        assert counts.get(SlotKind.COND_BRANCH, 0) == spec.cond_branches


# --------------------------------------------------------------------- #
# report rendering
# --------------------------------------------------------------------- #

_label_alphabet = st.characters(
    min_codepoint=32, max_codepoint=126, blacklist_characters="|")
labels = st.text(alphabet=_label_alphabet, min_size=1, max_size=12)

chart_items = st.lists(
    st.tuples(labels,
              st.floats(min_value=0.0, max_value=1e6,
                        allow_nan=False, allow_infinity=False)),
    min_size=1, max_size=10)


class TestReportProperties:
    @settings(max_examples=80, deadline=None)
    @given(chart_items, st.integers(min_value=4, max_value=60))
    def test_hbar_one_line_per_item_and_bounded_bars(self, items, width):
        chart = hbar_chart(items, width=width)
        lines = chart.splitlines()
        assert len(lines) == len(items)
        for line in lines:
            assert line.count("█") <= width

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.tuples(
        st.text(alphabet=_label_alphabet, max_size=8),
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False)),
        min_size=0, max_size=10))
    def test_markdown_table_row_count(self, rows):
        md = markdown_table(("a", "b"), rows)
        assert len(md.splitlines()) == 2 + len(rows)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.tuples(
        st.text(alphabet=_label_alphabet, min_size=1, max_size=8),
        st.integers(min_value=0, max_value=10**9)),
        min_size=1, max_size=10))
    def test_format_table_columns_align(self, rows):
        table = format_table(("name", "value"), rows)
        lines = table.splitlines()
        assert len({len(line) for line in lines[:2]}) == 1
