"""Tests for the configuration layer (Table IV and scaling helpers)."""

import dataclasses

import pytest

from repro.config import (
    KB,
    MB,
    CacheConfig,
    MemoryConfig,
    SMTConfig,
    TLBConfig,
    paper_baseline,
    scaled_config,
    scaled_memory,
    with_memory_latency,
    with_window_size,
)


class TestCacheConfig:
    def test_paper_l1_geometry(self):
        c = CacheConfig(64 * KB, 2)
        assert c.num_sets == 512
        assert c.num_lines == 1024

    def test_paper_l3_geometry(self):
        c = CacheConfig(4 * MB, 16)
        assert c.num_sets == 4096

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            CacheConfig(0, 2)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 64)

    def test_is_hashable(self):
        assert hash(CacheConfig(64 * KB, 2)) == hash(CacheConfig(64 * KB, 2))


class TestTLBConfig:
    def test_defaults(self):
        t = TLBConfig(512)
        assert t.page_size == 8 * KB

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            TLBConfig(0)


class TestSMTConfigBaseline:
    """The defaults must be exactly Table IV."""

    def test_table_iv_core(self):
        cfg = paper_baseline()
        assert cfg.fetch_width == 4
        assert cfg.fetch_max_threads == 2
        assert cfg.rob_size == 256
        assert cfg.lsq_size == 128
        assert cfg.int_iq_size == 64
        assert cfg.fp_iq_size == 64
        assert cfg.int_rename_regs == 100
        assert cfg.fp_rename_regs == 100
        assert cfg.num_int_alu == 4
        assert cfg.num_ldst == 2
        assert cfg.num_fp == 2
        assert cfg.branch_mispredict_penalty == 11
        assert cfg.gshare_entries == 2048
        assert cfg.btb_entries == 256
        assert cfg.write_buffer_entries == 8

    def test_table_iv_memory(self):
        mem = paper_baseline().memory
        assert mem.l1i.size == 64 * KB and mem.l1i.assoc == 2
        assert mem.l1d.size == 64 * KB and mem.l1d.assoc == 2
        assert mem.l2.size == 512 * KB and mem.l2.assoc == 8
        assert mem.l3.size == 4 * MB and mem.l3.assoc == 16
        assert mem.itlb.entries == 128
        assert mem.dtlb.entries == 512
        assert mem.l2_latency == 11
        assert mem.l3_latency == 35
        assert mem.mem_latency == 350

    def test_prefetcher_config(self):
        pf = paper_baseline().memory.prefetcher
        assert pf.enabled
        assert pf.num_buffers == 8
        assert pf.buffer_entries == 8
        assert pf.stride_table_entries == 2048

    def test_predictor_sizes(self):
        p = paper_baseline().predictors
        assert p.lll_entries == 2048
        assert p.lll_counter_bits == 6
        assert p.mlp_entries == 2048

    def test_llsr_length_follows_threads(self):
        assert paper_baseline(num_threads=1).llsr_length == 256
        assert paper_baseline(num_threads=2).llsr_length == 128
        assert paper_baseline(num_threads=4).llsr_length == 64

    def test_llsr_override(self):
        cfg = paper_baseline(num_threads=1, llsr_length_override=128)
        assert cfg.llsr_length == 128

    def test_rejects_indivisible_rob(self):
        with pytest.raises(ValueError):
            SMTConfig(num_threads=3)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            SMTConfig(num_threads=0)


class TestScaling:
    def test_scaled_memory_shrinks_caches(self):
        mem = scaled_memory(16)
        assert mem.l1d.size == 4 * KB
        assert mem.l2.size == 32 * KB
        assert mem.l3.size == 256 * KB

    def test_scaled_memory_keeps_structure(self):
        mem = scaled_memory(16)
        base = MemoryConfig()
        assert mem.l1d.assoc == base.l1d.assoc
        assert mem.l3.assoc == base.l3.assoc
        assert mem.mem_latency == base.mem_latency

    def test_scaled_tlb_reach_tracks_l3(self):
        mem = scaled_memory(16)
        # TLB reach should stay comparable to L3 capacity, as at full scale.
        assert mem.dtlb.entries * mem.dtlb.page_size == mem.l3.size

    def test_scale_one_is_identity_for_caches(self):
        assert scaled_memory(1).l1d.size == 64 * KB

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            scaled_memory(0)

    def test_scaled_config_thread_count(self):
        assert scaled_config(num_threads=4).num_threads == 4


class TestDesignSpaceHelpers:
    def test_window_scaling_proportional(self):
        cfg = with_window_size(paper_baseline(), 512)
        assert cfg.rob_size == 512
        assert cfg.lsq_size == 256
        assert cfg.int_iq_size == 128
        assert cfg.fp_iq_size == 128
        assert cfg.int_rename_regs == 200
        assert cfg.fp_rename_regs == 200

    def test_window_scaling_down(self):
        cfg = with_window_size(paper_baseline(), 128)
        assert cfg.rob_size == 128
        assert cfg.lsq_size == 64
        assert cfg.int_rename_regs == 50

    def test_memory_latency_override(self):
        cfg = with_memory_latency(paper_baseline(), 800)
        assert cfg.memory.mem_latency == 800
        assert cfg.memory.tlb_miss_penalty == 800
        # the rest is unchanged
        assert cfg.memory.l3_latency == 35

    def test_configs_are_frozen(self):
        cfg = paper_baseline()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.rob_size = 1
