"""Tests for the micro-op instruction model."""

from repro.isa import (
    EXEC_LATENCY,
    FU_CLASS,
    FP_REG_BASE,
    FuClass,
    Instr,
    Op,
    is_fp_reg,
)


class TestOpMapping:
    def test_every_op_has_latency(self):
        for op in Op:
            assert EXEC_LATENCY[op] >= 1

    def test_every_op_has_fu(self):
        for op in Op:
            assert FU_CLASS[op] in FuClass

    def test_memory_ops_use_ldst(self):
        assert FU_CLASS[Op.LOAD] is FuClass.LDST
        assert FU_CLASS[Op.STORE] is FuClass.LDST

    def test_fp_ops_use_fp_units(self):
        assert FU_CLASS[Op.FALU] is FuClass.FP
        assert FU_CLASS[Op.FMUL] is FuClass.FP

    def test_branches_use_int_alu(self):
        assert FU_CLASS[Op.BRANCH] is FuClass.INT_ALU


class TestRegisters:
    def test_fp_reg_boundary(self):
        assert not is_fp_reg(FP_REG_BASE - 1)
        assert is_fp_reg(FP_REG_BASE)


class TestInstr:
    def test_zero_register_filtered_from_sources(self):
        i = Instr(1, Op.IALU, dest=4, srcs=(0, 2, 0))
        assert i.srcs == (2,)

    def test_is_mem(self):
        assert Instr(0, Op.LOAD, 4, (1,), addr=64).is_mem
        assert Instr(0, Op.STORE, None, (1,), addr=64).is_mem
        assert not Instr(0, Op.IALU, 4, (1,)).is_mem

    def test_branch_taken_flag(self):
        assert Instr(0, Op.BRANCH, None, (4,), taken=True).taken
        assert not Instr(0, Op.BRANCH, None, (4,), taken=False).taken

    def test_repr_mentions_op(self):
        assert "LOAD" in repr(Instr(3, Op.LOAD, 4, (1,), addr=128))
