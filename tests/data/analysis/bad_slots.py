"""Known-bad fixture for slots-lint (never imported, only parsed)."""


class NoSlots:
    """Missing __slots__ entirely."""

    def __init__(self):
        self.x = 1


class WrongSlot:
    """Declares __slots__ but assigns an undeclared attribute."""

    __slots__ = ("a",)

    def __init__(self):
        self.a = 1
        self.b = 2


class ChildOfWrongSlot(WrongSlot):
    """Inherited slots resolve; the extra write does not."""

    __slots__ = ("c",)

    def __init__(self):
        super().__init__()
        self.a = 3
        self.c = 4
        self.d = 5
