"""Object-engine half of the known-bad engine-parity fixture (parsed only).

The commit method invokes ``on_ll_detect`` and writes two stat fields;
the SoA twin (bad_soa.py) replaces the method but drops both the hook
and the ``flushes`` write.
"""


class SMTCore:
    def _commit(self, ts):
        self.policy.on_ll_detect(None, ts)
        ts.stats.committed += 1
        ts.stats.flushes += 1
