"""Known-bad fixture for determinism-lint (never imported, only parsed)."""

import random
import time
from datetime import datetime


def stamp():
    return time.time()


def stamp2():
    return datetime.now()


def pick(items):
    return random.choice(items)


def spin(values):
    total = 0
    for v in {1, 2, 3}:
        total += v
    return [x for x in set(values)]
