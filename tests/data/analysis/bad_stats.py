"""Stats half of the known-bad engine-parity fixture (parsed only)."""


class ThreadStats:
    committed: int = 0
    flushes: int = 0
