"""DynInstr half of the known-bad engine-parity fixture (parsed only).

``mystery`` has no SoAView accessor — the slot would silently read as
garbage through the struct-of-arrays view layer.
"""


class DynInstr:
    __slots__ = ("seq", "mystery")


class SoAView:
    @property
    def seq(self):
        return 0
