"""Known-bad fixture for hook-elision-lint (never imported, only parsed).

``on_fetch`` is a no-op default with no marker (every policy would pay
the per-instruction call); ``on_load_complete`` is marked as a default
but its body does real work (the engines would elide a live call).
"""


class FetchPolicy:
    def on_fetch(self, di, ts):
        """Called for every fetched instruction."""

    def on_load_complete(self, di, ts):
        """Does real work despite the marker below."""
        ts.counter += 1


FetchPolicy.on_load_complete._is_default_hook = True
