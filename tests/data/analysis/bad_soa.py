"""SoA half of the known-bad engine-parity fixture (parsed only)."""


class SoACore:
    def _commit(self, ts):
        ts.stats.committed += 1
