"""Known-bad engine fixture for hook-elision-lint (parsed only).

Probes ``_is_default_hook`` on a method no base class ever marks — the
elision can never fire, so the probe is dead weight on every init.
"""


class Core:
    def __init__(self, policy):
        cls = type(policy)
        self._hook = (
            None if getattr(cls.on_never, "_is_default_hook", False)
            else policy.on_never)
