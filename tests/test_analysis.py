"""The repro.analysis static checkers: clean tree + known-bad fixtures.

Two directions: the *meta-test* runs every checker over the real tree
and requires zero findings (``repro lint`` must stay clean — fix the
violation or allowlist it with a written reason, never skip the test),
and the per-checker tests point each checker at a known-bad fixture
under ``tests/data/analysis/`` and require it to flag the planted
violations (a checker that cannot fail its fixture has rotted into a
no-op).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import registry
from repro.analysis import (
    CHECKERS,
    Finding,
    determinism_lint,
    engine_parity,
    hook_elision,
    registry_lint,
    run_checkers,
    slots_lint,
)
from repro.cli import main

DATA = Path(__file__).resolve().parent / "data" / "analysis"


def _messages(findings: list[Finding]) -> str:
    return "\n".join(str(f) for f in findings)


class TestRealTreeClean:
    """The dogfood half: the shipped tree passes its own lints."""

    def test_all_checkers_clean(self):
        findings = run_checkers()
        assert findings == [], _messages(findings)

    def test_lint_cli_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().err

    def test_lint_cli_json_clean(self, capsys):
        assert main(["lint", "--json"]) == 0
        assert capsys.readouterr().out.strip() == "[]"


class TestRegistryKind:
    def test_checkers_registered(self):
        assert set(registry.checkers.names()) == set(CHECKERS)

    def test_unknown_checker_name(self):
        with pytest.raises(registry.RegistryError):
            run_checkers(["not-a-checker"])

    def test_single_checker_selection(self):
        assert run_checkers(["slots-lint"]) == []


class TestFindingValue:
    def test_str_and_dict(self):
        f = Finding("slots-lint", "src/x.py", 3, "boom")
        assert str(f) == "src/x.py:3: [slots-lint] boom"
        assert f.to_dict() == {"checker": "slots-lint", "path": "src/x.py",
                               "line": 3, "message": "boom"}


class TestSlotsLintFixture:
    def test_flags_planted_violations(self):
        findings = slots_lint.check(files=[DATA / "bad_slots.py"])
        text = _messages(findings)
        assert "NoSlots does not declare __slots__" in text
        assert "WrongSlot.b is assigned" in text
        assert "ChildOfWrongSlot.d is assigned" in text
        # Inherited and own slots resolve: a/c are never flagged.
        assert ".a is assigned" not in text
        assert ".c is assigned" not in text


class TestDeterminismLintFixture:
    def test_flags_planted_violations(self):
        findings = determinism_lint.check(
            files=[DATA / "bad_determinism.py"])
        text = _messages(findings)
        assert "time.time" in text
        assert "datetime.now" in text
        assert "random" in text
        assert text.count("unordered set") == 2


class TestEngineParityFixture:
    def test_flags_planted_violations(self):
        findings = engine_parity.check(
            core_path=DATA / "bad_core.py",
            soa_path=DATA / "bad_soa.py",
            dyninstr_path=DATA / "bad_dyninstr.py",
            stats_path=DATA / "bad_stats.py")
        text = _messages(findings)
        assert "'on_ll_detect'" in text          # hook lost in the SoA twin
        assert "'flushes'" in text               # stat write lost
        assert "'committed'" not in text         # written by both
        assert "'mystery'" in text               # slot with no accessor
        assert "'seq'" not in text               # covered by the property


class TestHookElisionFixture:
    def test_flags_planted_violations(self):
        findings = hook_elision.check(
            base_path=DATA / "bad_base.py",
            engine_files=[DATA / "bad_engine.py"])
        text = _messages(findings)
        assert "on_fetch has a no-op default body but no" in text
        assert "on_load_complete is marked _is_default_hook" in text
        assert "probes _is_default_hook on 'on_never'" in text


class TestRegistryLintFixture:
    def test_flags_undocumented_names(self):
        findings = registry_lint.check(doc_path=DATA / "bad_api_doc.md")
        text = _messages(findings)
        # The sparse doc backticks only `icount` and `object`.
        assert "'mlp_flush' is not documented" in text
        assert "'soa' is not documented" in text
        assert "'slots-lint' is not documented" in text
        assert "'icount' is not" not in text
        assert "'object' is not" not in text
