"""Tests for the fully-associative TLB."""

from hypothesis import given, settings, strategies as st

from repro.config import TLBConfig
from repro.memory import TLB


def make_tlb(entries=4, page=8192):
    return TLB(TLBConfig(entries, page))


class TestTLB:
    def test_miss_installs_entry(self):
        t = make_tlb()
        assert not t.lookup(0)
        assert t.lookup(0)

    def test_same_page_hits(self):
        t = make_tlb()
        t.lookup(0)
        assert t.lookup(8191)
        assert not t.lookup(8192)

    def test_lru_eviction(self):
        t = make_tlb(entries=2)
        t.lookup(0 * 8192)
        t.lookup(1 * 8192)
        t.lookup(0 * 8192)          # page 0 MRU
        t.lookup(2 * 8192)          # evicts page 1
        assert t.lookup(0 * 8192)
        assert not t.lookup(1 * 8192)

    def test_miss_rate(self):
        t = make_tlb()
        t.lookup(0)
        t.lookup(0)
        assert t.miss_rate == 0.5

    def test_reset_stats(self):
        t = make_tlb()
        t.lookup(0)
        t.reset_stats()
        assert t.hits == 0 and t.misses == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 30),
                    min_size=1, max_size=300))
    def test_capacity_bound(self, addresses):
        t = make_tlb(entries=8)
        for addr in addresses:
            t.lookup(addr)
        assert len(t._entries) <= 8

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 30),
                    min_size=1, max_size=100))
    def test_repeat_access_always_hits(self, addresses):
        t = make_tlb(entries=8)
        for addr in addresses:
            t.lookup(addr)
            assert t.lookup(addr)
