"""Tests for the composed memory hierarchy timing model."""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.config import scaled_memory
from repro.memory import MemoryHierarchy, ServiceLevel
from repro.memory.hierarchy import mlp_from_intervals


def make_hierarchy(prefetch=False, **overrides):
    mem = scaled_memory(16)
    mem = replace(mem, prefetcher=replace(mem.prefetcher, enabled=prefetch),
                  **overrides)
    return MemoryHierarchy(mem), mem


def warm_tlb(h, addr, cycle=0):
    h.dtlb.lookup(addr)


class TestServiceLevels:
    def test_cold_load_goes_to_memory(self):
        h, mem = make_hierarchy()
        warm_tlb(h, 1 << 20)
        r = h.load(0, pc=1, addr=1 << 20, cycle=100)
        assert r.level is ServiceLevel.MEM
        assert r.long_latency
        assert r.complete_cycle == 100 + mem.mem_latency

    def test_l1_hit_after_fill(self):
        h, mem = make_hierarchy()
        warm_tlb(h, 4096)
        h.load(0, 1, 4096, 0)
        r = h.load(0, 1, 4096, 1000)
        assert r.level is ServiceLevel.L1
        assert not r.long_latency
        assert r.complete_cycle == 1000 + mem.l1_latency

    def test_l2_hit_after_l1_eviction(self):
        h, mem = make_hierarchy()
        # Fill far more lines than L1 holds, all mapping over the L1 sets,
        # then re-access the first: it should be in L2.
        first = 1 << 22
        warm_tlb(h, first)
        h.load(0, 1, first, 0)
        num_l1_lines = mem.l1d.num_lines
        for i in range(1, num_l1_lines + 1):
            addr = first + i * mem.line_size
            warm_tlb(h, addr)
            h.load(0, 1, addr, 1000 + i)
        r = h.load(0, 1, first, 50_000)
        assert r.level is ServiceLevel.L2
        assert r.complete_cycle == 50_000 + mem.l2_latency

    def test_tlb_miss_is_long_latency(self):
        h, mem = make_hierarchy()
        h.load(0, 1, 8192, 0)         # cold TLB and caches
        h.load(0, 1, 8192, 10_000)    # warm caches...
        r = h.load(0, 1, 8192 + (1 << 26), 20_000)  # new page, cold TLB
        assert r.tlb_miss
        assert r.long_latency

    def test_tlb_hit_same_page(self):
        h, _ = make_hierarchy()
        h.load(0, 1, 0, 0)
        r = h.load(0, 1, 64, 10_000)
        assert not r.tlb_miss


class TestMSHRMerging:
    def test_second_load_merges_into_fill(self):
        h, mem = make_hierarchy()
        addr = 1 << 21
        warm_tlb(h, addr)
        first = h.load(0, 1, addr, 100)
        second = h.load(0, 1, addr + 8, 150)
        assert second.level is ServiceLevel.MERGE
        assert second.complete_cycle == first.complete_cycle
        assert not second.long_latency        # not an L3 miss itself

    def test_merge_triggers_policy_when_fill_far_away(self):
        h, mem = make_hierarchy()
        addr = 1 << 21
        warm_tlb(h, addr)
        h.load(0, 1, addr, 100)
        early = h.load(0, 1, addr + 8, 110)
        assert early.trigger                  # fill ~340 cycles away
        late = h.load(0, 1, addr + 16, 100 + mem.mem_latency - 5)
        assert not late.trigger               # fill almost here

    def test_after_fill_completes_line_hits(self):
        h, mem = make_hierarchy()
        addr = 1 << 21
        warm_tlb(h, addr)
        r = h.load(0, 1, addr, 100)
        r2 = h.load(0, 1, addr, r.complete_cycle + 1)
        assert r2.level is ServiceLevel.L1

    def test_mshr_capacity_backpressure(self):
        h, mem = make_hierarchy(mshr_entries=2)
        results = []
        for i in range(4):
            addr = (1 << 21) + i * (1 << 16)
            warm_tlb(h, addr)
            results.append(h.load(0, 1, addr, 100))
        # With 2 MSHRs, the 3rd/4th fills must wait for earlier ones.
        assert results[2].complete_cycle >= results[0].complete_cycle
        assert results[3].complete_cycle >= results[1].complete_cycle


class TestFillCancellation:
    def test_cancel_inflight_fill(self):
        h, mem = make_hierarchy()
        addr = 1 << 21
        warm_tlb(h, addr)
        r = h.load(0, 1, addr, 100)
        line = r.fill_line
        assert line is not None
        assert h.cancel_fill(line, addr, 150)
        refetch = h.load(0, 1, addr, 200)
        assert refetch.level is ServiceLevel.MEM   # misses again

    def test_cancel_after_completion_is_noop(self):
        h, mem = make_hierarchy()
        addr = 1 << 21
        warm_tlb(h, addr)
        r = h.load(0, 1, addr, 100)
        assert not h.cancel_fill(r.fill_line, addr, r.complete_cycle + 10)
        assert h.load(0, 1, addr, r.complete_cycle + 20).level is ServiceLevel.L1

    def test_hit_results_have_no_fill_line(self):
        h, _ = make_hierarchy()
        warm_tlb(h, 0)
        h.load(0, 1, 0, 0)
        assert h.load(0, 1, 0, 1000).fill_line is None


class TestSerializedMode:
    def test_serialization_orders_independent_misses(self):
        h, mem = make_hierarchy()
        hs, mems = make_hierarchy()
        hs.cfg = replace(mems, serialize_long_latency=True)
        hs_real = MemoryHierarchy(replace(mems, serialize_long_latency=True))
        addrs = [(1 << 21) + i * (1 << 16) for i in range(3)]
        for a in addrs:
            warm_tlb(h, a)
            warm_tlb(hs_real, a)
        parallel = [h.load(0, 1, a, 100) for a in addrs]
        serial = [hs_real.load(0, 1, a, 100) for a in addrs]
        assert parallel[2].complete_cycle == parallel[0].complete_cycle
        assert serial[1].complete_cycle >= serial[0].complete_cycle + mems.mem_latency
        assert serial[2].complete_cycle >= serial[1].complete_cycle + mems.mem_latency


class TestLLIntervals:
    def test_intervals_recorded_per_miss(self):
        h, mem = make_hierarchy()
        addr = 1 << 21
        warm_tlb(h, addr)
        h.load(0, 1, addr, 100)
        assert len(h.ll_intervals) == 1
        start, end = h.ll_intervals[0]
        assert end - start == mem.mem_latency

    def test_store_not_recorded_as_ll(self):
        h, _ = make_hierarchy()
        warm_tlb(h, 1 << 21)
        h.store(0, 1, 1 << 21, 100)
        assert h.ll_intervals == []

    def test_per_thread_counts(self):
        h, _ = make_hierarchy()
        for t, addr in ((0, 1 << 21), (1, 1 << 22), (0, 1 << 23)):
            warm_tlb(h, addr)
            h.load(t, 1, addr, 100)
        assert h.ll_loads_per_thread == {0: 2, 1: 1}


class TestMLPFromIntervals:
    def test_empty(self):
        assert mlp_from_intervals([]) == 0.0

    def test_single_interval(self):
        assert mlp_from_intervals([(0, 100)]) == 1.0

    def test_fully_overlapping(self):
        assert mlp_from_intervals([(0, 100), (0, 100), (0, 100)]) == 3.0

    def test_disjoint(self):
        assert mlp_from_intervals([(0, 100), (200, 300)]) == 1.0

    def test_partial_overlap(self):
        # [0,100) and [50,150): busy 150, latency 200 -> 4/3
        assert abs(mlp_from_intervals([(0, 100), (50, 150)]) - 4 / 3) < 1e-9

    def test_degenerate_intervals_ignored(self):
        assert mlp_from_intervals([(5, 5), (10, 7)]) == 0.0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 400)),
                    min_size=1, max_size=40))
    def test_mlp_bounds(self, spans):
        intervals = [(s, s + d) for s, d in spans]
        mlp = mlp_from_intervals(intervals)
        assert 1.0 <= mlp <= len(intervals)


class TestInstructionPath:
    def test_icache_cold_then_hot(self):
        h, mem = make_hierarchy()
        assert h.ifetch(0, 0, 0) > 0
        assert h.ifetch(0, 0, 10_000) == 10_000

    def test_itlb_and_dtlb_are_separate(self):
        h, _ = make_hierarchy()
        h.ifetch(0, 0, 0)
        # The data TLB was never touched.
        assert h.dtlb.hits + h.dtlb.misses == 0
