"""Per-RunSpec engine-backend selection (the ``backends`` registry kind).

Covers the ``backends`` registry entries and core resolution precedence
(a policy's ``core_class`` beats the requested backend), the
``repro.runspec/2`` schema — backend validation, serialization that
omits the default, v1 document compatibility — the content-hash
stability guarantee (default-backend hashes are byte-identical to the
pre-backend scheme, pinned by literal), the baseline mode naming for
per-backend perf sections, and end-to-end execution equivalence of the
two engines through the public :class:`repro.api.Session` entry points.
"""

from __future__ import annotations

import pytest

from repro import registry
from repro.api import RunSpec, Session, SpecError
from repro.config import scaled_config
from repro.experiments.runner import core_for
from repro.jobs import JobSpec
from repro.perf.baselines import BaselineError, mode_name, validate_doc
from repro.pipeline import SMTCore, SoACore
from repro.pipeline import cext as cext_mod
from repro.pipeline.cext import CextCore, cext_status, load_cext_core
from repro.policies import make_policy
from repro.runahead import RunaheadCore

CFG2 = scaled_config(num_threads=2, scale=16)

#: The compiled backend exists only where the lazy toolchain probe and
#: build succeed; everything cext-specific is gated on this.
_CEXT_BUILDABLE = load_cext_core() is not None
needs_cext = pytest.mark.skipif(
    not _CEXT_BUILDABLE, reason="cext backend not buildable here")


def _spec(backend="object", **kw):
    kw.setdefault("max_commits", 800)
    kw.setdefault("warmup", 400)
    return RunSpec(workload=("mcf", "swim"), config=CFG2,
                   policy="mlp_flush", backend=backend, **kw)


class TestRegistry:
    def test_both_engines_registered(self):
        assert set(registry.backends.names()) >= {"object", "soa"}
        assert registry.backends.get("object") is SMTCore
        assert registry.backends.get("soa") is SoACore

    def test_kind_aliases(self):
        assert registry.canonical_kind("backend") == "backends"
        assert registry.canonical_kind("backends") == "backends"
        assert "backends" in registry.KINDS
        assert registry.get("backend", "soa") is SoACore

    def test_unknown_backend_error_names_known(self):
        with pytest.raises(registry.RegistryError) as exc:
            registry.backends.get("simd")
        assert "soa" in str(exc.value)


class TestCextRegistration:
    @needs_cext
    def test_registered_when_buildable(self):
        assert "cext" in registry.backends
        assert registry.backends.get("cext") is CextCore
        assert issubclass(CextCore, SoACore)
        assert cext_status().startswith("available")

    @needs_cext
    def test_core_resolution(self):
        assert core_for(make_policy("mlp_flush"), "cext") is CextCore
        # A policy-owned core still beats the requested backend.
        assert core_for(make_policy("runahead"), "cext") is RunaheadCore

    def test_disabled_probe_omits_the_entry(self, monkeypatch):
        # Simulate a toolchain-less host: with the probe reporting
        # unavailable, a fresh backends registry lists exactly the two
        # pure-Python engines and load_cext_core() degrades to None
        # without raising.
        monkeypatch.setenv("REPRO_CEXT", "0")
        monkeypatch.setattr(cext_mod, "_state", None)
        assert load_cext_core() is None
        assert cext_status() == "unavailable: disabled by REPRO_CEXT=0"
        fresh = registry.Registry("backend", registry._load_backends)
        assert fresh.names() == ("object", "soa")
        monkeypatch.setattr(cext_mod, "_state", None)  # re-probe later

    @needs_cext
    def test_driver_falls_back_without_engine(self, monkeypatch):
        # Belt and braces: a CextCore instantiated while the engine is
        # unavailable must still simulate (via the SoA loop), because a
        # spec naming the backend can outlive the probe result.
        from repro.perf.golden import golden_matrix, snapshot_cell
        cell = min(golden_matrix(), key=lambda sc: sc.num_threads)
        expected = snapshot_cell(cell, backend="soa")
        monkeypatch.setattr(cext_mod, "_state", (None, "forced off"))
        assert snapshot_cell(cell, backend="cext") == expected


class TestCoreResolution:
    def test_default_is_object_engine(self):
        assert core_for(make_policy("icount")) is SMTCore
        assert core_for(make_policy("icount"), "object") is SMTCore

    def test_soa_backend_selects_soa_core(self):
        assert core_for(make_policy("mlp_flush"), "soa") is SoACore

    def test_policy_core_class_beats_backend(self):
        # Runahead is only implemented on its own engine; asking for the
        # soa backend must not desynchronize it.
        assert core_for(make_policy("runahead"), "soa") is RunaheadCore

    def test_unknown_backend_raises(self):
        with pytest.raises(registry.RegistryError):
            core_for(make_policy("icount"), "simd")


class TestSpecValidation:
    def test_unknown_backend_refused(self):
        with pytest.raises(SpecError, match="backend"):
            _spec(backend="simd")

    def test_non_string_backend_refused(self):
        with pytest.raises(SpecError):
            _spec(backend=7)


class TestSerialization:
    def test_default_backend_serializes_away(self):
        doc = _spec().to_doc()
        assert doc["schema"] == "repro.runspec/2"
        assert "backend" not in doc

    def test_non_default_backend_serializes(self):
        doc = _spec(backend="soa").to_doc()
        assert doc["backend"] == "soa"

    @pytest.mark.parametrize("backend", ["object", "soa"])
    def test_json_roundtrip(self, backend):
        spec = _spec(backend=backend)
        again = RunSpec.from_json(spec.to_json())
        assert again == spec
        assert again.backend == backend

    def test_v1_document_still_loads(self):
        doc = _spec().to_doc()
        doc["schema"] = "repro.runspec/1"
        spec = RunSpec.from_doc(doc)
        assert spec == _spec()
        assert spec.backend == "object"

    def test_v1_document_with_backend_refused(self):
        # A /1-stamped doc carrying the /2-only field is mis-stamped,
        # not forward-compatible.
        doc = _spec(backend="soa").to_doc()
        doc["schema"] = "repro.runspec/1"
        with pytest.raises(SpecError, match="backend"):
            RunSpec.from_doc(doc)

    def test_str_names_non_default_backend(self):
        assert str(_spec()).endswith("@800")
        assert str(_spec(backend="soa")).endswith("@800+soa")


class TestHashStability:
    #: ``_spec()``'s content hash under the pre-backend (PR 6) scheme.
    #: The default backend must keep producing exactly this value —
    #: warm result stores and committed hashes must survive the /2 bump.
    _PINNED = ("00e1f993ce0ccb4ff30e7ff366a60e25"
               "277d1f5f43e52911df092b62e7f445a0")

    def test_default_backend_hash_unchanged(self):
        assert _spec().content_hash() == self._PINNED

    def test_non_default_backend_changes_the_hash(self):
        # The engines are bit-identical by contract, but caching a soa
        # run under the object key would mask an equivalence regression.
        assert _spec(backend="soa").content_hash() != self._PINNED

    @needs_cext
    def test_cext_hash_is_its_own_and_stable(self):
        # Its own cache key (never aliases another backend's results)
        # and a pure function of the spec document — the toolchain,
        # compiler version, and probe outcome must not leak into it.
        h = _spec(backend="cext").content_hash()
        assert h != self._PINNED
        assert h != _spec(backend="soa").content_hash()
        assert h == _spec(backend="cext").content_hash()

    @pytest.mark.parametrize("backend", ["object", "soa"])
    def test_content_hash_matches_jobspec_cache_key(self, backend):
        spec = _spec(backend=backend)
        assert spec.content_hash() == JobSpec.from_runspec(spec).cache_key()


class TestBaselineModes:
    def test_mode_names(self):
        assert mode_name(False) == "full"
        assert mode_name(True) == "quick"
        assert mode_name(False, "soa") == "full-soa"
        assert mode_name(True, "soa") == "quick-soa"
        assert mode_name(False, "cext") == "full-cext"
        assert mode_name(True, "cext") == "quick-cext"

    def test_validate_accepts_suffixed_modes(self):
        entry = {"wall_s": 1.0, "cycles": 10, "instructions": 5}
        doc = {"schema": "repro.perf/1",
               "modes": {"full-soa": {"calibration_s": 0.1,
                                      "scenarios": {"s": dict(entry)}}}}
        validate_doc(doc)  # must not raise

    def test_validate_rejects_unknown_mode_base(self):
        doc = {"schema": "repro.perf/1",
               "modes": {"warm-soa": {"calibration_s": 0.1,
                                      "scenarios": {}}}}
        with pytest.raises(BaselineError, match="unknown mode"):
            validate_doc(doc)


class TestGoldenCli:
    def test_regeneration_refuses_non_default_backend(self, tmp_path,
                                                      capsys):
        from repro.perf.golden import main
        out = tmp_path / "golden.json"
        assert main(["--backend", "soa", str(out)]) == 2
        assert not out.exists()
        assert "--check" in capsys.readouterr().err

    def test_check_requires_a_fixture(self, tmp_path, capsys):
        from repro.perf.golden import main
        missing = tmp_path / "nope.json"
        assert main(["--check", "--backend", "soa", str(missing)]) == 1
        assert "no golden fixture" in capsys.readouterr().err


class TestExecutionEquivalence:
    def _small(self, backend):
        return RunSpec(workload=("mcf", "swim"), config=CFG2,
                       policy="mlp_flush", max_commits=600, warmup=200,
                       backend=backend)

    def test_simulate_is_backend_independent(self):
        stats_o, core_o = Session(store=None).simulate(self._small("object"))
        stats_s, core_s = Session(store=None).simulate(self._small("soa"))
        assert type(core_o) is SMTCore
        assert type(core_s) is SoACore
        assert stats_o.cycles == stats_s.cycles
        assert core_o.cycle == core_s.cycle
        assert [t.committed for t in stats_o.threads] == \
            [t.committed for t in stats_s.threads]
        assert [t.fetched for t in stats_o.threads] == \
            [t.fetched for t in stats_s.threads]
        assert stats_o.total_ipc == stats_s.total_ipc

    def test_scored_run_is_backend_independent(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        session = Session()
        r_obj = session.run(self._small("object"))
        r_soa = session.run(self._small("soa"))
        assert r_obj.stp == r_soa.stp
        assert r_obj.antt == r_soa.antt
        assert r_obj.ipcs == r_soa.ipcs
        # The single-thread baselines carry no backend, so the soa run
        # reuses the object run's cached CPI_ST cells.
        assert session.last_report.baselines_cached == 2
        assert session.last_report.baselines_executed == 0

    @needs_cext
    def test_simulate_matches_on_cext(self):
        stats_o, core_o = Session(store=None).simulate(self._small("object"))
        stats_c, core_c = Session(store=None).simulate(self._small("cext"))
        assert type(core_c) is CextCore
        assert stats_o.cycles == stats_c.cycles
        assert [t.committed for t in stats_o.threads] == \
            [t.committed for t in stats_c.threads]
        assert [t.fetched for t in stats_o.threads] == \
            [t.fetched for t in stats_c.threads]
        assert stats_o.total_ipc == stats_c.total_ipc

    def test_iter_intervals_is_backend_independent(self):
        session = Session(store=None)
        snaps_o = list(session.iter_intervals(self._small("object"),
                                              every=200))
        snaps_s = list(session.iter_intervals(self._small("soa"),
                                              every=200))
        assert snaps_o == snaps_s
        assert snaps_o[-1].done
