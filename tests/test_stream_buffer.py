"""Tests for the stride predictor and the stream-buffer prefetcher."""

from repro.config import PrefetcherConfig
from repro.memory import StreamBufferPrefetcher, StridePredictor


class TestStridePredictor:
    def test_learns_constant_stride(self):
        p = StridePredictor()
        for i in range(4):
            p.observe(5, 1000 + 8 * i)
        assert p.confident_stride(5) == 8

    def test_needs_confidence(self):
        p = StridePredictor(confidence_threshold=2)
        p.observe(5, 0)
        p.observe(5, 8)      # first stride observation, confidence 0->?
        assert p.confident_stride(5) is None

    def test_irregular_pattern_not_confident(self):
        p = StridePredictor()
        for addr in (0, 8, 100, 7, 900, 24):
            p.observe(5, addr)
        assert p.confident_stride(5) is None

    def test_zero_stride_rejected(self):
        p = StridePredictor()
        for _ in range(5):
            p.observe(5, 4096)
        assert p.confident_stride(5) is None

    def test_negative_stride(self):
        p = StridePredictor()
        for i in range(5):
            p.observe(5, 10_000 - 64 * i)
        assert p.confident_stride(5) == -64

    def test_relearns_after_change(self):
        p = StridePredictor()
        for i in range(5):
            p.observe(5, 8 * i)
        for i in range(8):
            p.observe(5, 100_000 + 128 * i)
        assert p.confident_stride(5) == 128


def make_prefetcher(buffers=2, entries=4, mem_latency=100):
    cfg = PrefetcherConfig(num_buffers=buffers, buffer_entries=entries)
    return StreamBufferPrefetcher(cfg, line_size=64, mem_latency=mem_latency)


def train_stride(pf, pc, base, stride, count=4):
    for i in range(count):
        pf.observe_load(pc, base + stride * i)


class TestStreamBuffer:
    def test_no_allocation_without_confidence(self):
        pf = make_prefetcher()
        assert pf.demand_miss(9, 4096, 0) is None
        assert pf.allocations == 0

    def test_allocation_then_hits_next_lines(self):
        pf = make_prefetcher()
        train_stride(pf, 5, 0, 8)
        assert pf.demand_miss(5, 64, 0) is None       # allocates
        assert pf.allocations == 1
        ready = pf.demand_miss(5, 128, 500)           # next line: buffered
        assert ready is not None

    def test_hit_supplies_after_fill_latency(self):
        pf = make_prefetcher(mem_latency=100)
        train_stride(pf, 5, 0, 8)
        pf.demand_miss(5, 64, 0)
        ready = pf.demand_miss(5, 128, 10)            # fill still in flight
        assert ready == 100                           # issued at 0 +100

    def test_buffer_slides_forward(self):
        pf = make_prefetcher(entries=4, mem_latency=10)
        train_stride(pf, 5, 0, 8)
        pf.demand_miss(5, 64, 0)
        for step in range(2, 8):
            ready = pf.demand_miss(5, 64 * step, 1000 * step)
            assert ready is not None, f"line {step} not prefetched"

    def test_usefulness_replacement_protects_hitting_streams(self):
        pf = make_prefetcher(buffers=1, entries=4, mem_latency=10)
        train_stride(pf, 5, 0, 8)
        train_stride(pf, 9, 1 << 20, 8)
        pf.demand_miss(5, 64, 0)                      # stream A allocates
        assert pf.demand_miss(5, 128, 100) is not None  # A hits
        pf.demand_miss(9, (1 << 20) + 64, 200)        # B wants the buffer
        # A is producing hits and keeps its slot; B is not allocated.
        assert pf.demand_miss(5, 192, 300) is not None
        # Once A has been idle past the reclaim window, B finally wins.
        pf.demand_miss(9, (1 << 20) + 64, 2000)       # reallocates to B
        assert pf.demand_miss(9, (1 << 20) + 128, 2100) is not None

    def test_hit_rate_stat(self):
        pf = make_prefetcher()
        train_stride(pf, 5, 0, 8)
        pf.demand_miss(5, 64, 0)
        pf.demand_miss(5, 128, 500)
        assert 0.0 < pf.hit_rate <= 1.0

    def test_large_stride_allocates_line_steps(self):
        pf = make_prefetcher(entries=4, mem_latency=10)
        train_stride(pf, 5, 0, 256)                   # 4-line stride
        pf.demand_miss(5, 1024, 0)
        assert pf.demand_miss(5, 1024 + 256, 100) is not None
