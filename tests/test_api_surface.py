"""The stable-surface snapshot: repro.api / repro.registry may not drift.

``tests/data/api_surface.txt`` is the committed enumeration of the
public API layer (exports, class methods, dataclass fields).  If this
test fails you either broke the stable surface by accident — undo — or
changed it intentionally, in which case regenerate the snapshot:

    PYTHONPATH=src python scripts/dump_api_surface.py \
        > tests/data/api_surface.txt

CI runs the same diff as a standalone job (see ``api-surface`` in
``.github/workflows/ci.yml``).
"""

from __future__ import annotations

from pathlib import Path
import sys

_REPO = Path(__file__).resolve().parents[1]
_SNAPSHOT = _REPO / "tests" / "data" / "api_surface.txt"


def _collect() -> list[str]:
    sys.path.insert(0, str(_REPO / "scripts"))
    try:
        import dump_api_surface
        return dump_api_surface.collect()
    finally:
        sys.path.pop(0)


def test_api_surface_matches_snapshot():
    current = _collect()
    committed = _SNAPSHOT.read_text().splitlines()
    added = sorted(set(current) - set(committed))
    removed = sorted(set(committed) - set(current))
    assert current == committed, (
        "public API surface drifted from tests/data/api_surface.txt\n"
        f"  added:   {added}\n"
        f"  removed: {removed}\n"
        "If intentional, regenerate: PYTHONPATH=src python "
        "scripts/dump_api_surface.py > tests/data/api_surface.txt")
