"""Report rendering: charts and tables."""

import pytest

from repro.report import (
    cdf_chart,
    format_table,
    grouped_hbar_chart,
    hbar_chart,
    markdown_table,
)


class TestHBarChart:
    def test_longest_bar_belongs_to_max(self):
        chart = hbar_chart([("small", 1.0), ("big", 4.0)], width=8)
        lines = chart.splitlines()
        assert lines[1].count("█") == 8
        assert lines[0].count("█") == 2

    def test_values_are_printed(self):
        chart = hbar_chart([("a", 1.234)], fmt="{:.2f}")
        assert "1.23" in chart

    def test_title_is_first_line(self):
        chart = hbar_chart([("a", 1.0)], title="STP")
        assert chart.splitlines()[0] == "STP"

    def test_empty_input(self):
        assert hbar_chart([]) == "(no data)"

    def test_zero_and_negative_values_render_no_bar(self):
        chart = hbar_chart([("zero", 0.0), ("pos", 1.0)])
        zero_line = chart.splitlines()[0]
        assert "█" not in zero_line

    def test_labels_are_aligned(self):
        chart = hbar_chart([("x", 1.0), ("longname", 2.0)])
        lines = chart.splitlines()
        bars = [line.index("█") for line in lines if "█" in line]
        assert len(set(bars)) == 1


class TestGroupedHBarChart:
    def test_groups_and_series_listed(self):
        chart = grouped_hbar_chart(
            {"mcf-swim": {"icount": 1.0, "mlp_flush": 1.4},
             "vpr-mcf": {"icount": 1.1, "mlp_flush": 1.3}})
        assert "mcf-swim:" in chart
        assert "vpr-mcf:" in chart
        assert chart.count("icount") == 2

    def test_scaling_is_global_across_groups(self):
        chart = grouped_hbar_chart(
            {"a": {"p": 4.0}, "b": {"p": 1.0}}, width=8)
        lines = [l for l in chart.splitlines() if "█" in l]
        assert lines[0].count("█") == 8
        assert lines[1].count("█") == 2

    def test_empty(self):
        assert grouped_hbar_chart({}) == "(no data)"


class TestCDFChart:
    def test_legend_and_axis(self):
        chart = cdf_chart({"mcf": [10.0, 50.0, 120.0]}, width=20, height=6)
        assert "* mcf" in chart
        assert "120" in chart

    def test_short_distance_series_saturates_early(self):
        chart = cdf_chart({"short": [1.0] * 10, "long": [100.0] * 10},
                          width=20, height=6)
        top_row = chart.splitlines()[0]
        # 'short' reaches 100% on the far left, 'long' only at the end.
        assert top_row.index("*") < top_row.index("o")

    def test_empty_series_dropped(self):
        assert cdf_chart({"none": []}) == "(no data)"

    def test_x_label_shown(self):
        chart = cdf_chart({"a": [1.0]}, x_label="instructions")
        assert "instructions" in chart


class TestFormatTable:
    def test_alignment_and_floats(self):
        table = format_table(("name", "stp"), [("mcf", 1.5), ("swim", 2.0)])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "1.500" in table
        assert "2.000" in table

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_rejects_bad_aligns(self):
        with pytest.raises(ValueError):
            format_table(("a",), [("x",)], aligns="<>")

    def test_wide_cells_stretch_columns(self):
        table = format_table(("h",), [("a-very-wide-cell",)])
        header, sep, row = table.splitlines()
        assert len(sep) == len("a-very-wide-cell")


class TestMarkdownTable:
    def test_header_separator_and_rows(self):
        md = markdown_table(("name", "value"), [("x", 1.0)])
        lines = md.splitlines()
        assert lines[0] == "| name | value |"
        assert lines[1] == "| --- | ---: |"
        assert lines[2] == "| x | 1.000 |"

    def test_explicit_aligns(self):
        md = markdown_table(("a", "b"), [], aligns="<<")
        assert md.splitlines()[1] == "| --- | --- |"

    def test_rejects_bad_aligns(self):
        with pytest.raises(ValueError):
            markdown_table(("a",), [], aligns="<>")
