"""Tests for the set-associative cache model."""

from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.memory import Cache


def make_cache(size=1024, assoc=2, line=64):
    return Cache(CacheConfig(size, assoc, line))


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        assert not c.lookup(0)
        c.install(0)
        assert c.lookup(0)

    def test_same_line_offsets_hit(self):
        c = make_cache()
        c.install(128)
        assert c.lookup(128 + 63)
        assert not c.lookup(128 + 64)

    def test_miss_does_not_install(self):
        c = make_cache()
        c.lookup(0)
        assert not c.probe(0)

    def test_stats_count(self):
        c = make_cache()
        c.lookup(0)
        c.install(0)
        c.lookup(0)
        assert c.misses == 1
        assert c.hits == 1
        assert c.accesses == 2
        assert c.miss_rate == 0.5

    def test_reset_stats(self):
        c = make_cache()
        c.lookup(0)
        c.reset_stats()
        assert c.misses == 0 and c.hits == 0


class TestReplacement:
    def test_lru_eviction_within_set(self):
        c = make_cache(size=256, assoc=2, line=64)  # 2 sets
        # Lines 0, 2, 4 all map to set 0.
        c.install(0)
        c.install(2 * 64)
        c.lookup(0)               # line 0 is now MRU
        victim = c.install(4 * 64)
        assert victim == 2        # line 2 was LRU
        assert c.probe(0)
        assert not c.probe(2 * 64)

    def test_touch_refreshes_recency(self):
        c = make_cache(size=256, assoc=2, line=64)
        c.install(0)
        c.install(2 * 64)
        c.touch(0)                # refresh without counting an access
        accesses_before = c.accesses
        c.install(4 * 64)
        assert c.accesses == accesses_before
        assert c.probe(0)
        assert not c.probe(2 * 64)

    def test_touch_absent_line_is_noop(self):
        c = make_cache()
        c.touch(0)
        assert not c.probe(0)

    def test_invalidate(self):
        c = make_cache()
        c.install(0)
        assert c.invalidate(0)
        assert not c.probe(0)
        assert not c.invalidate(0)

    def test_set_isolation(self):
        c = make_cache(size=256, assoc=2, line=64)
        # Fill set 0 beyond capacity; set 1 must be untouched.
        c.install(1 * 64)  # set 1
        for i in range(0, 8, 2):
            c.install(i * 64)
        assert c.probe(1 * 64)


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4095), min_size=1,
                    max_size=300))
    def test_occupancy_never_exceeds_capacity(self, addresses):
        c = make_cache(size=512, assoc=2, line=64)
        for addr in addresses:
            if not c.lookup(addr):
                c.install(addr)
        total = sum(len(s) for s in c._sets)
        assert total <= c.cfg.num_lines
        for s in c._sets:
            assert len(s) <= c.cfg.assoc

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=200))
    def test_most_recent_install_always_present(self, addresses):
        c = make_cache(size=512, assoc=4, line=64)
        for addr in addresses:
            c.install(addr)
            assert c.probe(addr)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                    max_size=200))
    def test_fully_assoc_keeps_hottest(self, addresses):
        # A direct check of LRU: with capacity k, the k most recently
        # installed distinct lines are all present.
        c = Cache(CacheConfig(4 * 64, 4, 64))  # one set, 4 ways
        for addr in addresses:
            c.install(addr)
        recent = []
        for addr in reversed(addresses):
            line = addr >> 6
            if line not in recent:
                recent.append(line)
            if len(recent) == 4:
                break
        for line in recent:
            assert c.probe(line << 6)
