"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import scaled_config
from repro.isa import Instr, Op
from repro.testing import isolated_result_store


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_store(tmp_path_factory):
    """Pin the repro.jobs engine environment for the whole session.

    Keeps the suite hermetic in both directions: tests never touch the
    user's ``~/.cache/repro``, and ambient ``REPRO_CACHE=0`` /
    ``REPRO_JOBS`` settings can't flip the behaviors the tests assert.
    Shares its save/apply/restore logic with benchmarks/conftest.py via
    :mod:`repro.testing`.
    """
    with isolated_result_store(str(tmp_path_factory.mktemp("repro-cache"))):
        yield


class StubTrace:
    """A minimal trace for directed pipeline tests.

    Wraps a finite list of instructions and repeats it cyclically (the
    pipeline never expects a trace to end).  PC addresses place the code in
    a small dedicated region so the I-cache behaves as for real traces.
    """

    def __init__(self, instrs, base: int = 0):
        if not instrs:
            raise ValueError("need at least one instruction")
        self.instrs = list(instrs)
        self.base = base
        self.body_len = len(self.instrs)

    def get(self, index: int) -> Instr:
        return self.instrs[index % self.body_len]

    def pc_address(self, pc: int) -> int:
        return self.base + pc * 4


def alu(pc: int, dest: int = 4, srcs=(2,)) -> Instr:
    return Instr(pc, Op.IALU, dest, tuple(srcs))


def load(pc: int, addr: int, dest: int = 5, srcs=(1,)) -> Instr:
    return Instr(pc, Op.LOAD, dest, tuple(srcs), addr=addr)


def store(pc: int, addr: int, srcs=(3, 1)) -> Instr:
    return Instr(pc, Op.STORE, None, tuple(srcs), addr=addr)


def branch(pc: int, taken: bool, srcs=(4,)) -> Instr:
    return Instr(pc, Op.BRANCH, None, tuple(srcs), taken=taken)


@pytest.fixture
def quick_config():
    """A small, fast config for directed pipeline tests."""
    return scaled_config(num_threads=1, scale=16)


@pytest.fixture
def smt2_config():
    return scaled_config(num_threads=2, scale=16)
