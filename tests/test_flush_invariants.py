"""Flush correctness: resource accounting, rename undo, refetch identity.

These tests exercise the most delicate part of the pipeline: policy-
triggered squashes must return *exactly* the resources the squashed
instructions held and restore the rename map so refetched code sees the
same producers.
"""

import pytest

from repro.config import scaled_config
from repro.experiments.runner import trace_for
from repro.pipeline import SMTCore
from repro.policies import make_policy


def occupancy_ground_truth(core):
    """Recompute global resource usage from the per-thread windows."""
    rob = lsq = iq = fq = int_regs = fp_regs = 0
    for ts in core.threads:
        for di in ts.window:
            assert not di.squashed, "squashed instruction left in window"
            rob += 1
            if di.is_load or di.is_store:
                lsq += 1
            if di.in_iq:
                if di.iq_is_fp:
                    fq += 1
                else:
                    iq += 1
            if di.has_dest:
                if di.dest_fp:
                    fp_regs += 1
                else:
                    int_regs += 1
    return rob, lsq, iq, fq, int_regs, fp_regs


def check_invariants(core):
    rob, lsq, iq, fq, int_regs, fp_regs = occupancy_ground_truth(core)
    assert core.rob_used == rob
    assert core.lsq_used == lsq
    assert core.iq_used == iq
    assert core.fq_used == fq
    assert core.int_regs_used == int_regs
    assert core.fp_regs_used == fp_regs
    for ts in core.threads:
        assert ts.rob_count == len(ts.window)
        fe_count = len(ts.fe_queue)
        iq_count = sum(1 for di in ts.window if di.in_iq)
        assert ts.icount == fe_count + iq_count


POLICIES_WITH_FLUSH = ["flush", "mlp_flush", "binary_mlp_flush",
                       "mlp_flush_rs", "binary_mlp_flush_rs"]


class TestAccountingUnderFlush:
    @pytest.mark.parametrize("policy", POLICIES_WITH_FLUSH)
    def test_resource_accounting_stays_exact(self, policy):
        cfg = scaled_config(num_threads=2, scale=16)
        traces = [trace_for(n, cfg, slot=i)
                  for i, n in enumerate(("mcf", "swim"))]
        core = SMTCore(cfg, traces, make_policy(policy))
        for step in range(6000):
            core.step()
            if step % 97 == 0:
                check_invariants(core)
        assert sum(t.flushes for t in core.stats.threads) > 0, \
            "test never exercised a flush"
        check_invariants(core)

    def test_rename_map_points_to_live_or_committed(self):
        cfg = scaled_config(num_threads=2, scale=16)
        traces = [trace_for(n, cfg, slot=i)
                  for i, n in enumerate(("mcf", "galgel"))]
        core = SMTCore(cfg, traces, make_policy("mlp_flush"))
        for step in range(4000):
            core.step()
            if step % 201 == 0:
                for ts in core.threads:
                    for reg, prod in enumerate(ts.rename_map):
                        if prod is not None and not prod.completed:
                            assert not prod.squashed, \
                                "rename map references a squashed producer"

    def test_flush_rewinds_fetch_index(self):
        cfg = scaled_config(num_threads=1, scale=16)
        trace = trace_for("swim", cfg)
        core = SMTCore(cfg, [trace], make_policy("icount"))
        for _ in range(300):
            core.step()
        ts = core.threads[0]
        before = ts.fetch_index
        target = max(0, before - 50)
        squashed = core.flush_thread(ts, target)
        assert ts.fetch_index == target + 1
        assert squashed > 0
        assert ts.stats.flushes == 1
        check_invariants(core)

    def test_flush_nothing_younger_is_a_noop_squash(self):
        cfg = scaled_config(num_threads=1, scale=16)
        trace = trace_for("gap", cfg)
        core = SMTCore(cfg, [trace], make_policy("icount"))
        for _ in range(200):
            core.step()
        ts = core.threads[0]
        squashed = core.flush_thread(ts, ts.fetch_index + 100)
        assert squashed == 0

    def test_progress_resumes_after_flush(self):
        cfg = scaled_config(num_threads=1, scale=16)
        trace = trace_for("mcf", cfg)
        core = SMTCore(cfg, [trace], make_policy("icount"))
        for _ in range(500):
            core.step()
        ts = core.threads[0]
        committed_before = ts.stats.committed
        core.flush_thread(ts, max(0, ts.fetch_index - 80))
        for _ in range(3000):
            core.step()
        assert ts.stats.committed > committed_before + 100


class TestSquashFillCancellation:
    def test_cancelled_fills_serialize_the_flushed_thread(self):
        """With cancel_squashed_fills, a flushed thread's refetched loads
        miss again (the paper's serialization premise), so the same work
        takes longer than with modern fill-survives semantics."""
        from repro.experiments.runner import run_single
        from dataclasses import replace

        def cycles(cancel):
            cfg = scaled_config(num_threads=1, scale=16)
            cfg = replace(cfg, memory=replace(
                cfg.memory, cancel_squashed_fills=cancel))
            stats = run_single("swim", cfg, 4000, policy="flush",
                               warmup=500)
            return stats.cycles

        assert cycles(True) > cycles(False)
