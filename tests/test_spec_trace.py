"""Tests for benchmark specs, body construction, and synthetic traces."""

from hypothesis import given, settings, strategies as st
import pytest

from repro.config import scaled_memory
from repro.isa import Op
from repro.workloads import (
    BENCHMARKS,
    BenchmarkSpec,
    SlotKind,
    SyntheticTrace,
    build_body,
)

MEM = scaled_memory(16)


def spec_strategy():
    return st.builds(
        BenchmarkSpec,
        name=st.just("gen"),
        fp_data=st.booleans(),
        streams=st.integers(0, 8),
        stream_stagger=st.floats(0.0, 1.0),
        chase_chains=st.integers(0, 4),
        chase_every=st.integers(1, 8),
        chase_dependents=st.integers(0, 3),
        burst_loads=st.integers(0, 6),
        burst_every=st.integers(1, 50),
        random_loads=st.integers(0, 3),
        hot_loads=st.integers(0, 8),
        stores=st.integers(0, 4),
        stream_stores=st.integers(0, 2),
        int_ops=st.integers(0, 30),
        fp_ops=st.integers(0, 30),
        cond_branches=st.integers(0, 6),
        spread=st.floats(0.0, 1.0),
    )


class TestBodyConstruction:
    def test_body_length_property_matches_built_body(self):
        for name, spec in BENCHMARKS.items():
            assert len(build_body(spec)) == spec.body_length, name

    def test_body_starts_with_induction_ends_with_loop_branch(self):
        body = build_body(BENCHMARKS["swim"])
        assert body[0].kind is SlotKind.INDUCTION
        assert body[-1].kind is SlotKind.LOOP_BRANCH

    def test_pcs_are_sequential(self):
        body = build_body(BENCHMARKS["mcf"])
        assert [s.pc for s in body] == list(range(len(body)))

    def test_slot_population_matches_spec(self):
        spec = BENCHMARKS["equake"]
        body = build_body(spec)
        count = lambda kind: sum(1 for s in body if s.kind is kind)
        assert count(SlotKind.STREAM_LOAD) == spec.streams
        assert count(SlotKind.CHASE_LOAD) == spec.chase_chains
        assert count(SlotKind.HOT_LOAD) == spec.hot_loads
        assert count(SlotKind.STORE) == spec.stores
        assert count(SlotKind.COND_BRANCH) == spec.cond_branches

    def test_chase_dependents_consume_chain_register(self):
        spec = BENCHMARKS["mcf"]
        body = build_body(spec)
        chains = {s.dest for s in body if s.kind is SlotKind.CHASE_LOAD}
        dependents = [s for s in body
                      if s.kind is SlotKind.CONSUMER and s.srcs[0] in chains]
        assert len(dependents) == spec.chase_chains * spec.chase_dependents

    def test_rejects_invalid_spread(self):
        with pytest.raises(ValueError):
            BenchmarkSpec("x", spread=1.5)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            BenchmarkSpec("x", streams=-1)

    @settings(max_examples=60, deadline=None)
    @given(spec_strategy())
    def test_arbitrary_specs_build_consistent_bodies(self, spec):
        body = build_body(spec)
        assert len(body) == spec.body_length
        # No slot lost in placement, pcs sequential.
        assert [s.pc for s in body] == list(range(len(body)))
        # Dests stay within the architectural register space.
        for s in body:
            if s.dest is not None:
                assert 0 <= s.dest < 64


class TestSyntheticTrace:
    def test_stateless_regeneration(self):
        trace = SyntheticTrace(BENCHMARKS["swim"], MEM, seed=1)
        a = [trace.get(i) for i in range(500)]
        b = [trace.get(i) for i in range(500)]
        for x, y in zip(a, b):
            assert x.pc == y.pc and x.op == y.op and x.addr == y.addr \
                and x.taken == y.taken

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_rewind_identity(self, index):
        """Regenerating after reading ahead gives identical instructions —
        the property pipeline flushes rely on."""
        trace = SyntheticTrace(BENCHMARKS["mcf"], MEM, seed=3)
        first = trace.get(index)
        trace.get(index + 500)
        again = trace.get(index)
        assert first.pc == again.pc
        assert first.addr == again.addr
        assert first.taken == again.taken

    def test_seed_changes_randomized_slots(self):
        t1 = SyntheticTrace(BENCHMARKS["art"], MEM, seed=1)
        t2 = SyntheticTrace(BENCHMARKS["art"], MEM, seed=2)
        diffs = sum(
            1 for i in range(2000)
            if t1.get(i).addr != t2.get(i).addr
            and t1.get(i).op is Op.LOAD)
        assert diffs > 0

    def test_slot_independent_content(self):
        """The same program in a different hardware-thread slot executes
        the same instruction stream (modulo address/pc bases)."""
        t0 = SyntheticTrace(BENCHMARKS["swim"], MEM, seed=7,
                            base=1 << 48, pc_base=1 << 20)
        t1 = SyntheticTrace(BENCHMARKS["swim"], MEM, seed=7,
                            base=2 << 48, pc_base=2 << 20)
        for i in range(1000):
            a, b = t0.get(i), t1.get(i)
            assert a.op == b.op
            assert a.pc - (1 << 20) == b.pc - (2 << 20)
            if a.addr is not None:
                assert a.addr - (1 << 48) == b.addr - (2 << 48)
            assert a.taken == b.taken

    def test_stream_loads_advance_by_stride(self):
        spec = BENCHMARKS["swim"]
        trace = SyntheticTrace(spec, MEM, seed=1)
        stream_pcs = [s.pc for s in trace.body
                      if s.kind is SlotKind.STREAM_LOAD]
        pc = stream_pcs[0]
        addrs = []
        for i in range(3 * trace.body_len):
            instr = trace.get(i)
            if instr.pc == pc:
                addrs.append(instr.addr)
        assert addrs[1] - addrs[0] == spec.stream_stride
        assert addrs[2] - addrs[1] == spec.stream_stride

    def test_hot_loads_stay_in_hot_region(self):
        trace = SyntheticTrace(BENCHMARKS["vortex"], MEM, seed=1)
        hot_pcs = {s.pc for s in trace.body if s.kind is SlotKind.HOT_LOAD}
        lo = trace.hot_base
        hi = lo + trace.hot_lines * 64
        for i in range(5 * trace.body_len):
            instr = trace.get(i)
            if instr.pc in hot_pcs:
                assert lo <= instr.addr < hi

    def test_burst_fires_on_schedule(self):
        spec = BENCHMARKS["apsi"]
        trace = SyntheticTrace(spec, MEM, seed=1)
        burst_pcs = {s.pc for s in trace.body if s.kind is SlotKind.BURST_LOAD}
        burst_lo = trace.burst_base
        burst_hi = burst_lo + trace.burst_lines * 64
        for iteration in (0, spec.burst_every, 2 * spec.burst_every):
            for pos in range(trace.body_len):
                instr = trace.get(iteration * trace.body_len + pos)
                if instr.pc in burst_pcs:
                    assert burst_lo <= instr.addr < burst_hi
        # Off-schedule iterations go to the hot region instead.
        for pos in range(trace.body_len):
            instr = trace.get((1) * trace.body_len + pos)
            if instr.pc in burst_pcs:
                assert not (burst_lo <= instr.addr < burst_hi)

    def test_chase_is_serial_within_chain(self):
        trace = SyntheticTrace(BENCHMARKS["mcf"], MEM, seed=1)
        chase = [s for s in trace.body if s.kind is SlotKind.CHASE_LOAD]
        for slot in chase:
            assert slot.srcs == (slot.dest,)

    def test_regions_do_not_overlap(self):
        trace = SyntheticTrace(BENCHMARKS["equake"], MEM, seed=1)
        regions = [(trace.hot_base, trace.hot_lines * 64),
                   (trace.burst_base, trace.burst_lines * 64),
                   (trace.random_base, trace.random_lines * 64)]
        regions += [(b, trace.stream_fp) for b in trace.stream_bases]
        regions += [(b, trace.chase_fp_lines * 64) for b in trace.chase_bases]
        spans = sorted((start, start + size) for start, size in regions)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2, "address regions overlap"

    def test_loop_branch_always_taken(self):
        trace = SyntheticTrace(BENCHMARKS["gap"], MEM, seed=1)
        last = trace.body_len - 1
        for it in range(5):
            assert trace.get(it * trace.body_len + last).taken


class TestHotFootprintScaling:
    def test_hot_set_capped_to_half_l1(self):
        trace = SyntheticTrace(BENCHMARKS["vortex"], MEM, seed=1)
        assert trace.hot_lines * 64 <= MEM.l1d.size // 2
