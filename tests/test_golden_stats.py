"""Cycle-exactness regression matrix for the optimized SMT core.

The fixture ``tests/golden/golden_stats.json`` was generated from the
*pre-optimization* core (``python -m repro.perf.golden``); every cell of
the fixed-seed {1,2,4}-thread x {icount, stall, flush, mlp_stall} matrix
must still reproduce its committed-cycle counts, IPC, flush counts, and
stall counters bit-for-bit.  A diff here means a hot-loop "optimization"
changed architectural behavior — that is a bug, not a baseline refresh,
unless the change to the timing model was intentional and reviewed.

Every cell runs under *all* selectable engine backends (``object`` and
``soa`` always; the compiled ``cext`` when the host toolchain can build
it): one fixture is the cycle-exactness contract that licenses picking
a backend per :class:`repro.api.RunSpec` without touching result
semantics.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perf.golden import (
    GOLDEN_SCHEMA,
    golden_matrix,
    snapshot_cell,
)
from repro.pipeline.cext import load_cext_core

_BACKENDS = ("object", "soa") + (
    ("cext",) if load_cext_core() is not None else ())

_FIXTURE = Path(__file__).parent / "golden" / "golden_stats.json"


def _load_fixture() -> dict:
    doc = json.loads(_FIXTURE.read_text())
    assert doc["schema"] == GOLDEN_SCHEMA
    return doc


_MATRIX = {sc.name: sc for sc in golden_matrix()}


def test_fixture_covers_matrix():
    doc = _load_fixture()
    assert set(doc["cells"]) == set(_MATRIX), (
        "golden fixture out of sync with the matrix definition; "
        "regenerate with `python -m repro.perf.golden`")


@pytest.mark.parametrize("backend", _BACKENDS)
@pytest.mark.parametrize("cell", sorted(_MATRIX), ids=str)
def test_golden_cell(cell, backend):
    expected = _load_fixture()["cells"][cell]
    actual = snapshot_cell(_MATRIX[cell], backend=backend)
    assert actual == expected, (
        f"{cell} ({backend} backend): architectural stats diverged "
        f"from the pinned pre-optimization core")
