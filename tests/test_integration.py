"""End-to-end integration tests: qualitative paper results at tiny scale.

These use generous margins — they assert the *direction* of effects the
paper establishes, on short runs, not precise magnitudes.
"""

from dataclasses import replace

import pytest

from repro.config import scaled_config
from repro.experiments import (
    clear_baseline_cache,
    evaluate_workload,
    run_single,
)
from repro.experiments.defaults import characterization_config
from repro.experiments.profile import clear_profile_cache, profile_benchmark

CFG2 = scaled_config(num_threads=2, scale=16)


@pytest.fixture(scope="module", autouse=True)
def _fresh_caches():
    clear_baseline_cache()
    clear_profile_cache()
    yield


class TestCharacterizationDirection:
    def test_mlp_thread_has_more_ll_loads_than_ilp_thread(self):
        swim = profile_benchmark("swim", max_commits=8000)
        crafty = profile_benchmark("crafty", max_commits=8000)
        assert swim.lll_per_kilo > 20 * max(crafty.lll_per_kilo, 0.01)

    def test_mlp_thread_exhibits_mlp(self):
        swim = profile_benchmark("swim", max_commits=8000)
        assert swim.mlp > 2.0

    def test_isolated_miss_thread_has_mlp_near_one(self):
        vortex = profile_benchmark("vortex", max_commits=8000)
        assert vortex.mlp < 1.6

    def test_serialization_hurts_mlp_thread(self):
        cfg = characterization_config()
        serial_cfg = replace(
            cfg, memory=replace(cfg.memory, serialize_long_latency=True))
        normal = run_single("swim", cfg, 6000)
        serial = run_single("swim", serial_cfg, 6000)
        assert serial.cpi(0) > normal.cpi(0) * 1.5

    def test_serialization_harmless_for_ilp_thread(self):
        cfg = characterization_config()
        serial_cfg = replace(
            cfg, memory=replace(cfg.memory, serialize_long_latency=True))
        normal = run_single("crafty", cfg, 6000)
        serial = run_single("crafty", serial_cfg, 6000)
        assert serial.cpi(0) < normal.cpi(0) * 1.1


class TestPrefetcher:
    def test_prefetcher_speeds_up_streaming(self):
        cfg = scaled_config(num_threads=1, scale=16)
        off = replace(cfg, memory=replace(
            cfg.memory,
            prefetcher=replace(cfg.memory.prefetcher, enabled=False)))
        with_pf = run_single("wupwise", cfg, 8000)
        without_pf = run_single("wupwise", off, 8000)
        assert with_pf.ipc(0) > without_pf.ipc(0)

    def test_prefetcher_neutral_for_pointer_chasing(self):
        cfg = scaled_config(num_threads=1, scale=16)
        off = replace(cfg, memory=replace(
            cfg.memory,
            prefetcher=replace(cfg.memory.prefetcher, enabled=False)))
        with_pf = run_single("mcf", cfg, 6000)
        without_pf = run_single("mcf", off, 6000)
        assert with_pf.ipc(0) == pytest.approx(without_pf.ipc(0), rel=0.15)


class TestPolicyDirection:
    """The paper's headline orderings, at reduced scale."""

    def test_flush_beats_icount_for_corunner_of_mlp_thread(self):
        icount = evaluate_workload(("swim", "twolf"), CFG2, "icount", 6000)
        flush = evaluate_workload(("swim", "twolf"), CFG2, "flush", 6000)
        # The ILP co-runner (twolf) must speed up when swim gets flushed.
        assert flush.ipcs[1] > icount.ipcs[1]

    def test_mlp_flush_preserves_mlp_thread_better_than_flush(self):
        flush = evaluate_workload(("swim", "twolf"), CFG2, "flush", 6000)
        aware = evaluate_workload(("swim", "twolf"), CFG2, "mlp_flush", 6000)
        assert aware.ipcs[0] > flush.ipcs[0]

    def test_mlp_flush_antt_beats_flush_on_mixed_pair(self):
        flush = evaluate_workload(("swim", "twolf"), CFG2, "flush", 6000)
        aware = evaluate_workload(("swim", "twolf"), CFG2, "mlp_flush", 6000)
        assert aware.antt < flush.antt * 1.05

    def test_policies_are_neutral_for_pure_ilp_pairs(self):
        icount = evaluate_workload(("crafty", "twolf"), CFG2, "icount", 6000)
        aware = evaluate_workload(("crafty", "twolf"), CFG2, "mlp_flush",
                                  6000)
        assert aware.stp == pytest.approx(icount.stp, rel=0.25)


class TestFourThreads:
    def test_four_thread_run_completes(self):
        cfg = scaled_config(num_threads=4, scale=16)
        r = evaluate_workload(("mcf", "swim", "perlbmk", "mesa"), cfg,
                              "mlp_flush", 2500, warmup=500)
        assert all(x > 100 for x in r.committed)
        assert 0 < r.stp <= 4.0
