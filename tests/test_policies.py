"""Behavioural tests for every fetch policy."""

import pytest

from repro.config import scaled_config
from repro.experiments.runner import run_workload, trace_for
from repro.pipeline import SMTCore
from repro.policies import (
    ALTERNATIVES,
    MAIN_COMPARISON,
    POLICIES,
    DCRAPolicy,
    make_policy,
)


class TestRegistry:
    def test_paper_and_extension_policies_registered(self):
        # 11 paper policies + 8 related-work/extension policies.
        assert len(POLICIES) == 19

    def test_main_comparison_is_the_papers_six(self):
        assert MAIN_COMPARISON == ("icount", "stall", "pred_stall",
                                   "mlp_stall", "flush", "mlp_flush")

    def test_alternatives_are_the_papers_five(self):
        assert ALTERNATIVES == ("flush", "mlp_flush", "binary_mlp_flush",
                                "mlp_flush_rs", "binary_mlp_flush_rs")

    def test_make_policy_unknown_name(self):
        with pytest.raises(KeyError):
            make_policy("round_robin")

    def test_policy_names_match_keys(self):
        for name, cls in POLICIES.items():
            assert cls.name == name


@pytest.mark.parametrize("policy", sorted(POLICIES))
class TestEveryPolicyRuns:
    def test_two_thread_progress(self, policy):
        """Every policy must complete a small mixed workload without
        deadlock and with both threads making progress.  The floor is
        deliberately low: mcf crawls next to an ILP thread (its in-mix
        IPC is ~0.05, as in the paper's Figure 11), so the check is
        about starvation-freedom, not speed."""
        cfg = scaled_config(num_threads=2, scale=16)
        stats, _ = run_workload(("mcf", "twolf"), cfg, policy, 2500,
                                warmup=500)
        assert all(t.committed > 40 for t in stats.threads)
        assert stats.cycles > 0


class TestStallPolicies:
    def test_stall_fetch_stops_on_detected_miss(self):
        cfg = scaled_config(num_threads=2, scale=16)
        stats, _ = run_workload(("swim", "twolf"), cfg, "stall", 3000,
                                warmup=500)
        assert stats.threads[0].policy_stall_cycles > 0

    def test_icount_never_policy_stalls(self):
        cfg = scaled_config(num_threads=2, scale=16)
        stats, _ = run_workload(("swim", "twolf"), cfg, "icount", 3000,
                                warmup=500)
        assert all(t.policy_stall_cycles == 0 for t in stats.threads)

    def test_pred_stall_uses_front_end_prediction(self):
        """Predictive stall must begin stalling before detection could:
        more stall cycles than plain stall on a predictable-miss thread."""
        cfg = scaled_config(num_threads=2, scale=16)
        pred, _ = run_workload(("swim", "twolf"), cfg, "pred_stall", 3000,
                               warmup=1000)
        assert pred.threads[0].policy_stall_cycles > 0

    def test_stall_policies_do_not_flush(self):
        cfg = scaled_config(num_threads=2, scale=16)
        for policy in ("stall", "pred_stall", "mlp_stall"):
            stats, _ = run_workload(("swim", "twolf"), cfg, policy, 2000,
                                    warmup=500)
            assert all(t.flushes == 0 for t in stats.threads), policy


class TestFlushPolicies:
    def test_flush_squashes_on_miss(self):
        cfg = scaled_config(num_threads=2, scale=16)
        stats, _ = run_workload(("swim", "twolf"), cfg, "flush", 3000,
                                warmup=500)
        assert stats.threads[0].flushes > 0
        assert stats.threads[0].squashed > 0

    def test_mlp_flush_keeps_the_mlp_window(self):
        """MLP-aware flush must squash fewer instructions per flush than
        blind flush on an MLP-rich thread (it keeps the predicted window)."""
        cfg = scaled_config(num_threads=2, scale=16)
        blind, _ = run_workload(("swim", "twolf"), cfg, "flush", 4000,
                                warmup=1500)
        aware, _ = run_workload(("swim", "twolf"), cfg, "mlp_flush", 4000,
                                warmup=1500)
        t_blind, t_aware = blind.threads[0], aware.threads[0]
        assert t_blind.flushes > 0
        if t_aware.flushes:
            per_flush_aware = t_aware.squashed / t_aware.flushes
            per_flush_blind = t_blind.squashed / t_blind.flushes
            assert per_flush_aware <= per_flush_blind * 1.5

    def test_flush_on_ilp_thread_is_rare(self):
        cfg = scaled_config(num_threads=2, scale=16)
        stats, _ = run_workload(("crafty", "twolf"), cfg, "flush", 3000,
                                warmup=1000)
        for t in stats.threads:
            assert t.squashed < t.committed * 0.2


class TestCOT:
    def test_all_threads_stalled_still_progress(self):
        """Two MLP-heavy threads under pred_stall: COT must prevent fetch
        deadlock when both are stalled on long-latency loads."""
        cfg = scaled_config(num_threads=2, scale=16)
        stats, _ = run_workload(("swim", "applu"), cfg, "pred_stall", 2500,
                                warmup=500)
        assert all(t.committed > 200 for t in stats.threads)


class TestStaticPartition:
    def test_per_thread_share_enforced(self):
        cfg = scaled_config(num_threads=2, scale=16)
        traces = [trace_for(n, cfg, slot=i)
                  for i, n in enumerate(("swim", "mcf"))]
        core = SMTCore(cfg, traces, make_policy("static"))
        share = cfg.rob_size // 2
        for step in range(5000):
            core.step()
            for ts in core.threads:
                assert ts.rob_count <= share
                assert ts.lsq_count <= cfg.lsq_size // 2
                assert ts.int_regs <= cfg.int_rename_regs // 2
                assert ts.fp_regs <= cfg.fp_rename_regs // 2


class TestDCRA:
    def test_slow_threads_get_larger_share(self):
        cfg = scaled_config(num_threads=2, scale=16)
        traces = [trace_for(n, cfg, slot=i)
                  for i, n in enumerate(("swim", "twolf"))]
        policy = DCRAPolicy(slow_weight=2.0)
        core = SMTCore(cfg, traces, policy)
        slow, fast = core.threads
        slow.outstanding_misses = 1
        fast.outstanding_misses = 0
        slow_limits = policy._limits(slow)
        fast_limits = policy._limits(fast)
        for s, f in zip(slow_limits, fast_limits):
            assert s == pytest.approx(2 * f)

    def test_equal_classes_split_evenly(self):
        cfg = scaled_config(num_threads=2, scale=16)
        traces = [trace_for(n, cfg, slot=i)
                  for i, n in enumerate(("swim", "twolf"))]
        policy = DCRAPolicy()
        core = SMTCore(cfg, traces, policy)
        a, b = core.threads
        assert policy._limits(a) == policy._limits(b)

    def test_rejects_weight_below_one(self):
        with pytest.raises(ValueError):
            DCRAPolicy(slow_weight=0.5)

    def test_dcra_caps_are_respected(self):
        cfg = scaled_config(num_threads=2, scale=16)
        traces = [trace_for(n, cfg, slot=i)
                  for i, n in enumerate(("swim", "mcf"))]
        policy = DCRAPolicy(slow_weight=2.0)
        core = SMTCore(cfg, traces, policy)
        for step in range(4000):
            core.step()
            if step % 53 == 0:
                weights = [2.0 if t.outstanding_misses else 1.0
                           for t in core.threads]
                total = sum(weights)
                for ts, w in zip(core.threads, weights):
                    # +decode_width slack: classification may change between
                    # the dispatch-time check and this observation.
                    cap = cfg.rob_size * w / total + cfg.decode_width
                    assert ts.rob_count <= cap


class TestResourceStallAlternatives:
    def test_mlp_flush_rs_flushes_on_resource_stall(self):
        cfg = scaled_config(num_threads=2, scale=16)
        stats, core = run_workload(("swim", "applu"), cfg, "mlp_flush_rs",
                                   3000, warmup=500)
        # The machine saturates with two streaming threads, so resource
        # stalls (and therefore flushes) must have happened.
        assert sum(t.flushes for t in stats.threads) > 0

    def test_binary_alternatives_use_binary_predictor(self):
        cfg = scaled_config(num_threads=2, scale=16)
        stats, _ = run_workload(("swim", "twolf"), cfg, "binary_mlp_flush",
                                3000, warmup=500)
        assert stats.cycles > 0
