"""DynInstr pool recycling: no stale-field leakage across reuse.

The base core returns retired, unreferenced instruction records to a
free list and re-arms them with ``DynInstr.reinit``, which deliberately
skips the fields the commit-path recycle guards prove pristine.  These
tests pin that contract from three directions: field-by-field equality
of a reused record against a fresh construction (driven by hypothesis
over junk states), the recycle-time invariants on a real simulation's
pool, and bit-identical architectural stats with pooling force-disabled.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import StubTrace, alu, branch, load, store
from repro.config import SMTConfig
from repro.perf.golden import snapshot_cell
from repro.perf.scenarios import Scenario, run_scenario
from repro.pipeline.core import SMTCore
from repro.pipeline.dyninstr import DynInstr
from repro.policies import make_policy

_ALL_SLOTS = DynInstr.__slots__

#: Fields ``reinit`` may skip because pool eligibility guarantees their
#: pristine value; everything else must be re-written on reuse.
_POOL_INVARIANTS = {
    "waiter0": None,
    "waiters": None,
    "old_map": None,
    "ll_parents": None,
    "squashed": False,
    "inv": False,
    "in_iq": False,
    "refs": 0,
    "in_detects": False,
}

#: Fields ``reinit`` also skips because the pipeline provably writes them
#: before their first possible read in the record's new lifetime (see the
#: ``DynInstr.reinit`` docstring): ``iq_is_fp`` at dispatch (reads gated
#: on ``in_iq``), ``predicted_ll`` at fetch (reads gated on ``is_load``),
#: ``level`` at execute (read only for completed loads).
_WRITTEN_BEFORE_READ = frozenset({"iq_is_fp", "predicted_ll", "level"})


def _instrs():
    return st.sampled_from([
        alu(3), load(5, addr=0x1234), store(7, addr=0x99), branch(9, True),
    ])


@settings(max_examples=200, deadline=None)
@given(old_instr=_instrs(), new_instr=_instrs(),
       junk_int=st.integers(min_value=-7, max_value=10**9),
       junk_flags=st.booleans())
def test_reinit_equals_fresh_construction(old_instr, new_instr,
                                          junk_int, junk_flags):
    """A reused record is field-for-field a freshly constructed one."""
    used = DynInstr(old_instr, 0, 11, 17, fe_ready=23)
    # Trash every slot the way a full lifetime might, ...
    used.pending = junk_int
    used.iq_is_fp = junk_flags
    used.issued = True
    used.completed = True
    used.is_ll = junk_flags
    used.predicted_ll = junk_flags
    used.fill_line = junk_int
    used.level = junk_int
    used.ll_dep = junk_flags
    used.retired = True
    # ... then restore exactly the states the recycle guards guarantee.
    for name, value in _POOL_INVARIANTS.items():
        setattr(used, name, value)

    used.reinit(new_instr, 1, 42, 43, fe_ready=44)
    fresh = DynInstr(new_instr, 1, 42, 43, fe_ready=44)
    for slot in _ALL_SLOTS:
        if slot in _WRITTEN_BEFORE_READ:
            continue
        assert getattr(used, slot) == getattr(fresh, slot), slot


def _run_small_core():
    cfg = SMTConfig(num_threads=2)
    body = [load(0, addr=0x1000, dest=5), alu(1, dest=6, srcs=(5,)),
            store(2, addr=0x2000, srcs=(6, 5)), branch(3, False)]
    traces = [StubTrace(list(body), base=tid << 33) for tid in range(2)]
    core = SMTCore(cfg, traces, make_policy("icount"))
    core.run(400)
    return core


def test_pool_entries_respect_recycle_invariants():
    """Everything the sim pooled is retired, unreferenced, and inert."""
    core = _run_small_core()
    pool = core._di_pool
    assert pool, "expected the commit path to recycle records"
    for di in pool:
        assert di.retired
        assert di.completed
        assert di.issued
        for name, value in _POOL_INVARIANTS.items():
            assert getattr(di, name) == value, (di, name)
        # nothing reachable from live state may point here
        for ts in core.threads:
            assert di not in ts.ll_owners
            assert all(di is not entry for entry in ts.window)
            assert all(di is not entry for entry in ts.fe_queue)
            assert all(di is not mapped
                       for mapped in ts.rename_map)


def test_pooling_is_architecturally_invisible():
    """A pooled and a pool-disabled run produce bit-identical stats."""
    sc = Scenario("pool_probe", ("mcf", "swim"), "mlp_flush",
                  commits=1_200, warmup=300, quick_commits=1_200)
    baseline = snapshot_cell(sc)

    # Same scenario with the pool force-disabled on a hand-built core.
    from repro.experiments.runner import core_for, trace_for

    cfg = sc.config()
    traces = [trace_for(name, cfg, slot=i)
              for i, name in enumerate(sc.workload)]
    policy = make_policy(sc.policy)
    core = core_for(policy)(cfg, traces, policy)
    core._di_pool = None
    stats = core.run(sc.commits, warmup=sc.warmup)

    assert stats.cycles == baseline["cycles"]
    assert core.cycle == baseline["total_cycles"]
    assert [t.committed for t in stats.threads] == \
        [t["committed"] for t in baseline["threads"]]
    assert [t.fetched for t in stats.threads] == \
        [t["fetched"] for t in baseline["threads"]]
    assert [t.squashed for t in stats.threads] == \
        [t["squashed"] for t in baseline["threads"]]


def test_detect_queued_records_are_not_pooled():
    """A record with a queued LL-detection event must never be reused."""
    core = _run_small_core()
    pool = core._di_pool
    assert all(not di.in_detects for di in pool)


# --------------------------------------------------------------------- #
# SoA arena: the free list is the pool, slots are the records
# --------------------------------------------------------------------- #

def _soa_assert_free_list_pristine(core):
    """The SoA analogue of the pool invariants, on the columns.

    Every slot on the free list must carry exactly the state the alloc
    fast path relies on without re-writing (see the ``soa`` module
    docstring), and no live engine structure may still reference it.
    """
    from repro.pipeline.dyninstr import F_FREED

    free = set(core._free)
    assert free, "expected the engine to have recycled slots"
    for s in free:
        assert core._col_flags[s] & F_FREED, s
        assert core._col_pending[s] == 0, s
        assert core._col_refs[s] == 0, s
        assert core._col_waiter0[s] == -1, s
        assert core._col_waiters[s] is None, s
        assert core._col_old_map[s] == -1, s
        assert core._col_ll_parents[s] is None, s
        assert core._col_fill_line[s] is None, s
        assert core._col_views[s] is None, s
    for ts in core.threads:
        assert not free.intersection(ts.window)
        assert not free.intersection(ts.fe_queue)
        assert not free.intersection(
            s for s in ts.rename_map if s >= 0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20),
       cycles=st.integers(min_value=150, max_value=600),
       flush_points=st.lists(st.integers(min_value=1, max_value=80),
                             max_size=3))
def test_soa_free_slots_are_pristine(seed, cycles, flush_points):
    """Random runs + flush injections leave only pristine free slots."""
    import random

    from repro.pipeline.soa import SoACore

    rng = random.Random(seed)
    cfg = SMTConfig(num_threads=2)
    bodies = []
    for tid in range(2):
        body = []
        for pc in range(rng.randint(4, 8)):
            kind = rng.randrange(4)
            if kind == 0:
                body.append(alu(pc, dest=rng.randint(1, 31)))
            elif kind == 1:
                body.append(load(pc, addr=rng.randrange(1 << 12) * 8,
                                 dest=rng.randint(1, 31)))
            elif kind == 2:
                body.append(store(pc, addr=rng.randrange(1 << 12) * 8))
            else:
                body.append(branch(pc, rng.random() < 0.5))
        bodies.append(body)
    traces = [StubTrace(body, base=(tid + 1) << 33)
              for tid, body in enumerate(bodies)]
    core = SoACore(cfg, traces, make_policy("mlp_flush"))
    budget = iter(sorted(flush_points))
    next_flush = next(budget, None)
    for step in range(cycles):
        core.step()
        if next_flush is not None and step == next_flush:
            ts = core.threads[rng.randrange(2)]
            core.flush_thread(ts, max(ts.fetch_index - 1
                                      - rng.randrange(20), 0))
            next_flush = next(budget, None)
    _soa_assert_free_list_pristine(core)
