"""repro — MLP-aware fetch policies for SMT processors.

A from-scratch reproduction of Eyerman & Eeckhout, "A Memory-Level
Parallelism Aware Fetch Policy for SMT Processors" (HPCA 2007; extended in
ACM TACO 6(1), 2009).  The package contains:

* :mod:`repro.pipeline` — a cycle-level out-of-order SMT processor model
  (the SMTSIM substitute; Table IV machine).
* :mod:`repro.memory`, :mod:`repro.branch` — caches, TLBs, MSHRs, a
  stream-buffer prefetcher, gshare and BTB.
* :mod:`repro.predictors` — the paper's long-latency load predictors, the
  LLSR, and the MLP distance predictor.
* :mod:`repro.policies` — ICOUNT, stall/flush (Tullsen & Brown), predictive
  stall (Cazorla), the MLP-aware stall/flush policies, the Section 6.5
  alternatives, static partitioning and DCRA.
* :mod:`repro.workloads` — synthetic SPEC CPU2000 analogs calibrated to
  Table I, plus the paper's Table II/III workload mixes.
* :mod:`repro.metrics` — STP and ANTT.
* :mod:`repro.experiments` — drivers that regenerate every table and
  figure of the evaluation.
* :mod:`repro.jobs` — the parallel experiment-execution engine: content-
  hashed job specs, a persistent result store, and a multiprocessing
  batch executor (see EXPERIMENTS.md).
* :mod:`repro.api` — the declarative run-spec layer over all of it:
  :class:`~repro.api.RunSpec` (frozen, validated, JSON round-tripping,
  content-hashed) and :class:`~repro.api.Session` (cached batch
  execution, raw simulation, interval streaming); see docs/API.md.
* :mod:`repro.registry` — one uniform name table for policies,
  benchmarks, and perf scenarios.

Quickstart::

    from repro.api import RunSpec, Session
    from repro.config import scaled_config

    cfg = scaled_config(num_threads=2)
    specs = [RunSpec(("mcf", "galgel"), cfg, policy, max_commits=10_000)
             for policy in ("icount", "flush", "mlp_flush")]
    for spec, r in zip(specs, Session().run_many(specs)):
        print(f"{spec.policy:>10}: STP={r.stp:.3f} ANTT={r.antt:.3f}")
"""

from repro.config import (
    MemoryConfig,
    PredictorConfig,
    PrefetcherConfig,
    SMTConfig,
    paper_baseline,
    scaled_config,
    with_memory_latency,
    with_window_size,
)

__version__ = "1.0.0"

__all__ = [
    "MemoryConfig",
    "PredictorConfig",
    "PrefetcherConfig",
    "SMTConfig",
    "__version__",
    "paper_baseline",
    "scaled_config",
    "with_memory_latency",
    "with_window_size",
]
