"""Canonical job descriptions for the experiment-execution engine.

A :class:`JobSpec` captures everything that determines a simulation's
outcome — benchmark names, fetch policy and its kwargs, the
:class:`~repro.config.SMTConfig`, the commit budget, and the warmup — and
hashes it into a stable content key.  Two specs with the same key are the
same experiment: the key is what the persistent result store
(:mod:`repro.jobs.store`) and the batch executor
(:mod:`repro.jobs.executor`) deduplicate on, across processes and runs.

Keys are built from canonical JSON (sorted keys, no whitespace) over the
spec's field tree plus the store schema version and the ``repro`` package
version, never from dataclass ``repr`` — so they survive formatting
changes and are identical in every worker process.
"""

from __future__ import annotations

from dataclasses import dataclass
import hashlib
import json
from typing import Any

from repro import __version__
from repro.config import SMTConfig, single_thread_variant
from repro.experiments.defaults import default_warmup

#: Bumped whenever the on-disk entry layout or the result payload encoding
#: changes; entries written under another schema are treated as misses.
SCHEMA_VERSION = 1

KIND_WORKLOAD = "workload"
KIND_BASELINE = "baseline"


class UncacheableJobError(ValueError):
    """A job's policy kwargs cannot be canonically serialized."""


def canonical_kwargs(value: Any) -> Any:
    """Reduce ``value`` to a JSON-stable tree, or raise.

    Policy kwargs are usually numbers or strings; anything fancier (open
    files, live predictor objects, ...) has no stable content identity and
    must not silently alias distinct experiments onto one key.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [canonical_kwargs(v) for v in value]
    if isinstance(value, dict):
        return {str(k): canonical_kwargs(v) for k, v in sorted(value.items())}
    raise UncacheableJobError(
        f"policy kwarg of type {type(value).__name__} has no canonical form")


def content_key(kind: str, names, config: SMTConfig, max_commits: int,
                warmup: int, policy: str, policy_kwargs, seed: int = 0,
                backend: str = "object") -> str:
    """The stable hex content key over one simulation's field tree.

    The single hashing authority for the whole repo: :class:`JobSpec`
    and :class:`repro.api.RunSpec` both key through here, which is what
    makes a spec serialized by the new API hit cache entries written by
    the old jobs path (and vice versa).  ``seed=0`` — the canonical
    per-benchmark trace seeds — is omitted from the payload so that keys
    predating the seed field are unchanged, and the default ``object``
    engine backend is omitted the same way: every key minted before the
    backend axis existed stays valid, and the warm store keeps hitting.
    (A non-default backend *is* keyed, deliberately — the engines are
    bit-identical by contract, but a result must still say which engine
    produced it so an equivalence regression can never be masked by the
    cache.)
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "repro": __version__,
        "kind": kind,
        "names": list(names),
        "config": config.cache_key(),
        "max_commits": max_commits,
        "warmup": warmup,
        "policy": policy,
        "policy_kwargs": [[k, canonical_kwargs(v)]
                          for k, v in policy_kwargs],
    }
    if seed:
        payload["seed"] = seed
    if backend != "object":
        payload["backend"] = backend
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """One simulation request with a stable content identity.

    Use the :meth:`workload` / :meth:`baseline` constructors rather than
    building instances directly — they normalize the config (baselines are
    always single-threaded ICOUNT runs) and resolve ``warmup=None`` to the
    environment default, so equal experiments always compare equal.
    """

    kind: str                       # KIND_WORKLOAD | KIND_BASELINE
    names: tuple[str, ...]
    config: SMTConfig
    max_commits: int
    warmup: int
    policy: str = "icount"
    policy_kwargs: tuple[tuple[str, Any], ...] = ()
    seed: int = 0                   # 0 = canonical per-benchmark seeds
    backend: str = "object"         # engine core (see registry backends)

    @classmethod
    def workload(cls, names, config: SMTConfig, policy: str = "icount",
                 max_commits: int = 20_000, warmup: int | None = None,
                 seed: int = 0, backend: str = "object",
                 **policy_kwargs) -> JobSpec:
        """A multiprogram run evaluated with STP/ANTT."""
        names = tuple(names)
        if len(names) != config.num_threads:
            raise ValueError(
                f"workload {names} needs a {len(names)}-thread config, "
                f"got num_threads={config.num_threads}")
        return cls(kind=KIND_WORKLOAD, names=names, config=config,
                   max_commits=max_commits,
                   warmup=default_warmup() if warmup is None else warmup,
                   policy=policy,
                   policy_kwargs=tuple(sorted(policy_kwargs.items())),
                   seed=seed, backend=backend)

    @classmethod
    def baseline(cls, name: str, config: SMTConfig, max_commits: int,
                 warmup: int | None = None, seed: int = 0) -> JobSpec:
        """The single-threaded ICOUNT run that supplies CPI_ST for ``name``."""
        return cls(kind=KIND_BASELINE, names=(name,),
                   config=single_thread_variant(config),
                   max_commits=max_commits,
                   warmup=default_warmup() if warmup is None else warmup,
                   policy="icount", seed=seed)

    @classmethod
    def from_runspec(cls, spec) -> JobSpec:
        """Adapt a :class:`repro.api.RunSpec` into its workload job.

        ``JobSpec`` is the execution/cache-key shape of a declarative
        ``RunSpec``: same fields, same content key (both route through
        :func:`content_key`), plus the workload/baseline ``kind`` axis
        the executor needs.
        """
        return cls(kind=KIND_WORKLOAD, names=tuple(spec.workload),
                   config=spec.config, max_commits=spec.max_commits,
                   warmup=spec.warmup, policy=spec.policy,
                   policy_kwargs=tuple(spec.policy_kwargs), seed=spec.seed,
                   backend=spec.backend)

    def baseline_specs(self) -> tuple[JobSpec, ...]:
        """The per-program baseline jobs this workload job depends on.

        One spec per program *in workload order* (duplicates included, so
        the caller can zip them against per-thread commit counts).
        Baselines always use the environment-default warmup, matching
        :func:`repro.experiments.runner.single_thread_baseline`, and
        always run on the default ``object`` engine — the backends are
        bit-identical, so sharing one baseline across backends is both
        sound and what keeps CPI_ST cached exactly once.
        """
        if self.kind != KIND_WORKLOAD:
            return ()
        return tuple(
            JobSpec.baseline(name, self.config, self.max_commits,
                             seed=self.seed)
            for name in self.names)

    def cache_key(self) -> str:
        """Stable hex content key (raises for unserializable kwargs)."""
        return content_key(self.kind, self.names, self.config,
                           self.max_commits, self.warmup, self.policy,
                           self.policy_kwargs, seed=self.seed,
                           backend=self.backend)

    def __str__(self) -> str:
        mix = "-".join(self.names)
        return f"{self.kind}:{mix}:{self.policy}@{self.max_commits}"
