"""Canonical job descriptions for the experiment-execution engine.

A :class:`JobSpec` captures everything that determines a simulation's
outcome — benchmark names, fetch policy and its kwargs, the
:class:`~repro.config.SMTConfig`, the commit budget, and the warmup — and
hashes it into a stable content key.  Two specs with the same key are the
same experiment: the key is what the persistent result store
(:mod:`repro.jobs.store`) and the batch executor
(:mod:`repro.jobs.executor`) deduplicate on, across processes and runs.

Keys are built from canonical JSON (sorted keys, no whitespace) over the
spec's field tree plus the store schema version and the ``repro`` package
version, never from dataclass ``repr`` — so they survive formatting
changes and are identical in every worker process.
"""

from __future__ import annotations

from dataclasses import dataclass
import hashlib
import json
from typing import Any

from repro import __version__
from repro.config import SMTConfig, single_thread_variant
from repro.experiments.defaults import default_warmup

#: Bumped whenever the on-disk entry layout or the result payload encoding
#: changes; entries written under another schema are treated as misses.
SCHEMA_VERSION = 1

KIND_WORKLOAD = "workload"
KIND_BASELINE = "baseline"


class UncacheableJobError(ValueError):
    """A job's policy kwargs cannot be canonically serialized."""


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-stable tree, or raise.

    Policy kwargs are usually numbers or strings; anything fancier (open
    files, live predictor objects, ...) has no stable content identity and
    must not silently alias distinct experiments onto one key.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    raise UncacheableJobError(
        f"policy kwarg of type {type(value).__name__} has no canonical form")


@dataclass(frozen=True)
class JobSpec:
    """One simulation request with a stable content identity.

    Use the :meth:`workload` / :meth:`baseline` constructors rather than
    building instances directly — they normalize the config (baselines are
    always single-threaded ICOUNT runs) and resolve ``warmup=None`` to the
    environment default, so equal experiments always compare equal.
    """

    kind: str                       # KIND_WORKLOAD | KIND_BASELINE
    names: tuple[str, ...]
    config: SMTConfig
    max_commits: int
    warmup: int
    policy: str = "icount"
    policy_kwargs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def workload(cls, names, config: SMTConfig, policy: str = "icount",
                 max_commits: int = 20_000, warmup: int | None = None,
                 **policy_kwargs) -> "JobSpec":
        """A multiprogram run evaluated with STP/ANTT."""
        names = tuple(names)
        if len(names) != config.num_threads:
            raise ValueError(
                f"workload {names} needs a {len(names)}-thread config, "
                f"got num_threads={config.num_threads}")
        return cls(kind=KIND_WORKLOAD, names=names, config=config,
                   max_commits=max_commits,
                   warmup=default_warmup() if warmup is None else warmup,
                   policy=policy,
                   policy_kwargs=tuple(sorted(policy_kwargs.items())))

    @classmethod
    def baseline(cls, name: str, config: SMTConfig, max_commits: int,
                 warmup: int | None = None) -> "JobSpec":
        """The single-threaded ICOUNT run that supplies CPI_ST for ``name``."""
        return cls(kind=KIND_BASELINE, names=(name,),
                   config=single_thread_variant(config),
                   max_commits=max_commits,
                   warmup=default_warmup() if warmup is None else warmup,
                   policy="icount")

    def baseline_specs(self) -> tuple["JobSpec", ...]:
        """The per-program baseline jobs this workload job depends on.

        One spec per program *in workload order* (duplicates included, so
        the caller can zip them against per-thread commit counts).
        Baselines always use the environment-default warmup, matching
        :func:`repro.experiments.runner.single_thread_baseline`.
        """
        if self.kind != KIND_WORKLOAD:
            return ()
        return tuple(
            JobSpec.baseline(name, self.config, self.max_commits)
            for name in self.names)

    def cache_key(self) -> str:
        """Stable hex content key (raises for unserializable kwargs)."""
        payload = {
            "schema": SCHEMA_VERSION,
            "repro": __version__,
            "kind": self.kind,
            "names": list(self.names),
            "config": self.config.cache_key(),
            "max_commits": self.max_commits,
            "warmup": self.warmup,
            "policy": self.policy,
            "policy_kwargs": [[k, _canonical(v)]
                              for k, v in self.policy_kwargs],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("ascii")).hexdigest()

    def __str__(self) -> str:
        mix = "-".join(self.names)
        return f"{self.kind}:{mix}:{self.policy}@{self.max_commits}"
