"""Batch executor: fan a set of jobs across processes, memoized.

:func:`run_jobs` takes any mix of workload and baseline
:class:`~repro.jobs.spec.JobSpec` s and

1. deduplicates them by content key,
2. resolves what it can from the persistent result store,
3. simulates every *shared single-thread baseline* the missing workload
   jobs need — each exactly once per batch — across ``REPRO_JOBS`` worker
   processes,
4. simulates the missing workload jobs the same way, assembling their
   STP/ANTT in the parent from the step-3 baselines, and
5. writes everything back to the store.

The simulator is deterministic, so a parallel batch is bit-identical to a
serial one; parallelism only reorders progress callbacks.  Worker count
comes from ``workers=`` or the ``REPRO_JOBS`` environment variable
(default 1 = in-process serial execution, no pool overhead).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from multiprocessing import get_context
import os

from repro.experiments.runner import (
    build_workload_result,
    run_workload,
    simulate_baseline,
)
from repro.jobs.spec import (
    KIND_BASELINE,
    KIND_WORKLOAD,
    JobSpec,
    UncacheableJobError,
)
from repro.jobs.store import default_store

_UNSET = object()

# Cumulative in-process counters, for engine-status reporting (CLI,
# figures footer) and for tests asserting "second run simulates nothing".
_counters = {"executed": 0, "cache_hits": 0}


def counters() -> dict[str, int]:
    """Snapshot of the cumulative executed / cache-hit counters."""
    return dict(_counters)


def default_workers() -> int:
    """Worker-process count from ``REPRO_JOBS`` (default 1 = serial)."""
    env = os.environ.get("REPRO_JOBS", "")
    try:
        return max(int(env), 1) if env else 1
    except ValueError:
        return 1


@dataclass(frozen=True)
class BatchReport:
    """What one :func:`run_jobs` call actually did."""

    submitted: int          # specs handed in
    unique: int             # after content-key deduplication
    cache_hits: int         # unique jobs resolved from the store
    executed: int           # simulations actually run (incl. baselines)
    baselines_executed: int
    baselines_cached: int   # shared baselines served from the store
    workers: int

    def __str__(self) -> str:
        return (f"{self.submitted} submitted, {self.unique} unique, "
                f"{self.cache_hits} cache hits, {self.executed} simulated "
                f"({self.baselines_executed} baselines run, "
                f"{self.baselines_cached} from store), "
                f"{self.workers} worker(s)")


def _key(spec: JobSpec) -> str:
    """Bookkeeping key for a spec: the content key when it has one.

    Uncacheable specs (exotic policy kwargs) fall back to object
    identity — they never deduplicate or touch the store, degrading to
    plain execution instead of crashing the batch.
    """
    try:
        return spec.cache_key()
    except UncacheableJobError:
        return f"uncacheable:{id(spec)}"


@dataclass
class BatchResult:
    """Results of a batch, addressable by the submitted specs."""

    results: dict[str, object]
    report: BatchReport

    def __getitem__(self, spec: JobSpec):
        return self.results[_key(spec)]


def _baseline_job(spec: JobSpec):
    return simulate_baseline(spec.names[0], spec.config, spec.max_commits,
                             spec.warmup, seed=spec.seed)


def _workload_job(spec: JobSpec):
    stats, _core = run_workload(spec.names, spec.config, spec.policy,
                                spec.max_commits, warmup=spec.warmup,
                                seed=spec.seed, backend=spec.backend,
                                **dict(spec.policy_kwargs))
    return stats


def _run_batch(fn: Callable, specs: list[JobSpec], workers: int) -> list:
    """Map ``fn`` over ``specs``, in-process or across a pool.

    Returns results in submission order either way, so downstream
    bookkeeping is independent of worker scheduling.
    """
    if not specs:
        return []
    if workers <= 1 or len(specs) == 1:
        return [fn(spec) for spec in specs]
    with get_context().Pool(min(workers, len(specs))) as pool:
        return pool.map(fn, specs)


def run_jobs(specs, *, workers: int | None = None, store=_UNSET,
             progress=None) -> BatchResult:
    """Execute a batch of jobs; see the module docstring for the phases.

    ``store`` defaults to the environment-configured persistent store
    (pass ``None`` to force fresh simulation).  ``progress`` is called
    with a one-line status string as each job resolves.
    """
    submitted = list(specs)
    if store is _UNSET:
        store = default_store()
    if workers is None:
        workers = default_workers()

    unique = list({_key(spec): spec for spec in submitted}.values())
    results: dict[str, object] = {}
    hits = 0
    missing: list[JobSpec] = []
    for spec in unique:
        cached = store.get(spec) if store is not None else None
        if cached is not None:
            results[_key(spec)] = cached
            hits += 1
            _counters["cache_hits"] += 1
            if progress is not None:
                progress(f"[cached] {cached}")
        else:
            missing.append(spec)

    # Phase 1: every baseline the missing jobs need, each exactly once.
    # (Baseline specs carry no policy kwargs, so they are always
    # cacheable and their keys are pure content keys.)
    needed: dict[str, JobSpec] = {}
    for spec in missing:
        if spec.kind == KIND_BASELINE:
            needed.setdefault(_key(spec), spec)
        else:
            for base in spec.baseline_specs():
                needed.setdefault(_key(base), base)
    baselines: dict[str, object] = {}
    baseline_hits = 0
    to_simulate: list[JobSpec] = []
    for key, base in needed.items():
        if key in results:                  # submitted alongside and hit
            baselines[key] = results[key]
            continue
        cached = store.get(base) if store is not None else None
        if cached is not None:
            baselines[key] = cached
            baseline_hits += 1
            _counters["cache_hits"] += 1
        else:
            to_simulate.append(base)
    for base, result in zip(to_simulate,
                            _run_batch(_baseline_job, to_simulate, workers)):
        baselines[_key(base)] = result
        if store is not None:
            store.put(base, result)
        _counters["executed"] += 1
        if progress is not None:
            progress(f"[baseline] {base.names[0]} IPC={result.ipc:.3f}")
    for spec in missing:
        if spec.kind == KIND_BASELINE:
            results[_key(spec)] = baselines[_key(spec)]

    # Phase 2: the missing workload jobs; STP/ANTT assembled in the
    # parent from the phase-1 baselines (workers never re-simulate them).
    # Uncacheable specs stay in-process: their exotic kwargs may not
    # pickle, and a PicklingError mid-pool would kill the whole batch.
    work = [spec for spec in missing if spec.kind == KIND_WORKLOAD]
    inline = [s for s in work if _key(s).startswith("uncacheable:")]
    pooled = [s for s in work if not _key(s).startswith("uncacheable:")]
    outcomes = list(zip(pooled, _run_batch(_workload_job, pooled, workers)))
    outcomes += [(s, _workload_job(s)) for s in inline]
    for spec, stats in outcomes:
        result = build_workload_result(
            spec.names, spec.policy, stats,
            [baselines[_key(base)] for base in spec.baseline_specs()])
        results[_key(spec)] = result
        if store is not None:
            store.put(spec, result)
        _counters["executed"] += 1
        if progress is not None:
            progress(str(result))

    report = BatchReport(
        submitted=len(submitted), unique=len(unique), cache_hits=hits,
        executed=len(to_simulate) + len(work),
        baselines_executed=len(to_simulate),
        baselines_cached=baseline_hits, workers=workers)
    return BatchResult(results=results, report=report)
