"""Persistent on-disk result store for simulation jobs.

Memoizes :class:`~repro.experiments.runner.WorkloadResult` and
:class:`~repro.experiments.runner.SingleThreadResult` payloads across
processes and runs.  Entries live as one JSON file per job under
``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``), named by the job's
content key, with the layout::

    {"schema": 1, "repro": "<package version>", "kind": "...",
     "payload": {...}}

Robustness rules:

* A corrupt, truncated, or unreadable entry is a *miss*, never an error;
  the stale file is removed when possible.
* An entry written under a different schema or package version is stale
  and also reads as a miss (the package version participates in the
  content key too, so version bumps simply re-key the cache).
* Writes are atomic (temp file + ``os.replace``), so parallel workers can
  race on the same entry without tearing it.

Set ``REPRO_CACHE=0`` to disable the store entirely.

Import-cycle note: result types are imported lazily inside the codec —
:mod:`repro.experiments` modules are allowed to import this module at call
time only, while this module may not pull them in at load time.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
import tempfile
from typing import Any

from repro import __version__
from repro.jobs.spec import SCHEMA_VERSION, JobSpec, UncacheableJobError
from repro.pipeline.stats import CoreStats, ThreadStats


def cache_enabled() -> bool:
    """The REPRO_CACHE knob (default on)."""
    return os.environ.get("REPRO_CACHE", "1") not in ("0", "", "false")


def cache_root() -> Path:
    """The store directory: ``REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


# --------------------------------------------------------------------- #
# payload codec
# --------------------------------------------------------------------- #

def _encode_stats(stats: CoreStats) -> dict[str, Any]:
    return {
        "cycles": stats.cycles,
        "resource_stall_cycles": stats.resource_stall_cycles,
        "ll_intervals": [list(iv) for iv in stats.ll_intervals],
        "threads": [asdict(t) for t in stats.threads],
        "commit_cycle_trace": stats.commit_cycle_trace,
    }


def _decode_stats(data: dict[str, Any]) -> CoreStats:
    return CoreStats(
        cycles=data["cycles"],
        threads=[ThreadStats(**t) for t in data["threads"]],
        resource_stall_cycles=data["resource_stall_cycles"],
        ll_intervals=[tuple(iv) for iv in data["ll_intervals"]],
        commit_cycle_trace=data.get("commit_cycle_trace"),
    )


def encode_result(result) -> dict[str, Any]:
    """Encode a SingleThreadResult or WorkloadResult to a JSON tree."""
    from repro.experiments.runner import SingleThreadResult, WorkloadResult
    if isinstance(result, SingleThreadResult):
        return {"name": result.name,
                "stats": _encode_stats(result.stats),
                "commit_cycles": list(result.commit_cycles)}
    if isinstance(result, WorkloadResult):
        return {"names": list(result.names),
                "policy": result.policy,
                "stats": _encode_stats(result.stats),
                "committed": list(result.committed),
                "st_cpis": list(result.st_cpis),
                "mt_cpis": list(result.mt_cpis),
                "stp": result.stp,
                "antt": result.antt,
                "ipcs": list(result.ipcs)}
    raise TypeError(f"cannot encode {type(result).__name__}")


def decode_result(kind: str, payload: dict[str, Any]):
    """Rebuild the result object a payload was encoded from."""
    from repro.experiments.runner import SingleThreadResult, WorkloadResult
    if kind == "baseline":
        return SingleThreadResult(
            name=payload["name"],
            stats=_decode_stats(payload["stats"]),
            commit_cycles=list(payload["commit_cycles"]))
    if kind == "workload":
        return WorkloadResult(
            names=tuple(payload["names"]),
            policy=payload["policy"],
            stats=_decode_stats(payload["stats"]),
            committed=tuple(payload["committed"]),
            st_cpis=tuple(payload["st_cpis"]),
            mt_cpis=tuple(payload["mt_cpis"]),
            stp=payload["stp"],
            antt=payload["antt"],
            ipcs=tuple(payload["ipcs"]))
    raise ValueError(f"unknown result kind {kind!r}")


# --------------------------------------------------------------------- #
# the store
# --------------------------------------------------------------------- #

class ResultStore:
    """One directory of memoized job results."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else cache_root()

    def path_for(self, spec: JobSpec) -> Path:
        return self.root / f"{spec.cache_key()}.json"

    def get(self, spec: JobSpec):
        """The memoized result for ``spec``, or None on any kind of miss."""
        try:
            path = self.path_for(spec)
        except UncacheableJobError:
            return None
        try:
            text = path.read_text()
        except OSError:          # plain miss (or unreadable) — nothing
            return None          # on disk worth discarding
        try:
            entry = json.loads(text)
        except ValueError:
            self._discard(path)
            return None
        try:
            if (entry["schema"] != SCHEMA_VERSION
                    or entry["repro"] != __version__
                    or entry["kind"] != spec.kind):
                return None
            return decode_result(entry["kind"], entry["payload"])
        except (KeyError, TypeError, ValueError):
            self._discard(path)
            return None

    def put(self, spec: JobSpec, result) -> bool:
        """Persist ``result``; False if the spec is uncacheable or the
        filesystem refuses (the engine treats both as cache-off)."""
        try:
            path = self.path_for(spec)
        except UncacheableJobError:
            return False
        entry = {"schema": SCHEMA_VERSION, "repro": __version__,
                 "kind": spec.kind, "payload": encode_result(result)}
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, separators=(",", ":"))
            os.replace(tmp, path)
            return True
        except OSError:
            return False

    def entries(self) -> list[Path]:
        try:
            return sorted(self.root.glob("*.json"))
        except OSError:
            return []

    def __len__(self) -> int:
        return len(self.entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for path in self.entries():
            if self._discard(path):
                removed += 1
        return removed

    @staticmethod
    def _discard(path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False


def default_store() -> ResultStore | None:
    """The environment-configured store, or None when caching is off."""
    if not cache_enabled():
        return None
    return ResultStore()
