"""repro.jobs — parallel experiment execution with a persistent store.

The engine every figure/sweep/benchmark submits through:

* :mod:`repro.jobs.spec` — :class:`JobSpec`, a canonical content-hashed
  description of one simulation (workload or single-thread baseline).
* :mod:`repro.jobs.store` — :class:`ResultStore`, JSON-per-entry result
  memoization under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``),
  versioned and corrupt-tolerant.
* :mod:`repro.jobs.executor` — :func:`run_jobs`, a multiprocessing batch
  runner (``REPRO_JOBS`` workers) that deduplicates shared baselines and
  streams progress callbacks.  Parallel output is bit-identical to
  serial output.

Layering rule: modules under :mod:`repro.experiments` may import this
package *inside functions only* (the executor imports the simulation
primitives from ``repro.experiments.runner`` at module level, so the
reverse edge must stay lazy).

Quickstart::

    from repro.experiments import default_config
    from repro.jobs import JobSpec, run_jobs

    cfg = default_config(num_threads=2)
    specs = [JobSpec.workload(("mcf", "twolf"), cfg, policy, 10_000)
             for policy in ("icount", "flush", "mlp_flush")]
    batch = run_jobs(specs, workers=4)
    for spec in specs:
        print(batch[spec])
    print(batch.report)
"""

from repro.jobs.executor import (
    BatchReport,
    BatchResult,
    counters,
    default_workers,
    run_jobs,
)
from repro.jobs.spec import (
    KIND_BASELINE,
    KIND_WORKLOAD,
    SCHEMA_VERSION,
    JobSpec,
    UncacheableJobError,
    canonical_kwargs,
    content_key,
)
from repro.jobs.store import (
    ResultStore,
    cache_enabled,
    cache_root,
    default_store,
)

__all__ = [
    "BatchReport",
    "BatchResult",
    "JobSpec",
    "KIND_BASELINE",
    "KIND_WORKLOAD",
    "ResultStore",
    "SCHEMA_VERSION",
    "UncacheableJobError",
    "cache_enabled",
    "cache_root",
    "canonical_kwargs",
    "content_key",
    "counters",
    "default_store",
    "default_workers",
    "run_jobs",
]
