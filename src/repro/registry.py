"""One uniform name table for policies, benchmarks, scenarios, backends
and static-analysis checkers.

The paper's evaluation grid is indexed by names three ways — fetch-policy
names (``repro.policies.POLICIES``), benchmark-analog names
(``repro.workloads.BENCHMARKS``), and canonical perf-scenario names
(``repro.perf.CANONICAL_SCENARIOS``).  Those tables grew independently
with three lookup idioms; this module is the single front door over all
of them:

* :func:`get` / :func:`names` / :func:`register` — uniform access by
  ``(kind, name)``, where ``kind`` is one of :data:`KINDS`.
* ``repro list <kind>`` enumerates any kind from the CLI.
* :mod:`repro.api` validates every :class:`~repro.api.RunSpec` field
  against these registries, so a spec that constructs is a spec that
  resolves.

The legacy tables stay importable (and stay the place the *built-in*
entries are defined); each registry pulls them in lazily on first
access, which keeps this module import-cycle-free.  Entries registered
here at runtime (e.g. an out-of-tree policy) are visible to
``make_policy`` / ``benchmark`` / ``scenario_by_name`` as well, because
those lookups now route through the registries.

Registrations are **per process**.  The jobs executor's worker pool
(``REPRO_JOBS`` > 1) re-imports modules in each worker under spawn-type
start methods, so a registration made imperatively in the parent is not
there when a worker calls ``make_policy``.  Register at *import time* —
in a module every process imports (the loader functions below show the
pattern) — or run runtime-registered entries with ``workers=1``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Any


class RegistryError(KeyError):
    """Unknown name or kind, or a conflicting registration."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0] if self.args else ""


class Registry:
    """A named table of one kind of object, lazily seeded with built-ins."""

    def __init__(self, kind: str,
                 loader: Callable[[Registry], None] | None = None):
        self.kind = kind
        self._entries: dict[str, Any] = {}
        self._loader = loader
        self._loaded = loader is None

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            # Mark first: the loader imports the defining module, which may
            # itself consult this registry while initializing.  A loader
            # failure un-marks so the real error resurfaces on the next
            # lookup instead of a bogus empty-registry "unknown name"
            # (the loaders use setdefault, so retrying is idempotent).
            self._loaded = True
            try:
                self._loader(self)
            except BaseException:
                self._loaded = False
                raise

    def register(self, name: str, obj: Any, *,
                 overwrite: bool = False) -> Any:
        """Add ``obj`` under ``name``; returns ``obj`` (decorator-friendly).

        Re-registering an existing name raises unless ``overwrite=True`` —
        silently shadowing a built-in policy or benchmark would corrupt
        content-hashed job keys that embed only the *name*.
        """
        self._ensure_loaded()
        if not overwrite and name in self._entries:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered; pass "
                f"overwrite=True to replace it")
        self._entries[name] = obj
        return obj

    def unregister(self, name: str) -> Any:
        """Remove and return the entry under ``name`` (or raise).

        The undo for a runtime :meth:`register` — temporary entries in
        tests and plugins clean up through here, never by poking the
        internal table.
        """
        self._ensure_loaded()
        try:
            return self._entries.pop(name)
        except KeyError:
            raise RegistryError(
                f"cannot unregister unknown {self.kind} {name!r}") from None

    def get(self, name: str) -> Any:
        self._ensure_loaded()
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names())
            raise RegistryError(
                f"unknown {self.kind} {name!r}; known: {known}") from None

    def names(self) -> tuple[str, ...]:
        self._ensure_loaded()
        return tuple(sorted(self._entries))

    def items(self) -> list[tuple[str, Any]]:
        self._ensure_loaded()
        return sorted(self._entries.items())

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return name in self._entries

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:
        state = f"{len(self._entries)} entries" if self._loaded else "unloaded"
        return f"<Registry {self.kind}: {state}>"


def _load_policies(reg: Registry) -> None:
    from repro.policies import POLICIES
    for name, cls in POLICIES.items():
        reg._entries.setdefault(name, cls)


def _load_benchmarks(reg: Registry) -> None:
    from repro.workloads.registry import BENCHMARKS
    for name, spec in BENCHMARKS.items():
        reg._entries.setdefault(name, spec)


def _load_scenarios(reg: Registry) -> None:
    from repro.perf.scenarios import CANONICAL_SCENARIOS
    for sc in CANONICAL_SCENARIOS:
        reg._entries.setdefault(sc.name, sc)


def _load_checkers(reg: Registry) -> None:
    from repro.analysis import CHECKERS
    for name, fn in CHECKERS.items():
        reg._entries.setdefault(name, fn)


def _load_backends(reg: Registry) -> None:
    # ``object`` is the original DynInstr-object engine; ``soa`` is the
    # struct-of-arrays rewrite of the same pipeline (bit-identical
    # architectural outcome, different in-memory representation).  A
    # policy's ``core_class`` (e.g. runahead) always takes precedence
    # over the selected backend — see ``repro.experiments.runner``.
    # ``cext`` is the compiled C-extension loop over the same columns; it
    # registers only when the lazy toolchain probe + build succeed, so on
    # a compiler-less host the table simply lists two entries.
    from repro.pipeline import SMTCore
    from repro.pipeline.cext import load_cext_core
    from repro.pipeline.soa import SoACore
    reg._entries.setdefault("object", SMTCore)
    reg._entries.setdefault("soa", SoACore)
    cext_core = load_cext_core()
    if cext_core is not None:
        reg._entries.setdefault("cext", cext_core)


#: The five registries, by kind.  ``policies`` maps name -> policy class,
#: ``benchmarks`` maps name -> :class:`~repro.workloads.BenchmarkSpec`,
#: ``scenarios`` maps name -> :class:`~repro.perf.Scenario`,
#: ``backends`` maps name -> engine core class
#: (:class:`~repro.pipeline.SMTCore` subclasses), and ``checkers`` maps
#: name -> static-analysis checker callable (:mod:`repro.analysis`).
policies = Registry("policy", _load_policies)
benchmarks = Registry("benchmark", _load_benchmarks)
scenarios = Registry("scenario", _load_scenarios)
backends = Registry("backend", _load_backends)
checkers = Registry("checker", _load_checkers)

KINDS: dict[str, Registry] = {
    "policies": policies,
    "benchmarks": benchmarks,
    "scenarios": scenarios,
    "backends": backends,
    "checkers": checkers,
}

#: Singular spellings accepted anywhere a kind is named (CLI included).
_KIND_ALIASES = {"policy": "policies", "benchmark": "benchmarks",
                 "scenario": "scenarios", "backend": "backends",
                 "checker": "checkers"}


def canonical_kind(kind: str) -> str:
    """The plural registry kind for any accepted spelling, or raise."""
    canonical = _KIND_ALIASES.get(kind, kind)
    if canonical not in KINDS:
        known = ", ".join(sorted(KINDS))
        raise RegistryError(
            f"unknown registry kind {kind!r}; known kinds: {known}")
    return canonical


def registry_for(kind: str) -> Registry:
    """The registry for ``kind`` (singular or plural spelling)."""
    return KINDS[canonical_kind(kind)]


def register(kind: str, name: str, obj: Any, *,
             overwrite: bool = False) -> Any:
    """Register ``obj`` as ``name`` in the ``kind`` registry."""
    return registry_for(kind).register(name, obj, overwrite=overwrite)


def get(kind: str, name: str) -> Any:
    """Look up ``name`` in the ``kind`` registry."""
    return registry_for(kind).get(name)


def names(kind: str) -> tuple[str, ...]:
    """All registered names of ``kind``, sorted."""
    return registry_for(kind).names()


__all__ = [
    "KINDS",
    "Registry",
    "RegistryError",
    "backends",
    "benchmarks",
    "canonical_kind",
    "checkers",
    "get",
    "names",
    "policies",
    "register",
    "registry_for",
    "scenarios",
]
