"""The paper's multiprogram workloads (Tables II and III), verbatim.

Two-thread workloads are grouped into ILP-intensive, MLP-intensive and
mixed ILP/MLP-intensive; four-thread workloads are keyed by the number of
MLP-intensive benchmarks they contain.
"""

from __future__ import annotations

from repro.workloads.registry import TABLE_I

# Table II — two-thread workloads.
TWO_THREAD_ILP: tuple[tuple[str, str], ...] = (
    ("vortex", "parser"),
    ("crafty", "twolf"),
    ("facerec", "crafty"),
    ("vpr", "sixtrack"),
    ("vortex", "gcc"),
    ("gcc", "gap"),
)

TWO_THREAD_MLP: tuple[tuple[str, str], ...] = (
    ("apsi", "mesa"),
    ("mcf", "swim"),
    ("mcf", "galgel"),
    ("wupwise", "ammp"),
    ("swim", "galgel"),
    ("lucas", "fma3d"),
    ("mesa", "galgel"),
    ("galgel", "fma3d"),
    ("applu", "swim"),
    ("mcf", "equake"),
    ("applu", "galgel"),
    ("swim", "mesa"),
)

TWO_THREAD_MIXED: tuple[tuple[str, str], ...] = (
    ("swim", "perlbmk"),
    ("galgel", "twolf"),
    ("fma3d", "twolf"),
    ("apsi", "art"),
    ("gzip", "wupwise"),
    ("apsi", "twolf"),
    ("mgrid", "vortex"),
    ("swim", "twolf"),
    ("swim", "eon"),
    ("swim", "facerec"),
    ("parser", "wupwise"),
    ("vpr", "mcf"),
    ("equake", "perlbmk"),
    ("applu", "vortex"),
    ("art", "mgrid"),
    ("equake", "art"),
    ("parser", "ammp"),
    ("facerec", "mcf"),
)

TWO_THREAD_WORKLOADS: dict[str, tuple[tuple[str, str], ...]] = {
    "ILP": TWO_THREAD_ILP,
    "MLP": TWO_THREAD_MLP,
    "MIX": TWO_THREAD_MIXED,
}

# Table III — four-thread workloads, keyed by #MLP-intensive benchmarks.
FOUR_THREAD_WORKLOADS: dict[int, tuple[tuple[str, str, str, str], ...]] = {
    0: (
        ("vortex", "parser", "crafty", "twolf"),
        ("facerec", "crafty", "vpr", "sixtrack"),
        ("swim", "perlbmk", "vortex", "gcc"),
        ("galgel", "twolf", "gcc", "gap"),
        ("fma3d", "twolf", "vortex", "parser"),
    ),
    1: (
        ("apsi", "art", "crafty", "twolf"),
        ("gzip", "wupwise", "facerec", "crafty"),
        ("apsi", "twolf", "vpr", "sixtrack"),
        ("mgrid", "vortex", "swim", "twolf"),
        ("swim", "eon", "perlbmk", "mesa"),
        ("parser", "wupwise", "vpr", "mcf"),
    ),
    2: (
        ("equake", "perlbmk", "applu", "vortex"),
        ("art", "mgrid", "applu", "galgel"),
        ("parser", "ammp", "facerec", "mcf"),
        ("swim", "perlbmk", "galgel", "twolf"),
        ("fma3d", "twolf", "apsi", "art"),
        ("gzip", "wupwise", "apsi", "twolf"),
        ("equake", "art", "parser", "ammp"),
        ("apsi", "mesa", "swim", "eon"),
        ("mcf", "swim", "perlbmk", "mesa"),
        ("mcf", "galgel", "vortex", "gcc"),
    ),
    3: (
        ("wupwise", "ammp", "vpr", "mcf"),
        ("swim", "galgel", "parser", "wupwise"),
        ("lucas", "fma3d", "equake", "perlbmk"),
        ("mesa", "galgel", "applu", "vortex"),
        ("galgel", "fma3d", "art", "mgrid"),
        ("applu", "swim", "mcf", "equake"),
    ),
    4: (
        ("applu", "galgel", "swim", "mesa"),
        ("apsi", "mesa", "mcf", "swim"),
        ("mcf", "galgel", "wupwise", "ammp"),
    ),
}

# Note: Table III in the paper lists some workloads (e.g. mgrid-vortex-swim-
# twolf under #MLP=1) whose #MLP count per Table I's classification differs;
# we keep the paper's grouping verbatim.


def workload_category(names: tuple[str, ...]) -> str:
    """Classify a workload as ILP, MLP or MIX from its members' Table I class."""
    kinds = {TABLE_I[n].category for n in names}
    if kinds == {"ILP"}:
        return "ILP"
    if kinds == {"MLP"}:
        return "MLP"
    return "MIX"


def all_two_thread_workloads() -> list[tuple[str, str]]:
    return [w for group in TWO_THREAD_WORKLOADS.values() for w in group]


def all_four_thread_workloads() -> list[tuple[str, str, str, str]]:
    return [w for group in FOUR_THREAD_WORKLOADS.values() for w in group]
