"""The 26 SPEC CPU2000 benchmark analogs, calibrated against Table I.

``TABLE_I`` records the paper's published characterization (long-latency
loads per 1K instructions, MLP, MLP impact, ILP/MLP class) for each
benchmark; the specs below are tuned so the simulated analogs land close to
those targets on the baseline processor.  The calibration evidence lives in
``benchmarks/bench_table1_fig1.py`` and EXPERIMENTS.md.

Design notes per class of benchmark:

* High-rate streaming FP codes (swim, applu, fma3d, lucas, mgrid) use more
  concurrent streams than the 8 stream buffers can track, so the prefetcher
  covers only part of the traffic — as for the real codes.
* mcf/equake/ammp derive (part of) their misses from pointer chases, which
  the stream prefetcher cannot cover and whose dependences bound MLP.
* Low-rate/high-MLP codes (art, apsi, galgel, mesa, sixtrack) use clustered
  bursts: a handful of independent random loads every N iterations.
* ILP codes touch small working sets with rare isolated misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.spec import BenchmarkSpec


@dataclass(frozen=True)
class TableIRow:
    """Published Table I values for one benchmark."""

    lll_per_kilo: float
    mlp: float
    mlp_impact: float   # fraction, e.g. 0.6039 for mcf
    category: str       # "ILP" or "MLP"


TABLE_I: dict[str, TableIRow] = {
    "bzip2": TableIRow(0.14, 1.00, 0.0003, "ILP"),
    "crafty": TableIRow(0.08, 1.34, 0.0129, "ILP"),
    "eon": TableIRow(0.00, 1.83, 0.0008, "ILP"),
    "gap": TableIRow(0.36, 1.02, 0.0028, "ILP"),
    "gcc": TableIRow(0.01, 1.70, 0.0022, "ILP"),
    "gzip": TableIRow(0.08, 1.81, 0.0322, "ILP"),
    "mcf": TableIRow(17.36, 5.17, 0.6039, "MLP"),
    "parser": TableIRow(0.14, 1.24, 0.0120, "ILP"),
    "perlbmk": TableIRow(0.30, 1.00, 0.0001, "ILP"),
    "twolf": TableIRow(0.10, 1.37, 0.0105, "ILP"),
    "vortex": TableIRow(0.39, 1.06, 0.0149, "ILP"),
    "vpr": TableIRow(0.09, 1.43, 0.0135, "ILP"),
    "ammp": TableIRow(1.71, 3.94, 0.4025, "MLP"),
    "applu": TableIRow(14.24, 4.26, 0.6963, "MLP"),
    "apsi": TableIRow(0.78, 6.15, 0.3541, "MLP"),
    "art": TableIRow(0.19, 8.58, 0.0734, "ILP"),
    "equake": TableIRow(24.60, 2.69, 0.5819, "MLP"),
    "facerec": TableIRow(0.41, 1.51, 0.0756, "ILP"),
    "fma3d": TableIRow(17.67, 6.27, 0.7787, "MLP"),
    "galgel": TableIRow(0.24, 3.84, 0.1424, "MLP"),
    "lucas": TableIRow(10.63, 2.15, 0.4640, "MLP"),
    "mesa": TableIRow(0.45, 2.88, 0.1964, "MLP"),
    "mgrid": TableIRow(6.04, 1.76, 0.3584, "MLP"),
    "sixtrack": TableIRow(0.10, 2.61, 0.0492, "ILP"),
    "swim": TableIRow(15.08, 3.66, 0.6747, "MLP"),
    "wupwise": TableIRow(2.00, 2.20, 0.3681, "MLP"),
}

#: Paper classification (rightmost column of Table I).
MLP_BENCHMARKS = tuple(sorted(n for n, r in TABLE_I.items()
                              if r.category == "MLP"))
ILP_BENCHMARKS = tuple(sorted(n for n, r in TABLE_I.items()
                              if r.category == "ILP"))


BENCHMARKS: dict[str, BenchmarkSpec] = {
    # ------------------------------------------------------------------ #
    # SPEC CINT2000 analogs (ILP class).  Rare isolated (or small-burst)
    # misses over a large footprint; mostly cache-resident integer work
    # with realistic branch densities.  LLL/1K = 1000*burst/(every*body).
    # ------------------------------------------------------------------ #
    "bzip2": BenchmarkSpec(
        "bzip2", burst_loads=1, burst_every=55, hot_loads=10, stores=3,
        int_ops=108, cond_branches=6, branch_taken_prob=0.25,
        dep_chain_frac=0.5),                                  # body 130
    "crafty": BenchmarkSpec(
        "crafty", burst_loads=1, burst_every=100, hot_loads=14, stores=3,
        int_ops=95, cond_branches=10, branch_taken_prob=0.35),  # body 125
    "eon": BenchmarkSpec(
        "eon", fp_data=True, burst_loads=2, burst_every=2200, hot_loads=12,
        stores=4, int_ops=20, fp_ops=18, cond_branches=5,
        branch_taken_prob=0.15),                              # body 63
    "gap": BenchmarkSpec(
        "gap", burst_loads=1, burst_every=22, hot_loads=12, stores=3,
        int_ops=100, cond_branches=5, branch_taken_prob=0.12),  # body 123
    "gcc": BenchmarkSpec(
        "gcc", burst_loads=2, burst_every=1300, hot_loads=16, stores=5,
        int_ops=100, cond_branches=12, branch_taken_prob=0.3,
        dep_chain_frac=0.4),                                  # body 137
    "gzip": BenchmarkSpec(
        "gzip", burst_loads=2, burst_every=190, hot_loads=10, stores=3,
        int_ops=100, cond_branches=6, branch_taken_prob=0.3,
        dep_chain_frac=0.5),                                  # body 123
    "parser": BenchmarkSpec(
        "parser", burst_loads=1, burst_every=55, hot_loads=13, stores=3,
        int_ops=100, cond_branches=9, branch_taken_prob=0.3),   # body 128
    "perlbmk": BenchmarkSpec(
        "perlbmk", burst_loads=1, burst_every=26, hot_loads=12, stores=4,
        int_ops=100, cond_branches=7, branch_taken_prob=0.2),   # body 126
    "twolf": BenchmarkSpec(
        "twolf", burst_loads=1, burst_every=70, hot_loads=13, stores=3,
        int_ops=100, cond_branches=9, branch_taken_prob=0.35),  # body 128
    "vortex": BenchmarkSpec(
        "vortex", burst_loads=1, burst_every=20, hot_loads=14, stores=5,
        int_ops=100, cond_branches=6, branch_taken_prob=0.15),  # body 128
    "vpr": BenchmarkSpec(
        "vpr", burst_loads=1, burst_every=80, hot_loads=12, stores=3,
        int_ops=100, cond_branches=8, branch_taken_prob=0.3),   # body 126
    # ------------------------------------------------------------------ #
    # SPEC CFP2000 analogs.  Streaming codes miss once per line per array
    # (stride 8B over 64B lines => streams/8 misses per iteration);
    # pointer codes miss once per chain step; burst codes issue clustered
    # independent random loads every N iterations.
    # ------------------------------------------------------------------ #
    "ammp": BenchmarkSpec(
        "ammp", fp_data=True, chase_chains=4, chase_every=16,
        chase_footprint=8.0, chase_dependents=2, hot_loads=12, stores=3,
        int_ops=63, fp_ops=52, cond_branches=2, spread=0.5),  # body 146
    "applu": BenchmarkSpec(
        "applu", fp_data=True, streams=8, stream_stride=16,
        stream_stagger=0.8, hot_loads=8, stores=2, stream_stores=1,
        int_ops=68, fp_ops=42, cond_branches=1),              # body 140
    "apsi": BenchmarkSpec(
        "apsi", fp_data=True, burst_loads=7, burst_every=60, hot_loads=10,
        stores=3, int_ops=12, fp_ops=114, cond_branches=2,
        spread=0.35),                                         # body 150
    "art": BenchmarkSpec(
        "art", fp_data=True, burst_loads=10, burst_every=340, hot_loads=10,
        stores=2, int_ops=12, fp_ops=117, cond_branches=2,
        spread=0.3),                                          # body 155
    "equake": BenchmarkSpec(
        "equake", fp_data=True, chase_chains=2, chase_every=1,
        chase_footprint=8.0, chase_dependents=2, streams=6, stream_stride=8,
        stream_stagger=1.0, hot_loads=8, stores=2, int_ops=44, fp_ops=36,
        cond_branches=2),                                     # body 112
    "facerec": BenchmarkSpec(
        "facerec", fp_data=True, burst_loads=2, burst_every=40, hot_loads=10,
        stores=2, int_ops=10, fp_ops=94, cond_branches=2),    # body 122
    "fma3d": BenchmarkSpec(
        "fma3d", fp_data=True, streams=10, stream_stride=16,
        stream_stagger=0.55, hot_loads=8, stores=2, stream_stores=1,
        int_ops=68, fp_ops=38, cond_branches=2),              # body 141
    "galgel": BenchmarkSpec(
        "galgel", fp_data=True, burst_loads=4, burst_every=110, hot_loads=10,
        stores=2, int_ops=10, fp_ops=122, cond_branches=2,
        spread=0.4),                                          # body 152
    "lucas": BenchmarkSpec(
        "lucas", fp_data=True, streams=2, stream_stride=8, stream_stagger=0.0,
        hot_loads=3, stores=1, int_ops=4, fp_ops=9, cond_branches=1,
        spread=0.3),                                          # body 24
    "mesa": BenchmarkSpec(
        "mesa", fp_data=True, burst_loads=3, burst_every=55, hot_loads=10,
        stores=3, int_ops=16, fp_ops=83, cond_branches=4,
        branch_taken_prob=0.15, spread=0.4),                  # body 121
    "mgrid": BenchmarkSpec(
        "mgrid", fp_data=True, streams=6, stream_stride=8, stream_stagger=0.6,
        hot_loads=8, stores=2, stream_stores=1, int_ops=54, fp_ops=44,
        cond_branches=1),                                     # body 124
    "sixtrack": BenchmarkSpec(
        "sixtrack", fp_data=True, burst_loads=3, burst_every=200,
        hot_loads=10, stores=3, int_ops=12, fp_ops=118, cond_branches=2,
        spread=0.4),                                          # body 150
    "swim": BenchmarkSpec(
        "swim", fp_data=True, streams=8, stream_stride=16, stream_stagger=1.0,
        hot_loads=8, stores=2, stream_stores=1, int_ops=65, fp_ops=38,
        cond_branches=1),                                     # body 133
    "wupwise": BenchmarkSpec(
        "wupwise", fp_data=True, streams=2, stream_stride=8,
        stream_stagger=0.0, hot_loads=10, stores=2, int_ops=59, fp_ops=46,
        cond_branches=2, spread=0.4),                         # body 125
    "mcf": BenchmarkSpec(
        # Ten parallel pointer chases spread across a 288-instruction body:
        # misses are both numerous (Table I: 17.36/1K, MLP 5.17) and far
        # apart in the instruction stream (Figure 4: mcf's MLP distance
        # extends past 100), unlike the clustered chase bursts a narrow
        # placement would produce.
        "mcf", chase_chains=10, chase_every=2, chase_footprint=8.0,
        chase_dependents=2, hot_loads=1, stores=1, int_ops=246,
        cond_branches=8, branch_taken_prob=0.3),              # body 288
}


def benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark analog by SPEC CPU2000 name.

    Routed through :data:`repro.registry.benchmarks` (seeded from
    :data:`BENCHMARKS`), so analogs registered at runtime resolve
    everywhere traces are built.  Raises ``KeyError`` for unknown names.
    """
    from repro import registry     # late: registry seeds itself from here
    return registry.benchmarks.get(name)
