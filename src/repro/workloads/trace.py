"""Deterministic, rewindable synthetic instruction traces.

A trace is a pure function of ``(spec, memory config, seed, thread base)``:
``get(i)`` returns the i-th dynamic instruction, computed statelessly from
the loop body and the iteration number.  This is what allows the pipeline to
*flush and refetch* a thread after a squash — rewinding is just re-reading
earlier indices; the regenerated instructions are bit-identical.

Address-space layout (per thread, offset by ``base``):

    code   region 0    — 4 bytes per static instruction
    hot    region 1    — small cache-resident working set
    burst  region 2
    random region 3
    chase  region 8+c  — one walk area per chain
    stout  region 24+s — streaming store targets
    stream region 32+j — one array per stream

Each region additionally gets a pseudo-random line-granular offset so that
region bases do not all alias to cache set 0 (they are 2^32-aligned
otherwise, which would put every array in the same set of every cache).
"""

from __future__ import annotations

from repro.config import MemoryConfig
from repro.isa import Instr, Op
from repro.util import mix64, uniform_double
from repro.workloads.spec import BenchmarkSpec, Slot, SlotKind, build_body

_REGION_SHIFT = 32
_CHASE_WALK_MULT = 2654435761  # Knuth multiplicative-hash constant (odd)

_INSTR_NEW = Instr.__new__


def _from_proto(proto: Instr, addr: int | None, taken: bool) -> Instr:
    """Clone a per-slot prototype with a fresh address/direction.

    ``Instr.__init__`` re-filters the source tuple on every call; for the
    iteration-varying slots only ``addr``/``taken`` actually change, so the
    fetch path clones a prototype (sharing the filtered ``srcs`` tuple)
    with six direct slot stores instead.
    """
    ins = _INSTR_NEW(Instr)
    ins.pc = proto.pc
    ins.op = proto.op
    ins.dest = proto.dest
    ins.srcs = proto.srcs
    ins.addr = addr
    ins.taken = taken
    ins.is_load = proto.is_load
    ins.is_store = proto.is_store
    ins.is_branch = proto.is_branch
    ins.has_dest = proto.has_dest
    ins.dest_fp = proto.dest_fp
    ins.op_i = proto.op_i
    ins.fp_queue = proto.fp_queue
    ins.latency = proto.latency
    return ins


class SyntheticTrace:
    """Lazy, stateless dynamic instruction stream for one thread."""

    def __init__(self, spec: BenchmarkSpec, mem_cfg: MemoryConfig,
                 seed: int = 0, base: int = 0, pc_base: int = 0):
        self.spec = spec
        self.seed = seed
        self.base = base
        self.pc_base = pc_base
        body = build_body(spec)
        if pc_base:
            body = [Slot(s.kind, pc_base + s.pc, s.op, s.dest, s.srcs,
                         s.index, s.taken_prob) for s in body]
        self.body: list[Slot] = body
        self.body_len = len(self.body)
        line = mem_cfg.line_size
        l3 = mem_cfg.l3.size
        self._line = line

        def region(idx: int) -> int:
            # The line-granular skew spreads region bases across cache sets;
            # without it every 2^32-aligned region would map to set 0.
            skew = (mix64(idx, 0xA11A5) % 4096) * line
            return base + (idx << _REGION_SHIFT) + skew

        def footprint(units: float) -> int:
            # Align the region footprint to whole lines, at least 4 lines.
            return max(int(units * l3) // line, 4) * line

        self.code_base = region(0)
        self.hot_base = region(1)
        # The hot set must stay cache-resident on scaled-down machines too:
        # cap it at half the L1D capacity.
        hot_bytes = min(spec.hot_footprint_bytes, mem_cfg.l1d.size // 2)
        self.hot_lines = max(hot_bytes // line, 1)
        stride = spec.stream_stride
        period = max(line // stride, 1)
        self.stream_fp = footprint(spec.stream_footprint)
        self.stream_bases = []
        for j in range(spec.streams):
            phase = 0
            if spec.streams:
                phase = int(j * period * spec.stream_stagger / spec.streams) % period
            self.stream_bases.append(region(32 + j) + phase * stride)
        self.chase_fp_lines = footprint(spec.chase_footprint) // line
        self.chase_bases = [region(8 + c) for c in range(spec.chase_chains)]
        self.burst_base = region(2)
        self.burst_lines = footprint(spec.burst_footprint) // line
        self.random_base = region(3)
        self.random_lines = footprint(spec.random_footprint) // line
        self.stout_bases = [region(24 + s) for s in range(spec.stream_stores)]
        self.stout_fp = footprint(spec.stream_footprint)
        # Pre-materialize instructions for slots that do not vary by
        # iteration (compute, consumers, loop-back branch), and prototypes
        # (pc/op/dest/filtered srcs) for the iteration-varying ones so
        # ``get`` clones instead of re-running ``Instr.__init__``.
        self._static: list[Instr | None] = [
            self._static_instr(slot) for slot in self.body]
        self._protos: list[Instr] = [
            self._proto_instr(slot) if static is None else static
            for slot, static in zip(self.body, self._static)]

    def _proto_instr(self, slot: Slot) -> Instr:
        """Prototype for an iteration-varying slot, one per kind.

        Field-for-field the same ``Instr`` each ``get`` branch used to
        build, minus the varying ``addr``/``taken``: loads keep their
        destination, stores and conditional branches have none.
        """
        kind = slot.kind
        if kind in (SlotKind.STREAM_LOAD, SlotKind.HOT_LOAD,
                    SlotKind.CHASE_LOAD, SlotKind.BURST_LOAD,
                    SlotKind.RANDOM_LOAD):
            return Instr(slot.pc, Op.LOAD, slot.dest, slot.srcs)
        if kind in (SlotKind.STORE, SlotKind.STREAM_STORE):
            return Instr(slot.pc, Op.STORE, None, slot.srcs)
        if kind is SlotKind.COND_BRANCH:
            return Instr(slot.pc, Op.BRANCH, None, slot.srcs)
        raise AssertionError(
            f"unhandled slot kind {kind!r}")  # pragma: no cover

    def _static_instr(self, slot: Slot) -> Instr | None:
        kind = slot.kind
        if kind in (SlotKind.INDUCTION, SlotKind.INT_OP, SlotKind.FP_OP,
                    SlotKind.CONSUMER):
            return Instr(slot.pc, slot.op, slot.dest, slot.srcs)
        if kind is SlotKind.LOOP_BRANCH:
            return Instr(slot.pc, Op.BRANCH, None, slot.srcs, taken=True)
        return None

    def pc_address(self, pc: int) -> int:
        return self.code_base + (pc - self.pc_base) * 4

    def get(self, index: int) -> Instr:
        """The ``index``-th dynamic instruction (stateless, repeatable)."""
        body_len = self.body_len
        pos = index % body_len
        static = self._static[pos]
        if static is not None:
            # Iteration-invariant slot (compute, consumer, loop branch):
            # skip the quotient — most fetches take this path.
            return static
        iteration = index // body_len
        slot = self.body[pos]
        kind = slot.kind
        spec = self.spec
        line = self._line
        proto = self._protos[pos]
        # Hash with the *local* pc so the generated stream is identical
        # regardless of which hardware-thread slot the program occupies.
        local_pc = slot.pc - self.pc_base

        if kind is SlotKind.STREAM_LOAD:
            base = self.stream_bases[slot.index]
            addr = base + (iteration * spec.stream_stride) % self.stream_fp
            return _from_proto(proto, addr, False)

        if kind is SlotKind.HOT_LOAD:
            addr = self.hot_base + (
                (local_pc * 811 + iteration) % self.hot_lines) * line
            return _from_proto(proto, addr, False)

        if kind is SlotKind.CHASE_LOAD:
            step = iteration // spec.chase_every
            offset = (step * _CHASE_WALK_MULT + slot.index) % self.chase_fp_lines
            addr = self.chase_bases[slot.index] + offset * line
            return _from_proto(proto, addr, False)

        if kind is SlotKind.BURST_LOAD:
            if iteration % spec.burst_every == 0:
                offset = mix64(self.seed, local_pc, iteration) % self.burst_lines
                addr = self.burst_base + offset * line
            else:
                addr = self.hot_base + (
                    (local_pc * 811 + slot.index * 67) % self.hot_lines) * line
            return _from_proto(proto, addr, False)

        if kind is SlotKind.RANDOM_LOAD:
            offset = mix64(self.seed, local_pc, iteration) % self.random_lines
            addr = self.random_base + offset * line
            return _from_proto(proto, addr, False)

        if kind is SlotKind.STORE:
            addr = self.hot_base + (
                (local_pc * 811 + iteration) % self.hot_lines) * line
            return _from_proto(proto, addr, False)

        if kind is SlotKind.STREAM_STORE:
            base = self.stout_bases[slot.index]
            addr = base + (iteration * spec.stream_stride) % self.stout_fp
            return _from_proto(proto, addr, False)

        if kind is SlotKind.COND_BRANCH:
            taken = uniform_double(self.seed, local_pc, iteration) < slot.taken_prob
            return _from_proto(proto, None, taken)

        raise AssertionError(f"unhandled slot kind {kind!r}")  # pragma: no cover
