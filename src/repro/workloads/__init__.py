"""Synthetic SPEC CPU2000 benchmark analogs and the paper's workload mixes.

The paper runs SPEC CPU2000 Alpha binaries on SMTSIM.  Neither is available
here, so each benchmark is replaced by a synthetic trace generator whose
dynamic miss pattern and dependence structure is calibrated to the
benchmark's Table I characterization (long-latency loads per 1K
instructions, MLP, ILP-vs-MLP class).  The fetch policies under study only
observe those properties, which is what makes the substitution sound; see
DESIGN.md and EXPERIMENTS.md for the calibration evidence.
"""

from repro.workloads.mixes import (
    TWO_THREAD_ILP,
    TWO_THREAD_MLP,
    TWO_THREAD_MIXED,
    TWO_THREAD_WORKLOADS,
    FOUR_THREAD_WORKLOADS,
    workload_category,
)
from repro.workloads.registry import (
    BENCHMARKS,
    ILP_BENCHMARKS,
    MLP_BENCHMARKS,
    TABLE_I,
    benchmark,
)
from repro.workloads.spec import BenchmarkSpec, build_body, Slot, SlotKind
from repro.workloads.trace import SyntheticTrace

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "FOUR_THREAD_WORKLOADS",
    "ILP_BENCHMARKS",
    "MLP_BENCHMARKS",
    "Slot",
    "SlotKind",
    "SyntheticTrace",
    "TABLE_I",
    "TWO_THREAD_ILP",
    "TWO_THREAD_MLP",
    "TWO_THREAD_MIXED",
    "TWO_THREAD_WORKLOADS",
    "benchmark",
    "build_body",
    "workload_category",
]
