"""Benchmark specifications and static loop-body construction.

A benchmark analog is a loop whose body is built from four memory kernels
plus compute filler:

* **streams** — independent strided walks over large arrays.  With an 8-byte
  stride and 64-byte lines, each array misses once every 8 iterations; the
  misses of different arrays are independent, so they overlap: this is the
  source of *regular, prefetchable* MLP.
* **chase chains** — pointer chases (each load's address depends on the
  previous load of the same chain).  Chains are serial inside and parallel
  across: ``chase_chains`` controls the MLP of irregular misses, and the
  random walk defeats the stream prefetcher, like real pointer codes.
* **bursts** — every ``burst_every`` iterations, ``burst_loads`` independent
  loads touch random lines of a large region (guaranteed long-latency,
  clustered): controls MLP and miss rate independently for low-miss-rate,
  high-MLP programs such as art and apsi.
* **random/hot loads, stores, ALU ops, branches** — fill the body to the
  target length and set the instruction mix, ILP, and branch behaviour.

The long-latency load rate is ``misses-per-iteration / body length`` and the
MLP is set by how many independent misses fall within one ROB window — both
directly controlled by the parameters below.  `repro.workloads.registry`
instantiates one spec per SPEC CPU2000 benchmark, calibrated against
Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.isa import FP_REG_BASE, Op


class SlotKind(IntEnum):
    INDUCTION = 0
    STREAM_LOAD = 1
    CHASE_LOAD = 2
    BURST_LOAD = 3
    RANDOM_LOAD = 4
    HOT_LOAD = 5
    STORE = 6
    STREAM_STORE = 7
    INT_OP = 8
    FP_OP = 9
    COND_BRANCH = 10
    LOOP_BRANCH = 11
    CONSUMER = 12


@dataclass(frozen=True)
class Slot:
    """One static instruction of the loop body."""

    kind: SlotKind
    pc: int
    op: Op
    dest: int | None = None
    srcs: tuple[int, ...] = ()
    index: int = 0          # which stream / chain / burst slot this is
    taken_prob: float = 1.0  # branches only


@dataclass(frozen=True)
class BenchmarkSpec:
    """Parameters of one synthetic benchmark analog."""

    name: str
    fp_data: bool = False
    # Streaming kernels.
    streams: int = 0
    stream_stride: int = 8
    stream_footprint: float = 1.0      # per-array, in L3-capacity units
    stream_stagger: float = 1.0        # 0 = aligned misses .. 1 = spread out
    # Pointer chasing.
    chase_chains: int = 0
    chase_every: int = 1
    chase_footprint: float = 8.0
    # ALU instructions consuming each chase load's result.  They wait in
    # the issue queue for the whole miss latency, clogging it exactly the
    # way real pointer-chasing code does — the resource pressure that
    # long-latency-aware fetch policies exist to relieve.
    chase_dependents: int = 0
    # Clustered random bursts.
    burst_loads: int = 0
    burst_every: int = 64
    burst_footprint: float = 8.0
    # Scattered random loads (every iteration, partially cached).
    random_loads: int = 0
    random_footprint: float = 0.5
    # Cache-resident traffic and compute filler.
    hot_loads: int = 4
    hot_footprint_bytes: int = 4096
    stores: int = 1
    stream_stores: int = 0
    int_ops: int = 8
    fp_ops: int = 0
    dep_chain_frac: float = 0.3
    # Control flow.
    cond_branches: int = 1
    branch_taken_prob: float = 0.08
    # Placement of memory operations across the body (MLP-distance knob).
    spread: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("benchmark needs a name")
        for attr in ("streams", "chase_chains", "burst_loads", "random_loads",
                     "hot_loads", "stores", "stream_stores", "int_ops",
                     "fp_ops", "cond_branches"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")
        if self.stream_stride <= 0 or self.chase_every <= 0 or self.burst_every <= 0:
            raise ValueError("strides and intervals must be positive")
        if not 0.0 <= self.spread <= 1.0:
            raise ValueError("spread must be within [0, 1]")
        if not 0.0 <= self.stream_stagger <= 1.0:
            raise ValueError("stream_stagger must be within [0, 1]")

    @property
    def body_length(self) -> int:
        return (1                                  # induction
                + 2 * self.streams                 # load + consumer
                + self.chase_chains * (1 + self.chase_dependents)
                + self.burst_loads
                + self.random_loads
                + self.hot_loads
                + self.stores + self.stream_stores
                + self.int_ops + self.fp_ops
                + self.cond_branches + 1)          # + loop-back branch

    @property
    def misses_per_iteration(self) -> float:
        """Expected long-latency misses per loop iteration (no prefetcher)."""
        line = 64
        per_stream = self.stream_stride / line
        return (self.streams * min(per_stream, 1.0)
                + self.chase_chains / self.chase_every
                + self.burst_loads / self.burst_every)

    @property
    def expected_lll_per_kilo(self) -> float:
        """Back-of-envelope LLL/1K-instruction rate (ignores the prefetcher)."""
        return 1000.0 * self.misses_per_iteration / self.body_length


# Architectural register allocation for generated bodies.
R_IND = 1      # loop induction variable
R_INV = 2      # loop-invariant operand
R_VAL = 3      # store data
_INT_SCRATCH = (4, 5, 6, 7)
_FP_SCRATCH = tuple(FP_REG_BASE + r for r in (4, 5, 6, 7))
_INT_POOL_START = 8
_FP_POOL_START = FP_REG_BASE + 8


def build_body(spec: BenchmarkSpec) -> list[Slot]:
    """Materialize the static loop body for ``spec``.

    Memory operations are placed across the first ``spread`` fraction of the
    body (evenly spaced); compute fills the gaps.  The loop-back branch is
    always last, the induction update always first.
    """
    int_reg = _INT_POOL_START
    fp_reg = _FP_POOL_START

    def next_int() -> int:
        nonlocal int_reg
        reg = int_reg
        int_reg = int_reg + 1 if int_reg + 1 < FP_REG_BASE else _INT_POOL_START
        return reg

    def next_fp() -> int:
        nonlocal fp_reg
        reg = fp_reg
        fp_reg = fp_reg + 1 if fp_reg + 1 < 2 * FP_REG_BASE else _FP_POOL_START
        return reg

    mem_slots: list[Slot] = []
    compute_slots: list[Slot] = []
    consumer_op = Op.FALU if spec.fp_data else Op.IALU

    for j in range(spec.streams):
        dest = next_fp() if spec.fp_data else next_int()
        mem_slots.append(Slot(SlotKind.STREAM_LOAD, 0, Op.LOAD, dest,
                              (R_IND,), index=j))
        scratch = (_FP_SCRATCH if spec.fp_data else _INT_SCRATCH)
        compute_slots.append(Slot(SlotKind.CONSUMER, 0, consumer_op,
                                  scratch[j % len(scratch)], (dest,), index=j))
    for c in range(spec.chase_chains):
        reg = next_int()
        mem_slots.append(Slot(SlotKind.CHASE_LOAD, 0, Op.LOAD, reg, (reg,),
                              index=c))
        for d in range(spec.chase_dependents):
            compute_slots.append(Slot(
                SlotKind.CONSUMER, 0, Op.IALU,
                _INT_SCRATCH[(c + d) % len(_INT_SCRATCH)], (reg,), index=c))
    for b in range(spec.burst_loads):
        dest = next_int()
        mem_slots.append(Slot(SlotKind.BURST_LOAD, 0, Op.LOAD, dest, (R_IND,),
                              index=b))
    for r in range(spec.random_loads):
        mem_slots.append(Slot(SlotKind.RANDOM_LOAD, 0, Op.LOAD, next_int(),
                              (R_IND,), index=r))
    for h in range(spec.hot_loads):
        mem_slots.append(Slot(SlotKind.HOT_LOAD, 0, Op.LOAD, next_int(),
                              (R_IND,), index=h))
    for s in range(spec.stores):
        mem_slots.append(Slot(SlotKind.STORE, 0, Op.STORE, None,
                              (R_VAL, R_IND), index=s))
    for s in range(spec.stream_stores):
        mem_slots.append(Slot(SlotKind.STREAM_STORE, 0, Op.STORE, None,
                              (R_VAL, R_IND), index=s))

    prev_dest = R_INV
    for k in range(spec.int_ops):
        op = Op.IMUL if k % 7 == 6 else Op.IALU
        src = prev_dest if (k % 10) < spec.dep_chain_frac * 10 else R_INV
        dest = _INT_SCRATCH[k % len(_INT_SCRATCH)]
        compute_slots.append(Slot(SlotKind.INT_OP, 0, op, dest,
                                  (src, R_IND), index=k))
        prev_dest = dest
    prev_dest = R_INV
    for k in range(spec.fp_ops):
        op = Op.FMUL if k % 5 == 4 else Op.FALU
        if (k % 10) < spec.dep_chain_frac * 10:
            src = prev_dest
        elif k % 2 == 0:
            # Root half the chains at a scratch register: its most recent
            # writer is a stream-load consumer or an earlier FP op, so the
            # compute transitively depends on loaded data.  During a
            # long-latency miss these instructions wait in the FP issue
            # queue, raising the thread's icount — the self-limiting
            # behaviour ICOUNT relies on in real floating-point codes.
            # The other half works on loop-invariant accumulators.
            src = _FP_SCRATCH[(k + 1) % len(_FP_SCRATCH)]
        else:
            src = R_INV
        dest = _FP_SCRATCH[k % len(_FP_SCRATCH)]
        compute_slots.append(Slot(SlotKind.FP_OP, 0, op, dest, (src,),
                                  index=k))
        prev_dest = dest
    for k in range(spec.cond_branches):
        src = _INT_SCRATCH[k % len(_INT_SCRATCH)]
        compute_slots.append(Slot(SlotKind.COND_BRANCH, 0, Op.BRANCH, None,
                                  (src,), index=k,
                                  taken_prob=spec.branch_taken_prob))

    interior = _place(mem_slots, compute_slots, spec.spread)
    body = [Slot(SlotKind.INDUCTION, 0, Op.IALU, R_IND, (R_IND,))]
    body.extend(interior)
    body.append(Slot(SlotKind.LOOP_BRANCH, 0, Op.BRANCH, None, (R_IND,),
                     taken_prob=1.0))
    return [_with_pc(slot, pc) for pc, slot in enumerate(body)]


def _with_pc(slot: Slot, pc: int) -> Slot:
    return Slot(slot.kind, pc, slot.op, slot.dest, slot.srcs, slot.index,
                slot.taken_prob)


def _place(mem: list[Slot], compute: list[Slot], spread: float) -> list[Slot]:
    """Distribute memory slots over the leading ``spread`` of the body."""
    total = len(mem) + len(compute)
    if not mem:
        return list(compute)
    if not compute:
        return list(mem)
    span = max(len(mem), int(round(total * spread)))
    span = min(span, total)
    positions = {int(k * span / len(mem)) for k in range(len(mem))}
    # Collisions shift right so every mem slot gets a unique position.
    result: list[Slot | None] = [None] * total
    mem_iter = iter(mem)
    placed = 0
    for pos in sorted(positions):
        while pos < total and result[pos] is not None:
            pos += 1
        if pos < total:
            result[pos] = next(mem_iter)
            placed += 1
    compute_iter = iter(compute)
    remaining_mem = list(mem_iter)
    fill = remaining_mem + list(compute_iter)
    fill_iter = iter(fill)
    for idx in range(total):
        if result[idx] is None:
            result[idx] = next(fill_iter)
    return [slot for slot in result if slot is not None]
