"""Monospaced charts for terminal output.

Pure string formatting — no terminal control codes, so output is safe to
tee into logs and EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

_BAR = "█"
_HALF = "▌"


def _scaled_bar(value: float, vmax: float, width: int) -> str:
    if vmax <= 0 or value <= 0:
        return ""
    cells = value / vmax * width
    whole = int(cells)
    return _BAR * whole + (_HALF if cells - whole >= 0.5 else "")


def hbar_chart(items: Iterable[tuple[str, float]], width: int = 40,
               title: str | None = None, fmt: str = "{:.3f}") -> str:
    """Horizontal bar chart of ``(label, value)`` pairs.

    >>> print(hbar_chart([("a", 2.0), ("b", 1.0)], width=4))
    a  ████ 2.000
    b  ██   1.000
    """
    items = list(items)
    if not items:
        return "(no data)"
    label_w = max(len(label) for label, _ in items)
    vmax = max((value for _, value in items), default=0.0)
    value_w = max(len(fmt.format(value)) for _, value in items)
    lines = [] if title is None else [title]
    for label, value in items:
        bar = _scaled_bar(value, vmax, width)
        lines.append(f"{label:<{label_w}}  {bar:<{width}} "
                     f"{fmt.format(value):>{value_w}}")
    return "\n".join(lines)


def grouped_hbar_chart(groups: Mapping[str, Mapping[str, float]],
                       width: int = 40, title: str | None = None,
                       fmt: str = "{:.3f}") -> str:
    """Bar chart with one sub-bar per series inside each labelled group.

    ``groups`` maps a group label (e.g. a workload mix) to an ordered
    mapping of series label (e.g. a policy) to value — the layout of the
    paper's Figures 9/10/13/14.
    """
    if not groups:
        return "(no data)"
    series_w = max(len(s) for g in groups.values() for s in g)
    vmax = max((v for g in groups.values() for v in g.values()), default=0.0)
    lines = [] if title is None else [title]
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            bar = _scaled_bar(value, vmax, width)
            lines.append(f"  {name:<{series_w}}  {bar:<{width}} "
                         f"{fmt.format(value)}")
    return "\n".join(lines)


def cdf_chart(series: Mapping[str, list[float]], width: int = 60,
              height: int = 12, title: str | None = None,
              x_label: str = "") -> str:
    """Cumulative-distribution line plot (Figure 4's layout).

    Each entry of ``series`` is a sample list; the chart plots, per
    series, the fraction of samples ≤ x over the common x-range.  Series
    are drawn with distinct glyphs and later series overdraw earlier ones
    where they collide.
    """
    series = {k: sorted(v) for k, v in series.items() if v}
    if not series:
        return "(no data)"
    x_max = max(v[-1] for v in series.values())
    x_min = 0.0
    span = (x_max - x_min) or 1.0
    glyphs = "*o+x#@%&"
    grid = [[" "] * width for _ in range(height)]

    def fraction_le(samples: list[float], x: float) -> float:
        # binary search would be cleaner but samples are tiny here
        count = 0
        for s in samples:
            if s <= x:
                count += 1
            else:
                break
        return count / len(samples)

    for idx, (name, samples) in enumerate(series.items()):
        glyph = glyphs[idx % len(glyphs)]
        for col in range(width):
            x = x_min + span * (col + 1) / width
            frac = fraction_le(samples, x)
            row = min(height - 1, int((1.0 - frac) * (height - 1) + 0.5))
            grid[row][col] = glyph
    lines = [] if title is None else [title]
    for row_idx, row in enumerate(grid):
        frac = 1.0 - row_idx / (height - 1)
        lines.append(f"{frac:>4.0%} |" + "".join(row))
    lines.append("     +" + "-" * width)
    left = f"{x_min:.0f}"
    right = f"{x_max:.0f}"
    pad = width - len(left) - len(right)
    lines.append("      " + left + " " * max(pad, 1) + right)
    if x_label:
        lines.append(f"      ({x_label})")
    legend = "   ".join(f"{glyphs[i % len(glyphs)]} {name}"
                        for i, name in enumerate(series))
    lines.append("      " + legend)
    return "\n".join(lines)
