"""Aligned text and Markdown tables."""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _stringify(rows: Iterable[Sequence[object]]) -> list[list[str]]:
    out = []
    for row in rows:
        out.append([cell if isinstance(cell, str)
                    else f"{cell:.3f}" if isinstance(cell, float)
                    else str(cell)
                    for cell in row])
    return out


def _widths(headers: Sequence[str], rows: list[list[str]]) -> list[int]:
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    return widths


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 aligns: str | None = None) -> str:
    """Column-aligned plain-text table.

    ``aligns`` is one character per column: ``<`` left (default for the
    first column), ``>`` right (default for the rest).  Floats render with
    three decimals.
    """
    str_rows = _stringify(rows)
    widths = _widths(headers, str_rows)
    if aligns is None:
        aligns = "<" + ">" * (len(headers) - 1)
    if len(aligns) != len(headers):
        raise ValueError("need one alignment per column")

    def render(cells: Sequence[str]) -> str:
        return "  ".join(f"{c:{a}{w}}"
                         for c, a, w in zip(cells, aligns, widths))

    lines = [render(headers), "  ".join("-" * w for w in widths)]
    lines.extend(render(row) for row in str_rows)
    return "\n".join(lines)


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                   aligns: str | None = None) -> str:
    """GitHub-flavoured Markdown table (used by EXPERIMENTS.md)."""
    str_rows = _stringify(rows)
    if aligns is None:
        aligns = "<" + ">" * (len(headers) - 1)
    if len(aligns) != len(headers):
        raise ValueError("need one alignment per column")
    sep = ["---" if a == "<" else "---:" for a in aligns]
    lines = ["| " + " | ".join(headers) + " |",
             "| " + " | ".join(sep) + " |"]
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
