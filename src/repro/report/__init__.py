"""Plain-text rendering of experiment results.

Benches, examples, the CLI and the EXPERIMENTS.md generator all share
these helpers so every figure of the paper has a consistent terminal
rendering:

* :func:`hbar_chart` / :func:`grouped_hbar_chart` — horizontal bar charts
  (the paper's STP/ANTT/IPC bar figures);
* :func:`cdf_chart` — monospaced line plot of cumulative distributions
  (Figure 4);
* :func:`format_table` / :func:`markdown_table` — aligned tables for
  terminal output and for EXPERIMENTS.md.
"""

from repro.report.charts import cdf_chart, grouped_hbar_chart, hbar_chart
from repro.report.tables import format_table, markdown_table

__all__ = [
    "cdf_chart",
    "format_table",
    "grouped_hbar_chart",
    "hbar_chart",
    "markdown_table",
]
