"""2K-entry gshare direction predictor (Table IV).

The pattern-history table (2-bit saturating counters) is shared between
hardware threads, as in real SMT front ends; the global-history register is
per-thread — interleaving two threads' outcomes into one history register
would destroy both threads' predictability.
"""

from __future__ import annotations


class GShare:
    """Global-history XOR PC indexed table of 2-bit saturating counters."""

    __slots__ = ("_table", "_entries", "_history", "_history_mask",
                 "predictions", "mispredictions")

    def __init__(self, entries: int = 2048, num_threads: int = 1):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("gshare entries must be a positive power of two")
        if num_threads < 1:
            raise ValueError("need at least one thread")
        self._entries = entries
        self._table = [2] * entries      # weakly taken
        self._history = [0] * num_threads
        self._history_mask = entries - 1
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, pc: int, thread: int = 0) -> bool:
        idx = (pc ^ self._history[thread]) & self._history_mask
        return self._table[idx] >= 2

    def update(self, pc: int, taken: bool, thread: int = 0) -> bool:
        """Predict-and-train on one resolved branch; returns the prediction."""
        history = self._history[thread]
        idx = (pc ^ history) & self._history_mask
        counter = self._table[idx]
        prediction = counter >= 2
        if taken:
            if counter < 3:
                self._table[idx] = counter + 1
        else:
            if counter > 0:
                self._table[idx] = counter - 1
        self._history[thread] = ((history << 1) | int(taken)) \
            & self._history_mask
        self.predictions += 1
        if prediction != taken:
            self.mispredictions += 1
        return prediction

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
