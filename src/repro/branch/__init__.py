"""Branch prediction: gshare direction predictor and a set-associative BTB."""

from repro.branch.gshare import GShare
from repro.branch.btb import BTB

__all__ = ["GShare", "BTB"]
