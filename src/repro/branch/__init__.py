"""Branch prediction: gshare direction predictor and a set-associative BTB."""

from repro.branch.btb import BTB
from repro.branch.gshare import GShare

__all__ = ["GShare", "BTB"]
