"""256-entry 4-way set-associative branch target buffer (Table IV).

The simulator is trace-driven (targets are always architecturally known), so
the BTB contributes timing only: a taken branch that misses the BTB pays the
misprediction redirect because the front end cannot follow it.
"""

from __future__ import annotations


class BTB:
    __slots__ = ("_sets", "_num_sets", "_assoc", "hits", "misses")

    def __init__(self, entries: int = 256, assoc: int = 4):
        if entries % assoc:
            raise ValueError("entries must divide evenly into ways")
        self._num_sets = entries // assoc
        self._assoc = assoc
        # Insertion-ordered by recency: the first key is the LRU way, so
        # eviction is O(1) (identical victim choice to the stamp scan).
        self._sets: list[dict[int, int]] = [dict() for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> bool:
        """True when the branch has a BTB entry (target known at fetch)."""
        s = self._sets[pc % self._num_sets]
        if pc in s:
            del s[pc]          # move to the most-recent end
            s[pc] = 0
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, pc: int) -> None:
        s = self._sets[pc % self._num_sets]
        if pc in s:
            del s[pc]
        elif len(s) >= self._assoc:
            del s[next(iter(s))]
        s[pc] = 0
