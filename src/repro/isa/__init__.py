"""Abstract micro-op ISA used by the synthetic traces and the pipeline."""

from repro.isa.instruction import (
    FP_REG_BASE,
    NUM_ARCH_REGS,
    EXEC_LATENCY,
    FU_CLASS,
    FuClass,
    Instr,
    Op,
    is_fp_reg,
)

__all__ = [
    "FP_REG_BASE",
    "NUM_ARCH_REGS",
    "EXEC_LATENCY",
    "FU_CLASS",
    "FuClass",
    "Instr",
    "Op",
    "is_fp_reg",
]
