"""Abstract micro-op ISA used by the synthetic traces and the pipeline."""

from repro.isa.instruction import (
    FP_REG_BASE,
    NUM_ARCH_REGS,
    EXEC_LATENCY,
    EXEC_LATENCY_BY_OP,
    FU_CLASS,
    FU_CLASS_BY_OP,
    FuClass,
    Instr,
    Op,
    is_fp_reg,
)

__all__ = [
    "FP_REG_BASE",
    "NUM_ARCH_REGS",
    "EXEC_LATENCY",
    "EXEC_LATENCY_BY_OP",
    "FU_CLASS",
    "FU_CLASS_BY_OP",
    "FuClass",
    "Instr",
    "Op",
    "is_fp_reg",
]
