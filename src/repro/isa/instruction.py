"""Micro-op instruction model.

The simulator is timing-only: an instruction carries exactly the information
the pipeline needs — operation class, architectural register dependences, a
memory address for loads/stores, and the resolved direction for branches.
Architectural registers 0..31 are integer, 32..63 floating-point; register 0
is the hard-wired zero register (never a real dependence).
"""

from __future__ import annotations

from enum import IntEnum


NUM_ARCH_REGS = 64
FP_REG_BASE = 32
ZERO_REG = 0


class Op(IntEnum):
    """Operation classes with distinct latency / functional-unit needs."""

    IALU = 0
    IMUL = 1
    FALU = 2
    FMUL = 3
    LOAD = 4
    STORE = 5
    BRANCH = 6


class FuClass(IntEnum):
    """Functional-unit pools of Table IV (4 int ALUs, 2 ld/st, 2 FP)."""

    INT_ALU = 0
    LDST = 1
    FP = 2


#: Execution latency in cycles (loads: address generation only; the memory
#: access latency is added by the hierarchy).
EXEC_LATENCY = {
    Op.IALU: 1,
    Op.IMUL: 3,
    Op.FALU: 2,
    Op.FMUL: 4,
    Op.LOAD: 1,
    Op.STORE: 1,
    Op.BRANCH: 1,
}

FU_CLASS = {
    Op.IALU: FuClass.INT_ALU,
    Op.IMUL: FuClass.INT_ALU,
    Op.BRANCH: FuClass.INT_ALU,
    Op.LOAD: FuClass.LDST,
    Op.STORE: FuClass.LDST,
    Op.FALU: FuClass.FP,
    Op.FMUL: FuClass.FP,
}

#: Hot-path variants of the tables above: dense tuples indexed by the op's
#: integer value.  A tuple index is a single C-level operation, while the
#: dict form hashes the enum on every lookup — measurable in the
#: per-instruction issue/dispatch loops (see perf/PROFILE.md).
EXEC_LATENCY_BY_OP = tuple(EXEC_LATENCY[Op(i)] for i in range(len(Op)))
FU_CLASS_BY_OP = tuple(FU_CLASS[Op(i)] for i in range(len(Op)))


def is_fp_reg(reg: int) -> bool:
    return reg >= FP_REG_BASE


class Instr:
    """One dynamic instruction of a thread's trace.

    Attributes:
        pc: static instruction identifier (used to index predictors).
        op: operation class.
        dest: destination architectural register, or ``None``.
        srcs: source architectural registers (zero register filtered out).
        addr: byte address for loads/stores, else ``None``.
        taken: resolved branch direction (branches only).

    The class-membership flags (``is_load`` .. ``dest_fp``) are plain
    slots computed once here: every in-flight ``DynInstr`` copies them,
    so the per-fetch hot path never re-derives them from ``op``/``dest``.
    """

    __slots__ = ("pc", "op", "dest", "srcs", "addr", "taken",
                 "is_load", "is_store", "is_branch", "has_dest", "dest_fp",
                 "op_i", "fp_queue", "latency")

    def __init__(self, pc: int, op: Op, dest: int | None = None,
                 srcs: tuple[int, ...] = (), addr: int | None = None,
                 taken: bool = False):
        self.pc = pc
        self.op = op
        self.dest = dest
        self.srcs = tuple(s for s in srcs if s != ZERO_REG)
        self.addr = addr
        self.taken = taken
        self.is_load = op is Op.LOAD
        self.is_store = op is Op.STORE
        self.is_branch = op is Op.BRANCH
        self.has_dest = dest is not None
        self.dest_fp = dest is not None and dest >= FP_REG_BASE
        self.op_i = int(op)      # plain-int index into the per-op tables
        self.fp_queue = op is Op.FALU or op is Op.FMUL
        self.latency = EXEC_LATENCY[op]  # execute latency, precomputed

    @property
    def is_mem(self) -> bool:
        return self.op is Op.LOAD or self.op is Op.STORE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"pc={self.pc}", self.op.name]
        if self.dest is not None:
            parts.append(f"d=r{self.dest}")
        if self.srcs:
            parts.append("s=" + ",".join(f"r{s}" for s in self.srcs))
        if self.addr is not None:
            parts.append(f"@{self.addr:#x}")
        if self.op is Op.BRANCH:
            parts.append("T" if self.taken else "NT")
        return f"<Instr {' '.join(parts)}>"
