"""Warmup / repeat / min-of-N wall-clock timing of the canonical scenarios.

Methodology: each scenario gets one untimed priming run (OS page cache,
allocator arenas, imported-module warmup), then ``repeats`` timed runs;
the *minimum* wall time is the reported number — the run least disturbed
by scheduler noise — while the per-run times are kept for dispersion
checks.  Simulated cycles and committed instructions are recorded with
every measurement so throughput (simulated cycles per second) is
well-defined and drift in the *simulated* outcome is detectable when two
measurements are compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import gc
import time

from repro.perf.scenarios import CANONICAL_SCENARIOS, Scenario, run_scenario

#: Iterations of the calibration spin (see :func:`calibrate`).
_CALIBRATION_ITERS = 400_000


@dataclass
class BenchResult:
    """Timing of one scenario on this machine, this code version."""

    name: str
    wall_s: float                     # min over the timed repeats
    runs: list[float]                 # every timed repeat, in order
    cycles: int                       # simulated cycles (incl. warmup)
    instructions: int                 # committed instructions (measured)
    quick: bool
    policy: str = ""
    threads: int = 0
    commits: int = 0
    backend: str = "object"           # engine core that was timed

    @property
    def cycles_per_sec(self) -> float:
        return self.cycles / self.wall_s if self.wall_s else 0.0

    @property
    def kips(self) -> float:
        """Committed kilo-instructions per wall second."""
        return self.instructions / self.wall_s / 1e3 if self.wall_s else 0.0


def calibrate(iters: int = _CALIBRATION_ITERS) -> float:
    """Time a fixed pure-Python spin; a machine-speed yardstick.

    Stored alongside every baseline so that comparisons across hosts
    (laptop vs CI runner) can normalize out raw machine speed instead of
    failing on it.  Min of 3, same as the scenarios.
    """
    def spin() -> int:
        acc = 0
        d = {0: 0, 1: 1}
        for i in range(iters):
            acc += d[i & 1] + (i >> 3)
        return acc

    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        spin()
        best = min(best, time.perf_counter() - t0)
    return best


def time_scenario(sc: Scenario, repeats: int = 3, quick: bool = False,
                  backend: str = "object") -> BenchResult:
    """Prime once, then time ``repeats`` full simulations of ``sc``."""
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    # priming run (untimed)
    stats, core = run_scenario(sc, quick=quick, backend=backend)
    cycles = core.cycle
    instructions = sum(t.committed for t in stats.threads)
    runs: list[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_scenario(sc, quick=quick, backend=backend)
        runs.append(time.perf_counter() - t0)
    return BenchResult(
        name=sc.name, wall_s=min(runs), runs=runs, cycles=cycles,
        instructions=instructions, quick=quick, policy=sc.policy,
        threads=sc.num_threads, commits=sc.budget(quick),
        backend=backend)


@dataclass
class DuelResult:
    """Order-fair A/B timing of one scenario on two backends.

    The methodology perf/PROFILE.md's backend comparisons established,
    promoted from hand-run heredocs: both backends are primed untimed,
    then ``rounds`` alternations are timed with the *starting* backend
    swapped each round (so neither side systematically inherits a warmer
    cache) and a ``gc.collect()`` before every sample (so no sample pays
    for the other's garbage).  Best-of-N is the headline: the run least
    disturbed by scheduler noise, same rationale as :func:`time_scenario`.
    """

    name: str
    backends: tuple[str, str]
    samples: dict[str, list[float]]   # per backend, in sampling order
    quick: bool
    rounds: int

    def best(self, backend: str) -> float:
        return min(self.samples[backend])

    @property
    def ratio(self) -> float:
        """Best-of-N wall of the first backend over the second.

        ``> 1`` means the second backend is faster (``ratio`` times).
        """
        a, b = self.backends
        best_b = self.best(b)
        return self.best(a) / best_b if best_b else float("inf")


def duel(sc: Scenario, backends: tuple[str, str], rounds: int = 5,
         quick: bool = False) -> DuelResult:
    """Interleaved order-fair best-of-``rounds`` backend comparison."""
    if rounds < 1:
        raise ValueError("rounds must be at least 1")
    a, b = backends
    if a == b:
        raise ValueError(f"duel needs two distinct backends, got {a!r}")
    for backend in (a, b):          # priming runs (untimed)
        run_scenario(sc, quick=quick, backend=backend)
    samples: dict[str, list[float]] = {a: [], b: []}
    for rnd in range(rounds):
        for backend in ((a, b) if rnd % 2 == 0 else (b, a)):
            gc.collect()
            t0 = time.perf_counter()
            run_scenario(sc, quick=quick, backend=backend)
            samples[backend].append(time.perf_counter() - t0)
    return DuelResult(name=sc.name, backends=(a, b), samples=samples,
                      quick=quick, rounds=rounds)


@dataclass
class SuiteResult:
    """One full harness pass: every scenario plus the machine yardstick."""

    results: list[BenchResult] = field(default_factory=list)
    calibration_s: float = 0.0
    quick: bool = False
    backend: str = "object"

    def by_name(self) -> dict[str, BenchResult]:
        return {r.name: r for r in self.results}


def run_suite(scenarios: tuple[Scenario, ...] = CANONICAL_SCENARIOS,
              repeats: int = 3, quick: bool = False,
              backend: str = "object", progress=None) -> SuiteResult:
    """Time every scenario (min-of-``repeats``) plus the calibration spin."""
    suite = SuiteResult(quick=quick, backend=backend,
                        calibration_s=calibrate())
    for sc in scenarios:
        if progress is not None:
            progress(f"[perf] {sc.name}: {sc.num_threads}t {sc.policy} "
                     f"x{sc.budget(quick)} commits ({backend}) ...")
        result = time_scenario(sc, repeats=repeats, quick=quick,
                               backend=backend)
        suite.results.append(result)
        if progress is not None:
            progress(f"[perf]   {result.wall_s:.3f}s  "
                     f"{result.cycles_per_sec / 1e3:.1f} kcyc/s")
    return suite
