"""One-command cProfile of a canonical scenario (``repro perf profile``).

Wraps the recipe that used to live as a heredoc in ``perf/PROFILE.md``:
prime the scenario once (imports, allocator arenas, page cache), then
profile a second full run and report the top-N frames by the chosen sort
key.  Having it as a CLI verb makes every profile table in the docs
regenerable with one command::

    python -m repro perf profile smt8_mlp_flush_stress --top 15

Interpretation note (also in ``perf/PROFILE.md``): cProfile inflates
call-heavy frames ~3-4x relative to wall time, so use these tables for
*shape* — which frames dominate, how call counts move — and ``repro perf
compare`` for magnitudes.
"""

from __future__ import annotations

import cProfile
import io
import pstats

from repro.perf.scenarios import Scenario, run_scenario, scenario_by_name

#: Sort keys accepted by ``repro perf profile --sort`` (a curated subset
#: of ``pstats`` keys; these are the two that make sense for the
#: simulator's flat, non-recursive hot loop).
PROFILE_SORTS = ("tottime", "cumtime")


class ProfileReport:
    """Parsed outcome of one profiled scenario run."""

    __slots__ = ("scenario", "quick", "sort", "top", "text",
                 "total_calls", "total_time", "backend")

    def __init__(self, scenario: Scenario, quick: bool, sort: str,
                 top: int, text: str, total_calls: int,
                 total_time: float, backend: str = "object"):
        self.scenario = scenario
        self.quick = quick
        self.sort = sort
        self.top = top
        self.text = text
        self.total_calls = total_calls
        self.total_time = total_time
        self.backend = backend


def profile_scenario(name: str, top: int = 15, sort: str = "tottime",
                     quick: bool = False,
                     backend: str = "object") -> ProfileReport:
    """Prime, then profile one canonical scenario; returns the report.

    Raises ``KeyError`` for an unknown scenario name (same lookup the
    rest of the perf tooling uses) and ``ValueError`` for an unsupported
    sort key.
    """
    if sort not in PROFILE_SORTS:
        raise ValueError(
            f"unsupported sort {sort!r}; choose one of "
            f"{', '.join(PROFILE_SORTS)}")
    if top < 1:
        raise ValueError("top must be at least 1")
    sc = scenario_by_name(name)
    # priming run (unprofiled)
    run_scenario(sc, quick=quick, backend=backend)
    profiler = cProfile.Profile()
    profiler.enable()
    run_scenario(sc, quick=quick, backend=backend)
    profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats(sort).print_stats(top)
    return ProfileReport(
        scenario=sc, quick=quick, sort=sort, top=top,
        text=buf.getvalue(), total_calls=stats.total_calls,
        total_time=stats.total_tt, backend=backend)


def format_report(report: ProfileReport) -> str:
    """The report as the CLI prints it."""
    sc = report.scenario
    mode = ("quick" if report.quick else "full") + " mode"
    if report.backend != "object":
        mode += f", {report.backend} backend"
    header = (
        f"cProfile: {sc.name} ({sc.num_threads}t {sc.policy}, "
        f"{sc.budget(report.quick)} commits, {mode})\n"
        f"total: {report.total_time:.3f}s profiled, "
        f"{report.total_calls} function calls "
        f"(cProfile inflates call-heavy frames ~3-4x; gate claimed wins "
        f"with `repro perf compare`)\n")
    return header + report.text
