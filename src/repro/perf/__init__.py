"""Simulator-throughput benchmarking: scenarios, timing, baselines.

``repro perf run`` times the canonical scenario suite; ``repro perf
compare`` gates a fresh run against the committed ``BENCH_perf.json``;
``repro perf update`` refreshes that baseline.  See EXPERIMENTS.md
("Perf baselines") for the workflow.
"""

from repro.perf.baselines import (
    BASELINE_NAME,
    DEFAULT_MAX_REGRESSION,
    SCHEMA,
    BaselineError,
    CompareReport,
    ScenarioDelta,
    baseline_path,
    compare,
    load_baseline,
    mode_name,
    suite_to_doc,
    validate_doc,
    write_baseline,
)
from repro.perf.harness import (
    BenchResult,
    DuelResult,
    SuiteResult,
    calibrate,
    duel,
    run_suite,
    time_scenario,
)
from repro.perf.profiling import (
    PROFILE_SORTS,
    ProfileReport,
    format_report,
    profile_scenario,
)
from repro.perf.scenarios import (
    CANONICAL_2T,
    CANONICAL_SCENARIOS,
    Scenario,
    run_scenario,
    scenario_by_name,
)

__all__ = [
    "BASELINE_NAME",
    "CANONICAL_2T",
    "CANONICAL_SCENARIOS",
    "DEFAULT_MAX_REGRESSION",
    "SCHEMA",
    "BaselineError",
    "BenchResult",
    "CompareReport",
    "DuelResult",
    "PROFILE_SORTS",
    "ProfileReport",
    "Scenario",
    "ScenarioDelta",
    "SuiteResult",
    "baseline_path",
    "calibrate",
    "compare",
    "duel",
    "format_report",
    "load_baseline",
    "mode_name",
    "profile_scenario",
    "run_scenario",
    "run_suite",
    "scenario_by_name",
    "suite_to_doc",
    "time_scenario",
    "validate_doc",
    "write_baseline",
]
