"""Golden architectural stats: the cycle-exactness contract.

Hot-loop optimizations in :mod:`repro.pipeline.core` are only admissible
if they are *cycle-exact* — same committed-cycle counts, same IPC, same
flush and stall counters, for every policy class.  This module defines a
fixed-seed scenario matrix ({1,2,4,8} threads x every paper policy:
{icount, stall, pred_stall, flush, mlp_stall, mlp_flush, dcra,
mlp_dcra}) and serializes each cell's :class:`repro.pipeline.stats.
CoreStats` to a stable dict.  ``tests/test_golden_stats.py`` compares a
fresh simulation of every cell against the committed fixture
``tests/golden/golden_stats.json``, which was generated *before* the
optimizations landed.

Regenerate (only when an intentional behavior change invalidates it):

    python -m repro.perf.golden tests/golden/golden_stats.json

The regenerator refuses to overwrite a fixture whose ``schema`` stamp
differs from :data:`GOLDEN_SCHEMA` (a mismatch means the checkout and
the fixture disagree about what the numbers *mean*); pass ``--force``
after verifying the schema change is intentional.

The fixture is backend-independent: every selectable engine core must
reproduce it bit for bit, so it is always *regenerated* with the default
object engine and *checked* against any backend::

    python -m repro.perf.golden --check --backend soa

``--check`` simulates every cell and compares against the committed
fixture without writing anything (exit 1 on any mismatch) — the CI leg
that holds the SoA engine to the cycle-exactness contract.
"""

from __future__ import annotations

import json
from pathlib import Path
import sys

from repro.perf.scenarios import Scenario, run_scenario

GOLDEN_SCHEMA = "repro.golden/1"

#: Policies spanning the distinct engine paths: plain rotation, fetch
#: gating (detected and front-end-predicted), flush/refetch,
#: predictor-driven MLP-aware gating and flushing, and the DCRA
#: dispatch-cap (``can_dispatch``) path, plain and MLP-weighted.  This is
#: the full paper policy set, so no policy-side hot path can be touched
#: without a golden cell noticing.
GOLDEN_POLICIES = ("icount", "stall", "pred_stall", "flush", "mlp_stall",
                   "mlp_flush", "dcra", "mlp_dcra")

#: Runahead rides on :class:`repro.runahead.RunaheadCore`, which keeps
#: its own generic commit/dispatch loops (and the self-contained
#: ``_try_dispatch``) while the base core inlines them — these cells pin
#: that second code path so the two can never silently diverge.
GOLDEN_RUNAHEAD_POLICIES = ("runahead", "mlp_runahead")

_WORKLOADS = {
    1: ("mcf",),
    2: ("mcf", "swim"),
    4: ("mgrid", "vortex", "swim", "twolf"),
    # The 8-thread stress mix (same as ``smt8_mlp_flush_stress``): twice
    # the paper's largest configuration, admissible because the shared
    # ROB (256) still divides evenly.  These cells pin the thread-count
    # regime the data-layout pass was built for.
    8: ("mcf", "swim", "mgrid", "vortex", "twolf", "equake", "art",
        "lucas"),
}


def golden_matrix() -> tuple[Scenario, ...]:
    """The fixed-seed equivalence matrix (budgets sized for test speed)."""
    base = tuple(
        Scenario(f"golden_{n}t_{policy}", workload, policy,
                 commits=1_500, warmup=400, quick_commits=1_500)
        for n, workload in sorted(_WORKLOADS.items())
        for policy in GOLDEN_POLICIES)
    runahead = tuple(
        Scenario(f"golden_2t_{policy}", _WORKLOADS[2], policy,
                 commits=1_500, warmup=400, quick_commits=1_500)
        for policy in GOLDEN_RUNAHEAD_POLICIES)
    return base + runahead


def snapshot_cell(sc: Scenario, backend: str = "object") -> dict:
    """Simulate one cell and capture every architecturally-visible count."""
    stats, core = run_scenario(sc, backend=backend)
    return {
        "workload": list(sc.workload),
        "policy": sc.policy,
        "commits": sc.commits,
        "warmup": sc.warmup,
        "cycles": stats.cycles,
        "total_cycles": core.cycle,
        "resource_stall_cycles": stats.resource_stall_cycles,
        "total_ipc": round(stats.total_ipc, 9),
        "mlp": round(stats.mlp, 9),
        "ll_interval_count": len(stats.ll_intervals),
        "threads": [
            {
                "committed": t.committed,
                "fetched": t.fetched,
                "squashed": t.squashed,
                "flushes": t.flushes,
                "loads_executed": t.loads_executed,
                "ll_loads": t.ll_loads,
                "policy_stall_cycles": t.policy_stall_cycles,
                "branch_stall_cycles": t.branch_stall_cycles,
                "runahead_entries": t.runahead_entries,
                "runahead_exits": t.runahead_exits,
                "runahead_pseudo_retired": t.runahead_pseudo_retired,
                "ipc": round(stats.ipc(i), 9),
            }
            for i, t in enumerate(stats.threads)
        ],
    }


def collect_golden(backend: str = "object") -> dict:
    return {
        "schema": GOLDEN_SCHEMA,
        "cells": {sc.name: snapshot_cell(sc, backend=backend)
                  for sc in golden_matrix()},
    }


def check_against_fixture(path: Path, backend: str = "object",
                          progress=None,
                          max_threads: int | None = None) -> list[str]:
    """Simulate every cell under ``backend``; return mismatched names.

    The bit-exactness check behind ``--check``: each cell's fresh
    snapshot must equal the committed fixture's, field for field.  Cells
    absent from the fixture count as mismatches (a matrix/fixture drift
    is a failure, not a skip).  ``max_threads`` restricts the run to
    cells with at most that many threads — a smoke subset for slow
    configurations (the sanitized CI leg); full equivalence claims use
    the whole matrix.  Raises :class:`ValueError` for a missing or
    wrong-schema fixture.
    """
    if not path.exists():
        raise ValueError(f"no golden fixture at {path}")
    check_fixture_schema(path)
    fixture = json.loads(path.read_text())["cells"]
    bad: list[str] = []
    for sc in golden_matrix():
        if max_threads is not None and sc.num_threads > max_threads:
            continue
        fresh = snapshot_cell(sc, backend=backend)
        ok = fixture.get(sc.name) == fresh
        if not ok:
            bad.append(sc.name)
        if progress is not None:
            progress(f"[golden] {sc.name} ({backend}): "
                     f"{'ok' if ok else 'MISMATCH'}")
    return bad


def check_fixture_schema(path: Path) -> None:
    """Refuse to touch a fixture stamped with a different schema.

    A schema mismatch means this checkout and the committed fixture
    disagree about what the golden numbers mean; silently regenerating
    (or comparing) across that boundary would launder a semantic change
    into a "baseline refresh".  Raises :class:`ValueError` with the two
    schema stamps; an unreadable file raises too (a corrupt fixture is
    not a license to overwrite it).
    """
    if not path.exists():
        return
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path} is not valid JSON ({exc}); inspect or delete it "
            f"before regenerating") from None
    found = doc.get("schema") if isinstance(doc, dict) else None
    if found != GOLDEN_SCHEMA:
        raise ValueError(
            f"{path} is stamped {found!r} but this checkout expects "
            f"{GOLDEN_SCHEMA!r}; re-run with --force only if the schema "
            f"change is intentional")


def _default_fixture() -> Path:
    return (Path(__file__).resolve().parents[3] / "tests" / "golden"
            / "golden_stats.json")


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    force = "--force" in argv
    check = "--check" in argv
    argv = [a for a in argv if a not in ("--force", "--check")]
    backend = "object"
    if "--backend" in argv:
        i = argv.index("--backend")
        try:
            backend = argv[i + 1]
        except IndexError:
            print("--backend requires a value", file=sys.stderr)
            return 2
        del argv[i:i + 2]
    max_threads: int | None = None
    if "--max-threads" in argv:
        i = argv.index("--max-threads")
        try:
            max_threads = int(argv[i + 1])
        except (IndexError, ValueError):
            print("--max-threads requires an integer", file=sys.stderr)
            return 2
        del argv[i:i + 2]
    out = Path(argv[0]) if argv else _default_fixture()
    if check:
        try:
            bad = check_against_fixture(out, backend=backend,
                                        progress=print,
                                        max_threads=max_threads)
        except ValueError as exc:
            print(f"cannot check: {exc}", file=sys.stderr)
            return 1
        total = sum(1 for sc in golden_matrix()
                    if max_threads is None or sc.num_threads <= max_threads)
        print(f"BAD: {len(bad)} of {total} cells ({backend} backend)"
              + (f": {', '.join(bad)}" if bad else ""))
        return 1 if bad else 0
    if max_threads is not None:
        print("--max-threads only applies to --check (the fixture is "
              "always regenerated in full)", file=sys.stderr)
        return 2
    if backend != "object":
        # The fixture is the object engine's output by definition;
        # regenerating it from another backend would make the contract
        # circular.
        print("regeneration always uses the object engine; use --check "
              "to verify another backend", file=sys.stderr)
        return 2
    if not force:
        try:
            check_fixture_schema(out)
        except ValueError as exc:
            print(f"refusing to regenerate: {exc}", file=sys.stderr)
            return 1
    out.parent.mkdir(parents=True, exist_ok=True)
    doc = collect_golden()
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(doc['cells'])} golden cells to {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - fixture regeneration entry
    raise SystemExit(main())
