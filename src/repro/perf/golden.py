"""Golden architectural stats: the cycle-exactness contract.

Hot-loop optimizations in :mod:`repro.pipeline.core` are only admissible
if they are *cycle-exact* — same committed-cycle counts, same IPC, same
flush and stall counters, for every policy class.  This module defines a
fixed-seed scenario matrix ({1,2,4} threads x {icount, stall, flush,
mlp_stall}) and serializes each cell's :class:`repro.pipeline.stats.
CoreStats` to a stable dict.  ``tests/test_golden_stats.py`` compares a
fresh simulation of every cell against the committed fixture
``tests/golden/golden_stats.json``, which was generated *before* the
optimizations landed.

Regenerate (only when an intentional behavior change invalidates it):

    python -m repro.perf.golden tests/golden/golden_stats.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.perf.scenarios import Scenario, run_scenario

GOLDEN_SCHEMA = "repro.golden/1"

#: Policies spanning the distinct engine paths: plain rotation, fetch
#: gating, flush/refetch, and predictor-driven MLP-aware gating.
GOLDEN_POLICIES = ("icount", "stall", "flush", "mlp_stall")

#: Runahead rides on :class:`repro.runahead.RunaheadCore`, which keeps
#: its own generic commit/dispatch loops (and the self-contained
#: ``_try_dispatch``) while the base core inlines them — these cells pin
#: that second code path so the two can never silently diverge.
GOLDEN_RUNAHEAD_POLICIES = ("runahead", "mlp_runahead")

_WORKLOADS = {
    1: ("mcf",),
    2: ("mcf", "swim"),
    4: ("mgrid", "vortex", "swim", "twolf"),
}


def golden_matrix() -> tuple[Scenario, ...]:
    """The fixed-seed equivalence matrix (budgets sized for test speed)."""
    base = tuple(
        Scenario(f"golden_{n}t_{policy}", workload, policy,
                 commits=1_500, warmup=400, quick_commits=1_500)
        for n, workload in sorted(_WORKLOADS.items())
        for policy in GOLDEN_POLICIES)
    runahead = tuple(
        Scenario(f"golden_2t_{policy}", _WORKLOADS[2], policy,
                 commits=1_500, warmup=400, quick_commits=1_500)
        for policy in GOLDEN_RUNAHEAD_POLICIES)
    return base + runahead


def snapshot_cell(sc: Scenario) -> dict:
    """Simulate one cell and capture every architecturally-visible count."""
    stats, core = run_scenario(sc)
    return {
        "workload": list(sc.workload),
        "policy": sc.policy,
        "commits": sc.commits,
        "warmup": sc.warmup,
        "cycles": stats.cycles,
        "total_cycles": core.cycle,
        "resource_stall_cycles": stats.resource_stall_cycles,
        "total_ipc": round(stats.total_ipc, 9),
        "mlp": round(stats.mlp, 9),
        "ll_interval_count": len(stats.ll_intervals),
        "threads": [
            {
                "committed": t.committed,
                "fetched": t.fetched,
                "squashed": t.squashed,
                "flushes": t.flushes,
                "loads_executed": t.loads_executed,
                "ll_loads": t.ll_loads,
                "policy_stall_cycles": t.policy_stall_cycles,
                "branch_stall_cycles": t.branch_stall_cycles,
                "runahead_entries": t.runahead_entries,
                "runahead_exits": t.runahead_exits,
                "runahead_pseudo_retired": t.runahead_pseudo_retired,
                "ipc": round(stats.ipc(i), 9),
            }
            for i, t in enumerate(stats.threads)
        ],
    }


def collect_golden() -> dict:
    return {
        "schema": GOLDEN_SCHEMA,
        "cells": {sc.name: snapshot_cell(sc) for sc in golden_matrix()},
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    out = Path(argv[0]) if argv else (
        Path(__file__).resolve().parents[3] / "tests" / "golden"
        / "golden_stats.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    doc = collect_golden()
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(doc['cells'])} golden cells to {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - fixture regeneration entry
    raise SystemExit(main())
