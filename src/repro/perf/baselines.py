"""Schema-stamped throughput baselines (``BENCH_perf.json``).

The committed baseline at the repo root records, per canonical scenario
and per mode (``full`` / ``quick``), the min-of-N wall time together with
the simulated-cycle and committed-instruction counts of the run, plus a
machine calibration score (see :func:`repro.perf.harness.calibrate`).

Comparisons are *calibration-normalized*: a measurement on a machine 2x
slower than the baseline writer's also posts a ~2x calibration spin, so
the regression ratio cancels raw machine speed and isolates what the CI
gate actually cares about — simulator work per unit of Python work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone
import json
from pathlib import Path
import platform

from repro.perf.harness import BenchResult, SuiteResult

SCHEMA = "repro.perf/1"
BASELINE_NAME = "BENCH_perf.json"

#: Default regression gate: >25% calibration-normalized slowdown fails.
DEFAULT_MAX_REGRESSION = 0.25


class BaselineError(ValueError):
    """Raised for unreadable, unstamped, or wrong-schema baseline files."""


def repo_root() -> Path:
    """The checkout root (``src/repro/perf`` -> three levels up)."""
    return Path(__file__).resolve().parents[3]


def baseline_path(explicit: str | Path | None = None) -> Path:
    if explicit is not None:
        return Path(explicit)
    return repo_root() / BASELINE_NAME


# --------------------------------------------------------------------- #
# serialization
# --------------------------------------------------------------------- #

def result_to_dict(r: BenchResult) -> dict:
    d = {
        "wall_s": round(r.wall_s, 6),
        "runs": [round(x, 6) for x in r.runs],
        "cycles": r.cycles,
        "instructions": r.instructions,
        "cycles_per_sec": round(r.cycles_per_sec, 1),
        "policy": r.policy,
        "threads": r.threads,
        "commits": r.commits,
    }
    # The default engine serializes away (like RunSpec.backend), keeping
    # object-backend baseline entries byte-identical to pre-backend ones.
    if r.backend != "object":
        d["backend"] = r.backend
    return d


def result_from_dict(name: str, d: dict, quick: bool) -> BenchResult:
    return BenchResult(
        name=name, wall_s=float(d["wall_s"]),
        runs=[float(x) for x in d.get("runs", [d["wall_s"]])],
        cycles=int(d["cycles"]), instructions=int(d["instructions"]),
        quick=quick, policy=d.get("policy", ""),
        threads=int(d.get("threads", 0)), commits=int(d.get("commits", 0)),
        backend=d.get("backend", "object"))


def mode_name(quick: bool, backend: str = "object") -> str:
    """The baseline ``modes`` key for one (quick, backend) combination.

    The object engine keeps the historical bare ``full`` / ``quick``
    keys; other backends get a ``-<backend>`` suffix (``full-soa``), so
    one document can hold every combination side by side and old
    baselines stay valid under the current schema.
    """
    mode = "quick" if quick else "full"
    return mode if backend == "object" else f"{mode}-{backend}"


def suite_to_doc(suite: SuiteResult) -> dict:
    """One harness pass as a standalone schema-stamped document.

    The calibration score lives *per mode*: the modes may be refreshed
    on different machines, and each mode's scenario walls are only
    meaningful against the calibration measured alongside them.
    """
    mode = mode_name(suite.quick, suite.backend)
    return {
        "schema": SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "modes": {
            mode: {
                "calibration_s": round(suite.calibration_s, 6),
                "scenarios": {r.name: result_to_dict(r)
                              for r in suite.results},
            },
        },
    }


def load_baseline(path: str | Path) -> dict:
    path = Path(path)
    if not path.exists():
        raise BaselineError(f"no baseline at {path}; run "
                            f"`python -m repro perf update` to create one")
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    validate_doc(doc, where=str(path))
    return doc


def validate_doc(doc: dict, where: str = "<doc>") -> None:
    """Schema check; raises :class:`BaselineError` with a precise reason."""
    if not isinstance(doc, dict):
        raise BaselineError(f"{where}: baseline document must be an object")
    if doc.get("schema") != SCHEMA:
        raise BaselineError(
            f"{where}: schema {doc.get('schema')!r} != {SCHEMA!r}; "
            f"refresh the baseline with `python -m repro perf update`")
    modes = doc.get("modes")
    if not isinstance(modes, dict) or not modes:
        raise BaselineError(f"{where}: missing 'modes' section")
    for mode, section in modes.items():
        base = mode.split("-", 1)[0]
        if base not in ("full", "quick"):
            raise BaselineError(f"{where}: unknown mode {mode!r}")
        if not isinstance(section, dict):
            raise BaselineError(f"{where}: mode {mode!r} must be an object")
        if not isinstance(section.get("calibration_s"), (int, float)):
            raise BaselineError(
                f"{where}: mode {mode!r} lacks 'calibration_s'")
        scenarios = section.get("scenarios")
        if not isinstance(scenarios, dict):
            raise BaselineError(
                f"{where}: mode {mode!r} lacks 'scenarios'")
        for name, entry in scenarios.items():
            if not isinstance(entry, dict):
                raise BaselineError(
                    f"{where}: scenario {name!r} ({mode}) must be an object")
            for key in ("wall_s", "cycles", "instructions"):
                if key not in entry:
                    raise BaselineError(
                        f"{where}: scenario {name!r} ({mode}) lacks {key!r}")


def write_baseline(suite: SuiteResult, path: str | Path | None = None,
                   merge: bool = True) -> Path:
    """Write (or merge one mode into) the baseline file.

    With ``merge``, an existing valid baseline keeps its other mode's
    entries — refreshing the quick numbers does not discard the full ones.
    """
    path = baseline_path(path)
    doc = suite_to_doc(suite)
    if merge and path.exists():
        try:
            old = load_baseline(path)
        except BaselineError:
            old = None
        if old is not None:
            merged_modes = dict(old.get("modes", {}))
            merged_modes.update(doc["modes"])
            doc["modes"] = merged_modes
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


# --------------------------------------------------------------------- #
# comparison
# --------------------------------------------------------------------- #

@dataclass
class ScenarioDelta:
    """Calibration-normalized comparison of one scenario."""

    name: str
    current_wall_s: float
    baseline_wall_s: float
    ratio: float            # normalized current/baseline; >1 is slower
    speedup: float          # normalized baseline/current; >1 is faster
    regressed: bool
    work_drift: bool        # simulated cycles/instructions changed


@dataclass
class CompareReport:
    """Outcome of ``repro perf compare``."""

    deltas: list[ScenarioDelta] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)   # not in baseline
    mode: str = "full"
    max_regression: float = DEFAULT_MAX_REGRESSION
    calibration_ratio: float = 1.0   # current machine speed / baseline's

    @property
    def regressions(self) -> list[ScenarioDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def geomean_speedup(self) -> float:
        if not self.deltas:
            return 1.0
        prod = 1.0
        for d in self.deltas:
            prod *= d.speedup
        return prod ** (1.0 / len(self.deltas))


def compare(suite: SuiteResult, baseline: dict,
            max_regression: float = DEFAULT_MAX_REGRESSION) -> CompareReport:
    """Gate a fresh suite run against a loaded baseline document.

    A scenario regresses when its calibration-normalized wall time exceeds
    the baseline's by more than ``max_regression`` (0.25 = 25% slower).
    Scenarios absent from the baseline are listed, not failed — a new
    scenario must be able to land before its baseline does.  A baseline
    without the requested *mode* raises :class:`BaselineError` instead of
    silently comparing an empty section (which would report "ok" while
    gating nothing).
    """
    mode = mode_name(suite.quick, suite.backend)
    section = baseline.get("modes", {}).get(mode)
    if section is None:
        have = ", ".join(sorted(baseline.get("modes", {}))) or "none"
        flags = "".join(
            (" --quick" if suite.quick else "",
             f" --backend {suite.backend}"
             if suite.backend != "object" else ""))
        raise BaselineError(
            f"baseline has no {mode!r} mode section (has: {have}); "
            f"refresh it with `python -m repro perf update{flags}`")
    entries = section.get("scenarios", {})
    base_calib = float(section.get("calibration_s") or 0.0)
    calib_ratio = (suite.calibration_s / base_calib) if base_calib else 1.0
    report = CompareReport(mode=mode, max_regression=max_regression,
                           calibration_ratio=calib_ratio)
    for r in suite.results:
        entry = entries.get(r.name)
        if entry is None:
            report.missing.append(r.name)
            continue
        base = result_from_dict(r.name, entry, quick=suite.quick)
        # Normalize: how much slower is this run than the baseline run,
        # after discounting how much slower this *machine* is.
        denom = base.wall_s * (calib_ratio if base_calib else 1.0)
        ratio = r.wall_s / denom if denom else float("inf")
        work_drift = (base.cycles != r.cycles
                      or base.instructions != r.instructions)
        report.deltas.append(ScenarioDelta(
            name=r.name, current_wall_s=r.wall_s,
            baseline_wall_s=base.wall_s, ratio=ratio,
            speedup=1.0 / ratio if ratio else float("inf"),
            regressed=ratio > 1.0 + max_regression,
            work_drift=work_drift))
    return report
