"""Canonical simulator-throughput scenarios.

A scenario pins everything that affects simulated work — workload mix,
fetch policy, instruction budget, warmup, machine config — so that wall
time is the only free variable.  The same scenario set backs three
consumers:

* the :mod:`repro.perf.harness` timing runs (``repro perf run``),
* the committed ``BENCH_perf.json`` throughput baseline, and
* the golden-stats equivalence matrix (``tests/test_golden_stats.py``),
  which pins the *architectural* outcome of each scenario so hot-loop
  optimizations can prove they are cycle-exact.

Scenario configs are built directly from :func:`repro.config.scaled_config`
rather than the env-sensitive experiment defaults: ``REPRO_COMMITS`` /
``REPRO_SCALE`` must not silently change what a perf number means.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SMTConfig, scaled_config

#: Cache scale matching the experiment defaults (16x smaller than Table IV).
_CACHE_SCALE = 16


@dataclass(frozen=True)
class Scenario:
    """One deterministic simulation whose wall time we track."""

    name: str
    workload: tuple[str, ...]
    policy: str
    commits: int          # per-thread instruction budget (full mode)
    warmup: int           # instructions discarded before measurement
    quick_commits: int    # reduced budget for --quick / CI smoke runs

    @property
    def num_threads(self) -> int:
        return len(self.workload)

    def budget(self, quick: bool = False) -> int:
        return self.quick_commits if quick else self.commits

    def config(self) -> SMTConfig:
        return scaled_config(num_threads=self.num_threads,
                             scale=_CACHE_SCALE)

    def to_runspec(self, quick: bool = False, backend: str = "object"):
        """This scenario as a declarative :class:`repro.api.RunSpec`.

        The spec pins the same (workload, policy, budget, warmup,
        config) coordinate; a scenario is just a *named* run spec with a
        quick-mode budget attached.  ``backend`` selects the engine core
        — the architectural outcome is backend-independent by contract,
        so a scenario stays one scenario however it is executed.
        """
        from repro.api import RunSpec    # lazy: api sits above perf
        return RunSpec(workload=self.workload, config=self.config(),
                       policy=self.policy, max_commits=self.budget(quick),
                       warmup=self.warmup, backend=backend)


#: The tracked suite.  ``smt2_mlp_stall`` is the canonical 2-thread
#: scenario quoted in speedup claims; the single-thread and 4-thread
#: entries bracket it, and the policy spread (ICOUNT / stall / flush /
#: MLP-aware stall) exercises the distinct hot paths: plain fetch
#: rotation, policy fetch-gating, flush/refetch, and predictor-driven
#: gating.
CANONICAL_SCENARIOS: tuple[Scenario, ...] = (
    Scenario("st_icount", ("mcf",), "icount",
             commits=16_000, warmup=2_000, quick_commits=4_000),
    Scenario("smt2_icount", ("mcf", "swim"), "icount",
             commits=12_000, warmup=2_000, quick_commits=3_000),
    Scenario("smt2_stall", ("mcf", "swim"), "stall",
             commits=12_000, warmup=2_000, quick_commits=3_000),
    Scenario("smt2_flush", ("mcf", "swim"), "flush",
             commits=12_000, warmup=2_000, quick_commits=3_000),
    Scenario("smt2_mlp_stall", ("mcf", "swim"), "mlp_stall",
             commits=12_000, warmup=2_000, quick_commits=3_000),
    Scenario("smt4_mlp_stall", ("mgrid", "vortex", "swim", "twolf"),
             "mlp_stall",
             commits=8_000, warmup=2_000, quick_commits=2_000),
    # 8-thread stress cell: twice the paper's largest configuration, on
    # the headline flush policy, so thread-count-scaling costs (fetch
    # selection, rotation scans, flush/refetch) have nowhere to hide.
    Scenario("smt8_mlp_flush_stress",
             ("mcf", "swim", "mgrid", "vortex", "twolf", "equake",
              "art", "lucas"),
             "mlp_flush",
             commits=5_000, warmup=1_500, quick_commits=1_200),
)

#: The headline scenario for speedup claims.
CANONICAL_2T = "smt2_mlp_stall"


def scenario_by_name(name: str) -> Scenario:
    """Look up a scenario through :data:`repro.registry.scenarios`.

    Seeded from :data:`CANONICAL_SCENARIOS`; scenarios registered at
    runtime resolve here too.  Raises ``KeyError`` for unknown names.
    """
    from repro import registry     # late: registry seeds itself from here
    return registry.scenarios.get(name)


def run_scenario(sc: Scenario, quick: bool = False,
                 backend: str = "object"):
    """Simulate one scenario; returns ``(stats, core)``.

    Deterministic: traces are seeded per benchmark name, the config is
    env-independent, and the core is the one the policy (first) and the
    ``backend`` (second) require.  Driven through
    :meth:`repro.api.Session.simulate`, so the perf harness and golden
    matrix time/pin exactly what every other entry point executes.
    """
    from repro.api import Session    # lazy: api sits above perf

    return Session().simulate(sc.to_runspec(quick, backend=backend))
