"""Processor and memory-hierarchy configuration.

The default values reproduce Table IV of the paper (the baseline 4-wide SMT
processor).  Two factory functions are provided:

* :func:`paper_baseline` — the exact Table IV machine.
* :func:`scaled_config` — a structurally identical machine with smaller
  caches/TLBs so that short synthetic traces reach steady state quickly.
  Workload footprints are expressed relative to the L3 capacity and scale
  along with it, so miss *rates* (and therefore all policy behaviour) are
  preserved.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, is_dataclass, replace
import hashlib
import json

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache level."""

    size: int
    assoc: int
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.size <= 0 or self.assoc <= 0 or self.line_size <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size % (self.assoc * self.line_size) != 0:
            raise ValueError(
                f"cache size {self.size} not divisible by assoc*line "
                f"({self.assoc}*{self.line_size})"
            )

    @property
    def num_sets(self) -> int:
        return self.size // (self.assoc * self.line_size)

    @property
    def num_lines(self) -> int:
        return self.size // self.line_size


@dataclass(frozen=True)
class TLBConfig:
    """A fully-associative TLB."""

    entries: int
    page_size: int = 8 * KB

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.page_size <= 0:
            raise ValueError("TLB geometry values must be positive")


@dataclass(frozen=True)
class PrefetcherConfig:
    """Predictor-directed stream buffers (Sherwood et al., MICRO 2000)."""

    enabled: bool = True
    num_buffers: int = 8
    buffer_entries: int = 8
    stride_table_entries: int = 2048
    # two-bit confidence counter; allocate a stream on a confident stride
    confidence_threshold: int = 2


@dataclass(frozen=True)
class MemoryConfig:
    """The memory hierarchy of Table IV."""

    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(64 * KB, 2))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(64 * KB, 2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(512 * KB, 8))
    l3: CacheConfig = field(default_factory=lambda: CacheConfig(4 * MB, 16))
    itlb: TLBConfig = field(default_factory=lambda: TLBConfig(128))
    dtlb: TLBConfig = field(default_factory=lambda: TLBConfig(512))
    l1_latency: int = 1
    l2_latency: int = 11
    l3_latency: int = 35
    mem_latency: int = 350
    # D-TLB miss handled by a hardware walker that typically misses on-chip
    # caches; modelled as a fixed penalty added to the access.
    tlb_miss_penalty: int = 350
    mshr_entries: int = 32
    # Squash semantics: when a pipeline flush kills a load whose fill is
    # still in flight, the fill is cancelled and the line is not installed
    # (SMTSIM-era squash rolls the MSHRs back).  The refetched load then
    # misses again — this is what makes the flush policy *serialize*
    # independent long-latency loads, the core premise of the paper.  A
    # fill that already completed stays cached, preserving the
    # "prefetching effect" of late flushes (Section 6.5(d)).  Set False to
    # model modern fill-continues hardware (ablation).
    cancel_squashed_fills: bool = True
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    # When True, independent long-latency loads are artificially serialized
    # (at most one outstanding memory-level demand miss).  Used only by the
    # Table I "MLP impact" characterization experiment.
    serialize_long_latency: bool = False

    @property
    def line_size(self) -> int:
        return self.l1d.line_size


@dataclass(frozen=True)
class PredictorConfig:
    """Sizes of the paper's predictors (Section 4, per-thread tables)."""

    lll_entries: int = 2048       # miss pattern predictor (12 Kbits total)
    lll_counter_bits: int = 6
    mlp_entries: int = 2048       # MLP distance predictor (14 Kbits total)
    lll_kind: str = "miss_pattern"  # miss_pattern | last_value | two_bit
    # Section 4.2 future-work extension: exclude long-latency loads that
    # depend on an earlier long-latency load from the LLSR, so measured MLP
    # distances cover only *exploitable* (independent) MLP.  Requires the
    # core to track load dependences through the rename map.
    dependence_aware: bool = False


@dataclass(frozen=True)
class SMTConfig:
    """The baseline SMT processor (Table IV) plus simulator knobs."""

    num_threads: int = 2
    fetch_width: int = 4            # ICOUNT 2.4: 4 instructions ...
    fetch_max_threads: int = 2      # ... from up to 2 threads per cycle
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    rob_size: int = 256             # shared
    lsq_size: int = 128             # shared
    int_iq_size: int = 64
    fp_iq_size: int = 64
    int_rename_regs: int = 100
    fp_rename_regs: int = 100
    num_int_alu: int = 4
    num_ldst: int = 2
    num_fp: int = 2
    # Fetch -> dispatch latency.  With dispatch->issue and execute this
    # yields the paper's 14-stage pipeline feel: a load issues ~10 cycles
    # after fetch and a branch redirect costs ~11 cycles.
    frontend_depth: int = 8
    branch_mispredict_penalty: int = 11
    gshare_entries: int = 2048
    btb_entries: int = 256
    btb_assoc: int = 4
    write_buffer_entries: int = 8
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    predictors: PredictorConfig = field(default_factory=PredictorConfig)
    # The paper sizes the LLSR as ROB/num_threads; Figure 4 also measures a
    # 128-entry LLSR on a single-threaded 256-entry-ROB machine, which this
    # override enables.
    llsr_length_override: int | None = None
    # Simulator engine knobs (not architectural).
    fast_forward: bool = True
    max_cycles: int = 200_000_000

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError("need at least one thread")
        if self.rob_size % self.num_threads != 0:
            raise ValueError("ROB size must be divisible by thread count")
        for name in ("fetch_width", "issue_width", "commit_width",
                     "rob_size", "lsq_size", "int_iq_size", "fp_iq_size"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def llsr_length(self) -> int:
        """LLSR entries per thread: ROB size / number of threads (paper 4.2)."""
        if self.llsr_length_override is not None:
            return self.llsr_length_override
        return self.rob_size // self.num_threads

    def cache_key(self) -> str:
        """Stable content fingerprint of this configuration.

        Hashes the dataclass field tree (via canonical JSON) rather than
        ``repr``, so the key survives repr-format changes and is identical
        across processes.  :mod:`repro.jobs` uses it to key the persistent
        result store.
        """
        blob = json.dumps(asdict(self), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("ascii")).hexdigest()


def config_to_dict(cfg: SMTConfig) -> dict:
    """``cfg`` as a plain JSON-serializable tree (the ``asdict`` layout).

    The same tree :meth:`SMTConfig.cache_key` hashes, so a config rebuilt
    with :func:`config_from_dict` has an identical content fingerprint.
    """
    return asdict(cfg)


#: Resolved annotations per config dataclass (annotations are strings
#: under ``from __future__ import annotations``); filled lazily so the
#: codec discovers nested dataclass fields from the classes themselves —
#: a field added to any config dataclass deserializes correctly with no
#: parallel table to update.
_FIELD_TYPES: dict[type, dict[str, type]] = {}


def _field_types(cls: type) -> dict[str, type]:
    cached = _FIELD_TYPES.get(cls)
    if cached is None:
        from typing import get_type_hints
        hints = get_type_hints(cls)
        cached = _FIELD_TYPES[cls] = {f.name: hints[f.name]
                                      for f in fields(cls)}
    return cached


def _build_from_dict(cls: type, data: dict):
    types = _field_types(cls)
    missing = set(types) - set(data)
    if missing:
        raise TypeError(
            f"config tree for {cls.__name__} is missing field(s): "
            f"{', '.join(sorted(missing))}")
    kwargs = {}
    for key, value in data.items():
        sub = types.get(key)
        kwargs[key] = (_build_from_dict(sub, value)
                       if isinstance(sub, type) and is_dataclass(sub)
                       and isinstance(value, dict)
                       else value)
    return cls(**kwargs)


def config_from_dict(data: dict) -> SMTConfig:
    """Rebuild an :class:`SMTConfig` from a :func:`config_to_dict` tree.

    The tree must be complete: unknown keys raise ``TypeError`` (the
    dataclass constructors reject them) and missing keys raise too — a
    truncated or mis-spelled config must never silently alias onto the
    defaults.
    """
    if not isinstance(data, dict):
        raise TypeError(f"config tree must be a dict, got "
                        f"{type(data).__name__}")
    return _build_from_dict(SMTConfig, data)


def paper_baseline(num_threads: int = 2, **overrides) -> SMTConfig:
    """The exact Table IV configuration."""
    return replace(SMTConfig(num_threads=num_threads), **overrides)


def single_thread_variant(cfg: SMTConfig) -> SMTConfig:
    """``cfg`` reduced to one hardware thread (identity if already 1).

    Single-threaded CPI baselines and multithreaded runs must share every
    other parameter, so this is the only sanctioned way to derive the
    baseline machine from a workload machine.
    """
    if cfg.num_threads == 1:
        return cfg
    return replace(cfg, num_threads=1)


def scaled_memory(scale: int = 16) -> MemoryConfig:
    """A memory hierarchy shrunk by ``scale`` with identical structure.

    Latencies, associativities, and line size are unchanged; only capacities
    shrink so that short traces exercise realistic miss behaviour.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    base = MemoryConfig()

    def shrink(c: CacheConfig) -> CacheConfig:
        size = max(c.size // scale, c.assoc * c.line_size)
        return CacheConfig(size, c.assoc, c.line_size)

    return replace(
        base,
        l1i=shrink(base.l1i),
        l1d=shrink(base.l1d),
        l2=shrink(base.l2),
        l3=shrink(base.l3),
        itlb=TLBConfig(max(base.itlb.entries // scale, 8), base.itlb.page_size),
        dtlb=TLBConfig(max(base.dtlb.entries // scale, 16), base.dtlb.page_size),
    )


def scaled_config(num_threads: int = 2, scale: int = 16, **overrides) -> SMTConfig:
    """Table IV core with a ``scale``-times smaller memory hierarchy."""
    return replace(
        SMTConfig(num_threads=num_threads, memory=scaled_memory(scale)),
        **overrides,
    )


def with_window_size(cfg: SMTConfig, rob_size: int) -> SMTConfig:
    """Scale the out-of-order window as in Figures 17/18.

    The load/store queue, issue queues, and rename register files scale
    proportionally with the ROB, exactly as in Section 6.4.2.
    """
    factor = rob_size / cfg.rob_size
    return replace(
        cfg,
        rob_size=rob_size,
        lsq_size=max(int(cfg.lsq_size * factor), cfg.num_threads),
        int_iq_size=max(int(cfg.int_iq_size * factor), 4),
        fp_iq_size=max(int(cfg.fp_iq_size * factor), 4),
        int_rename_regs=max(int(cfg.int_rename_regs * factor), 8),
        fp_rename_regs=max(int(cfg.fp_rename_regs * factor), 8),
    )


def with_memory_latency(cfg: SMTConfig, mem_latency: int) -> SMTConfig:
    """Vary main-memory latency as in Figures 15/16."""
    mem = replace(cfg.memory, mem_latency=mem_latency,
                  tlb_miss_penalty=mem_latency)
    return replace(cfg, memory=mem)
