"""SMT core with per-thread runahead execution (Mutlu et al., HPCA 2003).

Mechanism summary, mapped onto this simulator:

* **Entry.**  When an executed long-latency load reaches the head of a
  thread's ROB slice without its data (it would block commit for hundreds
  of cycles), and the attached policy's ``enter_runahead`` hook agrees, the
  thread checkpoints (trivially, in a trace-driven simulator: the entry
  load's sequence number) and enters runahead.  The blocked load's result
  is marked INV (bogus) and its dependents are released with INV values.
* **Runahead period.**  The thread keeps fetching and executing.  INV
  propagates through the rename map: any instruction sourcing an INV value
  is itself INV — it does not wait for producers, does not access memory,
  and completes in one cycle.  Valid loads execute normally against the
  hierarchy, turning future independent misses into prefetches — this is
  how runahead exposes MLP without holding ROB entries.  Instructions
  *pseudo-retire* in program order once completed or INV: they release
  their ROB/LSQ/IQ/register resources but are not architecturally
  committed (no stats, no LLSR training, stores do not write).  A valid
  long-latency load that reaches the ROB head during runahead is INV'd in
  place, Mutlu-style, while its fill continues in the background.
* **Exit.**  When the entry load's data returns, the thread flushes
  everything younger than the entry load (fills of squashed loads are
  *not* cancelled — they are the prefetches runahead exists to start),
  rewinds fetch to the entry load, and resumes normal execution.  The
  refetched entry load now hits in the cache.

Divergences from real hardware, and why they are benign here: INV branches
follow the trace rather than a stale prediction (slightly optimistic
prefetch addresses for *all* policies equally), and there is no runahead
cache for store-load forwarding (runahead stores are simply dropped; the
synthetic workloads carry no store-to-load dependences).
"""

from __future__ import annotations

import heapq

from repro.pipeline.core import SMTCore
from repro.pipeline.dyninstr import DynInstr
from repro.pipeline.thread_state import ThreadState


class _RunaheadState:
    """Per-thread runahead bookkeeping."""

    __slots__ = ("active", "entry", "refused")

    def __init__(self) -> None:
        self.active = False
        self.entry: DynInstr | None = None
        # Blocking load the policy declined runahead for: the decision is
        # memoized so the fast-forward probe can skip the blocked episode.
        self.refused: DynInstr | None = None


class RunaheadCore(SMTCore):
    """SMT core whose threads may run ahead past blocked loads.

    The attached policy opts threads into runahead through an
    ``enter_runahead(thread_state, blocking_load) -> bool`` hook; policies
    without the hook never trigger it, making this core a drop-in
    replacement for :class:`repro.pipeline.core.SMTCore`.
    """

    __slots__ = ("_ra",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._ra = [_RunaheadState() for _ in self.threads]
        # No DynInstr pooling: pseudo-retirement releases records without
        # the commit-path reference accounting, and ``_RunaheadState``
        # keeps identity references (entry, refused) past retirement.
        self._di_pool = None
        # The commit gate stays permanently open: this commit stage can
        # make progress on *incomplete* heads (runahead entry,
        # pseudo-retirement), which the event-driven gate cannot see.
        self._commit_pending = True

    def in_runahead(self, ts: ThreadState) -> bool:
        return self._ra[ts.tid].active

    # ------------------------------------------------------------------ #
    # entry / exit
    # ------------------------------------------------------------------ #

    def _enter_runahead(self, ts: ThreadState, di: DynInstr,
                        cycle: int) -> None:
        ra = self._ra[ts.tid]
        ra.active = True
        ra.entry = di
        ts.stats.runahead_entries += 1
        self._invalidate(di)

    def _exit_runahead(self, ts: ThreadState, cycle: int) -> None:
        ra = self._ra[ts.tid]
        entry = ra.entry
        ra.active = False
        ra.entry = None
        ts.stats.runahead_exits += 1
        # Squash the runahead work and rewind fetch to the entry load; the
        # fills started during runahead keep going — they are the point.
        self.flush_thread(ts, entry.seq - 1, cancel_fills=False)

    def _invalidate(self, di: DynInstr) -> None:
        """Mark ``di``'s result bogus and release its dependents as INV."""
        di.inv = True
        w0 = di.waiter0
        if w0 is not None:
            di.waiter0 = None
            waiters = di.waiters
            di.waiters = None
            ready_by_op = self._ready_by_op
            for w in ((w0,) if waiters is None else (w0, *waiters)):
                w.inv = True
                w.pending -= 1
                if (w.pending == 0 and not w.squashed and w.in_iq
                        and not w.issued):
                    heapq.heappush(ready_by_op[w.instr.op_i], (w.gseq, w))

    # ------------------------------------------------------------------ #
    # commit stage: normal commit, runahead entry, pseudo-retirement
    # ------------------------------------------------------------------ #

    def _commit(self, cycle: int) -> None:
        # The base core inlines "head missing/incomplete -> skip" into its
        # commit loop; here an incomplete head can still make progress
        # (runahead entry, pseudo-retirement of INV instructions), so every
        # rotation slot must reach _commit_one.
        threads = self.threads
        n = len(threads)
        budget = self._commit_width
        commit_one = self._commit_one
        start = cycle % n
        while budget > 0:
            progress = False
            for i in range(n):
                if budget == 0:
                    break
                if commit_one(threads[(start + i) % n], cycle):
                    budget -= 1
                    progress = True
            if not progress:
                break

    def _dispatch(self, cycle: int) -> None:
        # The base core short-circuits dispatch when the shared ROB is
        # full; runahead must keep calling _try_dispatch per attempt so INV
        # flags propagate through the rename map at the same cycles as the
        # pre-optimization engine.
        budget = self._decode_width
        any_ready = False
        blocked_by_resource = False
        dispatched = 0
        threads = self.threads
        n = len(threads)
        try_dispatch = self._try_dispatch
        start = (cycle + 1) % n  # offset from commit's rotation
        for i in range(n):
            ts = threads[(start + i) % n]
            if budget == 0:
                break
            fe = ts.fe_queue
            while budget > 0 and fe:
                di = fe[0]
                if di.fe_ready > cycle:
                    break
                any_ready = True
                outcome = try_dispatch(ts, di)
                if outcome is None:
                    fe.popleft()
                    budget -= 1
                    dispatched += 1
                    continue
                if outcome:
                    blocked_by_resource = True
                break
        if dispatched:
            self._fetch_wake = 0  # front-end pops freed fetch headroom
        if any_ready and dispatched == 0 and blocked_by_resource:
            self.stats.resource_stall_cycles += 1
            self.policy.on_resource_stall(cycle)

    def _commit_one(self, ts: ThreadState, cycle: int) -> bool:
        ra = self._ra[ts.tid]
        if ra.active:
            return self._pseudo_retire_one(ts)
        window = ts.window
        if not window:
            return False
        di = window[0]
        if di.completed:
            return super()._commit_one(ts, cycle)
        if (di.is_load and di.is_ll and di.issued and not di.inv
                and di is not ra.refused):
            if self._policy_wants_runahead(ts, di):
                self._enter_runahead(ts, di, cycle)
                return self._pseudo_retire_one(ts)
            ra.refused = di
        return False

    def _policy_wants_runahead(self, ts: ThreadState, di: DynInstr) -> bool:
        enter = getattr(self.policy, "enter_runahead", None)
        return enter is not None and enter(ts, di)

    def _pseudo_retire_one(self, ts: ThreadState) -> bool:
        window = ts.window
        if not window:
            return False
        di = window[0]
        if not (di.completed or di.inv):
            if di.is_load and di.issued and di.is_ll:
                # A second long-latency miss reached the head mid-runahead:
                # INV it in place; its fill continues as a prefetch.
                self._invalidate(di)
            else:
                return False
        window.popleft()
        ts.rob_count -= 1
        self.rob_used -= 1
        if di.is_load or di.is_store:
            ts.lsq_count -= 1
            self.lsq_used -= 1
        if di.in_iq:
            # Unissued INV instruction: free its queue slot now; the
            # in-flight issue path checks ``in_iq`` before touching counts.
            di.in_iq = False
            ts.icount -= 1
            if di.iq_is_fp:
                ts.fq_count -= 1
                self.fq_used -= 1
            else:
                ts.iq_count -= 1
                self.iq_used -= 1
        if di.has_dest:
            if di.dest_fp:
                ts.fp_regs -= 1
                self.fp_regs_used -= 1
            else:
                ts.int_regs -= 1
                self.int_regs_used -= 1
        ts.stats.runahead_pseudo_retired += 1
        return True

    # ------------------------------------------------------------------ #
    # dispatch / execute / complete extensions
    # ------------------------------------------------------------------ #

    def _try_dispatch(self, ts: ThreadState, di: DynInstr) -> bool | None:
        if self._ra[ts.tid].active and not di.inv:
            rename_map = ts.rename_map
            for src in di.instr.srcs:
                prod = rename_map[src]
                if prod is not None and prod.inv and not prod.squashed:
                    di.inv = True
                    break
        return super()._try_dispatch(ts, di)

    def _execute(self, di: DynInstr, cycle: int) -> None:
        if not di.inv:
            super()._execute(di, cycle)
            return
        # INV fast path: no memory access, no predictor training, single
        # cycle of latency.
        ts = self.threads[di.thread]
        di.issued = True
        if di.in_iq:
            di.in_iq = False
            if di.iq_is_fp:
                ts.fq_count -= 1
                self.fq_used -= 1
            else:
                ts.iq_count -= 1
                self.iq_used -= 1
            ts.icount -= 1
        self._schedule_completion(di, cycle + 1, cycle)

    def _complete(self, di: DynInstr, cycle: int) -> None:
        super()._complete(di, cycle)
        if di.squashed:
            return
        ra = self._ra[di.thread]
        if ra.active and di is ra.entry:
            self._exit_runahead(self.threads[di.thread], cycle)

    # ------------------------------------------------------------------ #
    # fast-forward probe
    # ------------------------------------------------------------------ #

    def _head_retirable(self, ts: ThreadState, wb_full: bool) -> bool:
        ra = self._ra[ts.tid]
        window = ts.window
        if ra.active:
            if not window:
                return False
            di = window[0]
            return (di.completed or di.inv
                    or (di.is_load and di.issued and di.is_ll))
        if window:
            di = window[0]
            if (not di.completed and di.is_load and di.is_ll and di.issued
                    and not di.inv and di is not ra.refused):
                # A runahead-entry decision is possible next cycle.
                return True
        return super()._head_retirable(ts, wb_full)
