"""Runahead execution for SMT (Ramirez et al. 2008; paper §7.2).

The paper's related-work section singles out *runahead threads* as the
contemporaneous alternative to MLP-aware flush — instead of stalling or
flushing a thread blocked on memory, the thread keeps executing
speculatively to turn its future independent misses into prefetches — and
proposes, as future work, gating runahead with the MLP distance predictor:
enter runahead only when the predicted MLP distance is large enough to pay
for the re-execution, and fall back to MLP-aware flush otherwise.

* :class:`RunaheadCore`   — the pipeline extension: checkpointed entry on a
  long-latency load blocking the ROB head, INV value propagation,
  pseudo-retirement, and flush-and-rewind exit when the miss data returns.
* :class:`RunaheadPolicy` — always-runahead threads.
* :class:`MLPRunaheadPolicy` — the paper's proposed hybrid: MLP-distance
  gated runahead with MLP-aware flush as the short-distance fallback.
"""

from repro.runahead.core import RunaheadCore
from repro.runahead.policy import MLPRunaheadPolicy, RunaheadPolicy

__all__ = ["MLPRunaheadPolicy", "RunaheadCore", "RunaheadPolicy"]
