"""Fetch policies that drive runahead execution (paper §7.2).

Two policies, both meant to run on :class:`repro.runahead.RunaheadCore`
(the experiment runner picks the core class from ``policy.core_class``):

* :class:`RunaheadPolicy` — *runahead threads* as evaluated by Ramirez
  et al. (HPCA 2008): every long-latency load that blocks the ROB head
  enters runahead.  Fetch stays plain ICOUNT — a runahead thread never
  clogs resources, because it pseudo-retires as fast as it fetches.
* :class:`MLPRunaheadPolicy` — the hybrid the paper proposes as future
  work: "If the predicted MLP distance is small, it may be beneficial to
  apply MLP-aware flush and not to go in runahead mode; only in case the
  predicted MLP distance is large, runahead execution should be
  initiated."  Below ``runahead_threshold`` the policy behaves exactly
  like MLP-aware flush (stall/flush at the predicted distance); at or
  above it, the thread is left alone until the blocking load reaches the
  ROB head and runahead takes over, with the further prefetches paying
  for the re-execution cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.policies.base import FetchPolicy
from repro.policies.mlp_flush import MLPFlushPolicy
from repro.runahead.core import RunaheadCore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.dyninstr import DynInstr
    from repro.pipeline.thread_state import ThreadState


class RunaheadPolicy(FetchPolicy):
    """Unconditional runahead threads over ICOUNT fetch."""

    __slots__ = ()

    name = "runahead"
    core_class = RunaheadCore

    def enter_runahead(self, ts: ThreadState, di: DynInstr) -> bool:
        """Any long-latency load blocking the ROB head enters runahead."""
        return True


class MLPRunaheadPolicy(MLPFlushPolicy):
    """MLP-distance-gated runahead with MLP-aware flush fallback."""

    __slots__ = ("runahead_threshold",)

    name = "mlp_runahead"
    core_class = RunaheadCore

    def __init__(self, runahead_threshold: int = 16):
        super().__init__()
        if runahead_threshold < 1:
            raise ValueError("runahead threshold must be at least 1")
        self.runahead_threshold = runahead_threshold

    def on_ll_detect(self, di: DynInstr, ts: ThreadState) -> None:
        if self.core.in_runahead(ts):
            return  # runahead loads are prefetches, not new episodes
        if ts.ll_owners:
            return  # flush-mode episode already anchored
        if ts.mlp_pred.predict(di.instr.pc) >= self.runahead_threshold:
            return  # large distance: leave it to runahead entry
        super().on_ll_detect(di, ts)

    def enter_runahead(self, ts: ThreadState, di: DynInstr) -> bool:
        if ts.ll_owners:
            return False  # the flush path owns this episode
        return ts.mlp_pred.predict(di.instr.pc) >= self.runahead_threshold
