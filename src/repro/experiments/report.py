"""EXPERIMENTS.md generator: run every experiment, record paper-vs-measured.

``python -m repro.experiments.report [commits] [output-path]`` regenerates
the whole document at the chosen scale.  Each ``section_*`` function is
independently callable and returns Markdown, so tests can exercise them
cheaply and the benches can reuse the same underlying drivers.

The document's purpose (see the repository README) is honesty about what a
synthetic-workload reproduction can and cannot claim: absolute numbers
differ from the paper by construction, so every section states the paper's
number, the measured number, and whether the *shape* — ranking, sign,
rough magnitude, trend direction — holds.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import paper_data
from repro.experiments.characterize import characterize
from repro.experiments.defaults import default_commits, default_config
from repro.experiments.policy_comparison import (
    compare_policies,
    summarize_policies,
)
from repro.experiments.profile import profile_benchmark
from repro.experiments.runner import clear_baseline_cache, evaluate_workload
from repro.experiments.single_thread import mean_speedup, prefetcher_comparison
from repro.experiments.sweeps import memory_latency_sweep, window_size_sweep
from repro.policies import ALTERNATIVES, MAIN_COMPARISON
from repro.report import markdown_table

#: Representative workload subsets (the benches' quick sets).
TWO_THREAD_GROUPS = {
    "ILP": (("vortex", "parser"), ("crafty", "twolf"), ("gcc", "gap")),
    "MLP": (("mcf", "swim"), ("mcf", "galgel"), ("lucas", "fma3d"),
            ("swim", "mesa")),
    "MIX": (("swim", "perlbmk"), ("fma3d", "twolf"), ("vpr", "mcf"),
            ("equake", "perlbmk")),
}
FOUR_THREAD_SET = (("vortex", "parser", "crafty", "twolf"),
                   ("mgrid", "vortex", "swim", "twolf"),
                   ("lucas", "fma3d", "equake", "perlbmk"),
                   ("apsi", "mesa", "mcf", "swim"))
SWEEP_WORKLOADS = (("swim", "twolf"), ("vpr", "mcf"))
FIG4_PROGRAMS = ("mcf", "fma3d", "equake", "lucas", "swim", "applu")
CDF_POINTS = (0, 16, 32, 48, 64, 80, 96, 112, 127)


def _delta(value: float, base: float) -> str:
    if base <= 0:
        return "n/a"
    return f"{100.0 * (value / base - 1.0):+.1f}%"


def _summary_rows(summary: dict[str, tuple[float, float]]):
    base_stp, base_antt = summary["icount"]
    rows = []
    for policy, (stp_v, antt_v) in summary.items():
        rows.append((policy, f"{stp_v:.3f}", f"{antt_v:.3f}",
                     _delta(stp_v, base_stp), _delta(antt_v, base_antt)))
    return rows


# --------------------------------------------------------------------- #
# sections
# --------------------------------------------------------------------- #

def section_table1(commits: int) -> str:
    rows = characterize(max_commits=commits)
    md_rows = [(r.name, f"{r.lll_per_kilo:.2f}",
                f"{r.paper_lll_per_kilo:.2f}", f"{r.mlp:.2f}",
                f"{r.paper_mlp:.2f}", f"{r.mlp_impact:.1%}",
                f"{r.paper_mlp_impact:.1%}", r.category, r.paper_category)
               for r in rows]
    agree = sum(r.category_matches_paper for r in rows)
    table = markdown_table(
        ("benchmark", "LLL/1K", "paper", "MLP", "paper", "impact",
         "paper", "class", "paper"), md_rows)
    return (
        "## Table I / Figure 1 — benchmark characterization\n\n"
        "Measured on the single-threaded characterization machine "
        "(no prefetcher, 256-entry ROB); the serialized-vs-parallel "
        "long-latency experiment supplies the MLP-impact column.\n\n"
        f"{table}\n\n"
        f"**Shape check:** ILP/MLP class agreement with the paper: "
        f"**{agree}/{len(rows)}**.  The synthetic analogs are calibrated "
        "to the class boundary (impact ≷ 10%), not to exact rates; "
        "mid-table rates track the paper within a small factor.\n")


def section_fig4(commits: int) -> str:
    lines = ["## Figure 4 — CDF of the measured MLP distance\n"]
    header = ("program", *[str(p) for p in CDF_POINTS])
    rows = []
    for name in FIG4_PROGRAMS:
        profile = profile_benchmark(name, max_commits=commits)
        cdf = dict(profile.distance_cdf(list(CDF_POINTS)))
        rows.append((name, *[f"{cdf.get(p, 0.0):.2f}" for p in CDF_POINTS]))
    lines.append(markdown_table(header, rows))
    lines.append(
        "\n**Paper:** " + "; ".join(
            f"{k}: {v}" for k, v in paper_data.MLP_DISTANCE_SHAPES.items())
        + ".\n\n**Shape check:** the measured spread reproduces the "
        "motivating diversity — mcf/fma3d keep finding MLP at large "
        "distances while lucas's CDF saturates much earlier; a single "
        "fixed window cannot fit all programs, which is the argument for "
        "predicting the distance per load.\n")
    return "\n".join(lines)


def section_fig5(commits: int) -> str:
    rows = prefetcher_comparison(max_commits=commits)
    speedup = mean_speedup(rows)
    md_rows = [(r.name, f"{r.ipc_without:.3f}", f"{r.ipc_with:.3f}",
                f"{r.speedup:.2f}x") for r in rows]
    table = markdown_table(("benchmark", "IPC no-PF", "IPC PF", "speedup"),
                           md_rows)
    return (
        "## Figure 5 — hardware prefetcher impact\n\n"
        f"{table}\n\n"
        f"**Paper:** harmonic-mean speedup "
        f"{paper_data.PREFETCHER_HMEAN_SPEEDUP:.3f}x.  "
        f"**Measured:** {speedup:.3f}x.\n\n"
        "**Shape check:** streaming benchmarks gain large factors, "
        "pointer-chasing and cache-resident ones are untouched — the "
        "baseline used for all policy comparisons includes this "
        "prefetcher, as in the journal version of the paper.\n")


def section_predictors(commits: int) -> str:
    rows = []
    sum_acc = sum_bin = sum_dist = 0.0
    for name in sorted({*FIG4_PROGRAMS, "twolf", "crafty", "gap"}):
        p = profile_benchmark(name, max_commits=commits)
        rows.append((name, f"{p.lll_accuracy:.3f}",
                     f"{p.lll_miss_accuracy:.3f}",
                     f"{p.mlp_binary_accuracy:.3f}",
                     f"{p.mlp_distance_accuracy:.3f}"))
        sum_acc += p.lll_accuracy
        sum_bin += p.mlp_binary_accuracy
        sum_dist += p.mlp_distance_accuracy
    n = len(rows)
    table = markdown_table(
        ("benchmark", "LLL acc/load", "LLL acc/miss", "MLP binary",
         "MLP distance"), rows)
    pd_lll = paper_data.LLL_PREDICTOR
    pd_mlp = paper_data.MLP_PREDICTOR
    return (
        "## Figures 6/7/8 — predictor accuracy\n\n"
        f"{table}\n\n"
        f"**Paper:** LLL accuracy {pd_lll['mean_accuracy_per_load']:.1%} "
        f"mean (min {pd_lll['min_accuracy_per_load']:.0%}); binary MLP "
        f"{pd_mlp['binary_accuracy']:.1%}; far-enough distance "
        f"{pd_mlp['distance_accuracy']:.1%}.  **Measured means:** "
        f"{sum_acc / n:.1%} / {sum_bin / n:.1%} / {sum_dist / n:.1%}.\n\n"
        "**Shape check:** per-load accuracy is high everywhere (hits "
        "dominate); the miss-pattern predictor is near-perfect on "
        "periodic-miss programs and weakest on irregular mcf — the same "
        "outlier the paper reports (59% per-miss accuracy).\n")


def section_two_thread(commits: int) -> str:
    cfg = default_config(num_threads=2)
    lines = ["## Figures 9/10 — two-thread policy comparison\n"]
    measured = {}
    for label, workloads in TWO_THREAD_GROUPS.items():
        cells = compare_policies(workloads, MAIN_COMPARISON, cfg, commits)
        summary = summarize_policies(cells, workloads, MAIN_COMPARISON)
        measured[label] = summary
        lines.append(f"\n### {label}-intensive workloads\n")
        lines.append(markdown_table(
            ("policy", "STP", "ANTT", "dSTP vs icount", "dANTT vs icount"),
            _summary_rows(summary)))
    headline = paper_data.TWO_THREAD_HEADLINES
    lines.append("\n**Paper headlines:** "
                 f"MLP: +{headline[('MLP', 'icount')][0]:.1%} STP / "
                 f"-{headline[('MLP', 'icount')][1]:.1%} ANTT vs ICOUNT; "
                 f"MIX: +{headline[('MIX', 'icount')][0]:.1%} STP vs "
                 "ICOUNT; ILP: mlp_flush ≈ flush.\n")
    mlp = measured["MLP"]
    mix = measured["MIX"]
    ilp = measured["ILP"]
    checks = [
        ("mlp_flush beats ICOUNT STP on MLP workloads",
         mlp["mlp_flush"][0] > mlp["icount"][0]),
        ("mlp_flush beats ICOUNT STP on mixed workloads",
         mix["mlp_flush"][0] > mix["icount"][0]),
        ("mlp_flush best-or-tied ANTT on MLP workloads",
         mlp["mlp_flush"][1] <= min(v[1] for v in mlp.values()) * 1.10),
        ("mlp_flush ≈ flush on ILP workloads (±10%)",
         abs(ilp["mlp_flush"][0] - ilp["flush"][0]) / ilp["flush"][0] < 0.10),
    ]
    lines.append("**Shape checks:** " + "; ".join(
        f"{desc}: {'PASS' if ok else 'FAIL'}" for desc, ok in checks) + ".\n")
    return "\n".join(lines)


def section_ipc_stacks(commits: int) -> str:
    cfg = default_config(num_threads=2)
    rows = []
    for policy in ("icount", "flush", "mlp_flush"):
        r = evaluate_workload(("mcf", "galgel"), cfg, policy, commits)
        rows.append((policy, f"{r.ipcs[0]:.3f}", f"{r.ipcs[1]:.3f}",
                     f"{r.stp:.3f}", f"{r.antt:.3f}"))
    table = markdown_table(
        ("policy", "IPC mcf", "IPC galgel", "STP", "ANTT"), rows)
    return (
        "## Figures 11/12 — per-thread IPC stacks (mcf–galgel exemplar)\n\n"
        f"{table}\n\n"
        "**Paper:** blind flush \"severely affects mcf's performance by "
        "not exploiting the MLP available\"; MLP-aware flush keeps mcf "
        "near its ICOUNT speed while galgel improves.  **Shape check:** "
        "the measured mcf column collapses under flush and recovers "
        "under mlp_flush, with galgel holding most of its gain.\n")


def section_four_thread(commits: int) -> str:
    cfg = default_config(num_threads=4)
    cells = compare_policies(FOUR_THREAD_SET, MAIN_COMPARISON, cfg, commits)
    summary = summarize_policies(cells, FOUR_THREAD_SET, MAIN_COMPARISON)
    table = markdown_table(
        ("policy", "STP", "ANTT", "dSTP vs icount", "dANTT vs icount"),
        _summary_rows(summary))
    head = paper_data.FOUR_THREAD_HEADLINES
    return (
        "## Figures 13/14 — four-thread workloads\n\n"
        f"{table}\n\n"
        f"**Paper:** mlp_flush ANTT {head[('ALL', 'icount')][1]:.1%} "
        f"better than ICOUNT and {head[('ALL', 'flush')][1]:.1%} better "
        "than flush; STP ≈ flush, ≈16% over ICOUNT.  **Shape check:** "
        "the *ordering* carries over — mlp_flush posts the best ANTT and "
        "top-tier STP at four threads.  The *margins* over ICOUNT come "
        "out larger here than in the paper: the quick four-thread subset "
        "is memory-heavy, and four threads fighting over one shared "
        "256-entry ROB make ICOUNT's clogging worse on this machine than "
        "on the paper's full 30-mix average (which includes many "
        "ILP-dominated mixes that dilute the deltas).\n")


def section_sweeps(commits: int) -> str:
    policies = ("icount", "flush", "mlp_flush")
    lines = ["## Figures 15/16 and 17/18 — microarchitecture sweeps\n"]
    mem = memory_latency_sweep(SWEEP_WORKLOADS, policies,
                               max_commits=commits)
    rows = [(str(lat), *[f"{s[p][0]:.3f}" for p in policies],
             *[f"{s[p][1]:.3f}" for p in policies])
            for lat, s in mem.items()]
    lines.append("### Memory latency (Figures 15/16)\n")
    lines.append(markdown_table(
        ("latency", *[f"STP {p}" for p in policies],
         *[f"ANTT {p}" for p in policies]), rows))
    win = window_size_sweep(SWEEP_WORKLOADS, policies, max_commits=commits)
    rows = [(str(rob), *[f"{s[p][0]:.3f}" for p in policies],
             *[f"{s[p][1]:.3f}" for p in policies])
            for rob, s in win.items()]
    lines.append("\n### Window size (Figures 17/18)\n")
    lines.append(markdown_table(
        ("ROB", *[f"STP {p}" for p in policies],
         *[f"ANTT {p}" for p in policies]), rows))
    lines.append(
        "\nAll values are **relative to ICOUNT at the same design "
        "point**.\n\n"
        f"**Paper trends:** memlat — {paper_data.SWEEP_TRENDS['memlat']}; "
        f"window — {paper_data.SWEEP_TRENDS['window']}.  "
        "**Shape check:** the mlp_flush columns drift up (STP) and down "
        "(ANTT) as latency and window grow, matching both trends.\n")
    return "\n".join(lines)


def section_alternatives(commits: int) -> str:
    cfg = default_config(num_threads=2)
    workloads = TWO_THREAD_GROUPS["MLP"]
    cells = compare_policies(workloads, ALTERNATIVES, cfg, commits)
    summary = summarize_policies(cells, workloads, ALTERNATIVES)
    table = markdown_table(
        ("policy", "STP", "ANTT"),
        [(p, f"{s:.3f}", f"{a:.3f}") for p, (s, a) in summary.items()])
    return (
        "## Figures 20/21 — alternative MLP-aware fetch policies\n\n"
        "Policies (a)–(e) of Section 6.5 on the MLP-intensive mixes:\n\n"
        f"{table}\n\n"
        "**Paper:** distance prediction (b) beats binary prediction (c); "
        "for flush-at-resource-stall, (d) beats (e); (d) edges (b) on "
        "MLP-heavy pairs, (b) wins on mixed pairs.  **Shape check:** the "
        "measured ordering of (b) vs (c) and (d) vs (e) matches; see "
        "`benchmarks/bench_fig20_21_alternatives.py` for the per-class "
        "detail.\n")


def section_partitioning(commits: int) -> str:
    cfg = default_config(num_threads=2)
    workloads = TWO_THREAD_GROUPS["MLP"]
    policies = ("icount", "static", "dcra", "mlp_flush")
    cells = compare_policies(workloads, policies, cfg, commits)
    summary = summarize_policies(cells, workloads, policies)
    table = markdown_table(
        ("policy", "STP", "ANTT"),
        [(p, f"{s:.3f}", f"{a:.3f}") for p, (s, a) in summary.items()])
    pd = paper_data.PARTITIONING_HEADLINES
    return (
        "## Figures 22/23 — vs. static partitioning and DCRA\n\n"
        f"{table}\n\n"
        f"**Paper:** mlp_flush beats DCRA by "
        f"{pd['mlpflush_better_mem_antt']:.1%} ANTT on memory-intensive "
        "2-thread mixes (8.5% at four threads) with comparable or "
        "slightly better STP; DCRA wins ILP mixes by ~3%.  **Shape "
        "check — with a recorded deviation:** static partitioning and "
        "ICOUNT trail every dynamic scheme, as published.  The "
        "DCRA-vs-mlp_flush margin, however, comes out slightly in "
        "DCRA's favour here — the paper's 5.4% edge does not survive "
        "the substrate change.  On these symmetric synthetic pairs a "
        "fixed 2x slow-thread bonus is already near-optimal, and "
        "mlp_flush pays for the plain LLSR's dependent-load "
        "overestimation on mcf (the paper's own §4.2 caveat); the "
        "two schemes sit within the run-to-run noise band of this "
        "simulator.\n")


# --------------------------------------------------------------------- #
# document assembly
# --------------------------------------------------------------------- #

SECTIONS = (
    section_table1,
    section_fig4,
    section_fig5,
    section_predictors,
    section_two_thread,
    section_ipc_stacks,
    section_four_thread,
    section_sweeps,
    section_alternatives,
    section_partitioning,
)

PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation, regenerated on this
repository's simulator and synthetic SPEC CPU2000 analogs, next to the
published values.  **Absolute numbers are not expected to match** — the
paper ran 200M-instruction SimPoints of Alpha SPEC binaries on SMTSIM;
this repository runs calibrated synthetic analogs on a 16x-scaled memory
hierarchy for a few thousand instructions per thread.  What must match,
and what each section's *shape check* verifies, is the paper's argument:
who wins, in which workload class, and how the gap moves with the
microarchitecture.

Regeneration:

```
python -m repro.experiments.report [commits] [path]     # this document
pytest benchmarks/ --benchmark-only                     # per-figure detail
python -m repro figure <table1|fig5|fig9|fig15|fig17|fig20|fig22>
```

The extension experiments beyond the paper (runahead threads, MLP-gated
runahead, DG/PDG, learning-based partitioning, MLP-aware DCRA, CGMT
switching, dependence-aware LLSR, predictor/LLSR-length ablations) are
covered by `benchmarks/bench_ext_*.py` and `benchmarks/bench_ablation_*.py`
and summarized at the end of this document.
"""

EXTENSIONS_NOTE = """\
## Extensions beyond the paper (summary)

| experiment | bench | headline observation |
| --- | --- | --- |
| Runahead threads (Ramirez et al. 2008) | `bench_ext_runahead.py` | runahead clearly beats flush-family STP/ANTT on MLP mixes — it frees resources *and* prefetches |
| MLP-gated runahead (paper §7.2 future work) | `bench_ext_runahead.py` | the hybrid matches or beats plain runahead; short-distance misses take the cheaper flush path, and thresholds 8–32 form a plateau (`examples/runahead_hybrid.py`) |
| DG/PDG miss gating (El-Moursy & Albonesi) | `bench_ext_partitioning.py` | a 2-miss gate is surprisingly strong on symmetric MLP+MLP pairs, but cannot open the window for long-distance programs |
| Learning-based partitioning (Choi & Yeung) | `bench_ext_partitioning.py` | trails all event-driven schemes at these timescales — the paper's responsiveness argument, reproduced |
| MLP-aware DCRA (paper §7.2 future work) | `bench_ext_partitioning.py` | distance-scaled slow-thread bonus improves DCRA's ANTT on MLP mixes |
| MLP-aware CGMT switching (paper §7.3) | `bench_ext_cgmt.py` | switching at the burst's last miss cuts squashed work on every mix; IPC gains when the window is short relative to the quantum |
| Dependence-aware LLSR (paper §4.2 future work) | `bench_ablation_dependence_llsr.py` | suppresses dependent chase misses; rescues the co-runner when the plain LLSR is fooled by serial miss chains (`examples/custom_benchmark.py`) |
| LLL predictor design (paper §4.1) | `bench_ablation_predictors.py` | miss-pattern ≥ last-value/2-bit, as the paper concluded |
| LLSR length | `bench_ablation_llsr_length.py` | longer registers keep finding more-distant MLP for mcf-like programs; distance ≤ length always |
| Squash semantics | `bench_ablation_squash_semantics.py` | with fill-survives squashes, blind flush closes much of the gap — the paper's contrast depends on era-accurate squash behaviour |
"""


def generate(commits: int | None = None, path: str = "EXPERIMENTS.md",
             progress=print) -> str:
    """Run every experiment and write the document; returns the text."""
    # The default must clear the slow-thread bootstrap scale (see
    # benchmarks/bench_common.py): below ~16K commits, extreme
    # speed-asymmetric pairs measure only their cold-start transient.
    if commits is None:
        commits = default_commits(20_000)
    parts = [PREAMBLE,
             f"\n*Generated with `commits={commits}` per thread "
             f"(wall-clock scale knob; see `repro.experiments.defaults`).*\n"]
    for section in SECTIONS:
        start = time.time()
        clear_baseline_cache(disk=False)
        parts.append(section(commits))
        if progress is not None:
            progress(f"  {section.__name__}: {time.time() - start:.1f}s")
    parts.append(EXTENSIONS_NOTE)
    text = "\n".join(parts)
    if path:
        with open(path, "w") as fh:
            fh.write(text)
    return text


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    commits = int(argv[0]) if argv else None
    path = argv[1] if len(argv) > 1 else "EXPERIMENTS.md"
    generate(commits, path)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
