"""Microarchitecture sweeps: Figures 15/16 (memory latency) and 17/18
(processor window size).

Both figures plot STP and ANTT *relative to ICOUNT at the same design
point*; the sweep helpers return those ratios directly.
"""

from __future__ import annotations

from repro.config import SMTConfig, with_memory_latency, with_window_size
from repro.experiments.defaults import default_commits, default_config
from repro.experiments.policy_comparison import (
    cells_from_results,
    summarize_policies,
)


def _relative_to_icount(summary: dict[str, tuple[float, float]]) \
        -> dict[str, tuple[float, float]]:
    base_stp, base_antt = summary["icount"]
    return {policy: (stp / base_stp, antt / base_antt)
            for policy, (stp, antt) in summary.items()}


def _sweep(points, make_cfg, workloads, policies, max_commits, progress,
           workers=None):
    """Submit the whole (point × workload × policy) grid as one batch.

    The grid is expressed as :class:`repro.api.RunSpec` s and executed
    as one :class:`repro.api.Session` batch.  Batching across design
    points keeps every worker busy for the whole sweep (no per-point
    barrier) and lets the engine simulate each point's single-thread
    baselines exactly once across all policies.
    """
    from repro.api import RunSpec, Session   # lazy: layering rule
    if "icount" not in policies:
        policies = ("icount", *policies)
    workloads = [tuple(w) for w in workloads]
    grid = {point: [RunSpec(workload=names, config=make_cfg(point),
                            policy=policy, max_commits=max_commits)
                    for names in workloads for policy in policies]
            for point in points}
    session = Session(workers=workers, progress=progress)
    flat = [spec for specs in grid.values() for spec in specs]
    by_spec = dict(zip(flat, session.run_many(flat)))
    results = {}
    for point, specs in grid.items():
        cells = cells_from_results(specs, [by_spec[s] for s in specs])
        summary = summarize_policies(cells, workloads, policies)
        results[point] = _relative_to_icount(summary)
    return results


def memory_latency_sweep(workloads, policies,
                         latencies=(200, 400, 600, 800),
                         cfg: SMTConfig | None = None,
                         max_commits: int | None = None,
                         progress=None, workers: int | None = None):
    """Figures 15/16: STP and ANTT vs. main-memory latency.

    Returns ``{latency: {policy: (stp_rel_icount, antt_rel_icount)}}``.
    """
    base = cfg or default_config(num_threads=len(tuple(workloads[0])))
    commits = max_commits or default_commits()
    return _sweep(latencies, lambda lat: with_memory_latency(base, lat),
                  workloads, tuple(policies), commits, progress, workers)


def window_size_sweep(workloads, policies,
                      rob_sizes=(128, 256, 512, 1024),
                      cfg: SMTConfig | None = None,
                      max_commits: int | None = None,
                      progress=None, workers: int | None = None):
    """Figures 17/18: STP and ANTT vs. window size.

    The LSQ, issue queues and rename register files scale proportionally
    (Section 6.4.2).  Returns the same shape as
    :func:`memory_latency_sweep`.
    """
    base = cfg or default_config(num_threads=len(tuple(workloads[0])))
    commits = max_commits or default_commits()
    return _sweep(rob_sizes, lambda rob: with_window_size(base, rob),
                  workloads, tuple(policies), commits, progress, workers)
