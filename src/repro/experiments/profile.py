"""Single-threaded benchmark profiling shared by Table I and Figures 4/6/7/8.

One instrumented single-threaded run per benchmark supplies:

* the long-latency load rate and MLP (Table I / Figure 1),
* the measured MLP-distance samples (Figure 4's CDF; 128-entry LLSR),
* the front-end LLL predictor accuracy (Figure 6),
* the MLP predictor's binary and distance accuracy (Figures 7/8).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import SMTConfig
from repro.experiments.defaults import (
    characterization_config,
    default_commits,
    default_warmup,
)
from repro.experiments.runner import trace_for
from repro.pipeline import CoreStats, SMTCore
from repro.policies import make_policy

#: Figure 4 measures the MLP distance with a 128-entry LLSR on the
#: single-threaded 256-entry-ROB machine.
FIG4_LLSR_LENGTH = 128

#: Upper bound for the adaptive characterization budget (see below).
MAX_PROFILE_COMMITS = 150_000


def characterization_budget(name: str, default_budget: int,
                            min_bursts: int = 3,
                            cap: int = MAX_PROFILE_COMMITS) -> int:
    """Instruction budget needed to observe a benchmark's miss behaviour.

    Burst-kernel benchmarks (art, apsi, galgel, ...) produce one miss
    cluster every ``burst_every`` iterations; a run must cover several
    clusters for the measured LLL rate and MLP to mean anything.  The
    budget is raised accordingly, up to ``cap`` (benchmarks whose bursts
    are rarer than the cap — gcc, eon — measure ≈0, matching their ≈0
    paper rates).
    """
    from repro.workloads import benchmark

    spec = benchmark(name)
    if spec.burst_loads:
        needed = min_bursts * spec.burst_every * spec.body_length
        return min(max(default_budget, needed), cap)
    return default_budget


@dataclass
class ProfileResult:
    """Everything the characterization figures need for one benchmark."""

    name: str
    stats: CoreStats
    ipc: float
    lll_per_kilo: float
    mlp: float
    mlp_distances: list[int]
    lll_accuracy: float
    lll_miss_accuracy: float
    mlp_fractions: dict[str, float]
    mlp_binary_accuracy: float
    mlp_distance_accuracy: float

    def distance_cdf(self, points: list[int] | None = None) \
            -> list[tuple[int, float]]:
        """Cumulative distribution of measured MLP distances (Figure 4)."""
        samples = sorted(self.mlp_distances)
        if not samples:
            return []
        if points is None:
            points = list(range(0, FIG4_LLSR_LENGTH + 1, 8))
        total = len(samples)
        cdf = []
        idx = 0
        for point in points:
            while idx < total and samples[idx] <= point:
                idx += 1
            cdf.append((point, idx / total))
        return cdf


_profile_cache: dict[tuple, ProfileResult] = {}


def profile_benchmark(name: str, cfg: SMTConfig | None = None,
                      max_commits: int | None = None) -> ProfileResult:
    """Run (and cache) the instrumented single-threaded profile of ``name``."""
    if cfg is None:
        cfg = characterization_config()
    if max_commits is None:
        max_commits = default_commits()
    max_commits = characterization_budget(name, max_commits)
    cfg = replace(cfg, num_threads=1, llsr_length_override=FIG4_LLSR_LENGTH)
    key = (name, cfg, max_commits)
    cached = _profile_cache.get(key)
    if cached is not None:
        return cached
    trace = trace_for(name, cfg, slot=0)
    core = SMTCore(cfg, [trace], make_policy("icount"))
    stats = core.run(max_commits, warmup=default_warmup())
    ts = core.threads[0]
    result = ProfileResult(
        name=name,
        stats=stats,
        ipc=stats.ipc(0),
        lll_per_kilo=stats.lll_per_kilo(0),
        mlp=stats.mlp,
        mlp_distances=[d for _pc, d in ts.llsr.measured],
        lll_accuracy=ts.stats.lll_predictor_accuracy,
        lll_miss_accuracy=ts.stats.lll_predictor_miss_accuracy,
        mlp_fractions=ts.mlp_pred.classification_fractions(),
        mlp_binary_accuracy=ts.mlp_pred.binary_accuracy,
        mlp_distance_accuracy=ts.mlp_pred.distance_accuracy,
    )
    _profile_cache[key] = result
    return result


def clear_profile_cache() -> None:
    _profile_cache.clear()
