"""Experiment drivers that regenerate every table and figure of the paper.

See DESIGN.md for the experiment index.  Each driver returns plain data
(dataclasses / dicts) so that the benchmark harness, the examples, and the
tests can all share them.
"""

from repro.experiments.characterize import CharacterizationRow, characterize
from repro.experiments.defaults import (
    default_commits,
    default_config,
    default_single_config,
    scaled,
)
from repro.experiments.policy_comparison import (
    PolicyCell,
    cells_from_batch,
    compare_policies,
    summarize_policies,
)
from repro.experiments.profile import ProfileResult, profile_benchmark
from repro.experiments.runner import (
    SingleThreadResult,
    WorkloadResult,
    build_core,
    build_workload_result,
    clear_baseline_cache,
    evaluate_workload,
    run_single,
    run_workload,
    simulate_baseline,
    single_thread_baseline,
    trace_for,
)
from repro.experiments.sweeps import memory_latency_sweep, window_size_sweep

__all__ = [
    "CharacterizationRow",
    "PolicyCell",
    "ProfileResult",
    "SingleThreadResult",
    "WorkloadResult",
    "build_core",
    "build_workload_result",
    "cells_from_batch",
    "characterize",
    "clear_baseline_cache",
    "compare_policies",
    "default_commits",
    "default_config",
    "default_single_config",
    "evaluate_workload",
    "memory_latency_sweep",
    "profile_benchmark",
    "run_single",
    "run_workload",
    "scaled",
    "simulate_baseline",
    "single_thread_baseline",
    "summarize_policies",
    "trace_for",
    "window_size_sweep",
]
