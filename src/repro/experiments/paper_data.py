"""The paper's published headline results, for paper-vs-measured reporting.

Per-benchmark Table I values live in ``repro.workloads.registry.TABLE_I``;
this module holds the aggregate numbers quoted in the abstract and
Section 6, which EXPERIMENTS.md and the benches compare against.
All deltas are relative improvements ("+0.202" = 20.2% better).
"""

from __future__ import annotations

#: Section 6.1: long-latency load predictor (Figure 6).
LLL_PREDICTOR = {
    "mean_accuracy_per_load": 0.994,
    "min_accuracy_per_load": 0.94,
    "miss_accuracy_memory_intensive": (0.85, 0.99),  # range; mcf is 0.59
    "mcf_miss_accuracy": 0.59,
}

#: Section 6.2: MLP predictor (Figures 7 and 8).
MLP_PREDICTOR = {
    "binary_accuracy": 0.915,
    "false_negatives": 0.048,
    "false_positives": 0.037,
    "distance_accuracy": 0.878,
}

#: Section 6.3.1, two-thread workloads: MLP-aware flush vs. baselines.
#: Keys are (workload_class, baseline): (dSTP, dANTT-improvement).
TWO_THREAD_HEADLINES = {
    ("ILP", "icount"): (0.064, 0.051),
    ("MLP", "icount"): (0.202, 0.210),
    ("MLP", "flush"): (0.051, 0.188),
    ("MIX", "icount"): (0.224, 0.192),
    ("MIX", "flush"): (0.040, 0.139),
}

#: Section 6.3.2, four-thread workloads: MLP-aware flush deltas.
FOUR_THREAD_HEADLINES = {
    ("ALL", "icount"): (0.16, 0.124),   # STP ~16% better, ANTT 12.4% better
    ("ALL", "flush"): (0.0, 0.095),     # STP comparable, ANTT 9.5% better
}

#: Section 5: hardware prefetcher speedup over no-prefetcher baseline
#: (harmonic mean across the suite, Figure 5).
PREFETCHER_HMEAN_SPEEDUP = 1.202

#: Section 6.6: MLP-aware flush vs. DCRA.
PARTITIONING_HEADLINES = {
    "dcra_better_ilp_stp": 0.029,     # DCRA wins ILP STP by 2.9%
    "dcra_better_ilp_antt": 0.033,
    "mlpflush_better_mem_antt": 0.054,  # 2-thread MLP/mixed ANTT
    "mlpflush_better_mlp_stp": 0.021,
    "mlpflush_better_4t_mlp_antt": 0.085,
}

#: Figure 4 qualitative shape: fraction of exploitable MLP found within a
#: given distance, per program (read off the published CDFs).
MLP_DISTANCE_SHAPES = {
    "lucas": "nearly 100% of MLP within distance 40",
    "equake": "~50% of MLP within distance 90",
    "mcf": "most MLP beyond distance 100",
    "fma3d": "most MLP beyond distance 100",
}

#: Figures 15-18 qualitative trends for the MLP-aware flush policy.
SWEEP_TRENDS = {
    "memlat": "advantage over ICOUNT grows with memory latency",
    "window": "advantage over non-MLP-aware policies grows with window size",
}
