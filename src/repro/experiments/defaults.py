"""Default experiment scale.

The paper simulates 200M-instruction SimPoints of SPEC CPU2000 on SMTSIM;
a pure-Python cycle-level simulator cannot.  The default experiment scale
runs each program for ~tens of thousands of instructions on a machine whose
caches are 16× smaller (structure, associativity, latencies and the core
are unchanged; workload footprints are defined relative to L3 capacity, so
the miss *rates* are preserved — see DESIGN.md).

Environment knobs:

* ``REPRO_COMMITS``  — per-thread instruction budget (default 20000).
* ``REPRO_WARMUP``   — cold-start instructions discarded before measuring
  (default 4000).
* ``REPRO_SCALE``    — multiplier applied to instruction budgets.
* ``REPRO_FULL=1``   — run the full Table II/III workload lists instead of
  the representative subsets used by the benchmark harness.
"""

from __future__ import annotations

from dataclasses import replace
import os

from repro.config import SMTConfig, scaled_config

_CACHE_SCALE = 16


def scaled() -> float:
    """The REPRO_SCALE budget multiplier."""
    return float(os.environ.get("REPRO_SCALE", "1"))


def default_commits(base: int = 20_000) -> int:
    """Per-thread instruction budget, scaled by the environment."""
    env = os.environ.get("REPRO_COMMITS")
    commits = int(env) if env else base
    return max(int(commits * scaled()), 1_000)


def default_config(num_threads: int = 2, **overrides) -> SMTConfig:
    """The default experiment machine: Table IV core, 16×-scaled caches."""
    return scaled_config(num_threads=num_threads, scale=_CACHE_SCALE,
                         **overrides)


def default_single_config(**overrides) -> SMTConfig:
    """Single-threaded variant for CPI_ST baselines and characterization."""
    return default_config(num_threads=1, **overrides)


def characterization_config(**overrides) -> SMTConfig:
    """Single-threaded machine *without* the prefetcher.

    Table I and Figures 1/4/6/7/8 characterize the programs on a plain
    256-entry-ROB machine (the paper's original HPCA setup); the hardware
    prefetcher belongs to the SMT baseline of Table IV.
    """
    cfg = default_single_config(**overrides)
    mem = replace(cfg.memory,
                  prefetcher=replace(cfg.memory.prefetcher, enabled=False))
    return replace(cfg, memory=mem)


def default_warmup() -> int:
    """Cold-start instructions to execute before measurement begins."""
    env = os.environ.get("REPRO_WARMUP")
    return int(env) if env else 4_000


def full_runs() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")
