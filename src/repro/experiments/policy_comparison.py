"""Fetch-policy comparisons: Figures 9/10 (2-thread), 13/14 (4-thread),
20/21 (alternatives), 22/23 (vs. static partitioning and DCRA)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SMTConfig
from repro.experiments.defaults import default_commits, default_config
from repro.experiments.runner import WorkloadResult, evaluate_workload
from repro.metrics import summarize_antt, summarize_stp


@dataclass
class PolicyCell:
    """One (workload, policy) result."""

    names: tuple[str, ...]
    policy: str
    stp: float
    antt: float
    ipcs: tuple[float, ...]
    result: WorkloadResult


def compare_policies(workloads, policies, cfg: SMTConfig | None = None,
                     max_commits: int | None = None,
                     progress=None) -> dict[tuple[tuple[str, ...], str], PolicyCell]:
    """Evaluate every (workload × policy) cell.

    ``workloads`` is an iterable of benchmark-name tuples; all must match
    ``cfg.num_threads``.  ``progress`` is an optional callable invoked with
    a status string after each cell (used by the CLI and benches).
    """
    workloads = [tuple(w) for w in workloads]
    if not workloads:
        raise ValueError("need at least one workload")
    if cfg is None:
        cfg = default_config(num_threads=len(workloads[0]))
    if max_commits is None:
        max_commits = default_commits()
    cells: dict[tuple[tuple[str, ...], str], PolicyCell] = {}
    for names in workloads:
        for policy in policies:
            result = evaluate_workload(names, cfg, policy, max_commits)
            cell = PolicyCell(names, policy, result.stp, result.antt,
                              result.ipcs, result)
            cells[(names, policy)] = cell
            if progress is not None:
                progress(str(result))
    return cells


def summarize_policies(cells, workloads, policies) \
        -> dict[str, tuple[float, float]]:
    """Average STP (hmean) and ANTT (amean) per policy across workloads."""
    workloads = [tuple(w) for w in workloads]
    summary = {}
    for policy in policies:
        stps = [cells[(w, policy)].stp for w in workloads]
        antts = [cells[(w, policy)].antt for w in workloads]
        summary[policy] = (summarize_stp(stps), summarize_antt(antts))
    return summary


def format_summary(summary: dict[str, tuple[float, float]],
                   baseline: str = "icount") -> str:
    """Render a per-policy summary table, with deltas vs. a baseline."""
    lines = [f"{'policy':<22} {'STP':>7} {'ANTT':>7} "
             f"{'dSTP%':>7} {'dANTT%':>7}"]
    base = summary.get(baseline)
    for policy, (stp_v, antt_v) in summary.items():
        if base and base[0] > 0 and base[1] > 0:
            dstp = 100.0 * (stp_v / base[0] - 1.0)
            dantt = 100.0 * (antt_v / base[1] - 1.0)
            lines.append(f"{policy:<22} {stp_v:>7.3f} {antt_v:>7.3f} "
                         f"{dstp:>+7.1f} {dantt:>+7.1f}")
        else:
            lines.append(f"{policy:<22} {stp_v:>7.3f} {antt_v:>7.3f}")
    return "\n".join(lines)
