"""Fetch-policy comparisons: Figures 9/10 (2-thread), 13/14 (4-thread),
20/21 (alternatives), 22/23 (vs. static partitioning and DCRA)."""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace

from repro.config import SMTConfig
from repro.experiments.defaults import default_commits, default_config
from repro.experiments.runner import WorkloadResult
from repro.metrics import summarize_antt, summarize_stp


@dataclass
class PolicyCell:
    """One (workload, policy) result."""

    names: tuple[str, ...]
    policy: str
    stp: float
    antt: float
    ipcs: tuple[float, ...]
    result: WorkloadResult


def cells_from_results(specs, results) \
        -> dict[tuple[tuple[str, ...], str], PolicyCell]:
    """Index executed :class:`repro.api.RunSpec` s as a (workload,
    policy) -> :class:`PolicyCell` grid.

    ``results`` is the matching :meth:`repro.api.Session.run_many`
    output, in spec order.  The one place the cell layout is built from
    spec/result pairs — :func:`compare_policies` and the sweeps both go
    through here.
    """
    return {
        (spec.workload, spec.policy): PolicyCell(
            spec.workload, spec.policy, result.stp, result.antt,
            result.ipcs, result)
        for spec, result in zip(specs, results)
    }


def cells_from_batch(specs, batch) \
        -> dict[tuple[tuple[str, ...], str], PolicyCell]:
    """Index an executed :class:`~repro.jobs.executor.BatchResult` of
    workload jobs as a (names, policy) -> :class:`PolicyCell` grid.

    Deprecated adapter for :class:`~repro.jobs.JobSpec` batches; new
    code expresses grids as :class:`repro.api.RunSpec` s and uses
    :func:`cells_from_results`.  Kept for one release per the shim
    policy; delegates so there is only one cell-layout builder.
    """
    views = [SimpleNamespace(workload=spec.names, policy=spec.policy)
             for spec in specs]
    return cells_from_results(views, [batch[spec] for spec in specs])


def compare_policies(workloads, policies, cfg: SMTConfig | None = None,
                     max_commits: int | None = None,
                     progress=None, workers: int | None = None,
                     ) -> dict[tuple[tuple[str, ...], str], PolicyCell]:
    """Evaluate every (workload × policy) cell through the run-spec layer.

    ``workloads`` is an iterable of benchmark-name tuples; all must match
    ``cfg.num_threads``.  ``progress`` is an optional callable invoked with
    a status string after each cell (used by the CLI and benches).
    ``workers`` overrides the ``REPRO_JOBS`` worker count; results are
    bit-identical regardless.  The grid is expressed as
    :class:`repro.api.RunSpec` s and executed as one deduplicated
    :class:`repro.api.Session` batch, so cells memoized in the persistent
    result store are not re-simulated.
    """
    from repro.api import RunSpec, Session   # lazy: layering rule
    workloads = [tuple(w) for w in workloads]
    if not workloads:
        raise ValueError("need at least one workload")
    if cfg is None:
        cfg = default_config(num_threads=len(workloads[0]))
    if max_commits is None:
        max_commits = default_commits()
    specs = [RunSpec(workload=names, config=cfg, policy=policy,
                     max_commits=max_commits)
             for names in workloads for policy in policies]
    session = Session(workers=workers, progress=progress)
    return cells_from_results(specs, session.run_many(specs))


def summarize_policies(cells, workloads, policies) \
        -> dict[str, tuple[float, float]]:
    """Average STP (hmean) and ANTT (amean) per policy across workloads."""
    workloads = [tuple(w) for w in workloads]
    summary = {}
    for policy in policies:
        stps = [cells[(w, policy)].stp for w in workloads]
        antts = [cells[(w, policy)].antt for w in workloads]
        summary[policy] = (summarize_stp(stps), summarize_antt(antts))
    return summary


def format_summary(summary: dict[str, tuple[float, float]],
                   baseline: str = "icount") -> str:
    """Render a per-policy summary table, with deltas vs. a baseline."""
    lines = [f"{'policy':<22} {'STP':>7} {'ANTT':>7} "
             f"{'dSTP%':>7} {'dANTT%':>7}"]
    base = summary.get(baseline)
    for policy, (stp_v, antt_v) in summary.items():
        if base and base[0] > 0 and base[1] > 0:
            dstp = 100.0 * (stp_v / base[0] - 1.0)
            dantt = 100.0 * (antt_v / base[1] - 1.0)
            lines.append(f"{policy:<22} {stp_v:>7.3f} {antt_v:>7.3f} "
                         f"{dstp:>+7.1f} {dantt:>+7.1f}")
        else:
            lines.append(f"{policy:<22} {stp_v:>7.3f} {antt_v:>7.3f}")
    return "\n".join(lines)
