"""Table I / Figure 1: per-benchmark MLP characterization.

For every benchmark we measure, on the single-threaded baseline machine:

* LLL — long-latency loads per 1K committed instructions,
* MLP — the Chou et al. average outstanding long-latency loads,
* MLP impact — the slowdown from artificially serializing all independent
  long-latency misses (``serialize_long_latency``), exactly the paper's
  serialized-vs-parallel experiment; an impact of 0.5 means MLP doubles
  performance,
* the ILP/MLP classification (impact > 10% ⇒ MLP-intensive).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import SMTConfig
from repro.experiments.defaults import characterization_config, default_commits
from repro.experiments.profile import characterization_budget, profile_benchmark
from repro.experiments.runner import run_single
from repro.workloads import TABLE_I

MLP_IMPACT_THRESHOLD = 0.10


@dataclass
class CharacterizationRow:
    """One measured row of Table I, with the paper's values alongside."""

    name: str
    lll_per_kilo: float
    mlp: float
    mlp_impact: float
    category: str
    ipc: float
    paper_lll_per_kilo: float
    paper_mlp: float
    paper_mlp_impact: float
    paper_category: str

    @property
    def category_matches_paper(self) -> bool:
        return self.category == self.paper_category


def characterize(names: list[str] | None = None,
                 cfg: SMTConfig | None = None,
                 max_commits: int | None = None) -> list[CharacterizationRow]:
    """Measure Table I for ``names`` (default: all 26 benchmarks)."""
    if names is None:
        names = sorted(TABLE_I)
    if cfg is None:
        cfg = characterization_config()
    if max_commits is None:
        max_commits = default_commits()
    rows = []
    for name in names:
        budget = characterization_budget(name, max_commits)
        profile = profile_benchmark(name, cfg, max_commits)
        serial_cfg = replace(
            cfg, memory=replace(cfg.memory, serialize_long_latency=True))
        serial = run_single(name, serial_cfg, budget)
        # Compare cycles at the same committed-instruction count.
        par_cpi = profile.stats.cpi(0)
        ser_cpi = serial.cpi(0)
        impact = max(0.0, 1.0 - par_cpi / ser_cpi) if ser_cpi > 0 else 0.0
        paper = TABLE_I[name]
        rows.append(CharacterizationRow(
            name=name,
            lll_per_kilo=profile.lll_per_kilo,
            mlp=profile.mlp,
            mlp_impact=impact,
            category="MLP" if impact > MLP_IMPACT_THRESHOLD else "ILP",
            ipc=profile.ipc,
            paper_lll_per_kilo=paper.lll_per_kilo,
            paper_mlp=paper.mlp,
            paper_mlp_impact=paper.mlp_impact,
            paper_category=paper.category,
        ))
    return rows


def format_table(rows: list[CharacterizationRow]) -> str:
    """Render measured-vs-paper Table I as text."""
    header = (f"{'benchmark':<10} {'LLL/1K':>8} {'(paper)':>8} "
              f"{'MLP':>6} {'(paper)':>8} {'impact':>8} {'(paper)':>8} "
              f"{'class':>6} {'(paper)':>8}")
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.name:<10} {r.lll_per_kilo:>8.2f} {r.paper_lll_per_kilo:>8.2f} "
            f"{r.mlp:>6.2f} {r.paper_mlp:>8.2f} {r.mlp_impact:>7.1%} "
            f"{r.paper_mlp_impact:>7.1%} {r.category:>6} {r.paper_category:>8}")
    return "\n".join(lines)
