"""Command-line figure runner: ``python -m repro.experiments.figures <id>``.

Regenerates one of the paper's tables/figures from the terminal without
going through pytest.  Run with no arguments for the list of targets.
"""

from __future__ import annotations

import sys

from repro.experiments import (
    compare_policies,
    default_config,
    memory_latency_sweep,
    summarize_policies,
    window_size_sweep,
)
from repro.experiments.characterize import characterize, format_table
from repro.experiments.policy_comparison import format_summary
from repro.experiments.single_thread import mean_speedup, prefetcher_comparison
from repro.policies import ALTERNATIVES, MAIN_COMPARISON
from repro.workloads import TWO_THREAD_MLP, TWO_THREAD_MIXED


def _table1(budget: int) -> None:
    print(format_table(characterize(max_commits=budget)))


def _fig5(budget: int) -> None:
    rows = prefetcher_comparison(max_commits=budget)
    for r in rows:
        print(f"{r.name:<10} with={r.ipc_with:.3f} without={r.ipc_without:.3f}"
              f" speedup={r.speedup:.2f}x")
    print(f"hmean speedup: {mean_speedup(rows):.3f}x (paper 1.202x)")


def _policy_figure(workloads, policies, budget, threads=2) -> None:
    cfg = default_config(num_threads=threads)
    cells = compare_policies(workloads, policies, cfg, budget,
                             progress=print)
    print()
    print(format_summary(summarize_policies(cells, workloads, policies)))


def _fig9(budget: int) -> None:
    _policy_figure(TWO_THREAD_MLP[:6] + TWO_THREAD_MIXED[:6],
                   MAIN_COMPARISON, budget)


def _fig20(budget: int) -> None:
    _policy_figure(TWO_THREAD_MLP[:6], ALTERNATIVES, budget)


def _fig22(budget: int) -> None:
    _policy_figure(TWO_THREAD_MLP[:6],
                   ("icount", "static", "dcra", "mlp_flush"), budget)


def _fig15(budget: int) -> None:
    results = memory_latency_sweep(
        (("swim", "twolf"), ("vpr", "mcf")), ("icount", "flush", "mlp_flush"),
        max_commits=budget)
    for lat, summary in results.items():
        print(lat, {p: (round(s, 3), round(a, 3))
                    for p, (s, a) in summary.items()})


def _fig17(budget: int) -> None:
    results = window_size_sweep(
        (("swim", "twolf"), ("vpr", "mcf")), ("icount", "flush", "mlp_flush"),
        max_commits=budget)
    for rob, summary in results.items():
        print(rob, {p: (round(s, 3), round(a, 3))
                    for p, (s, a) in summary.items()})


TARGETS = {
    "table1": (_table1, "Table I / Figure 1: MLP characterization"),
    "fig5": (_fig5, "Figure 5: prefetcher on/off IPC"),
    "fig9": (_fig9, "Figures 9/10: two-thread policy comparison"),
    "fig15": (_fig15, "Figures 15/16: memory latency sweep"),
    "fig17": (_fig17, "Figures 17/18: window size sweep"),
    "fig20": (_fig20, "Figures 20/21: alternative MLP-aware policies"),
    "fig22": (_fig22, "Figures 22/23: vs static partitioning and DCRA"),
}


def _engine_footer(before: dict[str, int]) -> str | None:
    """One-line summary of what the jobs engine did for this figure.

    None when the target never touched the engine (table1/fig5 simulate
    directly) — printing "0 simulated" there would misreport real work.
    """
    from repro.jobs import counters, default_store, default_workers
    done = {k: v - before[k] for k, v in counters().items()}
    if not any(done.values()):
        return None
    store = default_store()
    where = str(store.root) if store is not None else "disabled"
    return (f"[jobs] {done['executed']} simulated, "
            f"{done['cache_hits']} cache hits; "
            f"workers={default_workers()}, store={where}")


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] not in TARGETS:
        print("usage: python -m repro.experiments.figures <target> [budget]")
        for name, (_, desc) in TARGETS.items():
            print(f"  {name:<8} {desc}")
        return 1
    from repro.jobs import counters
    budget = int(argv[1]) if len(argv) > 1 else 10_000
    fn, desc = TARGETS[argv[0]]
    print(f"== {desc} (budget {budget} instructions/thread) ==")
    before = counters()
    fn(budget)
    footer = _engine_footer(before)
    if footer is not None:
        print(f"\n{footer}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
