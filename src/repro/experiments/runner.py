"""Run single programs and multiprogram workloads; compute STP/ANTT.

Implements the paper's Section 5 methodology: a multiprogram simulation
stops when the first program commits its instruction budget; each program i
then has committed x_i instructions, and its single-threaded CPI is
evaluated *at x_i instructions* from a cached single-threaded run that
records the cycle stamp of every commit.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache

from repro.config import SMTConfig, single_thread_variant
from repro.experiments.defaults import default_warmup
from repro.metrics import antt, stp
from repro.pipeline import CoreStats, SMTCore
from repro.policies import FetchPolicy, make_policy
from repro.util import mix64
from repro.workloads import SyntheticTrace, benchmark

_THREAD_BASE_SHIFT = 48
_PC_BASE_SHIFT = 20


# Domain tag for salted seeds.  Canonical seeds hash only name bytes
# (each < 256), so no benchmark name can ever produce a salted stream's
# hash: the tag keeps "name2's canonical trace" and "name1 at salt k"
# disjoint for every possible registered name.
_SEED_DOMAIN = 0x5EED


def stable_seed(name: str, salt: int = 0) -> int:
    """Deterministic per-benchmark seed (independent of thread slot).

    ``salt=0`` is the canonical stream every published number uses; a
    nonzero salt (a :class:`repro.api.RunSpec` ``seed``) derives an
    alternate but equally deterministic instance of the same program,
    domain-separated so it can never alias another benchmark's
    canonical stream.
    """
    if salt:
        return mix64(_SEED_DOMAIN, salt, len(name), *name.encode())
    return mix64(*name.encode())


def trace_for(name: str, cfg: SMTConfig, slot: int = 0,
              seed: int = 0) -> SyntheticTrace:
    """Build the trace for ``name`` placed in hardware-thread ``slot``.

    The generated instruction stream is identical for every slot (only the
    address-space and PC bases differ), so single-threaded baselines and
    multithreaded runs execute the same program.

    Traces are pure functions of ``(spec, memory config, seed, bases)``
    and are never mutated by simulation, so identical requests share one
    memoized instance: repeat timing runs, golden regeneration and the
    jobs workers stop re-deriving the same body/prototype tables for
    every core they build.
    """
    return _cached_trace(name, cfg.memory, slot, seed)


@lru_cache(maxsize=64)
def _cached_trace(name: str, mem_cfg, slot: int,
                  seed: int) -> SyntheticTrace:
    return SyntheticTrace(
        benchmark(name), mem_cfg, seed=stable_seed(name, seed),
        base=(slot + 1) << _THREAD_BASE_SHIFT,
        pc_base=(slot + 1) << _PC_BASE_SHIFT)


@dataclass
class SingleThreadResult:
    """A cached single-threaded run with per-commit cycle stamps."""

    name: str
    stats: CoreStats
    commit_cycles: list[int]

    def cpi_at(self, commits: int) -> float:
        """Single-threaded CPI after exactly ``commits`` instructions."""
        if commits <= 0:
            raise ValueError("commits must be positive")
        commits = min(commits, len(self.commit_cycles))
        # A commit stamped on the measurement-start cycle would yield a
        # degenerate zero CPI on very short runs; clamp to one cycle.
        return max(self.commit_cycles[commits - 1], 1) / commits

    @property
    def ipc(self) -> float:
        return self.stats.ipc(0)


def _single_config(cfg: SMTConfig) -> SMTConfig:
    return single_thread_variant(cfg)


def core_for(policy: FetchPolicy,
             backend: str = "object") -> type[SMTCore]:
    """The core class for one run: policy requirement, then backend.

    A policy's ``core_class`` (e.g. runahead's specialized core) always
    wins — those policies are only implemented on their own engine.  For
    every other policy the named entry of the ``backends`` registry is
    used; ``object`` (the default) short-circuits to :class:`SMTCore`
    without touching the registry, so the common path stays
    import-cycle-free and pays no lookup.

    With ``REPRO_SANITIZE`` set (see :mod:`repro.pipeline.sanitize`) the
    stock engines are swapped for their checked subclasses — bit-exact,
    slower, allocator invariants asserted.  The env probe is the only
    cost when the knob is off; the sanitizer module is not even
    imported.  Specialized cores bypass the sanitizer.
    """
    if policy.core_class is not None:
        return policy.core_class
    if backend == "object":
        cls = SMTCore
    else:
        from repro import registry  # lazy: registry sits above experiments
        cls = registry.backends.get(backend)
    if os.environ.get("REPRO_SANITIZE", "") not in ("", "0"):
        from repro.pipeline.sanitize import checked_variant
        cls = checked_variant(cls)
    return cls


def run_single(name: str, cfg: SMTConfig, max_commits: int,
               policy: str | FetchPolicy = "icount",
               record_commits: bool = False,
               warmup: int | None = None) -> CoreStats:
    """Run one benchmark alone on the (single-threaded) machine."""
    st_cfg = _single_config(cfg)
    trace = trace_for(name, st_cfg, slot=0)
    pol = make_policy(policy) if isinstance(policy, str) else policy
    core = core_for(pol)(st_cfg, [trace], pol)
    if record_commits:
        core.threads[0].commit_cycles = []
    stats = core.run(max_commits,
                     warmup=default_warmup() if warmup is None else warmup)
    if record_commits:
        stats.commit_cycle_trace = core.threads[0].commit_cycles
    return stats


def simulate_baseline(name: str, st_cfg: SMTConfig, max_commits: int,
                      warmup: int, seed: int = 0) -> SingleThreadResult:
    """Uncached single-threaded ICOUNT run with per-commit cycle stamps.

    The simulation primitive behind :func:`single_thread_baseline` and the
    :mod:`repro.jobs` executor; ``st_cfg`` must already be single-threaded.
    """
    trace = trace_for(name, st_cfg, slot=0, seed=seed)
    core = SMTCore(st_cfg, [trace], make_policy("icount"))
    core.threads[0].commit_cycles = []
    stats = core.run(max_commits, warmup=warmup)
    return SingleThreadResult(name, stats, core.threads[0].commit_cycles)


_baseline_cache: dict = {}


def single_thread_baseline(name: str, cfg: SMTConfig,
                           max_commits: int,
                           warmup: int | None = None,
                           seed: int = 0) -> SingleThreadResult:
    """Cached single-threaded ICOUNT run of ``name`` (CPI_ST source).

    Two cache layers: a process-local dict (hits return the identical
    object) backed by the persistent :mod:`repro.jobs` result store, so a
    baseline simulates at most once across processes and runs.
    """
    from repro.jobs.spec import JobSpec          # lazy: layering rule
    from repro.jobs.store import default_store
    spec = JobSpec.baseline(name, cfg, max_commits, warmup, seed=seed)
    cached = _baseline_cache.get(spec)
    if cached is not None:
        return cached
    store = default_store()
    result = store.get(spec) if store is not None else None
    if result is None:
        result = simulate_baseline(name, spec.config, max_commits,
                                   spec.warmup, seed=seed)
        if store is not None:
            store.put(spec, result)
    _baseline_cache[spec] = result
    return result


def clear_baseline_cache(disk: bool = True) -> None:
    """Drop the in-process baseline cache and (by default) the disk store.

    Pass ``disk=False`` when you only need the in-process memo dropped
    (e.g. between config variants in a long run) — results are keyed by
    full content, so the persistent store never aliases across variants
    and wiping it there would just force needless re-simulation.
    """
    _baseline_cache.clear()
    if disk:
        from repro.jobs.store import default_store  # lazy: layering rule
        store = default_store()
        if store is not None:
            store.clear()


@dataclass
class WorkloadResult:
    """One multiprogram run, evaluated with the paper's metrics."""

    names: tuple[str, ...]
    policy: str
    stats: CoreStats
    committed: tuple[int, ...] = ()
    st_cpis: tuple[float, ...] = ()
    mt_cpis: tuple[float, ...] = ()
    stp: float = 0.0
    antt: float = 0.0
    ipcs: tuple[float, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        mix = "-".join(self.names)
        return (f"{mix:<32} {self.policy:<20} STP={self.stp:5.3f} "
                f"ANTT={self.antt:5.3f}")


def build_core(names: tuple[str, ...] | list[str], cfg: SMTConfig,
               policy: str = "icount", seed: int = 0,
               backend: str = "object", **policy_kwargs) -> SMTCore:
    """Construct the simulation core for a workload.

    The single construction path: :func:`run_workload` (and through it
    the jobs executor) and :meth:`repro.api.Session.simulate` /
    ``iter_intervals`` all build here, so every entry point wires
    traces, policy, core class, and engine backend identically.
    """
    names = tuple(names)
    if len(names) != cfg.num_threads:
        raise ValueError(
            f"workload {names} needs a {len(names)}-thread config, "
            f"got num_threads={cfg.num_threads}")
    traces = [trace_for(name, cfg, slot=i, seed=seed)
              for i, name in enumerate(names)]
    pol = make_policy(policy, **policy_kwargs)
    return core_for(pol, backend)(cfg, traces, pol)


def run_workload(names: tuple[str, ...] | list[str], cfg: SMTConfig,
                 policy: str = "icount", max_commits: int = 20_000,
                 warmup: int | None = None, seed: int = 0,
                 backend: str = "object",
                 **policy_kwargs) -> tuple[CoreStats, SMTCore]:
    """Simulate a multiprogram workload; returns (stats, core)."""
    core = build_core(names, cfg, policy, seed, backend=backend,
                      **policy_kwargs)
    stats = core.run(max_commits,
                     warmup=default_warmup() if warmup is None else warmup)
    return stats, core


def build_workload_result(names, policy: str, stats: CoreStats,
                          baselines) -> WorkloadResult:
    """Score a finished multiprogram run against its ST baselines.

    ``baselines`` is one :class:`SingleThreadResult` per program, in
    workload order.  Shared by :func:`evaluate_workload` and the
    :mod:`repro.jobs` executor so both paths produce bit-identical
    STP/ANTT.
    """
    names = tuple(names)
    committed = tuple(t.committed for t in stats.threads)
    mt_cpis = tuple(stats.cycles / max(x, 1) for x in committed)
    st_cpis = tuple(base.cpi_at(max(x, 1))
                    for base, x in zip(baselines, committed))
    return WorkloadResult(
        names=names, policy=policy, stats=stats, committed=committed,
        st_cpis=st_cpis, mt_cpis=mt_cpis,
        stp=stp(st_cpis, mt_cpis), antt=antt(st_cpis, mt_cpis),
        ipcs=tuple(stats.ipc(i) for i in range(len(names))))


def evaluate_workload(names: tuple[str, ...] | list[str], cfg: SMTConfig,
                      policy: str = "icount", max_commits: int = 20_000,
                      warmup: int | None = None, seed: int = 0,
                      **policy_kwargs) -> WorkloadResult:
    """Run a workload and score it with STP and ANTT (Section 5)."""
    names = tuple(names)
    stats, _core = run_workload(names, cfg, policy, max_commits,
                                warmup=warmup, seed=seed, **policy_kwargs)
    baselines = [single_thread_baseline(name, cfg, max_commits, seed=seed)
                 for name in names]
    return build_workload_result(names, policy, stats, baselines)
