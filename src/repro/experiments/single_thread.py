"""Figure 5: single-threaded IPC with and without the hardware prefetcher."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import SMTConfig
from repro.experiments.defaults import default_commits, default_single_config
from repro.experiments.runner import run_single
from repro.metrics import harmonic_mean
from repro.workloads import TABLE_I


@dataclass
class PrefetchRow:
    name: str
    ipc_with: float
    ipc_without: float

    @property
    def speedup(self) -> float:
        if self.ipc_without <= 0:
            return 1.0
        return self.ipc_with / self.ipc_without


def prefetcher_comparison(names: list[str] | None = None,
                          cfg: SMTConfig | None = None,
                          max_commits: int | None = None) -> list[PrefetchRow]:
    """Measure per-benchmark IPC with the stream-buffer prefetcher on/off."""
    if names is None:
        names = sorted(TABLE_I)
    if cfg is None:
        cfg = default_single_config()
    if max_commits is None:
        max_commits = default_commits()
    off_mem = replace(cfg.memory,
                      prefetcher=replace(cfg.memory.prefetcher, enabled=False))
    off_cfg = replace(cfg, memory=off_mem)
    rows = []
    for name in names:
        with_pf = run_single(name, cfg, max_commits)
        without_pf = run_single(name, off_cfg, max_commits)
        rows.append(PrefetchRow(name, with_pf.ipc(0), without_pf.ipc(0)))
    return rows


def mean_speedup(rows: list[PrefetchRow]) -> float:
    """Harmonic-mean IPC speedup, as reported in Section 5 (paper: 20.2%)."""
    return harmonic_mean([max(r.speedup, 1e-9) for r in rows])
