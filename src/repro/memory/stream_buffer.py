"""Predictor-directed stream buffers (Sherwood, Sair & Calder, MICRO 2000).

Table IV: 8 stream buffers of 8 entries each, guided by a 2K-entry stride
predictor indexed by the load PC, with confidence-based allocation.

Each buffer prefetches a strided sequence of cache lines ahead of a demand
stream.  A demand miss that matches a buffered line is serviced from the
buffer (or waits for the in-flight fill); the buffer then slides forward and
prefetches further lines.  A demand miss that matches no buffer consults the
stride predictor and, on a confident nonzero stride, reallocates the
least-recently-used buffer.
"""

from __future__ import annotations

from repro.config import PrefetcherConfig
from repro.memory.stride_predictor import StridePredictor


class _StreamBuffer:
    __slots__ = ("entries", "next_addr", "stride", "last_used", "valid",
                 "hits_since_alloc", "alloc_cycle")

    def __init__(self) -> None:
        self.entries: dict[int, int] = {}  # line_number -> fill-ready cycle
        self.next_addr = 0
        self.stride = 0
        self.last_used = -1
        self.valid = False
        self.hits_since_alloc = 0
        self.alloc_cycle = -1


class StreamBufferPrefetcher:
    """The stream-buffer array plus its guiding stride predictor."""

    __slots__ = ("cfg", "stride_predictor", "_buffers", "_line_shift",
                 "_mem_latency", "hits", "lookups", "allocations",
                 "prefetches_issued")

    def __init__(self, cfg: PrefetcherConfig, line_size: int, mem_latency: int):
        self.cfg = cfg
        self.stride_predictor = StridePredictor(
            cfg.stride_table_entries, cfg.confidence_threshold)
        self._buffers = [_StreamBuffer() for _ in range(cfg.num_buffers)]
        self._line_shift = line_size.bit_length() - 1
        self._mem_latency = mem_latency
        self.hits = 0
        self.lookups = 0
        self.allocations = 0
        self.prefetches_issued = 0

    def _line(self, addr: int) -> int:
        return addr >> self._line_shift

    def observe_load(self, pc: int, addr: int) -> None:
        """Train the stride predictor with every executed load."""
        self.stride_predictor.observe(pc, addr)

    def demand_miss(self, pc: int, addr: int, cycle: int) -> int | None:
        """Handle a demand L1 miss.

        Returns the cycle at which the line is available from a stream
        buffer, or ``None`` when no buffer holds it (the miss proceeds down
        the normal hierarchy; a new stream may be allocated).
        """
        self.lookups += 1
        line = self._line(addr)
        for buf in self._buffers:
            if buf.valid and line in buf.entries:
                ready = buf.entries[line]
                buf.last_used = cycle
                buf.hits_since_alloc += 1
                self.hits += 1
                self._consume(buf, line, cycle)
                return max(ready, cycle)
        self._maybe_allocate(pc, addr, cycle)
        return None

    def _consume(self, buf: _StreamBuffer, line: int, cycle: int) -> None:
        """Retire the hit line (and stale predecessors); top the buffer up."""
        if buf.stride >= 0:
            stale = [ln for ln in buf.entries if ln <= line]
        else:
            stale = [ln for ln in buf.entries if ln >= line]
        for ln in stale:
            del buf.entries[ln]
        self._top_up(buf, cycle)

    def _top_up(self, buf: _StreamBuffer, cycle: int) -> None:
        while len(buf.entries) < self.cfg.buffer_entries:
            line = self._line(buf.next_addr)
            if line not in buf.entries:
                buf.entries[line] = cycle + self._mem_latency
                self.prefetches_issued += 1
            buf.next_addr += buf.stride * (1 << self._line_shift)

    def _maybe_allocate(self, pc: int, addr: int, cycle: int) -> None:
        stride = self.stride_predictor.confident_stride(pc)
        if stride is None:
            return
        # Work in whole-line strides so consecutive prefetches hit new lines.
        line_size = 1 << self._line_shift
        line_stride = 1 if stride > 0 else -1
        if abs(stride) > line_size:
            line_stride = (stride + line_size - 1) // line_size if stride > 0 \
                else (stride - line_size + 1) // line_size
        # Usefulness-based replacement (the confidence scheme of Sherwood
        # et al.): a buffer that is producing hits keeps its slot; only
        # *dead* buffers may be reallocated — ones that never produced a
        # hit within a generous grace period (the stream's first reuse can
        # only arrive a reuse-interval after allocation), or ones that
        # have stopped hitting for that long (the stream ended).  When no
        # buffer is reclaimable the allocation is simply skipped: with
        # more live streams than buffers, a stable subset stays covered
        # instead of every allocation thrashing every buffer before any
        # can produce its first hit.
        # The reuse interval of a strided stream (miss → next line miss)
        # spans several thousand cycles on this machine; a grace shorter
        # than that reclaims every buffer just before its first hit.
        grace = 16 * self._mem_latency
        victim = None
        for buf in self._buffers:
            if not buf.valid:
                victim = buf
                break
        if victim is None:
            eligible = [
                b for b in self._buffers
                if (b.hits_since_alloc == 0
                    and cycle - b.alloc_cycle >= grace)
                or cycle - b.last_used >= grace
            ]
            if not eligible:
                return
            victim = min(eligible,
                         key=lambda b: (b.hits_since_alloc, b.last_used))
        victim.valid = True
        victim.alloc_cycle = cycle
        victim.entries = {}
        victim.stride = line_stride
        victim.last_used = cycle
        victim.hits_since_alloc = 0
        victim.next_addr = addr + line_stride * line_size
        self.allocations += 1
        self._top_up(victim, cycle)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
