"""A fully-associative TLB with LRU replacement (Table IV: 128 I / 512 D)."""

from __future__ import annotations

from repro.config import TLBConfig


class TLB:
    __slots__ = ("cfg", "_entries", "_page_shift", "hits", "misses")

    def __init__(self, cfg: TLBConfig):
        self.cfg = cfg
        shift = cfg.page_size.bit_length() - 1
        if (1 << shift) != cfg.page_size:
            raise ValueError("page size must be a power of two")
        self._page_shift = shift
        # Insertion-ordered by recency (see Cache): first key == LRU.
        self._entries: dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    def page_of(self, addr: int) -> int:
        return addr >> self._page_shift

    def lookup(self, addr: int) -> bool:
        """Translate ``addr``; returns True on hit.  Misses fill the entry."""
        page = addr >> self._page_shift
        entries = self._entries
        if page in entries:
            del entries[page]     # move to the most-recent end
            entries[page] = 0
            self.hits += 1
            return True
        self.misses += 1
        if len(entries) >= self.cfg.entries:
            del entries[next(iter(entries))]
        entries[page] = 0
        return False

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
