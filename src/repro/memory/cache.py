"""A set-associative cache with true-LRU replacement.

Timing-only: the cache tracks which lines are present, not their data.
Lines are installed immediately on miss handling (tag update at request
time); fill *timing* is tracked by the hierarchy's pending-fill table, which
models MSHR merging.
"""

from __future__ import annotations

from repro.config import CacheConfig


class Cache:
    """One cache level.  Addresses are byte addresses."""

    __slots__ = ("cfg", "name", "_sets", "_num_sets", "_line_shift",
                 "hits", "misses")

    def __init__(self, cfg: CacheConfig, name: str = "cache"):
        self.cfg = cfg
        self.name = name
        self._num_sets = cfg.num_sets
        self._line_shift = cfg.line_size.bit_length() - 1
        if (1 << self._line_shift) != cfg.line_size:
            raise ValueError("line size must be a power of two")
        # One dict per set, insertion-ordered by recency: the first key
        # is always the LRU line, so a hit refresh is delete+reinsert and
        # eviction is O(1) (the stamp-based form scanned the set with
        # ``min(s, key=s.get)`` per eviction).  Victim choice is
        # identical: least-recent == first in recency order.
        self._sets: list[dict[int, int]] = [dict() for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def lookup(self, addr: int) -> bool:
        """Access the cache; returns True on hit.  Updates LRU, no fill."""
        line = addr >> self._line_shift
        s = self._sets[line % self._num_sets]
        if line in s:
            del s[line]       # move to the most-recent end
            s[line] = 0
            self.hits += 1
            return True
        self.misses += 1
        return False

    def probe(self, addr: int) -> bool:
        """Check presence without touching LRU or statistics."""
        line = addr >> self._line_shift
        return line in self._sets[line % self._num_sets]

    def touch(self, addr: int) -> None:
        """Refresh LRU recency if present, without counting an access.

        Used to propagate recency from upper-level hits so lines that are
        hot in L1/L2 do not go LRU-stale in the lower levels.
        """
        line = addr >> self._line_shift
        s = self._sets[line % self._num_sets]
        if line in s:
            del s[line]
            s[line] = 0

    def install(self, addr: int) -> int | None:
        """Insert the line containing ``addr``; returns the evicted line or None."""
        line = addr >> self._line_shift
        s = self._sets[line % self._num_sets]
        if line in s:
            del s[line]
            s[line] = 0
            return None
        victim = None
        if len(s) >= self.cfg.assoc:
            victim = next(iter(s))
            del s[victim]
        s[line] = 0
        return victim

    def invalidate(self, addr: int) -> bool:
        """Remove the line containing ``addr`` if present."""
        line = addr >> self._line_shift
        s = self._sets[line % self._num_sets]
        if line in s:
            del s[line]
            return True
        return False

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
