"""The composed memory-hierarchy timing model.

Implements Table IV: 64KB 2-way L1I/L1D, 512KB 8-way L2, 4MB 16-way L3,
128/512-entry fully-associative I/D TLBs, latencies L2(11)/L3(35)/MEM(350),
and an 8×8 stream-buffer prefetcher guided by a 2K-entry stride predictor.

Modelling approach: tags are installed at request time, while a pending-fill
table records when the data actually arrives.  A second access to a line
whose fill is still in flight completes when the fill does — this reproduces
MSHR merging (delayed hits) without per-cycle bookkeeping.  MSHR capacity
bounds the number of concurrent demand fills.

A **long-latency load** (the paper's trigger event) is a demand load that
either misses the L3 (data comes from DRAM) or misses the D-TLB.  The
hierarchy records one `(start, end)` interval per long-latency load so that
MLP — the Chou et al. average number of long-latency loads outstanding while
at least one is outstanding — can be integrated exactly after a run.

``serialize_long_latency`` forces at most one outstanding memory-level
demand miss; comparing a serialized run against a normal run yields the
"MLP impact" column of Table I.
"""

from __future__ import annotations

from enum import IntEnum
import heapq

from repro.config import MemoryConfig
from repro.memory.cache import Cache
from repro.memory.stream_buffer import StreamBufferPrefetcher
from repro.memory.tlb import TLB


class ServiceLevel(IntEnum):
    """Where a memory access was ultimately serviced from."""

    L1 = 1
    STREAM = 2   # stream-buffer prefetcher
    MERGE = 3    # merged into an in-flight fill (delayed hit)
    L2 = 4
    L3 = 5
    MEM = 6


class AccessResult:
    """Timing outcome of one data access.

    ``long_latency`` is the paper's strict definition — the load itself
    missed the L3 or the D-TLB — and feeds the statistics, the LLSR, and
    the predictors.  ``trigger`` is what the long-latency-aware fetch
    policies observe: any load that will stay outstanding far beyond the
    L3 latency, which additionally includes *delayed hits* that merge into
    an in-flight fill (Tullsen & Brown trigger on loads outstanding past a
    threshold, and a merged load is outstanding just the same).
    """

    __slots__ = ("complete_cycle", "detect_cycle", "level", "tlb_miss",
                 "long_latency", "trigger", "fill_line")

    def __init__(self, complete_cycle: int, detect_cycle: int,
                 level: ServiceLevel, tlb_miss: bool, long_latency: bool,
                 trigger: bool | None = None, fill_line: int | None = None):
        self.complete_cycle = complete_cycle
        self.detect_cycle = detect_cycle
        self.level = level
        self.tlb_miss = tlb_miss
        self.long_latency = long_latency
        self.trigger = long_latency if trigger is None else trigger
        # Line number of the memory fill this load *initiated* (None if it
        # hit or merged); used to cancel the fill if the load is squashed.
        self.fill_line = fill_line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<AccessResult {self.level.name} done@{self.complete_cycle}"
                f"{' LL' if self.long_latency else ''}>")


class MemoryHierarchy:
    """Shared (SMT) memory hierarchy with per-access timing."""

    def __init__(self, cfg: MemoryConfig):
        self.cfg = cfg
        # Latency/capacity scalars hoisted off the frozen config: the data
        # path reads several per access.
        self._l1_latency = cfg.l1_latency
        self._l2_latency = cfg.l2_latency
        self._l3_latency = cfg.l3_latency
        self._mem_latency = cfg.mem_latency
        self._tlb_miss_penalty = cfg.tlb_miss_penalty
        self._mshr_entries = cfg.mshr_entries
        self._serialize_ll = cfg.serialize_long_latency
        self.l1i = Cache(cfg.l1i, "L1I")
        self.l1d = Cache(cfg.l1d, "L1D")
        self.l2 = Cache(cfg.l2, "L2")
        self.l3 = Cache(cfg.l3, "L3")
        self.itlb = TLB(cfg.itlb)
        self.dtlb = TLB(cfg.dtlb)
        self.prefetcher = (
            StreamBufferPrefetcher(cfg.prefetcher, cfg.line_size,
                                   cfg.mem_latency)
            if cfg.prefetcher.enabled else None)
        # line number -> (data-ready cycle, ServiceLevel of the fill source)
        self._pending: dict[int, tuple[int, ServiceLevel]] = {}
        self._fill_ends: list[int] = []     # heap of outstanding demand fills
        self._last_ll_end = 0               # for serialize_long_latency mode
        # (start, end) per long-latency load, for exact MLP integration.
        self.ll_intervals: list[tuple[int, int]] = []
        self.ll_loads_per_thread: dict[int, int] = {}
        self.demand_loads = 0
        self.merged_loads = 0
        self.prefetch_covered = 0

    # ------------------------------------------------------------------ #
    # data path
    # ------------------------------------------------------------------ #

    def load(self, thread: int, pc: int, addr: int, cycle: int) -> AccessResult:
        """Demand load issued by a load/store unit at ``cycle``."""
        self.demand_loads += 1
        tlb_miss = not self.dtlb.lookup(addr)
        if self.prefetcher is not None:
            self.prefetcher.observe_load(pc, addr)
        result = self._data_access(pc, addr, cycle, tlb_miss, demand=True)
        if result.long_latency:
            self.ll_loads_per_thread[thread] = (
                self.ll_loads_per_thread.get(thread, 0) + 1)
            self.ll_intervals.append((cycle, result.complete_cycle))
        return result

    def store(self, thread: int, pc: int, addr: int, cycle: int) -> AccessResult:
        """Committed store draining from the write buffer (write-allocate)."""
        tlb_miss = not self.dtlb.lookup(addr)
        return self._data_access(pc, addr, cycle, tlb_miss, demand=False)

    def _data_access(self, pc: int, addr: int, cycle: int, tlb_miss: bool,
                     demand: bool) -> AccessResult:
        cfg = self  # hoisted scalars (_l1_latency etc.)
        start = cycle + (cfg._tlb_miss_penalty if tlb_miss else 0)
        line = self.l1d.line_of(addr)
        # Long-latency-aware policies trigger when the L2 miss is
        # determined (Tullsen & Brown's "trigger on miss"), a few cycles
        # after the L2 lookup — well before the data returns.
        detect = cycle + cfg._l2_latency + 3

        pending = self._pending.get(line)
        if pending is not None:
            ready, src = pending
            if ready > start:
                # Delayed hit: merge into the in-flight fill.  Not an L3 miss,
                # so not a long-latency load — unless the TLB missed.  It
                # does *trigger* the fetch policies when the fill is still
                # far away: the pipeline sees a load stuck for hundreds of
                # cycles either way.
                self.merged_loads += 1
                done = max(ready, start + cfg._l1_latency)
                if tlb_miss:
                    if cfg._serialize_ll:
                        done = max(done, self._last_ll_end)
                    self._last_ll_end = max(self._last_ll_end, done)
                trigger = tlb_miss or (done - detect) >= cfg._l3_latency
                return AccessResult(done, detect, ServiceLevel.MERGE,
                                    tlb_miss, tlb_miss, trigger)
            del self._pending[line]

        if self.l1d.lookup(addr):
            done = start + cfg._l1_latency
            if tlb_miss:
                if cfg._serialize_ll:
                    done = max(done, self._last_ll_end) + cfg._l1_latency
                self._last_ll_end = max(self._last_ll_end, done)
            return AccessResult(done, detect, ServiceLevel.L1, tlb_miss,
                                tlb_miss)

        if self.prefetcher is not None and demand:
            ready = self.prefetcher.demand_miss(pc, addr, start)
            if ready is not None:
                remaining = max(ready - start, 0)
                done = start + cfg._l1_latency + remaining
                self.l1d.install(addr)
                # A prefetch that is still (mostly) in flight did not hide
                # the memory latency: the load behaves as long-latency.
                is_ll = tlb_miss or remaining >= cfg._l3_latency
                if remaining < cfg._l3_latency:
                    self.prefetch_covered += 1
                if is_ll:
                    if cfg._serialize_ll:
                        done = max(done, self._last_ll_end)
                    self._last_ll_end = max(self._last_ll_end, done)
                return AccessResult(done, detect, ServiceLevel.STREAM,
                                    tlb_miss, is_ll)

        if self.l2.lookup(addr):
            self.l1d.install(addr)
            self.l3.touch(addr)  # keep recency; L2-hot lines stay L3-resident
            done = start + cfg._l2_latency
            if tlb_miss:
                if cfg._serialize_ll:
                    done = max(done, self._last_ll_end)
                self._last_ll_end = max(self._last_ll_end, done)
            return AccessResult(done, detect, ServiceLevel.L2, tlb_miss,
                                tlb_miss)

        if self.l3.lookup(addr):
            self.l1d.install(addr)
            self.l2.install(addr)
            done = start + cfg._l3_latency
            if tlb_miss:
                if cfg._serialize_ll:
                    done = max(done, self._last_ll_end)
                self._last_ll_end = max(self._last_ll_end, done)
            return AccessResult(done, detect, ServiceLevel.L3, tlb_miss,
                                tlb_miss)

        # Miss all the way to DRAM.
        fill_start = start
        if demand:
            fill_start = self._mshr_admit(fill_start)
            if cfg._serialize_ll:
                fill_start = max(fill_start, self._last_ll_end)
        done = fill_start + cfg._mem_latency
        if demand:
            heapq.heappush(self._fill_ends, done)
            self._last_ll_end = max(self._last_ll_end, done)
        self.l1d.install(addr)
        self.l2.install(addr)
        self.l3.install(addr)
        self._pending[line] = (done, ServiceLevel.MEM)
        return AccessResult(done, detect, ServiceLevel.MEM, tlb_miss, demand,
                            fill_line=line if demand else None)

    def cancel_fill(self, line: int, addr: int, cycle: int) -> bool:
        """Cancel an in-flight fill whose initiating load was squashed.

        If the fill has not completed by ``cycle``, the pending entry is
        dropped and the speculatively-installed tags are invalidated, so a
        refetched load misses again (SMTSIM squash semantics).  Completed
        fills are left in place — they become prefetches.
        """
        pending = self._pending.get(line)
        if pending is None or pending[0] <= cycle:
            return False
        del self._pending[line]
        self.l1d.invalidate(addr)
        self.l2.invalidate(addr)
        self.l3.invalidate(addr)
        return True

    def _mshr_admit(self, start: int) -> int:
        """Bound concurrent demand fills by the MSHR count."""
        ends = self._fill_ends
        while ends and ends[0] <= start:
            heapq.heappop(ends)
        if len(ends) >= self._mshr_entries:
            start = max(start, heapq.heappop(ends))
        return start

    # ------------------------------------------------------------------ #
    # instruction path
    # ------------------------------------------------------------------ #

    def ifetch(self, thread: int, addr: int, cycle: int) -> int:
        """Instruction-cache access; returns the completion cycle."""
        cfg = self  # hoisted scalars
        start = cycle + (0 if self.itlb.lookup(addr) else cfg._tlb_miss_penalty)
        line = self.l1i.line_of(addr)
        pending = self._pending.get(line)
        if pending is not None and pending[0] > start:
            return pending[0]
        if self.l1i.lookup(addr):
            return start  # overlapped with the fetch stage itself
        if self.l2.lookup(addr):
            self.l1i.install(addr)
            return start + cfg._l2_latency
        if self.l3.lookup(addr):
            self.l1i.install(addr)
            self.l2.install(addr)
            return start + cfg._l3_latency
        done = start + cfg._mem_latency
        self.l1i.install(addr)
        self.l2.install(addr)
        self.l3.install(addr)
        self._pending[line] = (done, ServiceLevel.MEM)
        return done

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #

    def mlp(self) -> float:
        """Chou et al. MLP: mean #outstanding LL loads while >=1 outstanding."""
        return mlp_from_intervals(self.ll_intervals)

    @property
    def ll_load_count(self) -> int:
        return len(self.ll_intervals)


def mlp_from_intervals(intervals: list[tuple[int, int]]) -> float:
    """Integrate overlapping intervals into the Chou et al. MLP number."""
    if not intervals:
        return 0.0
    events: list[tuple[int, int]] = []
    total_latency = 0
    for start, end in intervals:
        if end <= start:
            continue
        events.append((start, 1))
        events.append((end, -1))
        total_latency += end - start
    if not events:
        return 0.0
    events.sort()
    busy = 0
    depth = 0
    last = 0
    for when, delta in events:
        if depth > 0:
            busy += when - last
        depth += delta
        last = when
    return total_latency / busy if busy else 0.0
