"""PC-indexed stride predictor guiding stream-buffer allocation.

Per Sherwood et al. (MICRO 2000) and the paper's Table IV: a 2K-entry table
indexed by load PC; each entry holds the last address, the last observed
stride, and a two-bit confidence counter.  A stream buffer is allocated only
for loads whose stride is predicted with high confidence.
"""

from __future__ import annotations


class _Entry:
    __slots__ = ("last_addr", "stride", "confidence")

    def __init__(self) -> None:
        self.last_addr = -1
        self.stride = 0
        self.confidence = 0


class StridePredictor:
    __slots__ = ("_table", "_entries", "_threshold", "_max_conf")

    def __init__(self, entries: int = 2048, confidence_threshold: int = 2,
                 max_confidence: int = 3):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self._entries = entries
        self._threshold = confidence_threshold
        self._max_conf = max_confidence
        self._table: dict[int, _Entry] = {}

    def _entry(self, pc: int) -> _Entry:
        idx = pc % self._entries
        e = self._table.get(idx)
        if e is None:
            e = _Entry()
            self._table[idx] = e
        return e

    def observe(self, pc: int, addr: int) -> None:
        """Train the predictor with a committed/executed load."""
        e = self._entry(pc)
        if e.last_addr >= 0:
            stride = addr - e.last_addr
            if stride == e.stride:
                if e.confidence < self._max_conf:
                    e.confidence += 1
            else:
                if e.confidence > 0:
                    e.confidence -= 1
                else:
                    e.stride = stride
        e.last_addr = addr

    def confident_stride(self, pc: int) -> int | None:
        """Return the predicted stride if confident (and nonzero), else None."""
        e = self._table.get(pc % self._entries)
        if e is None or e.confidence < self._threshold or e.stride == 0:
            return None
        return e.stride
