"""Memory hierarchy: caches, TLBs, prefetcher, and the composed timing model."""

from repro.memory.cache import Cache
from repro.memory.hierarchy import AccessResult, MemoryHierarchy, ServiceLevel
from repro.memory.stream_buffer import StreamBufferPrefetcher
from repro.memory.stride_predictor import StridePredictor
from repro.memory.tlb import TLB

__all__ = [
    "AccessResult",
    "Cache",
    "MemoryHierarchy",
    "ServiceLevel",
    "StridePredictor",
    "StreamBufferPrefetcher",
    "TLB",
]
