"""In-flight dynamic instruction record.

Two representations share this module:

* :class:`DynInstr` — the classic one-object-per-instruction record used
  by the ``object`` engine backend (and by :class:`repro.runahead.core.
  RunaheadCore`, which subclasses the object engine's commit machinery).
* The **struct-of-arrays column schema** used by the ``soa`` backend
  (:class:`repro.pipeline.soa.SoACore`): every ``DynInstr`` field becomes
  a flat per-slot column, the eleven booleans collapse into one integer
  ``flags`` word (bit layout below), and cross-record references become
  slot indices.  :class:`SoAView` is the thin per-slot proxy handed to
  policies and hooks so the policy surface never sees a raw slot number.

Heap and event-wheel entries in the SoA engine are *packed* ints,
``(gseq << SLOT_SHIFT) | slot``: the global age stamp in the high bits
makes plain integer comparison reproduce oldest-first ordering (``gseq``
is unique per dynamic instruction), and the embedded stamp doubles as a
generation check — an entry whose stamp no longer matches the slot's
current ``gseq`` refers to a squashed instruction whose slot was
reclaimed, and is skipped exactly where the object engine skips the
squashed record it still holds a reference to.
"""

from __future__ import annotations

from repro.isa import Instr

#: Slot-index width of packed heap/wheel entries: supports arenas up to
#: ``2**SLOT_SHIFT`` slots (the arena asserts this bound when growing).
SLOT_SHIFT = 20
SLOT_MASK = (1 << SLOT_SHIFT) - 1

# ``flags`` column bit layout (one bit per DynInstr boolean).  The five
# F_CLS_* bits are instruction-class constants copied from the immutable
# ``Instr`` (see :func:`instr_flags`); the rest is mutable pipeline state.
F_IN_IQ = 1 << 0
F_IQ_FP = 1 << 1
F_ISSUED = 1 << 2
F_COMPLETED = 1 << 3
F_HAS_DEST = 1 << 4
F_DEST_FP = 1 << 5
F_SQUASHED = 1 << 6
F_IS_LOAD = 1 << 7
F_IS_STORE = 1 << 8
F_IS_BRANCH = 1 << 9
F_IS_LL = 1 << 10
F_INV = 1 << 11
F_LL_DEP = 1 << 12
F_RETIRED = 1 << 13
F_IN_DETECTS = 1 << 14
#: Set while a slot sits on the free list; reinit clears it.  Guards the
#: reclaim sites against double-freeing a slot that is reachable from
#: more than one stale structure (e.g. a squashed instruction freed at
#: flush whose completion event is still queued).
F_FREED = 1 << 15

_CLS_BITS = ((F_HAS_DEST, "has_dest"), (F_DEST_FP, "dest_fp"),
             (F_IS_LOAD, "is_load"), (F_IS_STORE, "is_store"),
             (F_IS_BRANCH, "is_branch"))


def instr_flags(instr: Instr) -> int:
    """The fetch-time ``flags`` word for one static instruction.

    Exactly the class bits a fresh :class:`DynInstr` copies in
    ``__init__``; every mutable bit starts clear.
    """
    flags = 0
    if instr.has_dest:
        flags |= F_HAS_DEST
    if instr.dest_fp:
        flags |= F_DEST_FP
    if instr.is_load:
        flags |= F_IS_LOAD
    elif instr.is_store:
        flags |= F_IS_STORE
    elif instr.is_branch:
        flags |= F_IS_BRANCH
    return flags


class DynInstr:
    """One instruction occupying pipeline resources.

    ``seq`` is the per-thread dynamic index (equal to the trace index, which
    makes flush-and-refetch a simple index rewind); ``gseq`` is a global age
    stamp used for oldest-first issue ordering.

    Records are pool-recycled by the core (see ``SMTCore._di_pool``):
    ``refs`` counts the long-lived references that outlive the window slot
    (the rename-map current entry, younger instructions' ``old_map``
    undo records, and captured ``ll_parents``), ``retired`` marks
    architectural commit, and ``in_detects`` marks a still-queued
    long-latency detection event.  A record returns to the pool only when
    it is retired with ``refs == 0`` and no queued detection, so a pooled
    object is never reachable from live simulation state.
    """

    __slots__ = (
        "instr", "thread", "seq", "gseq",
        "pending", "waiter0", "waiters",
        "fe_ready", "in_iq", "iq_is_fp", "issued",
        "completed",
        "has_dest", "dest_fp", "old_map",
        "squashed",
        "is_load", "is_store", "is_branch",
        "is_ll", "predicted_ll", "fill_line",
        "level", "inv", "ll_parents", "ll_dep",
        "refs", "retired", "in_detects",
    )

    def __init__(self, instr: Instr, thread: int, seq: int, gseq: int,
                 fe_ready: int):
        self.instr = instr
        self.thread = thread
        self.seq = seq
        self.gseq = gseq
        self.pending = 0
        # Dependents blocked on this record: the common single waiter
        # lives inline in ``waiter0`` (no list allocation); ``waiters``
        # holds the overflow and is only non-None when ``waiter0`` is.
        self.waiter0: DynInstr | None = None
        self.waiters: list[DynInstr] | None = None
        self.fe_ready = fe_ready
        self.in_iq = False
        self.iq_is_fp = False
        self.issued = False
        self.completed = False
        # Class flags are precomputed on the (immutable) Instr.
        self.has_dest = instr.has_dest
        self.dest_fp = instr.dest_fp
        self.old_map: DynInstr | None = None
        self.squashed = False
        self.is_load = instr.is_load
        self.is_store = instr.is_store
        self.is_branch = instr.is_branch
        self.is_ll = False
        self.predicted_ll: bool | None = None
        self.fill_line: int | None = None
        # Memory level that serviced this load (set at execute).
        self.level = None
        # Runahead "bogus value" flag: the result of this instruction is
        # invalid and must not reach memory (Mutlu et al. 2003).
        self.inv = False
        # Producers this instruction may inherit a long-latency dependence
        # from (populated only when dependence tracking is enabled), and
        # the resolved transitively-dependent flag (final at commit).
        self.ll_parents: tuple[DynInstr, ...] | None = None
        self.ll_dep = False
        self.refs = 0
        self.retired = False
        self.in_detects = False

    def reinit(self, instr: Instr, thread: int, seq: int, gseq: int,
               fe_ready: int) -> None:
        """Re-arm a pooled record: ``__init__`` minus the pool invariants.

        The commit-path recycle guards admit a record to the pool only
        when it retired with no live references, so these fields are
        *provably* already pristine and are not re-written here:
        ``waiter0``/``waiters``/``old_map``/``ll_parents`` are ``None``
        (drained at completion / cleared at commit), ``squashed`` and
        ``inv`` are False (committed records are neither; RunaheadCore,
        the only INV producer, opts out of pooling), ``in_iq`` is False
        (issue cleared it), ``refs`` is 0 and ``in_detects`` False
        (recycle guards).  Three further fields may carry a stale value
        but are always written before their first possible read in the
        new lifetime, so they are skipped too: ``iq_is_fp`` (written at
        dispatch; every read is gated on ``in_iq``), ``predicted_ll``
        (written at fetch for loads; every read is gated on
        ``is_load``), and ``level`` (written at execute for loads; read
        only for completed loads).  ``tests/test_pool.py`` cross-checks
        a reused record against a fresh one field by field, modulo that
        documented skip list.

        The fetch loop inlines this body (``SMTCore._fetch_thread``) —
        keep the two in sync.
        """
        self.instr = instr
        self.thread = thread
        self.seq = seq
        self.gseq = gseq
        self.pending = 0         # loads park -1 here as a miss marker
        self.fe_ready = fe_ready
        self.issued = False
        self.completed = False
        self.has_dest = instr.has_dest
        self.dest_fp = instr.dest_fp
        self.is_load = instr.is_load
        self.is_store = instr.is_store
        self.is_branch = instr.is_branch
        self.is_ll = False
        self.fill_line = None
        self.ll_dep = False
        self.retired = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join((
            "Q" if self.in_iq else "",
            "I" if self.issued else "",
            "C" if self.completed else "",
            "X" if self.squashed else "",
            "L" if self.is_ll else "",
        ))
        return (f"<DynInstr t{self.thread} #{self.seq} "
                f"{self.instr.op.name} {flags}>")


class SoAView:
    """Read/write proxy presenting one SoA arena slot as a ``DynInstr``.

    Views are created *lazily*, at most one per dynamic instruction (the
    arena caches the live occupant's view in ``SoACore._col_views``), so
    object identity is as stable as the underlying instruction: every
    hook invocation for the same dynamic instruction passes the same
    view, and identity-keyed policy state (``ThreadState.ll_owners``,
    PDG's in-flight set) behaves exactly as with real records.  Policies
    that never touch a record cost the engine nothing.

    A view is stamped with its instruction's ``gseq``.  Once the slot is
    reclaimed and refetched the stamp no longer matches and the view is
    *dead*: its boolean properties then report the squashed tombstone
    (``squashed`` True, every other flag False), which is how a policy
    that retained a reference past a flush observes exactly what it
    would have observed on the GC-kept object record.  Non-boolean
    properties of a dead view are unspecified (no surviving caller reads
    them — the retaining policies all filter on ``squashed`` first).

    Views are the *cold* interface — policies, hooks, and tests.  The
    engine's hot loops index the columns directly.
    """

    __slots__ = ("_core", "_slot", "_gseq")

    def __init__(self, core, slot: int, gseq: int):
        self._core = core
        self._slot = slot
        self._gseq = gseq

    @property
    def slot(self) -> int:
        return self._slot

    @property
    def live(self) -> bool:
        """Whether this view still denotes its original instruction."""
        return self._core._col_gseq[self._slot] == self._gseq

    @property
    def waiter0(self) -> SoAView | None:
        packed = self._core._col_waiter0[self._slot]
        if packed < 0:
            return None
        core = self._core
        slot = packed & SLOT_MASK
        if core._col_gseq[slot] != packed >> SLOT_SHIFT:
            return None          # stale: the waiter's slot was reclaimed
        return core.view(slot)

    @property
    def waiters(self) -> list[SoAView] | None:
        packed_list = self._core._col_waiters[self._slot]
        if packed_list is None:
            return None
        core = self._core
        gseq = core._col_gseq
        return [core.view(p & SLOT_MASK) for p in packed_list
                if gseq[p & SLOT_MASK] == p >> SLOT_SHIFT]

    @property
    def old_map(self) -> SoAView | None:
        slot = self._core._col_old_map[self._slot]
        return None if slot < 0 else self._core.view(slot)

    @property
    def ll_parents(self) -> tuple[SoAView, ...] | None:
        slots = self._core._col_ll_parents[self._slot]
        if slots is None:
            return None
        core = self._core
        return tuple(core.view(s) for s in slots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join((
            "Q" if self.in_iq else "",
            "I" if self.issued else "",
            "C" if self.completed else "",
            "X" if self.squashed else "",
            "L" if self.is_ll else "",
        ))
        return (f"<SoAView s{self._slot} t{self.thread} #{self.seq} "
                f"{self.instr.op.name} {flags}>")


def _column_property(col: str) -> property:
    def _get(self):
        return getattr(self._core, col)[self._slot]

    def _set(self, value):
        getattr(self._core, col)[self._slot] = value

    return property(_get, _set)


def _flag_property(bit: int) -> property:
    # Dead views (slot reclaimed and refetched) tombstone as "squashed":
    # the retaining policies filter on ``squashed``/``completed`` before
    # touching anything else, and a squashed-True/others-False read is
    # exactly what the GC-kept object record would have produced.
    dead_value = bit == F_SQUASHED

    def _get(self):
        core = self._core
        slot = self._slot
        if core._col_gseq[slot] != self._gseq:
            return dead_value
        return bool(core._col_flags[slot] & bit)

    def _set(self, value):
        col = self._core._col_flags
        if value:
            col[self._slot] |= bit
        else:
            col[self._slot] &= ~bit

    return property(_get, _set)


for _name, _col in (("instr", "_col_instr"), ("thread", "_col_thread"),
                    ("seq", "_col_seq"), ("gseq", "_col_gseq"),
                    ("pending", "_col_pending"),
                    ("fe_ready", "_col_fe_ready"), ("refs", "_col_refs"),
                    ("predicted_ll", "_col_pred_ll"),
                    ("fill_line", "_col_fill_line"),
                    ("level", "_col_level")):
    setattr(SoAView, _name, _column_property(_col))
for _name, _bit in (("in_iq", F_IN_IQ), ("iq_is_fp", F_IQ_FP),
                    ("issued", F_ISSUED), ("completed", F_COMPLETED),
                    ("has_dest", F_HAS_DEST), ("dest_fp", F_DEST_FP),
                    ("squashed", F_SQUASHED), ("is_load", F_IS_LOAD),
                    ("is_store", F_IS_STORE), ("is_branch", F_IS_BRANCH),
                    ("is_ll", F_IS_LL), ("inv", F_INV),
                    ("ll_dep", F_LL_DEP), ("retired", F_RETIRED),
                    ("in_detects", F_IN_DETECTS)):
    setattr(SoAView, _name, _flag_property(_bit))
del _name, _col, _bit
