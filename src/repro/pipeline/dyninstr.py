"""In-flight dynamic instruction record."""

from __future__ import annotations

from repro.isa import Instr


class DynInstr:
    """One instruction occupying pipeline resources.

    ``seq`` is the per-thread dynamic index (equal to the trace index, which
    makes flush-and-refetch a simple index rewind); ``gseq`` is a global age
    stamp used for oldest-first issue ordering.

    Records are pool-recycled by the core (see ``SMTCore._di_pool``):
    ``refs`` counts the long-lived references that outlive the window slot
    (the rename-map current entry, younger instructions' ``old_map``
    undo records, and captured ``ll_parents``), ``retired`` marks
    architectural commit, and ``in_detects`` marks a still-queued
    long-latency detection event.  A record returns to the pool only when
    it is retired with ``refs == 0`` and no queued detection, so a pooled
    object is never reachable from live simulation state.
    """

    __slots__ = (
        "instr", "thread", "seq", "gseq",
        "pending", "waiter0", "waiters",
        "fe_ready", "in_iq", "iq_is_fp", "issued",
        "completed",
        "has_dest", "dest_fp", "old_map",
        "squashed",
        "is_load", "is_store", "is_branch",
        "is_ll", "predicted_ll", "fill_line",
        "level", "inv", "ll_parents", "ll_dep",
        "refs", "retired", "in_detects",
    )

    def __init__(self, instr: Instr, thread: int, seq: int, gseq: int,
                 fe_ready: int):
        self.instr = instr
        self.thread = thread
        self.seq = seq
        self.gseq = gseq
        self.pending = 0
        # Dependents blocked on this record: the common single waiter
        # lives inline in ``waiter0`` (no list allocation); ``waiters``
        # holds the overflow and is only non-None when ``waiter0`` is.
        self.waiter0: DynInstr | None = None
        self.waiters: list[DynInstr] | None = None
        self.fe_ready = fe_ready
        self.in_iq = False
        self.iq_is_fp = False
        self.issued = False
        self.completed = False
        # Class flags are precomputed on the (immutable) Instr.
        self.has_dest = instr.has_dest
        self.dest_fp = instr.dest_fp
        self.old_map: DynInstr | None = None
        self.squashed = False
        self.is_load = instr.is_load
        self.is_store = instr.is_store
        self.is_branch = instr.is_branch
        self.is_ll = False
        self.predicted_ll: bool | None = None
        self.fill_line: int | None = None
        # Memory level that serviced this load (set at execute).
        self.level = None
        # Runahead "bogus value" flag: the result of this instruction is
        # invalid and must not reach memory (Mutlu et al. 2003).
        self.inv = False
        # Producers this instruction may inherit a long-latency dependence
        # from (populated only when dependence tracking is enabled), and
        # the resolved transitively-dependent flag (final at commit).
        self.ll_parents: tuple[DynInstr, ...] | None = None
        self.ll_dep = False
        self.refs = 0
        self.retired = False
        self.in_detects = False

    def reinit(self, instr: Instr, thread: int, seq: int, gseq: int,
               fe_ready: int) -> None:
        """Re-arm a pooled record: ``__init__`` minus the pool invariants.

        The commit-path recycle guards admit a record to the pool only
        when it retired with no live references, so these fields are
        *provably* already pristine and are not re-written here:
        ``waiter0``/``waiters``/``old_map``/``ll_parents`` are ``None``
        (drained at completion / cleared at commit), ``squashed`` and
        ``inv`` are False (committed records are neither; RunaheadCore,
        the only INV producer, opts out of pooling), ``in_iq`` is False
        (issue cleared it), ``refs`` is 0 and ``in_detects`` False
        (recycle guards).  Three further fields may carry a stale value
        but are always written before their first possible read in the
        new lifetime, so they are skipped too: ``iq_is_fp`` (written at
        dispatch; every read is gated on ``in_iq``), ``predicted_ll``
        (written at fetch for loads; every read is gated on
        ``is_load``), and ``level`` (written at execute for loads; read
        only for completed loads).  ``tests/test_pool.py`` cross-checks
        a reused record against a fresh one field by field, modulo that
        documented skip list.

        The fetch loop inlines this body (``SMTCore._fetch_thread``) —
        keep the two in sync.
        """
        self.instr = instr
        self.thread = thread
        self.seq = seq
        self.gseq = gseq
        self.pending = 0         # loads park -1 here as a miss marker
        self.fe_ready = fe_ready
        self.issued = False
        self.completed = False
        self.has_dest = instr.has_dest
        self.dest_fp = instr.dest_fp
        self.is_load = instr.is_load
        self.is_store = instr.is_store
        self.is_branch = instr.is_branch
        self.is_ll = False
        self.fill_line = None
        self.ll_dep = False
        self.retired = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join((
            "Q" if self.in_iq else "",
            "I" if self.issued else "",
            "C" if self.completed else "",
            "X" if self.squashed else "",
            "L" if self.is_ll else "",
        ))
        return (f"<DynInstr t{self.thread} #{self.seq} "
                f"{self.instr.op.name} {flags}>")
