"""In-flight dynamic instruction record."""

from __future__ import annotations

from repro.isa import Instr, Op


class DynInstr:
    """One instruction occupying pipeline resources.

    ``seq`` is the per-thread dynamic index (equal to the trace index, which
    makes flush-and-refetch a simple index rewind); ``gseq`` is a global age
    stamp used for oldest-first issue ordering.
    """

    __slots__ = (
        "instr", "thread", "seq", "gseq",
        "pending", "waiters",
        "fe_ready", "in_iq", "iq_is_fp", "issued",
        "completed", "complete_cycle",
        "has_dest", "dest_fp", "old_map",
        "squashed",
        "is_load", "is_store", "is_branch",
        "is_ll", "predicted_ll", "mispredicted", "fill_line",
        "level", "inv", "ll_parents", "ll_dep",
    )

    def __init__(self, instr: Instr, thread: int, seq: int, gseq: int,
                 fe_ready: int):
        self.instr = instr
        self.thread = thread
        self.seq = seq
        self.gseq = gseq
        self.pending = 0
        self.waiters: list[DynInstr] | None = None
        self.fe_ready = fe_ready
        self.in_iq = False
        self.iq_is_fp = False
        self.issued = False
        self.completed = False
        self.complete_cycle = -1
        self.has_dest = instr.dest is not None
        self.dest_fp = bool(instr.dest is not None and instr.dest >= 32)
        self.old_map: DynInstr | None = None
        self.squashed = False
        op = instr.op
        self.is_load = op is Op.LOAD
        self.is_store = op is Op.STORE
        self.is_branch = op is Op.BRANCH
        self.is_ll = False
        self.predicted_ll: bool | None = None
        self.mispredicted = False
        self.fill_line: int | None = None
        # Memory level that serviced this load (set at execute).
        self.level = None
        # Runahead "bogus value" flag: the result of this instruction is
        # invalid and must not reach memory (Mutlu et al. 2003).
        self.inv = False
        # Producers this instruction may inherit a long-latency dependence
        # from (populated only when dependence tracking is enabled), and
        # the resolved transitively-dependent flag (final at commit).
        self.ll_parents: tuple[DynInstr, ...] | None = None
        self.ll_dep = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join((
            "Q" if self.in_iq else "",
            "I" if self.issued else "",
            "C" if self.completed else "",
            "X" if self.squashed else "",
            "L" if self.is_ll else "",
        ))
        return (f"<DynInstr t{self.thread} #{self.seq} "
                f"{self.instr.op.name} {flags}>")
