"""Per-hardware-thread pipeline state."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.config import SMTConfig
from repro.isa import NUM_ARCH_REGS
from repro.pipeline.stats import ThreadStats
from repro.predictors import (
    LLL_PREDICTORS,
    LLSR,
    BinaryMLPPredictor,
    MLPDistancePredictor,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.dyninstr import DynInstr
    from repro.workloads.trace import SyntheticTrace


class ThreadState:
    """Everything the core tracks per hardware thread.

    The paper's per-thread predictor hardware lives here: the long-latency
    load predictor (front end), the MLP distance predictor, the binary MLP
    predictor, and the LLSR that trains the latter two from the commit
    stream.
    """

    __slots__ = (
        "tid", "trace", "fetch_index",
        "fe_queue", "window", "rename_map",
        "icount", "rob_count", "lsq_count", "iq_count", "fq_count",
        "int_regs", "fp_regs",
        "fetch_blocked_until", "waiting_branch", "branch_wait_since",
        "allowed_end", "ll_owners", "stall_start",
        "last_ifetch_line",
        "outstanding_misses",
        "llsr", "lll_pred", "mlp_pred", "binary_mlp",
        "stats", "policy_data", "commit_cycles", "fetch_entry",
        "core", "policy_stalled_flag", "policy_stall_since", "fetch_one",
        "dispatch_blocked_head", "dispatch_blocked_epoch",
        "dispatch_wait_until",
        "trace_get", "fe_append", "lll_predict", "pc_origin",
        "llsr_commit", "llsr_commit_zeros", "trace_static",
        "trace_body_len", "llsr_zeros",
        "head_ready", "tid_bit", "trace_flags",
    )

    def __init__(self, tid: int, trace: SyntheticTrace, cfg: SMTConfig):
        self.tid = tid
        #: This thread's bit in the core's activity bitmasks
        #: (``_fe_mask`` / ``_heads_mask`` — see ``SMTCore``).
        self.tid_bit = 1 << tid
        self.trace = trace
        self.fetch_index = 0
        self.fe_queue: deque[DynInstr] = deque()
        self.window: deque[DynInstr] = deque()
        #: Rename map as a fixed array indexed by the dense architectural
        #: register number (ints 0..31 and fps 32..63 partition the same
        #: flat space — see :mod:`repro.isa.instruction`), replacing the
        #: dict the dispatch loop used to hash into per source operand.
        #: ``None`` means "no in-flight producer"; flush undo writes the
        #: ``old_map`` backref straight into the slot, so the DynInstr
        #: pooling reference accounting is byte-for-byte the dict's.
        self.rename_map: list[DynInstr | None] = [None] * NUM_ARCH_REGS
        self.icount = 0
        self.rob_count = 0
        self.lsq_count = 0
        self.iq_count = 0
        self.fq_count = 0
        self.int_regs = 0
        self.fp_regs = 0
        self.fetch_blocked_until = 0
        self.waiting_branch: DynInstr | None = None
        # Cycle the current branch wait began; branch_stall_cycles is
        # accounted event-wise (wait start -> resolve/squash) instead of
        # by a per-cycle scan — see SMTCore.step / _settle_branch_stalls.
        self.branch_wait_since = 0
        # Policy state: fetch allowed up to this per-thread sequence number
        # (inclusive); None means unrestricted.  ``ll_owners`` maps each
        # unresolved long-latency load driving the restriction to its
        # allowed-end; the effective end is their maximum.
        self.allowed_end: int | None = None
        self.ll_owners: dict[DynInstr, int] = {}
        self.stall_start = -1
        self.last_ifetch_line = -1
        self.outstanding_misses = 0
        pred_cfg = cfg.predictors
        lll_cls = LLL_PREDICTORS[pred_cfg.lll_kind]
        self.lll_pred = lll_cls(pred_cfg.lll_entries, pred_cfg.lll_counter_bits)
        self.mlp_pred = MLPDistancePredictor(
            pred_cfg.mlp_entries, max_distance=max(cfg.llsr_length - 1, 1))
        self.binary_mlp = BinaryMLPPredictor(pred_cfg.mlp_entries)
        self.llsr = LLSR(cfg.llsr_length, on_measure=self._train_mlp,
                         exclude_dependent=pred_cfg.dependence_aware)
        self.stats = ThreadStats()
        self.policy_data: dict = {}
        #: Interned ``(self, False)`` pair for fetch_order results, so the
        #: per-cycle ICOUNT ordering allocates no tuples.
        self.fetch_entry = (self, False)
        #: Interned single-thread fetch order (the overwhelmingly common
        #: result shape), so the per-cycle fetch selection allocates
        #: nothing when one thread is eligible.
        self.fetch_one = [self.fetch_entry]
        #: Owning core (set by ``SMTCore.__init__``); ``None`` for
        #: standalone ThreadStates in unit tests.
        self.core = None
        #: Event-maintained mirror of :attr:`policy_stalled`, kept exact
        #: at every stage boundary by ``_sync_policy_stall`` so the fetch
        #: stage never re-derives it per thread per cycle.  The paired
        #: ``policy_stall_since`` timestamp turns the old per-cycle
        #: stall-counting scan into stall-interval accounting.
        self.policy_stalled_flag = False
        self.policy_stall_since = 0
        #: Dispatch-attempt latch: the head instruction last rejected by a
        #: *shared-resource* gate, with the core's release epoch at the
        #: time.  While the head and epoch both match, the dispatch stage
        #: re-asserts the rejection without re-proving it.
        self.dispatch_blocked_head: DynInstr | None = None
        self.dispatch_blocked_epoch = 0
        #: Front-end time latch: the head's ``fe_ready`` last observed by
        #: the dispatch stage.  Head ready times are nondecreasing (pops
        #: advance to later-fetched instructions; a flush only ever leads
        #: to refetched, later-stamped ones), so skipping the thread while
        #: ``cycle < dispatch_wait_until`` can never skip a ready head —
        #: a stale-low value merely costs one harmless probe.
        self.dispatch_wait_until = 0
        # Fetch-stage invariants cached as slots: bound methods and the
        # affine PC-address origin (pc_address(pc) == pc_origin + pc * 4
        # for every trace implementation), so the per-burst prologue is
        # slot loads instead of attribute chains and a probe call.
        self.trace_get = trace.get
        self.fe_append = self.fe_queue.append
        self.lll_predict = self.lll_pred.predict
        self.pc_origin = trace.pc_address(0)
        self.llsr_commit = self.llsr.commit
        self.llsr_commit_zeros = self.llsr.commit_zeros
        # Commit-stage staging slot (see ``SMTCore._commit``): the run of
        # consecutive non-long-latency retires not yet shifted into the
        # LLSR, coalesced into one ``commit_zeros`` ring advance before a
        # same-thread long-latency commit or at the end of the commit
        # pass.  Always zero between stages.
        self.llsr_zeros = 0
        #: Event-maintained "ROB head is completed" flag, kept exact at
        #: the three transitions that can change it — a completion event
        #: landing on the current head, a retire exposing a new head,
        #: and a flush (recomputed after the squash) — so the commit
        #: rotation scan is a single slot load per thread instead of a
        #: deque probe.  Only the base ``SMTCore._commit`` reads it;
        #: RunaheadCore's commit loop can progress on incomplete heads
        #: and keeps its own generic scan.
        self.head_ready = False
        # Direct view of the trace's pre-materialized static instructions
        # (None for duck-typed stub traces): lets the fetch loop skip the
        # ``get`` call for iteration-invariant slots.
        self.trace_static = getattr(trace, "_static", None)
        self.trace_body_len = getattr(trace, "body_len", 1)
        #: Per-static-instruction ``flags`` templates parallel to
        #: ``trace_static`` (see :func:`repro.pipeline.dyninstr.
        #: instr_flags`); populated by the SoA engine, ``None`` on the
        #: object engine.
        self.trace_flags: list[int | None] | None = None
        # When not None, the commit cycle of every instruction is appended
        # here (used to evaluate single-threaded CPI at arbitrary
        # instruction counts, per the paper's Section 5 methodology).
        self.commit_cycles: list[int] | None = None

    def _train_mlp(self, pc: int, distance: int) -> None:
        self.mlp_pred.train(pc, distance)
        self.binary_mlp.train(pc, distance)

    # ------------------------------------------------------------------ #
    # policy helpers
    # ------------------------------------------------------------------ #

    @property
    def policy_stalled(self) -> bool:
        """True when the fetch policy forbids fetching past allowed_end."""
        return (self.allowed_end is not None
                and self.fetch_index > self.allowed_end)

    def set_owner(self, owner: DynInstr, end: int, cycle: int) -> None:
        """Register a long-latency load restricting fetch to ``end``."""
        self.ll_owners[owner] = end
        self._recompute_allowed_end(cycle)

    def clear_owner(self, owner: DynInstr, cycle: int) -> None:
        if owner in self.ll_owners:
            del self.ll_owners[owner]
            self._recompute_allowed_end(cycle)

    def _recompute_allowed_end(self, cycle: int) -> None:
        if self.ll_owners:
            self.allowed_end = max(self.ll_owners.values())
            if self.stall_start < 0:
                self.stall_start = cycle
        else:
            self.allowed_end = None
            self.stall_start = -1
        self._sync_policy_stall(cycle)

    def _sync_policy_stall(self, cycle: int) -> None:
        """Fold the current stall predicate into the event-driven state.

        Called at every point the predicate can flip: owner set/clear
        (via ``_recompute_allowed_end``), the end of a fetch burst (the
        fetch index may have crossed ``allowed_end``), and the end of a
        flush (the fetch index rewinds).  On a transition it re-derives
        the core's fetch-candidate list and settles the stall-cycle
        interval, which is what lets the core drop both the per-cycle
        eligibility rebuild and the per-cycle stall-counting scan.
        """
        allowed_end = self.allowed_end
        stalled = allowed_end is not None and self.fetch_index > allowed_end
        if stalled == self.policy_stalled_flag:
            return
        self.policy_stalled_flag = stalled
        if stalled:
            self.policy_stall_since = cycle
        else:
            self.stats.policy_stall_cycles += cycle - self.policy_stall_since
        core = self.core
        if core is not None:
            # Incremental candidate-list edit: the transition direction is
            # known here, so a single C-level remove / tid-ordered insert
            # replaces the full rebuild's per-thread filter pass.  The
            # list stays exactly "policy-unstalled threads in tid order".
            candidates = core._fetch_candidates
            if stalled:
                candidates.remove(self)
            else:
                tid = self.tid
                pos = 0
                for other in candidates:
                    if other.tid > tid:
                        break
                    pos += 1
                candidates.insert(pos, self)
            core._fetch_wake = 0

    def oldest_owner(self) -> DynInstr | None:
        if not self.ll_owners:
            return None
        return min(self.ll_owners, key=lambda di: di.seq)
