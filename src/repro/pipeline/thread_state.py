"""Per-hardware-thread pipeline state."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.config import SMTConfig
from repro.pipeline.stats import ThreadStats
from repro.predictors import (
    LLL_PREDICTORS,
    LLSR,
    BinaryMLPPredictor,
    MLPDistancePredictor,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.dyninstr import DynInstr
    from repro.workloads.trace import SyntheticTrace


class ThreadState:
    """Everything the core tracks per hardware thread.

    The paper's per-thread predictor hardware lives here: the long-latency
    load predictor (front end), the MLP distance predictor, the binary MLP
    predictor, and the LLSR that trains the latter two from the commit
    stream.
    """

    __slots__ = (
        "tid", "trace", "fetch_index",
        "fe_queue", "window", "rename_map",
        "icount", "rob_count", "lsq_count", "iq_count", "fq_count",
        "int_regs", "fp_regs",
        "fetch_blocked_until", "waiting_branch", "branch_wait_since",
        "allowed_end", "ll_owners", "stall_start",
        "last_ifetch_line",
        "outstanding_misses",
        "llsr", "lll_pred", "mlp_pred", "binary_mlp",
        "stats", "policy_data", "commit_cycles", "fetch_entry",
    )

    def __init__(self, tid: int, trace: "SyntheticTrace", cfg: SMTConfig):
        self.tid = tid
        self.trace = trace
        self.fetch_index = 0
        self.fe_queue: deque[DynInstr] = deque()
        self.window: deque[DynInstr] = deque()
        self.rename_map: dict[int, DynInstr | None] = {}
        self.icount = 0
        self.rob_count = 0
        self.lsq_count = 0
        self.iq_count = 0
        self.fq_count = 0
        self.int_regs = 0
        self.fp_regs = 0
        self.fetch_blocked_until = 0
        self.waiting_branch: DynInstr | None = None
        # Cycle the current branch wait began; branch_stall_cycles is
        # accounted event-wise (wait start -> resolve/squash) instead of
        # by a per-cycle scan — see SMTCore.step / _settle_branch_stalls.
        self.branch_wait_since = 0
        # Policy state: fetch allowed up to this per-thread sequence number
        # (inclusive); None means unrestricted.  ``ll_owners`` maps each
        # unresolved long-latency load driving the restriction to its
        # allowed-end; the effective end is their maximum.
        self.allowed_end: int | None = None
        self.ll_owners: dict[DynInstr, int] = {}
        self.stall_start = -1
        self.last_ifetch_line = -1
        self.outstanding_misses = 0
        pred_cfg = cfg.predictors
        lll_cls = LLL_PREDICTORS[pred_cfg.lll_kind]
        self.lll_pred = lll_cls(pred_cfg.lll_entries, pred_cfg.lll_counter_bits)
        self.mlp_pred = MLPDistancePredictor(
            pred_cfg.mlp_entries, max_distance=max(cfg.llsr_length - 1, 1))
        self.binary_mlp = BinaryMLPPredictor(pred_cfg.mlp_entries)
        self.llsr = LLSR(cfg.llsr_length, on_measure=self._train_mlp,
                         exclude_dependent=pred_cfg.dependence_aware)
        self.stats = ThreadStats()
        self.policy_data: dict = {}
        #: Interned ``(self, False)`` pair for fetch_order results, so the
        #: per-cycle ICOUNT ordering allocates no tuples.
        self.fetch_entry = (self, False)
        # When not None, the commit cycle of every instruction is appended
        # here (used to evaluate single-threaded CPI at arbitrary
        # instruction counts, per the paper's Section 5 methodology).
        self.commit_cycles: list[int] | None = None

    def _train_mlp(self, pc: int, distance: int) -> None:
        self.mlp_pred.train(pc, distance)
        self.binary_mlp.train(pc, distance)

    # ------------------------------------------------------------------ #
    # policy helpers
    # ------------------------------------------------------------------ #

    @property
    def policy_stalled(self) -> bool:
        """True when the fetch policy forbids fetching past allowed_end."""
        return (self.allowed_end is not None
                and self.fetch_index > self.allowed_end)

    def set_owner(self, owner: "DynInstr", end: int, cycle: int) -> None:
        """Register a long-latency load restricting fetch to ``end``."""
        self.ll_owners[owner] = end
        self._recompute_allowed_end(cycle)

    def clear_owner(self, owner: "DynInstr", cycle: int) -> None:
        if owner in self.ll_owners:
            del self.ll_owners[owner]
            self._recompute_allowed_end(cycle)

    def _recompute_allowed_end(self, cycle: int) -> None:
        if self.ll_owners:
            self.allowed_end = max(self.ll_owners.values())
            if self.stall_start < 0:
                self.stall_start = cycle
        else:
            self.allowed_end = None
            self.stall_start = -1

    def oldest_owner(self) -> "DynInstr | None":
        if not self.ll_owners:
            return None
        return min(self.ll_owners, key=lambda di: di.seq)
