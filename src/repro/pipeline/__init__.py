"""The cycle-level out-of-order SMT pipeline (the SMTSIM substitute).

Two interchangeable engine cores implement the same pipeline:
:class:`SMTCore` keeps one :class:`DynInstr` object per in-flight
instruction, while :class:`SoACore` keeps the same state as parallel
flat arrays indexed by pool slot (struct-of-arrays).  They are
bit-identical architecturally — the golden-stats matrix pins every
policy under both — and are selected per run through the ``backends``
registry (see :mod:`repro.registry` and ``RunSpec.backend``).

``SoACore`` is re-exported lazily: importing the package must not pay
for the second engine unless it is actually used.
"""

from repro.pipeline.core import SMTCore
from repro.pipeline.dyninstr import DynInstr
from repro.pipeline.stats import CoreStats, ThreadStats
from repro.pipeline.thread_state import ThreadState

__all__ = ["CoreStats", "DynInstr", "SMTCore", "SoACore", "ThreadState",
           "ThreadStats"]


def __getattr__(name):
    if name == "SoACore":
        from repro.pipeline.soa import SoACore
        return SoACore
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
