"""The cycle-level out-of-order SMT pipeline (the SMTSIM substitute)."""

from repro.pipeline.dyninstr import DynInstr
from repro.pipeline.stats import CoreStats, ThreadStats
from repro.pipeline.thread_state import ThreadState
from repro.pipeline.core import SMTCore

__all__ = ["CoreStats", "DynInstr", "SMTCore", "ThreadState", "ThreadStats"]
