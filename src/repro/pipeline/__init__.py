"""The cycle-level out-of-order SMT pipeline (the SMTSIM substitute)."""

from repro.pipeline.core import SMTCore
from repro.pipeline.dyninstr import DynInstr
from repro.pipeline.stats import CoreStats, ThreadStats
from repro.pipeline.thread_state import ThreadState

__all__ = ["CoreStats", "DynInstr", "SMTCore", "ThreadState", "ThreadStats"]
