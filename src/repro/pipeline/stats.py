"""Per-thread and core-wide simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.hierarchy import mlp_from_intervals


@dataclass(slots=True)
class ThreadStats:
    """Counters for one hardware thread."""

    fetched: int = 0
    committed: int = 0
    squashed: int = 0
    flushes: int = 0
    loads_executed: int = 0
    ll_loads: int = 0
    policy_stall_cycles: int = 0
    branch_stall_cycles: int = 0
    # Front-end long-latency load predictor scoring (Figure 6).
    lll_pred_loads: int = 0
    lll_pred_correct: int = 0
    lll_pred_miss_actual: int = 0
    lll_pred_miss_correct: int = 0
    # Runahead execution (repro.runahead): episodes entered/exited and
    # instructions pseudo-retired while speculating past a blocked load.
    runahead_entries: int = 0
    runahead_exits: int = 0
    runahead_pseudo_retired: int = 0

    @property
    def lll_predictor_accuracy(self) -> float:
        """Correct hit/miss predictions per load (Figure 6)."""
        if not self.lll_pred_loads:
            return 1.0
        return self.lll_pred_correct / self.lll_pred_loads

    @property
    def lll_predictor_miss_accuracy(self) -> float:
        """Correct *miss* predictions per actual miss (Section 6.1)."""
        if not self.lll_pred_miss_actual:
            return 1.0
        return self.lll_pred_miss_correct / self.lll_pred_miss_actual


@dataclass(slots=True)
class CoreStats:
    """Whole-core results of one simulation run."""

    cycles: int = 0
    threads: list[ThreadStats] = field(default_factory=list)
    resource_stall_cycles: int = 0
    ll_intervals: list[tuple[int, int]] = field(default_factory=list)
    # Per-commit cycle stamps of thread 0, filled in when a single-thread
    # run is asked to record them (``run_single(record_commits=True)``).
    commit_cycle_trace: list[int] | None = None

    def ipc(self, tid: int) -> float:
        if not self.cycles:
            return 0.0
        return self.threads[tid].committed / self.cycles

    def cpi(self, tid: int) -> float:
        committed = self.threads[tid].committed
        if not committed:
            return float("inf")
        return self.cycles / committed

    @property
    def total_ipc(self) -> float:
        if not self.cycles:
            return 0.0
        return sum(t.committed for t in self.threads) / self.cycles

    @property
    def mlp(self) -> float:
        """Chou et al. MLP over the whole run."""
        return mlp_from_intervals(self.ll_intervals)

    def lll_per_kilo(self, tid: int) -> float:
        committed = self.threads[tid].committed
        if not committed:
            return 0.0
        return 1000.0 * self.threads[tid].ll_loads / committed
