"""Opt-in runtime sanitizer for the engine allocation paths.

``REPRO_SANITIZE=1`` makes :func:`repro.experiments.runner.core_for`
return *checked* engine subclasses (:class:`CheckedSMTCore`,
:class:`CheckedSoACore`) that wrap the two recycling allocators — the
object engine's retired-``DynInstr`` pool and the SoA engine's arena
free list — with the classic allocator-sanitizer checks:

* **double-free** — returning a record/slot that is already pooled;
* **use-after-free** — a pooled record reachable from live pipeline
  state at a measurement boundary, or a pooled record whose pristine
  invariants were mutated while on the free list (caught at both the
  free and the re-allocation ends);
* **leak at exit** — a SoA slot that is neither freed nor reachable
  from any live root (front-end queues, windows, rename maps, event
  wheels, waiter/old-map/parent edges, policy-held views) when
  :meth:`~repro.pipeline.core.SMTCore.advance_to` returns;
* **event-wheel monotonicity** — an armed calendar-queue entry dated
  before the current cycle at the top of :meth:`step` (an event the
  fast-forward probe skipped would silently never fire).

The checked subclasses override :meth:`step`, which both engines'
``_run_until`` detect and answer by driving the simulation generically
(one ``step()`` call per cycle) instead of through their fused loops —
so every cycle boundary is observable.  That makes sanitized runs
slower, but still **bit-exact**: the golden matrix passes under
``REPRO_SANITIZE=1`` on both backends, and the ``golden-sanitize`` CI
leg holds it there.

With the variable unset the module is never imported and the engines
run their unchecked allocators — zero cost when off.

Violations raise :class:`SanitizerError`, an ``AssertionError``
subclass, so they fail tests loudly and are distinguishable from
engine exceptions.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
import os
from typing import TYPE_CHECKING, Any

from repro.pipeline.cext import CextCore
from repro.pipeline.core import SMTCore
from repro.pipeline.dyninstr import F_FREED, SLOT_MASK, SoAView
from repro.pipeline.soa import SoACore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.dyninstr import DynInstr

#: Environment variable that switches the sanitizer on ("" / "0" = off).
SANITIZE_ENV = "REPRO_SANITIZE"


def sanitize_enabled() -> bool:
    """The REPRO_SANITIZE knob (default off)."""
    return os.environ.get(SANITIZE_ENV, "") not in ("", "0")


class SanitizerError(AssertionError):
    """An engine allocator invariant was violated under REPRO_SANITIZE."""


def checked_variant(cls: type) -> type:
    """The checked subclass for a stock engine class.

    Specialized cores (runahead's ``core_class``) pass through
    unchanged — they opt out of pooling anyway and own their driving
    loops, so the allocator checks have nothing to attach to.
    """
    if cls is SMTCore:
        return CheckedSMTCore
    if cls is SoACore:
        return CheckedSoACore
    if cls is CextCore:
        return CheckedCextCore
    return cls


# --------------------------------------------------------------------- #
# event-wheel monotonicity (shared by both engines)
# --------------------------------------------------------------------- #

def _check_wheels(core: SMTCore, cycle: int) -> None:
    """No armed calendar entry may be dated before the current cycle.

    Buckets drain exactly at their own cycle and every fast-forward jump
    is bounded by the armed marks, so an entry dated ``< cycle`` at the
    top of ``step`` is an event that was skipped and will never fire.
    """
    for name in ("_ev_marks", "_dt_marks", "_wb_marks"):
        marks = getattr(core, name)
        if marks and marks[0] < cycle:
            raise SanitizerError(
                f"event wheel non-monotonic: {name}[0]={marks[0]} is "
                f"before cycle {cycle} (skipped bucket)")
    for name in ("_ev_over", "_dt_over"):
        over = getattr(core, name)
        if over and over[0][0] < cycle:
            raise SanitizerError(
                f"event wheel non-monotonic: {name} head due at "
                f"{over[0][0]} is before cycle {cycle}")
    wb_over = core._wb_over
    if wb_over and wb_over[0] < cycle:
        raise SanitizerError(
            f"event wheel non-monotonic: _wb_over head due at "
            f"{wb_over[0]} is before cycle {cycle}")


# --------------------------------------------------------------------- #
# object engine: checked DynInstr pool
# --------------------------------------------------------------------- #

def _assert_pristine_record(di: DynInstr, when: str) -> None:
    """The pool-entry contract (the recycle guards, re-stated)."""
    if not di.retired:
        raise SanitizerError(
            f"{when}: pooled DynInstr t{di.thread}#{di.seq} is not "
            f"retired")
    if di.refs:
        raise SanitizerError(
            f"{when}: pooled DynInstr t{di.thread}#{di.seq} still has "
            f"refs={di.refs}")
    if di.in_detects:
        raise SanitizerError(
            f"{when}: pooled DynInstr t{di.thread}#{di.seq} has a "
            f"queued long-latency detection")


class CheckedPool(list):
    """A DynInstr free list that checks the recycle contract.

    Drop-in for the plain list in ``SMTCore._di_pool`` (the engine only
    ever calls ``append``/``pop``/``len``/truth on it).  Tracks pooled
    object identities to catch double-frees at ``append`` and re-checks
    the pristine contract at ``pop`` — a record mutated *while pooled*
    is a use-after-free by whoever kept the reference.
    """

    __slots__ = ("_ids",)

    def __init__(self, items: Iterable = ()):
        super().__init__(items)
        self._ids = {id(di) for di in self}

    def append(self, di: DynInstr) -> None:
        ids = self._ids
        if id(di) in ids:
            raise SanitizerError(
                f"double free: DynInstr t{di.thread}#{di.seq} returned "
                f"to the pool twice")
        _assert_pristine_record(di, "free")
        ids.add(id(di))
        super().append(di)

    def pop(self, index: int = -1) -> DynInstr:
        di = super().pop(index)
        self._ids.discard(id(di))
        _assert_pristine_record(di, "alloc (mutated while pooled)")
        return di


class CheckedSMTCore(SMTCore):
    """Object engine with the DynInstr pool under sanitizer checks."""

    __slots__ = ()

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        if self._di_pool is not None:
            self._di_pool = CheckedPool(self._di_pool)

    # Overriding step() makes _run_until drive the core generically —
    # one observable call per cycle instead of the fused loop.
    def step(self) -> None:
        cycle = self.cycle
        _check_wheels(self, cycle)
        super().step()
        if self.cycle <= cycle:
            raise SanitizerError(
                f"step() did not advance the cycle (stuck at {cycle})")

    def advance_to(self, commits: int,
                   max_cycles: int | None = None) -> bool:
        done = super().advance_to(commits, max_cycles)
        self.sanitize_check()
        return done

    def sanitize_check(self) -> None:
        """Scan live pipeline state for pooled (freed) records."""
        pool = self._di_pool
        if not isinstance(pool, CheckedPool):
            return
        ids = pool._ids
        if len(ids) != len(pool):
            raise SanitizerError(
                f"pool identity set out of sync: {len(ids)} ids for "
                f"{len(pool)} pooled records")

        def check(di: DynInstr, where: str) -> None:
            if id(di) in ids:
                raise SanitizerError(
                    f"use after free: pooled DynInstr t{di.thread}"
                    f"#{di.seq} still reachable from {where}")

        for ts in self.threads:
            for di in ts.fe_queue:
                check(di, f"thread {ts.tid} fe_queue")
            for di in ts.window:
                check(di, f"thread {ts.tid} window")
            for di in ts.rename_map:
                if di is not None:
                    check(di, f"thread {ts.tid} rename_map")
            if ts.waiting_branch is not None:
                check(ts.waiting_branch, f"thread {ts.tid} waiting_branch")
            for di in ts.ll_owners:
                check(di, f"thread {ts.tid} ll_owners")
        for name in ("_ev_buckets", "_dt_buckets"):
            for bucket in getattr(self, name):
                if bucket:
                    for di in bucket:
                        check(di, name)
        for name in ("_ev_over", "_dt_over"):
            for entry in getattr(self, name):
                check(entry[2], name)


# --------------------------------------------------------------------- #
# SoA engine: checked arena free list
# --------------------------------------------------------------------- #

def _assert_pristine_slot(core: SoACore, s: int, when: str) -> None:
    """The free-list pristine-slot contract (the alloc path relies on
    these columns being clear and does not re-write them)."""
    for col, clear in (("_col_pending", 0), ("_col_refs", 0),
                       ("_col_waiter0", -1), ("_col_waiters", None),
                       ("_col_old_map", -1), ("_col_ll_parents", None),
                       ("_col_fill_line", None), ("_col_views", None)):
        value = getattr(core, col)[s]
        if value is not clear and value != clear:
            raise SanitizerError(
                f"{when}: freed slot {s} is not pristine: "
                f"{col}[{s}] == {value!r} (expected {clear!r})")


class CheckedFreeList(list):
    """An arena free list that checks the slot-recycling contract.

    Drop-in for ``SoACore._free`` (the engine calls ``append``/``pop``/
    ``extend``/truth).  Tracks membership to catch double-frees and
    asserts the pristine-slot columns at both ends.  ``append`` must
    *not* require ``F_FREED``: the commit path pushes the slot first and
    folds the flag in with a merged store in the same cycle; by ``pop``
    time the flag is always set, so the allocation end checks it.
    """

    __slots__ = ("_core", "_slots")

    def __init__(self, core: SoACore, items: Iterable[int] = ()):
        super().__init__(items)
        self._core = core
        self._slots = set(self)

    def append(self, s: int) -> None:
        slots = self._slots
        if s in slots:
            raise SanitizerError(f"double free: slot {s} returned to "
                                 f"the arena free list twice")
        _assert_pristine_slot(self._core, s, "free")
        slots.add(s)
        super().append(s)

    def extend(self, items: Iterable[int]) -> None:
        # _soa_grow: fresh slots, pristine and F_FREED by construction.
        items = list(items)
        self._slots.update(items)
        super().extend(items)

    def pop(self, index: int = -1) -> int:
        s = super().pop(index)
        self._slots.discard(s)
        core = self._core
        if not core._col_flags[s] & F_FREED:
            raise SanitizerError(
                f"alloc: slot {s} came off the free list without "
                f"F_FREED set")
        _assert_pristine_slot(core, s, "alloc (mutated while freed)")
        return s


def _iter_views(obj: Any, depth: int = 0) -> Iterator[SoAView]:
    """Every SoAView reachable through plain containers (bounded)."""
    if isinstance(obj, SoAView):
        yield obj
    elif depth < 4:
        if isinstance(obj, dict):
            for k, v in obj.items():
                yield from _iter_views(k, depth + 1)
                yield from _iter_views(v, depth + 1)
        elif isinstance(obj, (list, tuple, set, frozenset)):
            for v in obj:
                yield from _iter_views(v, depth + 1)


class _CheckedArenaMixin(SoACore):
    """The arena-sanitizer behavior, shared by every SoA-layout engine.

    Mixed in front of :class:`SoACore` (and :class:`CextCore`, whose
    state layout is identical).  Overriding :meth:`step` is the whole
    activation mechanism: both fused drivers — the Python one in
    ``SoACore._run_until`` and the compiled one behind
    ``CextCore._run_until`` — detect the override and fall back to the
    generic one-``step()``-per-cycle loop, so sanitized runs never enter
    an unchecked fast path (compiled or not).
    """

    __slots__ = ()

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._free = CheckedFreeList(self, self._free)

    def step(self) -> None:
        cycle = self.cycle
        _check_wheels(self, cycle)
        super().step()
        if self.cycle <= cycle:
            raise SanitizerError(
                f"step() did not advance the cycle (stuck at {cycle})")

    def advance_to(self, commits: int,
                   max_cycles: int | None = None) -> bool:
        done = super().advance_to(commits, max_cycles)
        self.sanitize_check()
        return done

    def sanitize_check(self) -> None:
        """Free-list/flag consistency plus the leak-at-exit scan."""
        free = self._free
        if not isinstance(free, CheckedFreeList):
            return
        flags = self._col_flags
        free_slots = free._slots
        if len(free_slots) != len(free):
            raise SanitizerError(
                f"free list holds duplicates: {len(free)} entries, "
                f"{len(free_slots)} distinct slots")
        for s in free_slots:
            if not flags[s] & F_FREED:
                raise SanitizerError(
                    f"slot {s} is on the free list without F_FREED")
        live = self._live_slots()
        for s in range(self._capacity):
            if flags[s] & F_FREED:
                if s not in free_slots:
                    raise SanitizerError(
                        f"slot {s} has F_FREED but is not on the free "
                        f"list (lost to the allocator)")
            elif s not in live:
                raise SanitizerError(
                    f"leak: slot {s} (t{self._col_thread[s]}"
                    f"#{self._col_seq[s]}) is neither freed nor "
                    f"reachable from any live root")

    def _live_slots(self) -> set[int]:
        """Slots reachable from the live roots, transitively."""
        cap = self._capacity
        packed_col = self._col_packed
        live: set[int] = set()
        pend: list[int] = []

        def add(s: int) -> None:
            if 0 <= s < cap and s not in live:
                live.add(s)
                pend.append(s)

        def add_packed(p: int) -> None:
            s = p & SLOT_MASK
            if 0 <= s < cap and packed_col[s] == p:
                add(s)

        for ts in self.threads:
            for s in ts.fe_queue:
                add(s)
            for s in ts.window:
                add(s)
            for s in ts.rename_map:
                if s >= 0:
                    add(s)
            if ts.waiting_branch is not None:
                add(ts.waiting_branch)
            for view in _iter_views(ts.ll_owners):
                add(view._slot)
            for view in _iter_views(ts.policy_data):
                add(view._slot)
        for name in ("_ev_buckets", "_dt_buckets"):
            for bucket in getattr(self, name):
                if bucket:
                    for p in bucket:
                        add_packed(p)
        for name in ("_ev_over", "_dt_over"):
            for entry in getattr(self, name):
                add_packed(entry[1])
        for queue in (self._ready_int, self._ready_ldst, self._ready_fp):
            for p in queue:
                add_packed(p)
        old_map = self._col_old_map
        waiter0 = self._col_waiter0
        waiters = self._col_waiters
        ll_parents = self._col_ll_parents
        while pend:
            s = pend.pop()
            if old_map[s] >= 0:
                add(old_map[s])
            w0 = waiter0[s]
            if w0 != -1:
                add_packed(w0)
            wl = waiters[s]
            if wl is not None:
                for w in wl:
                    add_packed(w)
            ps = ll_parents[s]
            if ps is not None:
                for p in ps:
                    add(p)
        return live


class CheckedSoACore(_CheckedArenaMixin):
    """SoA engine with the arena free list under sanitizer checks."""

    __slots__ = ()


class CheckedCextCore(_CheckedArenaMixin, CextCore):
    """The ``cext`` backend under ``REPRO_SANITIZE=1``.

    The state layout is exactly the SoA engine's, so the same arena
    checks apply verbatim.  The :meth:`step` override (from the mixin)
    makes ``CextCore._run_until`` refuse its compiled loop and drive the
    simulation through checked per-cycle steps instead — a sanitized
    ``cext`` run is a sanitized ``soa`` run, never a silently unchecked
    compiled one.
    """

    __slots__ = ()
