"""Compiled C-extension engine backend (``cext``).

PR 7's struct-of-arrays pass concluded that on CPython the representation
change alone is not enough — the SoA columns are "the right substrate for
a C extension", which is the only remaining path to multiples rather than
percents (perf/PROFILE.md).  This module is that extension's driver:

* ``_cext_engine.c`` (checked in next to this file) implements the five
  hot stage bodies — the fused ``_run_until`` loop, fetch, dispatch,
  issue, commit and the event-wheel drains — directly against the SoA
  columns of :class:`~repro.pipeline.soa.SoACore`, crossing back into
  Python only at policy-hook points.  The existing ``_is_default_hook``
  elision applies unchanged: hook-free configurations never leave C.
* :class:`CextCore` is a thin :class:`SoACore` subclass whose only
  override is ``_run_until``; all state lives in the ordinary Python
  objects (columns, wheels, heaps, ``ThreadState``), so every
  introspection path — stats, golden fixtures, sanitizers, policies —
  sees exactly what the pure-Python engines see.  Architectural behavior
  is bit-identical; the golden matrix pins it.

The extension is built lazily from the checked-in C source with the
host's own compiler (``cc``/``gcc``/``clang`` — no Cython, no mypyc) and
cached by source hash, so the first use on a machine pays one compile
and later uses load the cached shared object.  When no toolchain exists
the probe fails quietly: :func:`load_cext_core` returns ``None``, the
``backends`` registry simply omits ``cext``, and nothing else changes.

Environment knobs:

* ``REPRO_CEXT=0`` disables the backend entirely (probe reports it).
* ``REPRO_CEXT_CACHE`` overrides the build-cache directory.
* ``REPRO_CEXT_STAGES`` (an integer mask of ``ST_*`` bits) selectively
  re-routes individual stages through their Python fallbacks — a
  debugging aid for bisecting a divergence to one stage.
* ``REPRO_SANITIZE=1`` runs the checked engine instead — see
  :mod:`repro.pipeline.sanitize`; the C loop is bypassed, not silently
  unchecked.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import subprocess
import sys
import sysconfig
from pathlib import Path
from types import ModuleType
from typing import TYPE_CHECKING, Any

from repro.memory.hierarchy import AccessResult, MemoryHierarchy, ServiceLevel
from repro.pipeline.core import SimulationLimitExceeded
from repro.pipeline.dyninstr import (
    F_COMPLETED,
    F_DEST_FP,
    F_FREED,
    F_HAS_DEST,
    F_IN_DETECTS,
    F_IN_IQ,
    F_INV,
    F_IQ_FP,
    F_IS_BRANCH,
    F_IS_LL,
    F_IS_LOAD,
    F_IS_STORE,
    F_ISSUED,
    F_LL_DEP,
    F_RETIRED,
    F_SQUASHED,
    SLOT_SHIFT,
    SoAView,
)
from repro.pipeline.soa import SoACore
from repro.pipeline.stats import CoreStats, ThreadStats
from repro.pipeline.thread_state import ThreadState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import SMTConfig
    from repro.isa.instruction import Instr
    from repro.policies.base import FetchPolicy
    from repro.workloads.trace import SyntheticTrace

__all__ = [
    "CextCore",
    "cext_status",
    "load_cext_core",
]

_SOURCE = Path(__file__).with_name("_cext_engine.c")

# Probe/build outcome, memoized for the life of the process:
# (engine module | None, human-readable status string).
_state: tuple[ModuleType | None, str] | None = None


def _find_compiler() -> str | None:
    """The first usable C compiler, honoring ``CC``; ``None`` if none."""
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_CEXT_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-cext"


def _build(compiler: str) -> Path:
    """Compile (or reuse) the extension; returns the shared-object path."""
    source = _SOURCE.read_bytes()
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    key = hashlib.sha256(
        source
        + sys.implementation.cache_tag.encode()
        + suffix.encode()
        + Path(compiler).name.encode()).hexdigest()[:16]
    out = _cache_dir() / f"_cext_engine-{key}{suffix}"
    if out.exists():
        return out
    include = sysconfig.get_paths()["include"]
    if not (Path(include) / "Python.h").exists():
        raise RuntimeError(f"no Python.h under {include}")
    out.parent.mkdir(parents=True, exist_ok=True)
    tmp = out.with_name(out.name + f".tmp{os.getpid()}")
    cmd = [compiler, "-O2", "-fPIC", "-shared", "-I", include,
           str(_SOURCE), "-o", str(tmp)]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
    if proc.returncode != 0:
        tmp.unlink(missing_ok=True)
        tail = (proc.stderr or proc.stdout).strip().splitlines()[-8:]
        raise RuntimeError(
            "cext build failed: " + " | ".join(tail))
    os.replace(tmp, out)  # atomic: concurrent builders race harmlessly
    return out


def _setup_namespace() -> dict[str, Any]:
    """Everything ``_cext_engine.setup`` resolves offsets/constants from."""
    from repro.isa.instruction import Instr
    return {
        "core": CextCore,
        "ts": ThreadState,
        "stats": ThreadStats,
        "core_stats": CoreStats,
        "instr": Instr,
        "result": AccessResult,
        "view_cls": SoAView,
        "limit_exc": SimulationLimitExceeded,
        "l1_level": ServiceLevel.L1,
        # setup() cross-checks these against the compiled-in copies so a
        # drift in the Python flag layout fails loudly, not bit-rottenly.
        "flags": {
            "F_IN_IQ": F_IN_IQ, "F_IQ_FP": F_IQ_FP, "F_ISSUED": F_ISSUED,
            "F_COMPLETED": F_COMPLETED, "F_HAS_DEST": F_HAS_DEST,
            "F_DEST_FP": F_DEST_FP, "F_SQUASHED": F_SQUASHED,
            "F_IS_LOAD": F_IS_LOAD, "F_IS_STORE": F_IS_STORE,
            "F_IS_BRANCH": F_IS_BRANCH, "F_IS_LL": F_IS_LL,
            "F_INV": F_INV, "F_LL_DEP": F_LL_DEP, "F_RETIRED": F_RETIRED,
            "F_IN_DETECTS": F_IN_DETECTS, "F_FREED": F_FREED,
            "SLOT_SHIFT": SLOT_SHIFT,
        },
    }


def _probe() -> tuple[ModuleType | None, str]:
    if os.environ.get("REPRO_CEXT", "").strip() == "0":
        return None, "disabled by REPRO_CEXT=0"
    compiler = _find_compiler()
    if compiler is None:
        return None, "no C compiler on PATH (tried $CC, cc, gcc, clang)"
    try:
        path = _build(compiler)
        spec = importlib.util.spec_from_file_location(
            "repro.pipeline._cext_engine", path)
        if spec is None or spec.loader is None:
            return None, f"could not create import spec for {path}"
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.setup(_setup_namespace())
    except Exception as exc:  # noqa: BLE001 - probe must never raise
        return None, f"build/load failed: {exc}"
    return module, f"built with {compiler} -> {path}"


def _engine() -> ModuleType | None:
    global _state
    if _state is None:
        _state = _probe()
    return _state[0]


def cext_status() -> str:
    """A one-line human-readable probe outcome (never raises)."""
    engine = _engine()
    assert _state is not None
    return ("available: " if engine is not None else "unavailable: ") \
        + _state[1]


def _stage_mask(engine: ModuleType) -> int:
    raw = os.environ.get("REPRO_CEXT_STAGES", "").strip()
    if not raw:
        return int(engine.ALL_STAGES)
    try:
        return int(raw, 0)
    except ValueError:
        return int(engine.ALL_STAGES)


class CextCore(SoACore):
    """The SoA engine with its fused loop compiled to C.

    State layout is exactly :class:`SoACore`'s; only ``_run_until`` is
    replaced.  The two extra slots cache the policy-class hook markers
    the Python loop reads via ``getattr`` each run — the C side wants
    them as plain slot loads.
    """

    __slots__ = ("_cext_olc_cleanup_only", "_cext_ll_detect_is_base")

    def __init__(self, cfg: SMTConfig, traces: list[SyntheticTrace],
                 policy: FetchPolicy,
                 hierarchy: MemoryHierarchy | None = None):
        super().__init__(cfg, traces, policy, hierarchy)
        pcls = type(policy)
        self._cext_olc_cleanup_only = bool(getattr(
            pcls.on_load_complete, "_identity_keyed_cleanup", False))
        self._cext_ll_detect_is_base = bool(getattr(
            pcls.on_ll_detect, "_is_default_hook", False))

    def _run_until(self, max_commits: int, max_cycles: int | None) -> None:
        engine = _engine()
        if engine is None or type(self).step is not SoACore.step:
            # No compiled loop (shouldn't happen via the registry, which
            # only offers this class when the probe passed) or a subclass
            # changed per-cycle behavior: the SoA driver handles both.
            SoACore._run_until(self, max_commits, max_cycles)
            return
        limit = max_cycles if max_cycles is not None else self.cfg.max_cycles
        engine.run_until(self, max_commits, limit, _stage_mask(engine))


def load_cext_core() -> type[SoACore] | None:
    """:class:`CextCore` when the extension builds and loads, else ``None``.

    The ``backends`` registry's conditional entry point; never raises.
    """
    return CextCore if _engine() is not None else None
