/* _cext_engine: the compiled `cext` engine backend's fused run loop.
 *
 * This is a line-for-line transliteration of SoACore's hot bodies
 * (repro/pipeline/soa.py: _run_until, the inline event drains, _commit,
 * _issue, _dispatch, _fetch_thread) onto the *same* Python-object state:
 * the SoA column lists, the event wheels, the ready heaps and the
 * ThreadState slots stay the single source of truth, and this module
 * reads/writes them through the C API at exactly the program points the
 * Python loop does.  That is what makes the backend bit-exact by
 * construction (the golden matrix pins it), lets policy hooks and
 * flush_thread re-enter the Python engine mid-stage, and lets any stage
 * fall back to its Python body (REPRO_CEXT_STAGES) without state
 * conversion.
 *
 * Keep in sync with soa.py; engine-parity-lint checks that the policy
 * hook call sites here match core.py's set.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <string.h>

#define CEXT_API_VERSION 1

/* Flag bits: must mirror repro/pipeline/dyninstr.py (verified in setup). */
#define F_IN_IQ (1 << 0)
#define F_IQ_FP (1 << 1)
#define F_ISSUED (1 << 2)
#define F_COMPLETED (1 << 3)
#define F_HAS_DEST (1 << 4)
#define F_DEST_FP (1 << 5)
#define F_SQUASHED (1 << 6)
#define F_IS_LOAD (1 << 7)
#define F_IS_STORE (1 << 8)
#define F_IS_BRANCH (1 << 9)
#define F_IS_LL (1 << 10)
#define F_INV (1 << 11)
#define F_LL_DEP (1 << 12)
#define F_RETIRED (1 << 13)
#define F_IN_DETECTS (1 << 14)
#define F_FREED (1 << 15)

#define F_MEM (F_IS_LOAD | F_IS_STORE)
#define F_DEAD_OR_DONE (F_SQUASHED | F_ISSUED | F_COMPLETED)
#define F_NO_WAKE (F_SQUASHED | F_ISSUED)
#define F_RETIRED_FREED (F_RETIRED | F_FREED)

#define SLOT_SHIFT 20
#define SLOT_MASK ((1LL << SLOT_SHIFT) - 1)

/* Per-stage enable bits (REPRO_CEXT_STAGES; mirrored in cext.py). */
#define ST_DRAIN 1
#define ST_COMMIT 2
#define ST_ISSUE 4
#define ST_DISPATCH 8
#define ST_FETCH 16

#define SMALL_INT_LIMIT 65536
#define MAX_THREADS 256
#define MAX_SRCS 64

/* ------------------------------------------------------------------ */
/* resolved member offsets                                             */
/* ------------------------------------------------------------------ */

typedef struct {
    /* core */
    Py_ssize_t cycle, gseq, wheel_mask;
    Py_ssize_t ev_buckets, ev_marks, ev_over;
    Py_ssize_t dt_buckets, dt_marks, dt_over;
    Py_ssize_t wb_buckets, wb_marks, wb_over, wb_used;
    Py_ssize_t ready_int, ready_ldst, ready_fp, ready_by_op;
    Py_ssize_t threads, policy, stats;
    Py_ssize_t commit_stage, dispatch_stage, issue_stage;
    Py_ssize_t policy_fetch_order, policy_fetch_pending,
        policy_can_dispatch, policy_on_fetch, policy_on_fetch_load,
        policy_on_load_complete, policy_on_resource_stall;
    Py_ssize_t hier_load, hier_ifetch, hier_store;
    Py_ssize_t gshare, btb;
    Py_ssize_t n_threads, full_mask, fe_mask, heads_mask;
    Py_ssize_t rotations, rot_cache, fetch_candidates;
    Py_ssize_t fetch_wake, dispatch_wake, stall_latch_until,
        stall_latch_epoch, release_epoch;
    Py_ssize_t committed_watermark, commit_pending, measure_start;
    Py_ssize_t fetch_width, fetch_max_threads, fast_forward,
        fetch_order_is_base, fe_capacity, frontend_depth, decode_width,
        commit_width, line_shift;
    Py_ssize_t rob_size, lsq_size, int_iq_size, fp_iq_size,
        int_rename_regs, fp_rename_regs, wb_entries;
    Py_ssize_t rob_used, lsq_used, iq_used, fq_used, int_regs_used,
        fp_regs_used;
    Py_ssize_t num_int_alu, num_ldst, num_fp;
    Py_ssize_t track_ll_dep;
    Py_ssize_t free_list;
    Py_ssize_t col_instr, col_thread, col_seq, col_gseq, col_packed,
        col_pending, col_fe_ready, col_flags, col_refs, col_waiter0,
        col_waiters, col_old_map, col_ll_parents, col_pred_ll,
        col_fill_line, col_level, col_views;
    Py_ssize_t cext_olc_cleanup_only, cext_ll_detect_is_base;
    /* ThreadState */
    Py_ssize_t ts_tid, ts_tid_bit, ts_icount, ts_rob_count, ts_lsq_count,
        ts_iq_count, ts_fq_count, ts_int_regs, ts_fp_regs;
    Py_ssize_t ts_fetch_blocked_until, ts_waiting_branch,
        ts_branch_wait_since, ts_allowed_end, ts_ll_owners;
    Py_ssize_t ts_last_ifetch_line, ts_outstanding_misses;
    Py_ssize_t ts_stats, ts_commit_cycles;
    Py_ssize_t ts_fe_queue, ts_window, ts_rename_map;
    Py_ssize_t ts_fetch_index, ts_head_ready, ts_dispatch_blocked_head,
        ts_dispatch_blocked_epoch, ts_dispatch_wait_until;
    Py_ssize_t ts_trace_get, ts_fe_append, ts_lll_predict, ts_pc_origin,
        ts_llsr_commit, ts_llsr_commit_zeros, ts_trace_static,
        ts_trace_body_len, ts_llsr_zeros, ts_trace_flags, ts_lll_pred;
    /* ThreadStats */
    Py_ssize_t st_fetched, st_committed, st_loads_executed, st_ll_loads,
        st_branch_stall_cycles, st_lll_pred_loads, st_lll_pred_correct,
        st_lll_pred_miss_actual, st_lll_pred_miss_correct;
    /* CoreStats */
    Py_ssize_t cs_resource_stall_cycles;
    /* Instr */
    Py_ssize_t in_pc, in_dest, in_srcs, in_addr, in_taken, in_has_dest,
        in_dest_fp, in_is_load, in_is_store, in_is_branch, in_op_i,
        in_fp_queue, in_latency;
    /* AccessResult */
    Py_ssize_t ar_complete_cycle, ar_detect_cycle, ar_level,
        ar_long_latency, ar_trigger, ar_fill_line;
} Offsets;

typedef struct {
    int ready;
    Offsets off;
    PyObject *view_cls;     /* SoAView */
    PyObject *limit_exc;    /* SimulationLimitExceeded */
    PyObject *l1_level;     /* ServiceLevel.L1 (identity compare) */
    PyObject *small_ints[SMALL_INT_LIMIT];
    PyObject *neg_one;
    /* interned strings for the non-slot attribute calls */
    PyObject *s_append, *s_popleft, *s_update, *s_lookup, *s_insert,
        *s_train, *s_on_ll_detect, *s_soa_grow, *s_next_cycle,
        *s_compute_fetch_wake, *s_sync_policy_stall, *s_soa_drain_events,
        *s_fetch_thread;
} Globals;

static Globals g;

/* ------------------------------------------------------------------ */
/* small helpers                                                       */
/* ------------------------------------------------------------------ */

static inline PyObject *SLOT(PyObject *o, Py_ssize_t off)
{
    return *(PyObject **)((char *)o + off);
}

/* Store a new reference into a slot, releasing the old value. */
static inline void slot_store(PyObject *o, Py_ssize_t off, PyObject *v)
{
    PyObject **p = (PyObject **)((char *)o + off);
    PyObject *old = *p;
    *p = v;
    Py_XDECREF(old);
}

static inline PyObject *box_ll(long long v)
{
    if (v >= 0 && v < SMALL_INT_LIMIT) {
        PyObject *o = g.small_ints[v];
        Py_INCREF(o);
        return o;
    }
    if (v == -1) {
        Py_INCREF(g.neg_one);
        return g.neg_one;
    }
    return PyLong_FromLongLong(v);
}

/* Unbox an int we created ourselves (never fails on real ints). */
static inline long long ll_of(PyObject *o)
{
    return PyLong_AsLongLong(o);
}

static inline long long slot_ll(PyObject *o, Py_ssize_t off)
{
    return ll_of(SLOT(o, off));
}

static inline int slot_store_ll(PyObject *o, Py_ssize_t off, long long v)
{
    PyObject *b = box_ll(v);
    if (b == NULL)
        return -1;
    slot_store(o, off, b);
    return 0;
}

static inline void slot_store_bool(PyObject *o, Py_ssize_t off, int v)
{
    PyObject *b = v ? Py_True : Py_False;
    Py_INCREF(b);
    slot_store(o, off, b);
}

static inline int slot_true(PyObject *o, Py_ssize_t off)
{
    return SLOT(o, off) == Py_True;
}

/* list cell store (new reference is stolen after releasing the old). */
static inline void lset(PyObject *l, Py_ssize_t i, PyObject *v)
{
    PyObject *old = PyList_GET_ITEM(l, i);
    PyList_SET_ITEM(l, i, v);
    Py_XDECREF(old);
}

static inline int lset_ll(PyObject *l, Py_ssize_t i, long long v)
{
    PyObject *b = box_ll(v);
    if (b == NULL)
        return -1;
    lset(l, i, b);
    return 0;
}

static inline long long lget_ll(PyObject *l, Py_ssize_t i)
{
    return ll_of(PyList_GET_ITEM(l, i));
}

static inline int stat_add(PyObject *obj, Py_ssize_t off, long long d)
{
    return slot_store_ll(obj, off, slot_ll(obj, off) + d);
}

/* Generic sequence item (tuple or list) without a new reference. */
static inline PyObject *seq_item(PyObject *seq, Py_ssize_t i)
{
    if (PyTuple_CheckExact(seq))
        return PyTuple_GET_ITEM(seq, i);
    return PyList_GET_ITEM(seq, i);
}

static inline Py_ssize_t seq_size(PyObject *seq)
{
    if (PyTuple_CheckExact(seq))
        return PyTuple_GET_SIZE(seq);
    return PyList_GET_SIZE(seq);
}

/* ------------------------------------------------------------------ */
/* heap ops (bit-compatible with heapq on lists of ints / int pairs)   */
/* ------------------------------------------------------------------ */

/* Entries are unique ints (packed stamps, cycle marks) or (int, int)
 * tuples, so the ordering is strict and total: any valid binary heap
 * pops the same element heapq would, which is what licenses mixing C
 * and Python pushes/pops on the same list. */

static inline int ent_lt(PyObject *a, PyObject *b)
{
    if (PyTuple_CheckExact(a)) {
        long long a0 = ll_of(PyTuple_GET_ITEM(a, 0));
        long long b0 = ll_of(PyTuple_GET_ITEM(b, 0));
        if (a0 != b0)
            return a0 < b0;
        return ll_of(PyTuple_GET_ITEM(a, 1)) < ll_of(PyTuple_GET_ITEM(b, 1));
    }
    return ll_of(a) < ll_of(b);
}

static int heap_push(PyObject *heap, PyObject *item)
{
    if (PyList_Append(heap, item) < 0)
        return -1;
    Py_ssize_t pos = PyList_GET_SIZE(heap) - 1;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        PyObject *pa = PyList_GET_ITEM(heap, parent);
        PyObject *it = PyList_GET_ITEM(heap, pos);
        if (!ent_lt(it, pa))
            break;
        PyList_SET_ITEM(heap, pos, pa);
        PyList_SET_ITEM(heap, parent, it);
        pos = parent;
    }
    return 0;
}

static int heap_push_ll(PyObject *heap, long long v)
{
    PyObject *b = box_ll(v);
    if (b == NULL)
        return -1;
    int rc = heap_push(heap, b);
    Py_DECREF(b);
    return rc;
}

/* Pop the minimum; returns a new reference (NULL on error). */
static PyObject *heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    n--;
    if (n == 0)
        return last;
    PyObject *ret = PyList_GET_ITEM(heap, 0);
    /* the list's reference to ret transfers to us; last moves to root */
    PyList_SET_ITEM(heap, 0, last);
    Py_ssize_t pos = 0;
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n
            && ent_lt(PyList_GET_ITEM(heap, child + 1),
                      PyList_GET_ITEM(heap, child)))
            child++;
        PyObject *c = PyList_GET_ITEM(heap, child);
        PyObject *p = PyList_GET_ITEM(heap, pos);
        if (!ent_lt(c, p))
            break;
        PyList_SET_ITEM(heap, pos, c);
        PyList_SET_ITEM(heap, child, p);
        pos = child;
    }
    return ret;
}

/* Discard the minimum (for mark heaps). */
static int heap_pop_drop(PyObject *heap)
{
    PyObject *r = heap_pop(heap);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* heap[0] key for int heaps / heap[0][0] for tuple heaps. */
static inline long long heap_min_key(PyObject *heap)
{
    PyObject *root = PyList_GET_ITEM(heap, 0);
    if (PyTuple_CheckExact(root))
        return ll_of(PyTuple_GET_ITEM(root, 0));
    return ll_of(root);
}

/* ------------------------------------------------------------------ */
/* deque helpers                                                       */
/* ------------------------------------------------------------------ */

static inline Py_ssize_t deq_len(PyObject *d)
{
    return PyObject_Size(d);
}

static inline long long deq_peek0_ll(PyObject *d)
{
    PyObject *o = PySequence_GetItem(d, 0);
    if (o == NULL)
        return -1;
    long long v = ll_of(o);
    Py_DECREF(o);
    return v;
}

static inline int deq_popleft_drop(PyObject *d)
{
    PyObject *r = PyObject_CallMethodNoArgs(d, g.s_popleft);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

static inline int deq_append_ll(PyObject *d, long long v)
{
    PyObject *b = box_ll(v);
    if (b == NULL)
        return -1;
    PyObject *r = PyObject_CallMethodOneArg(d, g.s_append, b);
    Py_DECREF(b);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* ------------------------------------------------------------------ */
/* call helpers                                                        */
/* ------------------------------------------------------------------ */

static PyObject *call_method(PyObject *obj, PyObject *name,
                             PyObject *const *args, Py_ssize_t n)
{
    PyObject *stack[6];
    stack[0] = obj;
    for (Py_ssize_t i = 0; i < n; i++)
        stack[i + 1] = args[i];
    return PyObject_VectorcallMethod(name, stack, (size_t)(n + 1), NULL);
}

/* Ensure the lazily-cached SoAView for slot s; returns a NEW reference. */
static PyObject *ensure_view(PyObject *core, PyObject *col_views,
                             PyObject *col_gseq, long long s)
{
    PyObject *v = PyList_GET_ITEM(col_views, s);
    if (v != Py_None) {
        Py_INCREF(v);
        return v;
    }
    PyObject *s_obj = box_ll(s);
    if (s_obj == NULL)
        return NULL;
    PyObject *args[3] = {core, s_obj, PyList_GET_ITEM(col_gseq, s)};
    PyObject *nv = PyObject_Vectorcall(g.view_cls, args, 3, NULL);
    Py_DECREF(s_obj);
    if (nv == NULL)
        return NULL;
    Py_INCREF(nv);
    lset(col_views, s, nv);
    return nv;
}

/* ------------------------------------------------------------------ */
/* run context (SoACore._run_until's hoisted locals)                   */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject *core;
    long long stage_mask;
    /* hoisted, identity-stable objects (borrowed from slots) */
    PyObject *ev_buckets, *ev_marks, *ev_over;
    PyObject *dt_buckets, *dt_marks, *dt_over;
    PyObject *wb_buckets, *wb_marks, *wb_over;
    PyObject *ready_int, *ready_ldst, *ready_fp, *ready_by_op;
    PyObject *threads;
    PyObject *fetch_candidates;
    PyObject *free_list;
    PyObject *col_instr, *col_thread, *col_seq, *col_gseq, *col_packed,
        *col_pending, *col_fe_ready, *col_flags, *col_refs, *col_waiter0,
        *col_waiters, *col_old_map, *col_ll_parents, *col_pred_ll,
        *col_fill_line, *col_level, *col_views;
    PyObject *on_ll_detect; /* owned: policy.on_ll_detect bound method */
    int olc_cleanup_only, ll_detect_is_base;
    /* immutable config scalars */
    long long mask, fetch_width, fetch_max_threads, fe_capacity,
        frontend_depth, decode_width, commit_width, wb_entries, line_shift,
        n_threads, full_mask, rob_size, lsq_size, int_iq_size, fp_iq_size,
        int_rename_regs, fp_rename_regs, num_int_alu, num_ldst, num_fp;
    int fast_forward, fetch_order_is_base, can_fetch_one, track_dep;
} Ctx;

#define OFF (g.off)

/* ------------------------------------------------------------------ */
/* event-wheel pushes (issue/commit helpers)                           */
/* ------------------------------------------------------------------ */

/* Append `packed` to buckets[when & mask], arming the mark heap when
 * the bucket was empty — the in-horizon push in soa.py's hot bodies. */
static int wheel_push(PyObject *buckets, PyObject *marks, long long mask,
                      long long when, PyObject *packed)
{
    Py_ssize_t idx = (Py_ssize_t)(when & mask);
    PyObject *bucket = PyList_GET_ITEM(buckets, idx);
    if (bucket != Py_None && PyList_GET_SIZE(bucket) > 0)
        return PyList_Append(bucket, packed);
    if (bucket == Py_None) {
        PyObject *nb = PyList_New(1);
        if (nb == NULL)
            return -1;
        Py_INCREF(packed);
        PyList_SET_ITEM(nb, 0, packed);
        lset(buckets, idx, nb);
    } else if (PyList_Append(bucket, packed) < 0) {
        return -1;
    }
    return heap_push_ll(marks, when);
}

/* heappush(over, (when, packed)) — the over-horizon spill. */
static int over_push(PyObject *over, long long when, PyObject *packed)
{
    PyObject *w = box_ll(when);
    if (w == NULL)
        return -1;
    PyObject *t = PyTuple_New(2);
    if (t == NULL) {
        Py_DECREF(w);
        return -1;
    }
    PyTuple_SET_ITEM(t, 0, w);
    Py_INCREF(packed);
    PyTuple_SET_ITEM(t, 1, packed);
    int rc = heap_push(over, t);
    Py_DECREF(t);
    return rc;
}

/* SMTCore._schedule_wb_drain, transliterated (commit's store path). */
static int schedule_wb_drain(Ctx *c, long long when, long long cycle)
{
    if (when <= cycle)
        when = cycle + 1;
    if (when - cycle <= c->mask) {
        Py_ssize_t idx = (Py_ssize_t)(when & c->mask);
        if (lget_ll(c->wb_buckets, idx) == 0) {
            if (heap_push_ll(c->wb_marks, when) < 0)
                return -1;
        }
        if (lset_ll(c->wb_buckets, idx,
                    lget_ll(c->wb_buckets, idx) + 1) < 0)
            return -1;
    } else if (heap_push_ll(c->wb_over, when) < 0) {
        return -1;
    }
    return stat_add(c->core, OFF.wb_used, 1);
}

/* ------------------------------------------------------------------ */
/* stage: event drains (the two inline wheel drains of the fused loop) */
/* ------------------------------------------------------------------ */

static int drain_one_bucket_sort(PyObject *bucket)
{
    Py_ssize_t n_due = PyList_GET_SIZE(bucket);
    if (n_due == 2) {
        PyObject *a = PyList_GET_ITEM(bucket, 0);
        PyObject *b = PyList_GET_ITEM(bucket, 1);
        if (ll_of(b) < ll_of(a)) { /* packed ints sort in age order */
            PyList_SET_ITEM(bucket, 0, b);
            PyList_SET_ITEM(bucket, 1, a);
        }
    } else if (n_due > 2) {
        if (PyList_Sort(bucket) < 0)
            return -1;
    }
    return 0;
}

static int stage_drain(Ctx *c, long long cycle, PyObject *cycle_obj)
{
    PyObject *core = c->core;
    Py_ssize_t idx = (Py_ssize_t)(cycle & c->mask);
    PyObject *bucket = PyList_GET_ITEM(c->ev_buckets, idx);
    int due = (bucket != Py_None && PyList_GET_SIZE(bucket) > 0)
        || (PyList_GET_SIZE(c->ev_over) > 0
            && heap_min_key(c->ev_over) <= cycle);
    PyObject *on_load_complete = SLOT(core, OFF.policy_on_load_complete);
    if (due) {
        /* completion loop — keep in sync with soa.py */
        if (bucket == Py_None) {
            PyObject *nb = PyList_New(0);
            if (nb == NULL)
                return -1;
            lset(c->ev_buckets, idx, nb);
            bucket = nb; /* borrowed: the bucket list owns it */
        }
        while (PyList_GET_SIZE(c->ev_over) > 0
               && heap_min_key(c->ev_over) <= cycle) {
            PyObject *pair = heap_pop(c->ev_over);
            if (pair == NULL)
                return -1;
            int rc = PyList_Append(bucket, PyTuple_GET_ITEM(pair, 1));
            Py_DECREF(pair);
            if (rc < 0)
                return -1;
        }
        while (PyList_GET_SIZE(c->ev_marks) > 0
               && heap_min_key(c->ev_marks) <= cycle) {
            if (heap_pop_drop(c->ev_marks) < 0)
                return -1;
        }
        if (drain_one_bucket_sort(bucket) < 0)
            return -1;
        for (Py_ssize_t bi = 0; bi < PyList_GET_SIZE(bucket); bi++) {
            long long packed = ll_of(PyList_GET_ITEM(bucket, bi));
            Py_ssize_t s = (Py_ssize_t)(packed & SLOT_MASK);
            if (lget_ll(c->col_packed, s) != packed)
                continue; /* slot reclaimed and refetched */
            long long fl = lget_ll(c->col_flags, s);
            PyObject *ts = PyTuple_GET_ITEM(
                c->threads, (Py_ssize_t)lget_ll(c->col_thread, s));
            if ((fl & F_IS_LOAD) && lget_ll(c->col_pending, s) == -1) {
                if (stat_add(ts, OFF.ts_outstanding_misses, -1) < 0)
                    return -1;
                if (lset_ll(c->col_pending, s, 0) < 0)
                    return -1;
            }
            if (fl & F_SQUASHED) {
                if (!(fl & (F_FREED | F_IN_DETECTS))
                    && lget_ll(c->col_refs, s) == 0
                    && lget_ll(c->col_pending, s) == 0) {
                    PyObject *v = PyList_GET_ITEM(c->col_views, s);
                    int owner = 0;
                    if (v != Py_None) {
                        owner = PyDict_Contains(
                            SLOT(ts, OFF.ts_ll_owners), v);
                        if (owner < 0)
                            return -1;
                    }
                    if (v == Py_None || !owner) {
                        if (lset_ll(c->col_waiter0, s, -1) < 0)
                            return -1;
                        Py_INCREF(Py_None);
                        lset(c->col_waiters, s, Py_None);
                        if (lset_ll(c->col_old_map, s, -1) < 0)
                            return -1;
                        Py_INCREF(Py_None);
                        lset(c->col_fill_line, s, Py_None);
                        Py_INCREF(Py_None);
                        lset(c->col_views, s, Py_None);
                        if (lset_ll(c->col_flags, s, fl | F_FREED) < 0)
                            return -1;
                        PyObject *sb = box_ll(s);
                        if (sb == NULL)
                            return -1;
                        int rc = PyList_Append(c->free_list, sb);
                        Py_DECREF(sb);
                        if (rc < 0)
                            return -1;
                    }
                }
                continue;
            }
            fl |= F_COMPLETED;
            if (lset_ll(c->col_flags, s, fl) < 0)
                return -1;
            PyObject *window = SLOT(ts, OFF.ts_window);
            Py_ssize_t wlen = deq_len(window);
            if (wlen < 0)
                return -1;
            if (wlen > 0 && deq_peek0_ll(window) == s) {
                slot_store_bool(ts, OFF.ts_head_ready, 1);
                if (slot_store_ll(core, OFF.heads_mask,
                                  slot_ll(core, OFF.heads_mask)
                                  | slot_ll(ts, OFF.ts_tid_bit)) < 0)
                    return -1;
                slot_store_bool(core, OFF.commit_pending, 1);
            }
            PyObject *w0_obj = PyList_GET_ITEM(c->col_waiter0, s);
            long long w0 = ll_of(w0_obj);
            if (w0 >= 0) {
                Py_INCREF(w0_obj);
                if (lset_ll(c->col_waiter0, s, -1) < 0) {
                    Py_DECREF(w0_obj);
                    return -1;
                }
                Py_ssize_t ws = (Py_ssize_t)(w0 & SLOT_MASK);
                if (lget_ll(c->col_packed, ws) == w0) {
                    long long wfl = lget_ll(c->col_flags, ws);
                    if (!(wfl & F_FREED)) {
                        long long p = lget_ll(c->col_pending, ws) - 1;
                        if (lset_ll(c->col_pending, ws, p) < 0) {
                            Py_DECREF(w0_obj);
                            return -1;
                        }
                        if (p == 0 && !(wfl & F_NO_WAKE)
                            && (wfl & F_IN_IQ)) {
                            PyObject *instr =
                                PyList_GET_ITEM(c->col_instr, ws);
                            PyObject *q = PyTuple_GET_ITEM(
                                c->ready_by_op,
                                (Py_ssize_t)slot_ll(instr, OFF.in_op_i));
                            if (heap_push(q, w0_obj) < 0) {
                                Py_DECREF(w0_obj);
                                return -1;
                            }
                        }
                    }
                }
                Py_DECREF(w0_obj);
                PyObject *wl = PyList_GET_ITEM(c->col_waiters, s);
                if (wl != Py_None) {
                    Py_INCREF(wl);
                    Py_INCREF(Py_None);
                    lset(c->col_waiters, s, Py_None);
                    for (Py_ssize_t wi = 0; wi < PyList_GET_SIZE(wl);
                         wi++) {
                        PyObject *w_obj = PyList_GET_ITEM(wl, wi);
                        long long w = ll_of(w_obj);
                        Py_ssize_t ws2 = (Py_ssize_t)(w & SLOT_MASK);
                        if (lget_ll(c->col_packed, ws2) != w)
                            continue;
                        long long wfl = lget_ll(c->col_flags, ws2);
                        if (wfl & F_FREED)
                            continue;
                        long long p = lget_ll(c->col_pending, ws2) - 1;
                        if (lset_ll(c->col_pending, ws2, p) < 0) {
                            Py_DECREF(wl);
                            return -1;
                        }
                        if (p == 0 && !(wfl & F_NO_WAKE)
                            && (wfl & F_IN_IQ)) {
                            PyObject *instr =
                                PyList_GET_ITEM(c->col_instr, ws2);
                            PyObject *q = PyTuple_GET_ITEM(
                                c->ready_by_op,
                                (Py_ssize_t)slot_ll(instr, OFF.in_op_i));
                            if (heap_push(q, w_obj) < 0) {
                                Py_DECREF(wl);
                                return -1;
                            }
                        }
                    }
                    Py_DECREF(wl);
                }
            }
            if ((fl & F_IS_BRANCH)) {
                PyObject *wb = SLOT(ts, OFF.ts_waiting_branch);
                if (wb != Py_None && ll_of(wb) == s) {
                    Py_INCREF(Py_None);
                    slot_store(ts, OFF.ts_waiting_branch, Py_None);
                    PyObject *st = SLOT(ts, OFF.ts_stats);
                    if (stat_add(st, OFF.st_branch_stall_cycles,
                                 cycle - slot_ll(
                                     ts, OFF.ts_branch_wait_since)) < 0)
                        return -1;
                    if (slot_ll(ts, OFF.ts_fetch_blocked_until)
                        < cycle + 1) {
                        if (slot_store_ll(ts, OFF.ts_fetch_blocked_until,
                                          cycle + 1) < 0)
                            return -1;
                    }
                    if (slot_store_ll(core, OFF.fetch_wake, 0) < 0)
                        return -1;
                }
            }
            if ((fl & F_IS_LOAD) && on_load_complete != Py_None) {
                PyObject *v = PyList_GET_ITEM(c->col_views, s);
                if (v != Py_None) {
                    Py_INCREF(v);
                    PyObject *args[2] = {v, ts};
                    PyObject *r = PyObject_Vectorcall(on_load_complete,
                                                      args, 2, NULL);
                    Py_DECREF(v);
                    if (r == NULL)
                        return -1;
                    Py_DECREF(r);
                } else if (!c->olc_cleanup_only) {
                    PyObject *nv = ensure_view(core, c->col_views,
                                               c->col_gseq, s);
                    if (nv == NULL)
                        return -1;
                    PyObject *args[2] = {nv, ts};
                    PyObject *r = PyObject_Vectorcall(on_load_complete,
                                                      args, 2, NULL);
                    Py_DECREF(nv);
                    if (r == NULL)
                        return -1;
                    Py_DECREF(r);
                }
            }
        }
        if (PyList_SetSlice(bucket, 0, PY_SSIZE_T_MAX, NULL) < 0)
            return -1;
    }
    /* detection wheel */
    bucket = PyList_GET_ITEM(c->dt_buckets, idx);
    due = (bucket != Py_None && PyList_GET_SIZE(bucket) > 0)
        || (PyList_GET_SIZE(c->dt_over) > 0
            && heap_min_key(c->dt_over) <= cycle);
    if (due) {
        if (bucket == Py_None) {
            PyObject *nb = PyList_New(0);
            if (nb == NULL)
                return -1;
            lset(c->dt_buckets, idx, nb);
            bucket = nb;
        }
        while (PyList_GET_SIZE(c->dt_over) > 0
               && heap_min_key(c->dt_over) <= cycle) {
            PyObject *pair = heap_pop(c->dt_over);
            if (pair == NULL)
                return -1;
            int rc = PyList_Append(bucket, PyTuple_GET_ITEM(pair, 1));
            Py_DECREF(pair);
            if (rc < 0)
                return -1;
        }
        while (PyList_GET_SIZE(c->dt_marks) > 0
               && heap_min_key(c->dt_marks) <= cycle) {
            if (heap_pop_drop(c->dt_marks) < 0)
                return -1;
        }
        if (drain_one_bucket_sort(bucket) < 0)
            return -1;
        for (Py_ssize_t bi = 0; bi < PyList_GET_SIZE(bucket); bi++) {
            /* F_IN_DETECTS pins the slot: no generation check. */
            long long packed = ll_of(PyList_GET_ITEM(bucket, bi));
            Py_ssize_t s = (Py_ssize_t)(packed & SLOT_MASK);
            long long fl = lget_ll(c->col_flags, s) & ~F_IN_DETECTS;
            if (lset_ll(c->col_flags, s, fl) < 0)
                return -1;
            if (fl & (F_SQUASHED | F_COMPLETED)) {
                if ((fl & (F_SQUASHED | F_RETIRED)) && !(fl & F_FREED)
                    && lget_ll(c->col_refs, s) == 0
                    && lget_ll(c->col_pending, s) != -1) {
                    PyObject *ts = PyTuple_GET_ITEM(
                        c->threads,
                        (Py_ssize_t)lget_ll(c->col_thread, s));
                    PyObject *v = PyList_GET_ITEM(c->col_views, s);
                    int owner = 0;
                    if (v != Py_None) {
                        owner = PyDict_Contains(
                            SLOT(ts, OFF.ts_ll_owners), v);
                        if (owner < 0)
                            return -1;
                    }
                    if (v == Py_None || !owner) {
                        if (lset_ll(c->col_waiter0, s, -1) < 0)
                            return -1;
                        Py_INCREF(Py_None);
                        lset(c->col_waiters, s, Py_None);
                        if (lset_ll(c->col_old_map, s, -1) < 0)
                            return -1;
                        Py_INCREF(Py_None);
                        lset(c->col_fill_line, s, Py_None);
                        Py_INCREF(Py_None);
                        lset(c->col_views, s, Py_None);
                        if (lset_ll(c->col_flags, s, fl | F_FREED) < 0)
                            return -1;
                        PyObject *sb = box_ll(s);
                        if (sb == NULL)
                            return -1;
                        int rc = PyList_Append(c->free_list, sb);
                        Py_DECREF(sb);
                        if (rc < 0)
                            return -1;
                    }
                }
                continue;
            }
            if (!c->ll_detect_is_base) {
                PyObject *v = ensure_view(core, c->col_views,
                                          c->col_gseq, s);
                if (v == NULL)
                    return -1;
                PyObject *ts = PyTuple_GET_ITEM(
                    c->threads, (Py_ssize_t)lget_ll(c->col_thread, s));
                PyObject *args[2] = {v, ts};
                PyObject *r = PyObject_Vectorcall(c->on_ll_detect, args,
                                                  2, NULL);
                Py_DECREF(v);
                if (r == NULL)
                    return -1;
                Py_DECREF(r);
            }
        }
        if (PyList_SetSlice(bucket, 0, PY_SSIZE_T_MAX, NULL) < 0)
            return -1;
    }
    (void)cycle_obj;
    return 0;
}

/* ------------------------------------------------------------------ */
/* stage: commit                                                       */
/* ------------------------------------------------------------------ */

/* Try to free slot `p` after its ref count hit zero at retire time
 * (the parents / old_map decrement paths of SoACore._commit). */
static int commit_try_free(Ctx *c, long long p, PyObject *ll_owners)
{
    long long pfl = lget_ll(c->col_flags, p);
    if (!(pfl & F_RETIRED) || (pfl & (F_IN_DETECTS | F_FREED)))
        return 0;
    PyObject *v = PyList_GET_ITEM(c->col_views, p);
    if (v != Py_None) {
        int owner = PyDict_Contains(ll_owners, v);
        if (owner < 0)
            return -1;
        if (owner)
            return 0;
    }
    Py_INCREF(Py_None);
    lset(c->col_fill_line, p, Py_None);
    Py_INCREF(Py_None);
    lset(c->col_views, p, Py_None);
    if (lset_ll(c->col_flags, p, pfl | F_FREED) < 0)
        return -1;
    PyObject *pb = box_ll(p);
    if (pb == NULL)
        return -1;
    int rc = PyList_Append(c->free_list, pb);
    Py_DECREF(pb);
    return rc;
}

static int stage_commit(Ctx *c, long long cycle, PyObject *cycle_obj)
{
    PyObject *core = c->core;
    long long n = c->n_threads;
    long long budget = c->commit_width;
    long long heads_mask = slot_ll(core, OFF.heads_mask);
    PyObject *order;
    if (n == 1) {
        order = c->threads;
    } else {
        PyObject *rot_cache = SLOT(core, OFF.rot_cache);
        PyObject *rotations = SLOT(core, OFF.rotations);
        Py_ssize_t rot = (Py_ssize_t)(cycle % n);
        if (rot_cache == Py_None) {
            order = seq_item(rotations, rot);
        } else {
            Py_ssize_t key = (Py_ssize_t)(heads_mask * n) + rot;
            order = PyList_GET_ITEM(rot_cache, key);
            if (order == Py_None) {
                PyObject *full = seq_item(rotations, rot);
                Py_ssize_t rn = seq_size(full);
                PyObject *lst = PyList_New(0);
                if (lst == NULL)
                    return -1;
                for (Py_ssize_t i = 0; i < rn; i++) {
                    PyObject *ts = seq_item(full, i);
                    if ((heads_mask >> slot_ll(ts, OFF.ts_tid)) & 1) {
                        if (PyList_Append(lst, ts) < 0) {
                            Py_DECREF(lst);
                            return -1;
                        }
                    }
                }
                PyObject *tup = PyList_AsTuple(lst);
                Py_DECREF(lst);
                if (tup == NULL)
                    return -1;
                lset(rot_cache, key, tup);      /* cache owns it now */
                order = tup;
            }
        }
    }
    long long rob_used = slot_ll(core, OFF.rob_used);
    long long lsq_used = slot_ll(core, OFF.lsq_used);
    long long int_regs_used = slot_ll(core, OFF.int_regs_used);
    long long fp_regs_used = slot_ll(core, OFF.fp_regs_used);
    long long watermark = slot_ll(core, OFF.committed_watermark);
    long long measure_start = slot_ll(core, OFF.measure_start);
    Py_ssize_t order_n = seq_size(order);
    while (budget > 0) {
        int progress = 0;
        for (Py_ssize_t oi = 0; oi < order_n; oi++) {
            PyObject *ts = seq_item(order, oi);
            if (budget == 0)
                break;
            if (!slot_true(ts, OFF.ts_head_ready))
                continue;
            PyObject *window = SLOT(ts, OFF.ts_window);
            long long s = deq_peek0_ll(window);
            if (s < 0)
                return -1;
            long long fl = lget_ll(c->col_flags, s);
            PyObject *instr = PyList_GET_ITEM(c->col_instr, s);
            if (fl & F_IS_STORE) {
                if (slot_ll(core, OFF.wb_used) >= c->wb_entries)
                    continue;
                PyObject *args[4] = {SLOT(ts, OFF.ts_tid),
                                     SLOT(instr, OFF.in_pc),
                                     SLOT(instr, OFF.in_addr), cycle_obj};
                PyObject *result = PyObject_Vectorcall(
                    SLOT(core, OFF.hier_store), args, 4, NULL);
                if (result == NULL)
                    return -1;
                long long when = slot_ll(result, OFF.ar_complete_cycle);
                Py_DECREF(result);
                if (schedule_wb_drain(c, when, cycle) < 0)
                    return -1;
            }
            if (deq_popleft_drop(window) < 0)
                return -1;
            int next_ready = 0;
            if (deq_len(window) > 0) {
                long long h = deq_peek0_ll(window);
                if (h < 0)
                    return -1;
                next_ready = (lget_ll(c->col_flags, h) & F_COMPLETED) != 0;
            }
            if (!next_ready) {
                slot_store_bool(ts, OFF.ts_head_ready, 0);
                heads_mask &= ~slot_ll(ts, OFF.ts_tid_bit);
            }
            rob_used -= 1;
            if (stat_add(ts, OFF.ts_rob_count, -1) < 0)
                return -1;
            PyObject *st = SLOT(ts, OFF.ts_stats);
            long long committed = slot_ll(st, OFF.st_committed) + 1;
            if (slot_store_ll(st, OFF.st_committed, committed) < 0)
                return -1;
            if (committed > watermark)
                watermark = committed;
            PyObject *cc = SLOT(ts, OFF.ts_commit_cycles);
            if (cc != Py_None) {
                PyObject *b = box_ll(cycle - measure_start);
                if (b == NULL)
                    return -1;
                int rc = PyList_Append(cc, b);
                Py_DECREF(b);
                if (rc < 0)
                    return -1;
            }
            if (fl & F_MEM) {
                if (stat_add(ts, OFF.ts_lsq_count, -1) < 0)
                    return -1;
                lsq_used -= 1;
            }
            if (fl & F_HAS_DEST) {
                if (fl & F_DEST_FP) {
                    if (stat_add(ts, OFF.ts_fp_regs, -1) < 0)
                        return -1;
                    fp_regs_used -= 1;
                } else {
                    if (stat_add(ts, OFF.ts_int_regs, -1) < 0)
                        return -1;
                    int_regs_used -= 1;
                }
            }
            int dependent = 0;
            PyObject *parents = PyList_GET_ITEM(c->col_ll_parents, s);
            if (parents != Py_None) {
                Py_INCREF(parents);
                Py_INCREF(Py_None);
                lset(c->col_ll_parents, s, Py_None);
                PyObject *ll_owners = SLOT(ts, OFF.ts_ll_owners);
                Py_ssize_t pn = PyTuple_GET_SIZE(parents);
                for (Py_ssize_t i = 0; i < pn; i++) {
                    long long p = ll_of(PyTuple_GET_ITEM(parents, i));
                    if (lget_ll(c->col_flags, p)
                            & (F_IS_LL | F_LL_DEP)) {
                        dependent = 1;
                        break;
                    }
                }
                if (dependent) {
                    fl |= F_LL_DEP;
                    if (lset_ll(c->col_flags, s, fl) < 0) {
                        Py_DECREF(parents);
                        return -1;
                    }
                }
                for (Py_ssize_t i = 0; i < pn; i++) {
                    long long p = ll_of(PyTuple_GET_ITEM(parents, i));
                    long long r = lget_ll(c->col_refs, p) - 1;
                    if (lset_ll(c->col_refs, p, r) < 0) {
                        Py_DECREF(parents);
                        return -1;
                    }
                    if (r == 0 && commit_try_free(c, p, ll_owners) < 0) {
                        Py_DECREF(parents);
                        return -1;
                    }
                }
                Py_DECREF(parents);
            }
            /* F_IS_LL implies F_IS_LOAD (set only in the issue load
             * body), matching the object engine's two-flag test. */
            if (fl & F_IS_LL) {
                long long z = slot_ll(ts, OFF.ts_llsr_zeros);
                if (z) {
                    if (slot_store_ll(ts, OFF.ts_llsr_zeros, 0) < 0)
                        return -1;
                    PyObject *zb = box_ll(z);
                    if (zb == NULL)
                        return -1;
                    PyObject *r = PyObject_CallOneArg(
                        SLOT(ts, OFF.ts_llsr_commit_zeros), zb);
                    Py_DECREF(zb);
                    if (r == NULL)
                        return -1;
                    Py_DECREF(r);
                }
                PyObject *args[3] = {Py_True, SLOT(instr, OFF.in_pc),
                                     dependent ? Py_True : Py_False};
                PyObject *r = PyObject_Vectorcall(
                    SLOT(ts, OFF.ts_llsr_commit), args, 3, NULL);
                if (r == NULL)
                    return -1;
                Py_DECREF(r);
            } else if (stat_add(ts, OFF.ts_llsr_zeros, 1) < 0) {
                return -1;
            }
            long long old = lget_ll(c->col_old_map, s);
            if (old >= 0) {
                if (lset_ll(c->col_old_map, s, -1) < 0)
                    return -1;
                long long r = lget_ll(c->col_refs, old) - 1;
                if (lset_ll(c->col_refs, old, r) < 0)
                    return -1;
                if (r == 0
                    && commit_try_free(c, old,
                                       SLOT(ts, OFF.ts_ll_owners)) < 0)
                    return -1;
            }
            int freed = 0;
            if (lget_ll(c->col_refs, s) == 0 && !(fl & F_IN_DETECTS)) {
                PyObject *v = PyList_GET_ITEM(c->col_views, s);
                int owner = 0;
                if (v != Py_None) {
                    owner = PyDict_Contains(SLOT(ts, OFF.ts_ll_owners), v);
                    if (owner < 0)
                        return -1;
                }
                if (v == Py_None || !owner) {
                    Py_INCREF(Py_None);
                    lset(c->col_fill_line, s, Py_None);
                    Py_INCREF(Py_None);
                    lset(c->col_views, s, Py_None);
                    PyObject *sb = box_ll(s);
                    if (sb == NULL)
                        return -1;
                    int rc = PyList_Append(c->free_list, sb);
                    Py_DECREF(sb);
                    if (rc < 0)
                        return -1;
                    freed = 1;
                }
            }
            /* one merged store boxes a single result int */
            if (lset_ll(c->col_flags, s,
                        fl | (freed ? F_RETIRED_FREED : F_RETIRED)) < 0)
                return -1;
            budget -= 1;
            progress = 1;
        }
        if (!progress)
            break;
    }
    if (budget < c->commit_width) {   /* at least one retire happened */
        for (Py_ssize_t oi = 0; oi < order_n; oi++) {
            PyObject *ts = seq_item(order, oi);
            long long z = slot_ll(ts, OFF.ts_llsr_zeros);
            if (z) {
                if (slot_store_ll(ts, OFF.ts_llsr_zeros, 0) < 0)
                    return -1;
                PyObject *zb = box_ll(z);
                if (zb == NULL)
                    return -1;
                PyObject *r = PyObject_CallOneArg(
                    SLOT(ts, OFF.ts_llsr_commit_zeros), zb);
                Py_DECREF(zb);
                if (r == NULL)
                    return -1;
                Py_DECREF(r);
            }
        }
        if (slot_store_ll(core, OFF.committed_watermark, watermark) < 0
            || stat_add(core, OFF.release_epoch, 1) < 0
            || slot_store_ll(core, OFF.rob_used, rob_used) < 0
            || slot_store_ll(core, OFF.lsq_used, lsq_used) < 0
            || slot_store_ll(core, OFF.int_regs_used, int_regs_used) < 0
            || slot_store_ll(core, OFF.fp_regs_used, fp_regs_used) < 0
            || slot_store_ll(core, OFF.heads_mask, heads_mask) < 0)
            return -1;
    }
    slot_store_bool(core, OFF.commit_pending, heads_mask != 0);
    return 0;
}

/* ------------------------------------------------------------------ */
/* stage: issue (with _execute's two branches inlined, like SoACore)   */
/* ------------------------------------------------------------------ */

/* The int/fp queues share one body: dequeue bookkeeping plus a fixed
 * cycle+latency completion (always in-horizon). */
static int issue_simple_queue(Ctx *c, PyObject *queue, long long slots,
                              Py_ssize_t used_off, long long cycle,
                              int *issued)
{
    while (PyList_GET_SIZE(queue) > 0 && slots > 0) {
        PyObject *packed_obj = heap_pop(queue);
        if (packed_obj == NULL)
            return -1;
        long long packed = ll_of(packed_obj);
        Py_ssize_t s = (Py_ssize_t)(packed & SLOT_MASK);
        if (lget_ll(c->col_packed, s) != packed) {
            Py_DECREF(packed_obj);
            continue;
        }
        long long fl = lget_ll(c->col_flags, s);
        if (fl & F_DEAD_OR_DONE) {
            Py_DECREF(packed_obj);
            continue;
        }
        if (fl & F_IN_IQ) {
            PyObject *ts = PyTuple_GET_ITEM(
                c->threads, (Py_ssize_t)lget_ll(c->col_thread, s));
            if (fl & F_IQ_FP) {
                if (stat_add(ts, OFF.ts_fq_count, -1) < 0
                    || stat_add(c->core, OFF.fq_used, -1) < 0)
                    goto err;
            } else {
                if (stat_add(ts, OFF.ts_iq_count, -1) < 0
                    || stat_add(c->core, OFF.iq_used, -1) < 0)
                    goto err;
            }
            if (stat_add(ts, OFF.ts_icount, -1) < 0)
                goto err;
            fl &= ~F_IN_IQ;
        }
        if (lset_ll(c->col_flags, s, fl | F_ISSUED) < 0)
            goto err;
        long long completion = cycle
            + slot_ll(PyList_GET_ITEM(c->col_instr, s), OFF.in_latency);
        /* always in-horizon (latency <= 4) */
        if (wheel_push(c->ev_buckets, c->ev_marks, c->mask, completion,
                       packed_obj) < 0)
            goto err;
        slots -= 1;
        *issued = 1;
        Py_DECREF(packed_obj);
        continue;
    err:
        Py_DECREF(packed_obj);
        return -1;
    }
    (void)used_off;
    return 0;
}

static int stage_issue(Ctx *c, long long cycle, PyObject *cycle_obj)
{
    int issued = 0;
    if (PyList_GET_SIZE(c->ready_int) > 0
        && issue_simple_queue(c, c->ready_int, c->num_int_alu,
                              OFF.iq_used, cycle, &issued) < 0)
        return -1;
    PyObject *queue = c->ready_ldst;
    if (PyList_GET_SIZE(queue) > 0) {
        long long slots = c->num_ldst;
        while (PyList_GET_SIZE(queue) > 0 && slots > 0) {
            PyObject *packed_obj = heap_pop(queue);
            if (packed_obj == NULL)
                return -1;
            long long packed = ll_of(packed_obj);
            Py_ssize_t s = (Py_ssize_t)(packed & SLOT_MASK);
            if (lget_ll(c->col_packed, s) != packed) {
                Py_DECREF(packed_obj);
                continue;
            }
            long long fl = lget_ll(c->col_flags, s);
            if (fl & F_DEAD_OR_DONE) {
                Py_DECREF(packed_obj);
                continue;
            }
            PyObject *ts = PyTuple_GET_ITEM(
                c->threads, (Py_ssize_t)lget_ll(c->col_thread, s));
            if (fl & F_IN_IQ) {
                if (fl & F_IQ_FP) {
                    if (stat_add(ts, OFF.ts_fq_count, -1) < 0
                        || stat_add(c->core, OFF.fq_used, -1) < 0)
                        goto err;
                } else {
                    if (stat_add(ts, OFF.ts_iq_count, -1) < 0
                        || stat_add(c->core, OFF.iq_used, -1) < 0)
                        goto err;
                }
                if (stat_add(ts, OFF.ts_icount, -1) < 0)
                    goto err;
                fl &= ~F_IN_IQ;
            }
            fl |= F_ISSUED;
            PyObject *instr = PyList_GET_ITEM(c->col_instr, s);
            long long completion;
            if (fl & F_IS_LOAD) {
                /* _execute's load body, columnized */
                PyObject *when_obj = box_ll(
                    cycle + slot_ll(instr, OFF.in_latency));
                if (when_obj == NULL)
                    goto err;
                PyObject *args[4] = {SLOT(ts, OFF.ts_tid),
                                     SLOT(instr, OFF.in_pc),
                                     SLOT(instr, OFF.in_addr), when_obj};
                PyObject *result = PyObject_Vectorcall(
                    SLOT(c->core, OFF.hier_load), args, 4, NULL);
                Py_DECREF(when_obj);
                if (result == NULL)
                    goto err;
                completion = slot_ll(result, OFF.ar_complete_cycle);
                int is_ll =
                    PyObject_IsTrue(SLOT(result, OFF.ar_long_latency));
                if (is_ll)
                    fl |= F_IS_LL;
                PyObject *level = SLOT(result, OFF.ar_level);
                Py_INCREF(level);
                lset(c->col_level, s, level);
                PyObject *stats = SLOT(ts, OFF.ts_stats);
                if (stat_add(stats, OFF.st_loads_executed, 1) < 0)
                    goto err_res;
                {
                    PyObject *targs[2] = {SLOT(instr, OFF.in_pc),
                                          is_ll ? Py_True : Py_False};
                    PyObject *r = call_method(SLOT(ts, OFF.ts_lll_pred),
                                              g.s_train, targs, 2);
                    if (r == NULL)
                        goto err_res;
                    Py_DECREF(r);
                }
                PyObject *predicted = PyList_GET_ITEM(c->col_pred_ll, s);
                if (predicted != Py_None) {
                    if (stat_add(stats, OFF.st_lll_pred_loads, 1) < 0)
                        goto err_res;
                    int pred = PyObject_IsTrue(predicted);
                    if (pred == is_ll
                        && stat_add(stats, OFF.st_lll_pred_correct,
                                    1) < 0)
                        goto err_res;
                    if (is_ll) {
                        if (stat_add(stats, OFF.st_lll_pred_miss_actual,
                                     1) < 0)
                            goto err_res;
                        if (pred
                            && stat_add(stats,
                                        OFF.st_lll_pred_miss_correct,
                                        1) < 0)
                            goto err_res;
                    }
                }
                if (is_ll && stat_add(stats, OFF.st_ll_loads, 1) < 0)
                    goto err_res;
                if (PyObject_IsTrue(SLOT(result, OFF.ar_trigger))) {
                    fl |= F_IN_DETECTS;
                    long long when =
                        slot_ll(result, OFF.ar_detect_cycle);
                    if (when <= cycle)
                        when = cycle + 1;
                    if (when - cycle <= c->mask) {
                        if (wheel_push(c->dt_buckets, c->dt_marks,
                                       c->mask, when, packed_obj) < 0)
                            goto err_res;
                    } else if (over_push(c->dt_over, when,
                                         packed_obj) < 0) {
                        goto err_res;
                    }
                }
                PyObject *fill = SLOT(result, OFF.ar_fill_line);
                Py_INCREF(fill);
                lset(c->col_fill_line, s, fill);
                if (SLOT(result, OFF.ar_level) != g.l1_level) {
                    if (stat_add(ts, OFF.ts_outstanding_misses, 1) < 0)
                        goto err_res;
                    if (lset_ll(c->col_pending, s, -1) < 0)
                        goto err_res;
                }
                if (lset_ll(c->col_flags, s, fl) < 0)
                    goto err_res;
                if (completion - cycle <= c->mask) {
                    if (wheel_push(c->ev_buckets, c->ev_marks, c->mask,
                                   completion, packed_obj) < 0)
                        goto err_res;
                } else if (over_push(c->ev_over, completion,
                                     packed_obj) < 0) {
                    goto err_res;
                }
                Py_DECREF(result);
                goto issued_one;
            err_res:
                Py_DECREF(result);
                goto err;
            } else {
                /* stores: address generation only; memory access
                 * happens at commit via the write buffer */
                if (lset_ll(c->col_flags, s, fl) < 0)
                    goto err;
                completion = cycle + slot_ll(instr, OFF.in_latency);
                if (wheel_push(c->ev_buckets, c->ev_marks, c->mask,
                               completion, packed_obj) < 0)
                    goto err;
            }
        issued_one:
            slots -= 1;
            issued = 1;
            Py_DECREF(packed_obj);
            continue;
        err:
            Py_DECREF(packed_obj);
            return -1;
        }
    }
    if (PyList_GET_SIZE(c->ready_fp) > 0
        && issue_simple_queue(c, c->ready_fp, c->num_fp,
                              OFF.fq_used, cycle, &issued) < 0)
        return -1;
    if (issued && stat_add(c->core, OFF.release_epoch, 1) < 0)
        return -1;
    (void)cycle_obj;
    return 0;
}

/* ------------------------------------------------------------------ */
/* stage: dispatch (rename + resource allocation)                      */
/* ------------------------------------------------------------------ */

static int stage_dispatch(Ctx *c, long long cycle, PyObject *cycle_obj)
{
    PyObject *core = c->core;
    long long budget = c->decode_width;
    int any_ready = 0;
    int blocked_by_resource = 0;
    long long dispatched = 0;
    long long n = c->n_threads;
    long long release_epoch = slot_ll(core, OFF.release_epoch);
    PyObject *order;
    if (n == 1) {
        order = c->threads;
    } else {
        PyObject *rot_cache = SLOT(core, OFF.rot_cache);
        PyObject *rotations = SLOT(core, OFF.rotations);
        Py_ssize_t rot = (Py_ssize_t)((cycle + 1) % n);
        long long fe_mask = slot_ll(core, OFF.fe_mask);
        if (rot_cache == Py_None || fe_mask == c->full_mask) {
            order = seq_item(rotations, rot);
        } else {
            Py_ssize_t key = (Py_ssize_t)(fe_mask * n) + rot;
            order = PyList_GET_ITEM(rot_cache, key);
            if (order == Py_None) {
                PyObject *full = seq_item(rotations, rot);
                Py_ssize_t rn = seq_size(full);
                PyObject *lst = PyList_New(0);
                if (lst == NULL)
                    return -1;
                for (Py_ssize_t i = 0; i < rn; i++) {
                    PyObject *ts = seq_item(full, i);
                    if ((fe_mask >> slot_ll(ts, OFF.ts_tid)) & 1) {
                        if (PyList_Append(lst, ts) < 0) {
                            Py_DECREF(lst);
                            return -1;
                        }
                    }
                }
                PyObject *tup = PyList_AsTuple(lst);
                Py_DECREF(lst);
                if (tup == NULL)
                    return -1;
                lset(rot_cache, key, tup);
                order = tup;
            }
        }
    }
    /* lazily hoisted used counters (soa.py's `hoisted` block) */
    int hoisted = 0;
    long long rob_used = 0, lsq_used = 0, iq_used = 0, fq_used = 0,
        int_regs_used = 0, fp_regs_used = 0;
    int gates_free = 0;
    PyObject *can_dispatch = NULL;   /* borrowed; Py_None means allow-all */
    Py_ssize_t order_n = seq_size(order);
    for (Py_ssize_t oi = 0; oi < order_n; oi++) {
        PyObject *ts = seq_item(order, oi);
        if (budget == 0)
            break;
        if (cycle < slot_ll(ts, OFF.ts_dispatch_wait_until))
            continue;   /* head not through the front end yet */
        PyObject *fe = SLOT(ts, OFF.ts_fe_queue);
        if (deq_len(fe) == 0)
            continue;
        long long head = deq_peek0_ll(fe);
        if (head < 0)
            return -1;
        /* The latch holds a bare slot: within one release epoch the
         * head cannot change, so a slot match is an instruction match. */
        PyObject *dbh = SLOT(ts, OFF.ts_dispatch_blocked_head);
        if (dbh != Py_None && ll_of(dbh) == head) {
            if (slot_ll(ts, OFF.ts_dispatch_blocked_epoch)
                    == release_epoch) {
                any_ready = 1;
                blocked_by_resource = 1;
                continue;
            }
            Py_INCREF(Py_None);
            slot_store(ts, OFF.ts_dispatch_blocked_head, Py_None);
        }
        if (lget_ll(c->col_fe_ready, head) > cycle) {
            if (slot_store_ll(ts, OFF.ts_dispatch_wait_until,
                              lget_ll(c->col_fe_ready, head)) < 0)
                return -1;
            continue;
        }
        if (!hoisted) {
            hoisted = 1;
            rob_used = slot_ll(core, OFF.rob_used);
            lsq_used = slot_ll(core, OFF.lsq_used);
            iq_used = slot_ll(core, OFF.iq_used);
            fq_used = slot_ll(core, OFF.fq_used);
            int_regs_used = slot_ll(core, OFF.int_regs_used);
            fp_regs_used = slot_ll(core, OFF.fp_regs_used);
            can_dispatch = SLOT(core, OFF.policy_can_dispatch);
            gates_free =
                c->rob_size - rob_used >= budget
                && c->lsq_size - lsq_used >= budget
                && c->int_iq_size - iq_used >= budget
                && c->fp_iq_size - fq_used >= budget
                && c->int_rename_regs - int_regs_used >= budget
                && c->fp_rename_regs - fp_regs_used >= budget;
        }
        PyObject *rename_map = SLOT(ts, OFF.ts_rename_map);
        PyObject *window = SLOT(ts, OFF.ts_window);
        int fe_was_full = deq_len(fe) >= c->fe_capacity;
        long long tl_rob = slot_ll(ts, OFF.ts_rob_count);
        long long tl_lsq = slot_ll(ts, OFF.ts_lsq_count);
        long long tl_iq = slot_ll(ts, OFF.ts_iq_count);
        long long tl_fq = slot_ll(ts, OFF.ts_fq_count);
        long long tl_ir = slot_ll(ts, OFF.ts_int_regs);
        long long tl_fr = slot_ll(ts, OFF.ts_fp_regs);
        int tl_dirty = 0;
        while (budget > 0 && deq_len(fe) > 0) {
            long long s = deq_peek0_ll(fe);
            if (s < 0)
                return -1;
            if (lget_ll(c->col_fe_ready, s) > cycle) {
                if (slot_store_ll(ts, OFF.ts_dispatch_wait_until,
                                  lget_ll(c->col_fe_ready, s)) < 0)
                    return -1;
                break;
            }
            any_ready = 1;
            PyObject *instr = PyList_GET_ITEM(c->col_instr, s);
            long long fl = lget_ll(c->col_flags, s);
            long long is_mem = fl & F_MEM;
            int fp_queue = SLOT(instr, OFF.in_fp_queue) == Py_True;
            if (!gates_free) {
                int blocked =
                    rob_used >= c->rob_size
                    || (is_mem && lsq_used >= c->lsq_size)
                    || (fp_queue ? fq_used >= c->fp_iq_size
                                 : iq_used >= c->int_iq_size)
                    || ((fl & F_HAS_DEST)
                        && ((fl & F_DEST_FP)
                                ? fp_regs_used >= c->fp_rename_regs
                                : int_regs_used >= c->int_rename_regs));
                if (blocked) {
                    if (slot_store_ll(ts, OFF.ts_dispatch_blocked_head,
                                      s) < 0
                        || slot_store_ll(
                               ts, OFF.ts_dispatch_blocked_epoch,
                               release_epoch) < 0)
                        return -1;
                    blocked_by_resource = 1;
                    break;
                }
            }
            if (can_dispatch != Py_None) {
                if (tl_dirty) {
                    tl_dirty = 0;
                    if (slot_store_ll(ts, OFF.ts_rob_count, tl_rob) < 0
                        || slot_store_ll(ts, OFF.ts_lsq_count,
                                         tl_lsq) < 0
                        || slot_store_ll(ts, OFF.ts_iq_count, tl_iq) < 0
                        || slot_store_ll(ts, OFF.ts_fq_count, tl_fq) < 0
                        || slot_store_ll(ts, OFF.ts_int_regs, tl_ir) < 0
                        || slot_store_ll(ts, OFF.ts_fp_regs, tl_fr) < 0)
                        return -1;
                }
                PyObject *v = ensure_view(core, c->col_views,
                                          c->col_gseq, s);
                if (v == NULL)
                    return -1;
                PyObject *cargs[2] = {ts, v};
                PyObject *r = PyObject_Vectorcall(can_dispatch, cargs,
                                                  2, NULL);
                Py_DECREF(v);
                if (r == NULL)
                    return -1;
                int ok = PyObject_IsTrue(r);
                Py_DECREF(r);
                if (ok < 0)
                    return -1;
                if (!ok)
                    break;   /* policy cap, not a resource stall */
            }
            /* all checks passed: allocate and rename */
            rob_used += 1;
            tl_rob += 1;
            tl_dirty = 1;
            if (is_mem) {
                lsq_used += 1;
                tl_lsq += 1;
            }
            if (fp_queue) {
                fq_used += 1;
                tl_fq += 1;
                fl |= F_IN_IQ | F_IQ_FP;
            } else {
                iq_used += 1;
                tl_iq += 1;
                fl |= F_IN_IQ;
            }
            PyObject *packed_obj = PyList_GET_ITEM(c->col_packed, s);
            long long pending = 0;
            long long parents_arr[MAX_SRCS];
            int pn = 0;
            PyObject *srcs = SLOT(instr, OFF.in_srcs);
            Py_ssize_t nsrc = PyTuple_GET_SIZE(srcs);
            for (Py_ssize_t i = 0; i < nsrc; i++) {
                long long src = ll_of(PyTuple_GET_ITEM(srcs, i));
                long long prod = lget_ll(rename_map, src);
                if (prod < 0)
                    continue;
                long long pfl = lget_ll(c->col_flags, prod);
                if (c->track_dep
                    && ((pfl & (F_IS_LOAD | F_LL_DEP))
                        || PyList_GET_ITEM(c->col_ll_parents, prod)
                               != Py_None)) {
                    if (pn >= MAX_SRCS) {
                        PyErr_SetString(PyExc_RuntimeError,
                                        "too many source operands");
                        return -1;
                    }
                    parents_arr[pn++] = prod;
                    if (lset_ll(c->col_refs, prod,
                                lget_ll(c->col_refs, prod) + 1) < 0)
                        return -1;
                }
                if (!(pfl & F_COMPLETED)) {
                    pending += 1;
                    if (lget_ll(c->col_waiter0, prod) < 0) {
                        Py_INCREF(packed_obj);
                        lset(c->col_waiter0, prod, packed_obj);
                    } else {
                        PyObject *wl =
                            PyList_GET_ITEM(c->col_waiters, prod);
                        if (wl == Py_None) {
                            PyObject *nl = PyList_New(1);
                            if (nl == NULL)
                                return -1;
                            Py_INCREF(packed_obj);
                            PyList_SET_ITEM(nl, 0, packed_obj);
                            lset(c->col_waiters, prod, nl);
                        } else if (PyList_Append(wl, packed_obj) < 0) {
                            return -1;
                        }
                    }
                }
            }
            if (pending && lset_ll(c->col_pending, s, pending) < 0)
                return -1;
            if (pn) {
                PyObject *tup = PyTuple_New(pn);
                if (tup == NULL)
                    return -1;
                for (int i = 0; i < pn; i++) {
                    PyObject *b = box_ll(parents_arr[i]);
                    if (b == NULL) {
                        Py_DECREF(tup);
                        return -1;
                    }
                    PyTuple_SET_ITEM(tup, i, b);
                }
                lset(c->col_ll_parents, s, tup);
            }
            if (fl & F_HAS_DEST) {
                long long dest = slot_ll(instr, OFF.in_dest);
                if (lset_ll(c->col_old_map, s,
                            lget_ll(rename_map, dest)) < 0
                    || lset_ll(rename_map, dest, s) < 0
                    /* rename-current ref; the old entry's ref transfers
                     * to the old_map slot */
                    || lset_ll(c->col_refs, s,
                               lget_ll(c->col_refs, s) + 1) < 0)
                    return -1;
                if (fl & F_DEST_FP) {
                    fp_regs_used += 1;
                    tl_fr += 1;
                } else {
                    int_regs_used += 1;
                    tl_ir += 1;
                }
            }
            if (lset_ll(c->col_flags, s, fl) < 0)
                return -1;
            if (deq_append_ll(window, s) < 0)
                return -1;
            if (!pending) {
                PyObject *q = seq_item(c->ready_by_op,
                                       slot_ll(instr, OFF.in_op_i));
                if (heap_push(q, packed_obj) < 0)
                    return -1;
            }
            if (deq_popleft_drop(fe) < 0)
                return -1;
            budget -= 1;
            dispatched += 1;
        }
        if (tl_dirty) {
            if (slot_store_ll(ts, OFF.ts_rob_count, tl_rob) < 0
                || slot_store_ll(ts, OFF.ts_lsq_count, tl_lsq) < 0
                || slot_store_ll(ts, OFF.ts_iq_count, tl_iq) < 0
                || slot_store_ll(ts, OFF.ts_fq_count, tl_fq) < 0
                || slot_store_ll(ts, OFF.ts_int_regs, tl_ir) < 0
                || slot_store_ll(ts, OFF.ts_fp_regs, tl_fr) < 0)
                return -1;
        }
        if (fe_was_full && deq_len(fe) < c->fe_capacity
            && slot_store_ll(core, OFF.fetch_wake, 0) < 0)
            return -1;
        if (deq_len(fe) == 0
            && slot_store_ll(core, OFF.fe_mask,
                             slot_ll(core, OFF.fe_mask)
                                 & ~slot_ll(ts, OFF.ts_tid_bit)) < 0)
            return -1;
    }
    if (dispatched) {
        if (slot_store_ll(core, OFF.rob_used, rob_used) < 0
            || slot_store_ll(core, OFF.lsq_used, lsq_used) < 0
            || slot_store_ll(core, OFF.iq_used, iq_used) < 0
            || slot_store_ll(core, OFF.fq_used, fq_used) < 0
            || slot_store_ll(core, OFF.int_regs_used, int_regs_used) < 0
            || slot_store_ll(core, OFF.fp_regs_used, fp_regs_used) < 0)
            return -1;
    } else if (!any_ready
               && SLOT(core, OFF.policy_can_dispatch) == Py_None) {
        long long wake = cycle + (1LL << 30);
        for (Py_ssize_t i = 0; i < PyTuple_GET_SIZE(c->threads); i++) {
            long long wu = slot_ll(PyTuple_GET_ITEM(c->threads, i),
                                   OFF.ts_dispatch_wait_until);
            if (cycle < wu && wu < wake)
                wake = wu;
        }
        if (slot_store_ll(core, OFF.dispatch_wake, wake) < 0)
            return -1;
    }
    if (any_ready && dispatched == 0 && blocked_by_resource) {
        if (stat_add(SLOT(core, OFF.stats),
                     OFF.cs_resource_stall_cycles, 1) < 0)
            return -1;
        PyObject *ors = SLOT(core, OFF.policy_on_resource_stall);
        if (ors != Py_None) {   /* None: marked no-op hook */
            PyObject *r = PyObject_CallOneArg(ors, cycle_obj);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
        } else if (SLOT(core, OFF.policy_can_dispatch) == Py_None) {
            long long wake = cycle + (1LL << 30);
            for (Py_ssize_t i = 0; i < PyTuple_GET_SIZE(c->threads);
                 i++) {
                long long wu = slot_ll(PyTuple_GET_ITEM(c->threads, i),
                                       OFF.ts_dispatch_wait_until);
                if (cycle < wu && wu < wake)
                    wake = wu;
            }
            if (slot_store_ll(core, OFF.stall_latch_until, wake) < 0
                || slot_store_ll(core, OFF.stall_latch_epoch,
                                 release_epoch) < 0)
                return -1;
        }
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* stage: fetch (one thread's burst)                                   */
/* ------------------------------------------------------------------ */

/* repro.pipeline.dyninstr.instr_flags, transliterated. */
static long long instr_flags_c(PyObject *instr)
{
    long long flags = 0;
    if (SLOT(instr, OFF.in_has_dest) == Py_True)
        flags |= F_HAS_DEST;
    if (SLOT(instr, OFF.in_dest_fp) == Py_True)
        flags |= F_DEST_FP;
    if (SLOT(instr, OFF.in_is_load) == Py_True)
        flags |= F_IS_LOAD;
    else if (SLOT(instr, OFF.in_is_store) == Py_True)
        flags |= F_IS_STORE;
    else if (SLOT(instr, OFF.in_is_branch) == Py_True)
        flags |= F_IS_BRANCH;
    return flags;
}

/* SoACore._fetch_thread; returns the fetch count, or -1 on error. */
static long long fetch_thread_c(Ctx *c, PyObject *ts, long long budget,
                                long long cycle, PyObject *cycle_obj,
                                int ignore_stall)
{
    PyObject *core = c->core;
    PyObject *trace_get = SLOT(ts, OFF.ts_trace_get);
    PyObject *trace_static = SLOT(ts, OFF.ts_trace_static);
    PyObject *trace_flags = SLOT(ts, OFF.ts_trace_flags);
    long long body_len = slot_ll(ts, OFF.ts_trace_body_len);
    long long pc_origin = slot_ll(ts, OFF.ts_pc_origin);
    PyObject *on_fetch = SLOT(core, OFF.policy_on_fetch);
    PyObject *on_fetch_load = SLOT(core, OFF.policy_on_fetch_load);
    PyObject *fe_queue = SLOT(ts, OFF.ts_fe_queue);
    long long fe_ready = cycle + c->frontend_depth;
    PyObject *fe_ready_obj = box_ll(fe_ready);
    if (fe_ready_obj == NULL)
        return -1;
    long long tid = slot_ll(ts, OFF.ts_tid);
    long long gseq = slot_ll(core, OFF.gseq);
    PyObject *ae = SLOT(ts, OFF.ts_allowed_end);
    int has_allowed = ae != Py_None;
    long long allowed_end = has_allowed ? ll_of(ae) : 0;
    long long count = 0;
    Py_ssize_t fe_len0 = deq_len(fe_queue);
    int fe_was_empty = fe_len0 == 0;
    long long limit = c->fe_capacity - fe_len0;
    if (budget < limit)
        limit = budget;
    while (count < limit) {
        long long fetch_index = slot_ll(ts, OFF.ts_fetch_index);
        if (!ignore_stall && has_allowed && fetch_index > allowed_end)
            break;
        PyObject *instr;
        PyObject *instr_ref = NULL;   /* owned when trace_get was called */
        long long flags;
        if (trace_static != Py_None) {
            Py_ssize_t i = (Py_ssize_t)(fetch_index % body_len);
            instr = PyList_GET_ITEM(trace_static, i);
            if (instr == Py_None) {
                PyObject *fi = box_ll(fetch_index);
                if (fi == NULL)
                    goto fail;
                instr_ref = PyObject_CallOneArg(trace_get, fi);
                Py_DECREF(fi);
                if (instr_ref == NULL)
                    goto fail;
                instr = instr_ref;
                flags = instr_flags_c(instr);
            } else {
                flags = lget_ll(trace_flags, i);
            }
        } else {
            PyObject *fi = box_ll(fetch_index);
            if (fi == NULL)
                goto fail;
            instr_ref = PyObject_CallOneArg(trace_get, fi);
            Py_DECREF(fi);
            if (instr_ref == NULL)
                goto fail;
            instr = instr_ref;
            flags = instr_flags_c(instr);
        }
        long long pc_addr = pc_origin + slot_ll(instr, OFF.in_pc) * 4;
        long long line = pc_addr >> c->line_shift;
        if (line != slot_ll(ts, OFF.ts_last_ifetch_line)) {
            PyObject *pa = box_ll(pc_addr);
            if (pa == NULL)
                goto fail_instr;
            PyObject *iargs[3] = {SLOT(ts, OFF.ts_tid), pa, cycle_obj};
            PyObject *done_obj = PyObject_Vectorcall(
                SLOT(core, OFF.hier_ifetch), iargs, 3, NULL);
            Py_DECREF(pa);
            if (done_obj == NULL)
                goto fail_instr;
            long long done = ll_of(done_obj);
            Py_DECREF(done_obj);
            if (slot_store_ll(ts, OFF.ts_last_ifetch_line, line) < 0)
                goto fail_instr;
            if (done > cycle) {
                if (slot_store_ll(ts, OFF.ts_fetch_blocked_until,
                                  done) < 0)
                    goto fail_instr;
                Py_XDECREF(instr_ref);
                break;
            }
        }
        gseq += 1;
        if (PyList_GET_SIZE(c->free_list) == 0) {
            /* extends ``free`` in place */
            PyObject *r = PyObject_CallMethodNoArgs(core, g.s_soa_grow);
            if (r == NULL)
                goto fail_instr;
            Py_DECREF(r);
        }
        Py_ssize_t fn = PyList_GET_SIZE(c->free_list);
        long long s = lget_ll(c->free_list, fn - 1);
        if (PyList_SetSlice(c->free_list, fn - 1, fn, NULL) < 0)
            goto fail_instr;
        /* the popped slot is pristine: only the varying columns are
         * written (see the free-list invariant in SoACore.__init__) */
        Py_INCREF(instr);
        lset(c->col_instr, s, instr);
        if (lset_ll(c->col_thread, s, tid) < 0
            || lset_ll(c->col_seq, s, fetch_index) < 0
            || lset_ll(c->col_gseq, s, gseq) < 0
            || lset_ll(c->col_packed, s,
                       (gseq << SLOT_SHIFT) | s) < 0)
            goto fail_instr;
        Py_INCREF(fe_ready_obj);
        lset(c->col_fe_ready, s, fe_ready_obj);
        if (lset_ll(c->col_flags, s, flags) < 0)
            goto fail_instr;
        {
            PyObject *sb = box_ll(s);
            if (sb == NULL)
                goto fail_instr;
            PyObject *r = PyObject_CallOneArg(SLOT(ts, OFF.ts_fe_append),
                                              sb);
            Py_DECREF(sb);
            if (r == NULL)
                goto fail_instr;
            Py_DECREF(r);
        }
        if (slot_store_ll(ts, OFF.ts_fetch_index, fetch_index + 1) < 0
            || stat_add(ts, OFF.ts_icount, 1) < 0)
            goto fail_instr;
        count += 1;
        if (flags & F_IS_LOAD) {
            PyObject *p = PyObject_CallOneArg(
                SLOT(ts, OFF.ts_lll_predict), SLOT(instr, OFF.in_pc));
            if (p == NULL)
                goto fail_instr;
            lset(c->col_pred_ll, s, p);
            if (on_fetch_load != Py_None) {
                PyObject *v = ensure_view(core, c->col_views,
                                          c->col_gseq, s);
                if (v == NULL)
                    goto fail_instr;
                PyObject *hargs[2] = {v, ts};
                PyObject *r = PyObject_Vectorcall(on_fetch_load, hargs,
                                                  2, NULL);
                Py_DECREF(v);
                if (r == NULL)
                    goto fail_instr;
                Py_DECREF(r);
                ae = SLOT(ts, OFF.ts_allowed_end);   /* hook may update */
                has_allowed = ae != Py_None;
                allowed_end = has_allowed ? ll_of(ae) : 0;
            }
        }
        if (flags & F_IS_BRANCH) {
            PyObject *taken_obj = SLOT(instr, OFF.in_taken);
            int taken = taken_obj == Py_True;
            PyObject *gargs[3] = {SLOT(instr, OFF.in_pc), taken_obj,
                                  SLOT(ts, OFF.ts_tid)};
            PyObject *pr = call_method(SLOT(core, OFF.gshare),
                                       g.s_update, gargs, 3);
            if (pr == NULL)
                goto fail_instr;
            int prediction = PyObject_IsTrue(pr);
            Py_DECREF(pr);
            if (prediction < 0)
                goto fail_instr;
            int target_known = 1;
            if (taken) {
                PyObject *largs[1] = {SLOT(instr, OFF.in_pc)};
                PyObject *r = call_method(SLOT(core, OFF.btb),
                                          g.s_lookup, largs, 1);
                if (r == NULL)
                    goto fail_instr;
                target_known = PyObject_IsTrue(r);
                Py_DECREF(r);
                if (target_known < 0)
                    goto fail_instr;
                r = call_method(SLOT(core, OFF.btb), g.s_insert,
                                largs, 1);
                if (r == NULL)
                    goto fail_instr;
                Py_DECREF(r);
            }
            if (prediction != taken || !target_known) {
                if (slot_store_ll(ts, OFF.ts_waiting_branch, s) < 0
                    || slot_store_ll(ts, OFF.ts_branch_wait_since,
                                     cycle) < 0)
                    goto fail_instr;
                if (on_fetch != Py_None) {
                    PyObject *v = ensure_view(core, c->col_views,
                                              c->col_gseq, s);
                    if (v == NULL)
                        goto fail_instr;
                    PyObject *hargs[2] = {v, ts};
                    PyObject *r = PyObject_Vectorcall(on_fetch, hargs,
                                                      2, NULL);
                    Py_DECREF(v);
                    if (r == NULL)
                        goto fail_instr;
                    Py_DECREF(r);
                }
                Py_XDECREF(instr_ref);
                break;
            }
            if (on_fetch != Py_None) {
                PyObject *v = ensure_view(core, c->col_views,
                                          c->col_gseq, s);
                if (v == NULL)
                    goto fail_instr;
                PyObject *hargs[2] = {v, ts};
                PyObject *r = PyObject_Vectorcall(on_fetch, hargs, 2,
                                                  NULL);
                Py_DECREF(v);
                if (r == NULL)
                    goto fail_instr;
                Py_DECREF(r);
            }
            if (taken) {
                /* a correctly-predicted taken branch ends the block */
                Py_XDECREF(instr_ref);
                break;
            }
        } else if (on_fetch != Py_None) {
            PyObject *v = ensure_view(core, c->col_views, c->col_gseq,
                                      s);
            if (v == NULL)
                goto fail_instr;
            PyObject *hargs[2] = {v, ts};
            PyObject *r = PyObject_Vectorcall(on_fetch, hargs, 2, NULL);
            Py_DECREF(v);
            if (r == NULL)
                goto fail_instr;
            Py_DECREF(r);
        }
        if (on_fetch != Py_None) {
            ae = SLOT(ts, OFF.ts_allowed_end);   /* hook may update */
            has_allowed = ae != Py_None;
            allowed_end = has_allowed ? ll_of(ae) : 0;
        }
        Py_XDECREF(instr_ref);
        continue;
    fail_instr:
        Py_XDECREF(instr_ref);
        goto fail;
    }
    if (slot_store_ll(core, OFF.gseq, gseq) < 0)
        goto fail;
    if (count) {
        if (stat_add(SLOT(ts, OFF.ts_stats), OFF.st_fetched, count) < 0)
            goto fail;
        if (fe_was_empty) {
            if (slot_store_ll(core, OFF.dispatch_wake, 0) < 0
                || slot_store_ll(core, OFF.stall_latch_until, 0) < 0
                || slot_store_ll(core, OFF.fe_mask,
                                 slot_ll(core, OFF.fe_mask)
                                     | (1LL << tid)) < 0)
                goto fail;
        }
    }
    {
        PyObject *sargs[1] = {cycle_obj};
        PyObject *r = call_method(ts, g.s_sync_policy_stall, sargs, 1);
        if (r == NULL)
            goto fail;
        Py_DECREF(r);
    }
    Py_DECREF(fe_ready_obj);
    return count;
fail:
    Py_DECREF(fe_ready_obj);
    return -1;
}

/* ------------------------------------------------------------------ */
/* the fused run loop (SoACore._run_until's while True body)           */
/* ------------------------------------------------------------------ */

/* SMTCore._compute_fetch_wake, transliterated. */
static long long compute_fetch_wake(Ctx *c, long long cycle)
{
    long long wake = cycle + (1LL << 30);
    Py_ssize_t nt = PyTuple_GET_SIZE(c->threads);
    for (Py_ssize_t i = 0; i < nt; i++) {
        long long blocked_until = slot_ll(PyTuple_GET_ITEM(c->threads, i),
                                          OFF.ts_fetch_blocked_until);
        if (cycle < blocked_until && blocked_until < wake)
            wake = blocked_until;
    }
    return wake;
}

/* One thread's burst, via C or the Python fallback per the stage mask. */
static long long do_fetch(Ctx *c, PyObject *ts, long long budget,
                          long long cycle, PyObject *cycle_obj,
                          int ignore_stall)
{
    if (c->stage_mask & ST_FETCH)
        return fetch_thread_c(c, ts, budget, cycle, cycle_obj,
                              ignore_stall);
    PyObject *b = box_ll(budget);
    if (b == NULL)
        return -1;
    PyObject *args[4] = {ts, b, cycle_obj,
                         ignore_stall ? Py_True : Py_False};
    PyObject *r = call_method(c->core, g.s_fetch_thread, args, 4);
    Py_DECREF(b);
    if (r == NULL)
        return -1;
    long long n = ll_of(r);
    Py_DECREF(r);
    return n;
}

/* The ``policy_fetch_order(cycle)`` fetch path (shared by the base
 * engine's empty-candidates fallback and non-base policies). */
static int fetch_via_policy_order(Ctx *c, long long cycle,
                                  PyObject *cycle_obj,
                                  int base_fallback_wake)
{
    PyObject *order = PyObject_CallOneArg(
        SLOT(c->core, OFF.policy_fetch_order), cycle_obj);
    if (order == NULL)
        return -1;
    int truthy = PyObject_IsTrue(order);
    if (truthy < 0) {
        Py_DECREF(order);
        return -1;
    }
    if (truthy) {
        PyObject *fast = PySequence_Fast(order, "fetch order");
        if (fast == NULL) {
            Py_DECREF(order);
            return -1;
        }
        Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
        long long budget = c->fetch_width;
        long long remaining_threads = c->fetch_max_threads;
        for (Py_ssize_t i = 0; i < n; i++) {
            if (remaining_threads == 0 || budget == 0)
                break;
            remaining_threads -= 1;
            PyObject *pair = PySequence_Fast_GET_ITEM(fast, i);
            PyObject *ts = seq_item(pair, 0);
            int ignore_stall = PyObject_IsTrue(seq_item(pair, 1));
            if (ignore_stall < 0)
                goto fail;
            long long cnt = do_fetch(c, ts, budget, cycle, cycle_obj,
                                     ignore_stall);
            if (cnt < 0)
                goto fail;
            budget -= cnt;
            continue;
        fail:
            Py_DECREF(fast);
            Py_DECREF(order);
            return -1;
        }
        Py_DECREF(fast);
    } else if (base_fallback_wake
               && slot_store_ll(c->core, OFF.fetch_wake,
                                compute_fetch_wake(c, cycle)) < 0) {
        Py_DECREF(order);
        return -1;
    }
    Py_DECREF(order);
    return 0;
}

/* The fetch-selection block of the fused loop. */
static int run_fetch_select(Ctx *c, long long cycle, PyObject *cycle_obj)
{
    if (!c->fetch_order_is_base)
        return fetch_via_policy_order(c, cycle, cycle_obj, 0);
    PyObject *candidates = c->fetch_candidates;
    if (PyList_GET_SIZE(candidates) == 0)
        return fetch_via_policy_order(c, cycle, cycle_obj, 1);
    PyObject *first = NULL;
    PyObject *rest[MAX_THREADS];
    long long rest_icount[MAX_THREADS];
    int rn = 0;
    Py_ssize_t cn = PyList_GET_SIZE(candidates);
    for (Py_ssize_t i = 0; i < cn && rn < MAX_THREADS; i++) {
        PyObject *ts = PyList_GET_ITEM(candidates, i);
        if (slot_ll(ts, OFF.ts_fetch_blocked_until) <= cycle
            && SLOT(ts, OFF.ts_waiting_branch) == Py_None
            && deq_len(SLOT(ts, OFF.ts_fe_queue)) < c->fe_capacity) {
            if (first == NULL) {
                first = ts;
            } else if (rn == 0) {
                rest[rn++] = first;
                rest[rn++] = ts;
            } else {
                rest[rn++] = ts;
            }
        }
    }
    if (rn == 0) {
        if (first == NULL)
            return slot_store_ll(c->core, OFF.fetch_wake,
                                 compute_fetch_wake(c, cycle));
        if (c->can_fetch_one
            && do_fetch(c, first, c->fetch_width, cycle, cycle_obj,
                        0) < 0)
            return -1;
        return 0;
    }
    /* stable icount sort (matches list.sort(key=_by_icount)) */
    for (int i = 0; i < rn; i++)
        rest_icount[i] = slot_ll(rest[i], OFF.ts_icount);
    for (int i = 1; i < rn; i++) {
        PyObject *ts = rest[i];
        long long ic = rest_icount[i];
        int j = i - 1;
        while (j >= 0 && rest_icount[j] > ic) {
            rest[j + 1] = rest[j];
            rest_icount[j + 1] = rest_icount[j];
            j--;
        }
        rest[j + 1] = ts;
        rest_icount[j + 1] = ic;
    }
    long long budget = c->fetch_width;
    long long remaining_threads = c->fetch_max_threads;
    for (int i = 0; i < rn; i++) {
        if (remaining_threads == 0 || budget == 0)
            break;
        remaining_threads -= 1;
        long long cnt = do_fetch(c, rest[i], budget, cycle, cycle_obj, 0);
        if (cnt < 0)
            return -1;
        budget -= cnt;
    }
    return 0;
}

static int ctx_init(Ctx *c, PyObject *core, long long stage_mask)
{
    memset(c, 0, sizeof(*c));
    c->core = core;
    c->stage_mask = stage_mask;
    c->ev_buckets = SLOT(core, OFF.ev_buckets);
    c->ev_marks = SLOT(core, OFF.ev_marks);
    c->ev_over = SLOT(core, OFF.ev_over);
    c->dt_buckets = SLOT(core, OFF.dt_buckets);
    c->dt_marks = SLOT(core, OFF.dt_marks);
    c->dt_over = SLOT(core, OFF.dt_over);
    c->wb_buckets = SLOT(core, OFF.wb_buckets);
    c->wb_marks = SLOT(core, OFF.wb_marks);
    c->wb_over = SLOT(core, OFF.wb_over);
    c->ready_int = SLOT(core, OFF.ready_int);
    c->ready_ldst = SLOT(core, OFF.ready_ldst);
    c->ready_fp = SLOT(core, OFF.ready_fp);
    c->ready_by_op = SLOT(core, OFF.ready_by_op);
    c->threads = SLOT(core, OFF.threads);
    c->fetch_candidates = SLOT(core, OFF.fetch_candidates);
    c->free_list = SLOT(core, OFF.free_list);
    c->col_instr = SLOT(core, OFF.col_instr);
    c->col_thread = SLOT(core, OFF.col_thread);
    c->col_seq = SLOT(core, OFF.col_seq);
    c->col_gseq = SLOT(core, OFF.col_gseq);
    c->col_packed = SLOT(core, OFF.col_packed);
    c->col_pending = SLOT(core, OFF.col_pending);
    c->col_fe_ready = SLOT(core, OFF.col_fe_ready);
    c->col_flags = SLOT(core, OFF.col_flags);
    c->col_refs = SLOT(core, OFF.col_refs);
    c->col_waiter0 = SLOT(core, OFF.col_waiter0);
    c->col_waiters = SLOT(core, OFF.col_waiters);
    c->col_old_map = SLOT(core, OFF.col_old_map);
    c->col_ll_parents = SLOT(core, OFF.col_ll_parents);
    c->col_pred_ll = SLOT(core, OFF.col_pred_ll);
    c->col_fill_line = SLOT(core, OFF.col_fill_line);
    c->col_level = SLOT(core, OFF.col_level);
    c->col_views = SLOT(core, OFF.col_views);
    c->on_ll_detect = PyObject_GetAttr(SLOT(core, OFF.policy),
                                       g.s_on_ll_detect);
    if (c->on_ll_detect == NULL)
        return -1;
    c->olc_cleanup_only = slot_true(core, OFF.cext_olc_cleanup_only);
    c->ll_detect_is_base = slot_true(core, OFF.cext_ll_detect_is_base);
    c->mask = slot_ll(core, OFF.wheel_mask);
    c->fetch_width = slot_ll(core, OFF.fetch_width);
    c->fetch_max_threads = slot_ll(core, OFF.fetch_max_threads);
    c->fe_capacity = slot_ll(core, OFF.fe_capacity);
    c->frontend_depth = slot_ll(core, OFF.frontend_depth);
    c->decode_width = slot_ll(core, OFF.decode_width);
    c->commit_width = slot_ll(core, OFF.commit_width);
    c->wb_entries = slot_ll(core, OFF.wb_entries);
    c->line_shift = slot_ll(core, OFF.line_shift);
    c->n_threads = slot_ll(core, OFF.n_threads);
    c->full_mask = slot_ll(core, OFF.full_mask);
    c->rob_size = slot_ll(core, OFF.rob_size);
    c->lsq_size = slot_ll(core, OFF.lsq_size);
    c->int_iq_size = slot_ll(core, OFF.int_iq_size);
    c->fp_iq_size = slot_ll(core, OFF.fp_iq_size);
    c->int_rename_regs = slot_ll(core, OFF.int_rename_regs);
    c->fp_rename_regs = slot_ll(core, OFF.fp_rename_regs);
    c->num_int_alu = slot_ll(core, OFF.num_int_alu);
    c->num_ldst = slot_ll(core, OFF.num_ldst);
    c->num_fp = slot_ll(core, OFF.num_fp);
    c->fast_forward = slot_true(core, OFF.fast_forward);
    c->fetch_order_is_base = slot_true(core, OFF.fetch_order_is_base);
    c->can_fetch_one =
        c->fetch_max_threads >= 1 && c->fetch_width >= 1;
    c->track_dep = slot_true(core, OFF.track_ll_dep);
    return 0;
}

static void ctx_clear(Ctx *c)
{
    Py_XDECREF(c->on_ll_detect);
    c->on_ll_detect = NULL;
}

static PyObject *run_until(PyObject *self, PyObject *const *args,
                           Py_ssize_t nargs)
{
    (void)self;
    if (!g.ready) {
        PyErr_SetString(PyExc_RuntimeError,
                        "_cext_engine.setup() has not run");
        return NULL;
    }
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "run_until(core, max_commits, limit, stage_mask)");
        return NULL;
    }
    PyObject *core = args[0];
    long long max_commits = PyLong_AsLongLong(args[1]);
    long long limit = PyLong_AsLongLong(args[2]);
    long long stage_mask = PyLong_AsLongLong(args[3]);
    if (PyErr_Occurred())
        return NULL;
    Ctx ctx;
    Ctx *c = &ctx;
    if (ctx_init(c, core, stage_mask) < 0)
        return NULL;
    unsigned long loop_n = 0;
    for (;;) {
        if (((++loop_n) & 0xFFF) == 0 && PyErr_CheckSignals() < 0)
            goto fail;
        long long cycle = slot_ll(core, OFF.cycle);
        PyObject *cycle_obj = SLOT(core, OFF.cycle);
        Py_INCREF(cycle_obj);
        /* completion + detection drains */
        if (stage_mask & ST_DRAIN) {
            if (stage_drain(c, cycle, cycle_obj) < 0)
                goto fail_cycle;
        } else {
            PyObject *dargs[1] = {cycle_obj};
            PyObject *r = call_method(core, g.s_soa_drain_events,
                                      dargs, 1);
            if (r == NULL)
                goto fail_cycle;
            Py_DECREF(r);
        }
        /* write-buffer drain (always in C; step() inlines it too) */
        {
            Py_ssize_t widx = (Py_ssize_t)(cycle & c->mask);
            long long wcnt = lget_ll(c->wb_buckets, widx);
            if (wcnt) {
                if (lset_ll(c->wb_buckets, widx, 0) < 0
                    || stat_add(core, OFF.wb_used, -wcnt) < 0)
                    goto fail_cycle;
                while (PyList_GET_SIZE(c->wb_marks) > 0
                       && heap_min_key(c->wb_marks) <= cycle) {
                    if (heap_pop_drop(c->wb_marks) < 0)
                        goto fail_cycle;
                }
            }
            while (PyList_GET_SIZE(c->wb_over) > 0
                   && heap_min_key(c->wb_over) <= cycle) {
                if (heap_pop_drop(c->wb_over) < 0
                    || stat_add(core, OFF.wb_used, -1) < 0)
                    goto fail_cycle;
            }
        }
        /* commit */
        if (SLOT(core, OFF.commit_pending) == Py_True) {
            if (stage_mask & ST_COMMIT) {
                if (stage_commit(c, cycle, cycle_obj) < 0)
                    goto fail_cycle;
            } else {
                PyObject *r = PyObject_CallOneArg(
                    SLOT(core, OFF.commit_stage), cycle_obj);
                if (r == NULL)
                    goto fail_cycle;
                Py_DECREF(r);
            }
        }
        /* issue */
        if (PyList_GET_SIZE(c->ready_int) > 0
            || PyList_GET_SIZE(c->ready_ldst) > 0
            || PyList_GET_SIZE(c->ready_fp) > 0) {
            if (stage_mask & ST_ISSUE) {
                if (stage_issue(c, cycle, cycle_obj) < 0)
                    goto fail_cycle;
            } else {
                PyObject *r = PyObject_CallOneArg(
                    SLOT(core, OFF.issue_stage), cycle_obj);
                if (r == NULL)
                    goto fail_cycle;
                Py_DECREF(r);
            }
        }
        /* dispatch */
        if (cycle >= slot_ll(core, OFF.dispatch_wake)) {
            if (cycle < slot_ll(core, OFF.stall_latch_until)
                && slot_ll(core, OFF.stall_latch_epoch)
                       == slot_ll(core, OFF.release_epoch)) {
                if (stat_add(SLOT(core, OFF.stats),
                             OFF.cs_resource_stall_cycles, 1) < 0)
                    goto fail_cycle;
            } else if (stage_mask & ST_DISPATCH) {
                if (stage_dispatch(c, cycle, cycle_obj) < 0)
                    goto fail_cycle;
            } else {
                PyObject *r = PyObject_CallOneArg(
                    SLOT(core, OFF.dispatch_stage), cycle_obj);
                if (r == NULL)
                    goto fail_cycle;
                Py_DECREF(r);
            }
        }
        /* fetch */
        if (cycle >= slot_ll(core, OFF.fetch_wake)
            && run_fetch_select(c, cycle, cycle_obj) < 0)
            goto fail_cycle;
        /* cycle advance / fast-forward */
        {
            long long nxt = cycle + 1;
            int ready_any = PyList_GET_SIZE(c->ready_int) > 0
                || PyList_GET_SIZE(c->ready_ldst) > 0
                || PyList_GET_SIZE(c->ready_fp) > 0;
            if (!c->fast_forward || ready_any) {
                if (slot_store_ll(core, OFF.cycle, nxt) < 0)
                    goto fail_cycle;
            } else if (nxt < slot_ll(core, OFF.fetch_wake)) {
                goto next_event;
            } else if (c->fetch_order_is_base) {
                PyObject *probe =
                    PyList_GET_SIZE(c->fetch_candidates) > 0
                        ? c->fetch_candidates : c->threads;
                Py_ssize_t pn = seq_size(probe);
                int pending = 0;
                for (Py_ssize_t i = 0; i < pn; i++) {
                    PyObject *ts = seq_item(probe, i);
                    if (slot_ll(ts, OFF.ts_fetch_blocked_until) <= nxt
                        && SLOT(ts, OFF.ts_waiting_branch) == Py_None
                        && deq_len(SLOT(ts, OFF.ts_fe_queue))
                               < c->fe_capacity) {
                        pending = 1;
                        break;
                    }
                }
                if (pending) {
                    if (slot_store_ll(core, OFF.cycle, nxt) < 0)
                        goto fail_cycle;
                } else {
                    goto next_event;
                }
            } else {
                PyObject *nxt_obj = box_ll(nxt);
                if (nxt_obj == NULL)
                    goto fail_cycle;
                PyObject *r = PyObject_CallOneArg(
                    SLOT(core, OFF.policy_fetch_pending), nxt_obj);
                Py_DECREF(nxt_obj);
                if (r == NULL)
                    goto fail_cycle;
                int pend = PyObject_IsTrue(r);
                Py_DECREF(r);
                if (pend < 0)
                    goto fail_cycle;
                if (pend) {
                    if (slot_store_ll(core, OFF.cycle, nxt) < 0)
                        goto fail_cycle;
                } else {
                    goto next_event;
                }
            }
            goto advanced;
        next_event:
            {
                PyObject *nargs1[1] = {cycle_obj};
                PyObject *r = call_method(core, g.s_next_cycle,
                                          nargs1, 1);
                if (r == NULL)
                    goto fail_cycle;
                nxt = ll_of(r);
                slot_store(core, OFF.cycle, r);   /* steals r */
            }
        advanced:
            Py_DECREF(cycle_obj);
            if (slot_ll(core, OFF.committed_watermark) >= max_commits) {
                ctx_clear(c);
                Py_RETURN_NONE;
            }
            if (nxt >= limit) {
                PyErr_Format(g.limit_exc,
                             "exceeded %lld cycles without reaching "
                             "%lld commits", limit, max_commits);
                goto fail;
            }
        }
        continue;
    fail_cycle:
        Py_DECREF(cycle_obj);
        goto fail;
    }
fail:
    ctx_clear(c);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* setup: resolve slot offsets from the classes the driver passes in   */
/* ------------------------------------------------------------------ */

struct OffSpec {
    const char *cls;
    const char *name;
    size_t field;
};

#define O(cls, name, field) {cls, name, offsetof(Offsets, field)}

static const struct OffSpec SPECS[] = {
    O("core", "cycle", cycle), O("core", "_gseq", gseq),
    O("core", "_wheel_mask", wheel_mask),
    O("core", "_ev_buckets", ev_buckets), O("core", "_ev_marks", ev_marks),
    O("core", "_ev_over", ev_over),
    O("core", "_dt_buckets", dt_buckets), O("core", "_dt_marks", dt_marks),
    O("core", "_dt_over", dt_over),
    O("core", "_wb_buckets", wb_buckets), O("core", "_wb_marks", wb_marks),
    O("core", "_wb_over", wb_over), O("core", "_wb_used", wb_used),
    O("core", "_ready_int", ready_int), O("core", "_ready_ldst", ready_ldst),
    O("core", "_ready_fp", ready_fp), O("core", "_ready_by_op", ready_by_op),
    O("core", "threads", threads), O("core", "policy", policy),
    O("core", "stats", stats),
    O("core", "_commit_stage", commit_stage),
    O("core", "_dispatch_stage", dispatch_stage),
    O("core", "_issue_stage", issue_stage),
    O("core", "_policy_fetch_order", policy_fetch_order),
    O("core", "_policy_fetch_pending", policy_fetch_pending),
    O("core", "_policy_can_dispatch", policy_can_dispatch),
    O("core", "_policy_on_fetch", policy_on_fetch),
    O("core", "_policy_on_fetch_load", policy_on_fetch_load),
    O("core", "_policy_on_load_complete", policy_on_load_complete),
    O("core", "_policy_on_resource_stall", policy_on_resource_stall),
    O("core", "_hier_load", hier_load), O("core", "_hier_ifetch", hier_ifetch),
    O("core", "_hier_store", hier_store),
    O("core", "gshare", gshare), O("core", "btb", btb),
    O("core", "_n_threads", n_threads), O("core", "_full_mask", full_mask),
    O("core", "_fe_mask", fe_mask), O("core", "_heads_mask", heads_mask),
    O("core", "_rotations", rotations), O("core", "_rot_cache", rot_cache),
    O("core", "_fetch_candidates", fetch_candidates),
    O("core", "_fetch_wake", fetch_wake),
    O("core", "_dispatch_wake", dispatch_wake),
    O("core", "_stall_latch_until", stall_latch_until),
    O("core", "_stall_latch_epoch", stall_latch_epoch),
    O("core", "_release_epoch", release_epoch),
    O("core", "_committed_watermark", committed_watermark),
    O("core", "_commit_pending", commit_pending),
    O("core", "_measure_start", measure_start),
    O("core", "_fetch_width", fetch_width),
    O("core", "_fetch_max_threads", fetch_max_threads),
    O("core", "_fast_forward", fast_forward),
    O("core", "_fetch_order_is_base", fetch_order_is_base),
    O("core", "_fe_capacity", fe_capacity),
    O("core", "_frontend_depth", frontend_depth),
    O("core", "_decode_width", decode_width),
    O("core", "_commit_width", commit_width),
    O("core", "_line_shift", line_shift),
    O("core", "_rob_size", rob_size), O("core", "_lsq_size", lsq_size),
    O("core", "_int_iq_size", int_iq_size),
    O("core", "_fp_iq_size", fp_iq_size),
    O("core", "_int_rename_regs", int_rename_regs),
    O("core", "_fp_rename_regs", fp_rename_regs),
    O("core", "_wb_entries", wb_entries),
    O("core", "rob_used", rob_used), O("core", "lsq_used", lsq_used),
    O("core", "iq_used", iq_used), O("core", "fq_used", fq_used),
    O("core", "int_regs_used", int_regs_used),
    O("core", "fp_regs_used", fp_regs_used),
    O("core", "_num_int_alu", num_int_alu), O("core", "_num_ldst", num_ldst),
    O("core", "_num_fp", num_fp),
    O("core", "_track_ll_dep", track_ll_dep),
    O("core", "_free", free_list),
    O("core", "_col_instr", col_instr), O("core", "_col_thread", col_thread),
    O("core", "_col_seq", col_seq), O("core", "_col_gseq", col_gseq),
    O("core", "_col_packed", col_packed),
    O("core", "_col_pending", col_pending),
    O("core", "_col_fe_ready", col_fe_ready),
    O("core", "_col_flags", col_flags), O("core", "_col_refs", col_refs),
    O("core", "_col_waiter0", col_waiter0),
    O("core", "_col_waiters", col_waiters),
    O("core", "_col_old_map", col_old_map),
    O("core", "_col_ll_parents", col_ll_parents),
    O("core", "_col_pred_ll", col_pred_ll),
    O("core", "_col_fill_line", col_fill_line),
    O("core", "_col_level", col_level), O("core", "_col_views", col_views),
    O("core", "_cext_olc_cleanup_only", cext_olc_cleanup_only),
    O("core", "_cext_ll_detect_is_base", cext_ll_detect_is_base),
    O("ts", "tid", ts_tid), O("ts", "tid_bit", ts_tid_bit),
    O("ts", "icount", ts_icount), O("ts", "rob_count", ts_rob_count),
    O("ts", "lsq_count", ts_lsq_count), O("ts", "iq_count", ts_iq_count),
    O("ts", "fq_count", ts_fq_count), O("ts", "int_regs", ts_int_regs),
    O("ts", "fp_regs", ts_fp_regs),
    O("ts", "fetch_blocked_until", ts_fetch_blocked_until),
    O("ts", "waiting_branch", ts_waiting_branch),
    O("ts", "branch_wait_since", ts_branch_wait_since),
    O("ts", "allowed_end", ts_allowed_end),
    O("ts", "ll_owners", ts_ll_owners),
    O("ts", "last_ifetch_line", ts_last_ifetch_line),
    O("ts", "outstanding_misses", ts_outstanding_misses),
    O("ts", "stats", ts_stats), O("ts", "commit_cycles", ts_commit_cycles),
    O("ts", "fe_queue", ts_fe_queue), O("ts", "window", ts_window),
    O("ts", "rename_map", ts_rename_map),
    O("ts", "fetch_index", ts_fetch_index),
    O("ts", "head_ready", ts_head_ready),
    O("ts", "dispatch_blocked_head", ts_dispatch_blocked_head),
    O("ts", "dispatch_blocked_epoch", ts_dispatch_blocked_epoch),
    O("ts", "dispatch_wait_until", ts_dispatch_wait_until),
    O("ts", "trace_get", ts_trace_get), O("ts", "fe_append", ts_fe_append),
    O("ts", "lll_predict", ts_lll_predict),
    O("ts", "pc_origin", ts_pc_origin),
    O("ts", "llsr_commit", ts_llsr_commit),
    O("ts", "llsr_commit_zeros", ts_llsr_commit_zeros),
    O("ts", "trace_static", ts_trace_static),
    O("ts", "trace_body_len", ts_trace_body_len),
    O("ts", "llsr_zeros", ts_llsr_zeros),
    O("ts", "trace_flags", ts_trace_flags),
    O("ts", "lll_pred", ts_lll_pred),
    O("stats", "fetched", st_fetched), O("stats", "committed", st_committed),
    O("stats", "loads_executed", st_loads_executed),
    O("stats", "ll_loads", st_ll_loads),
    O("stats", "branch_stall_cycles", st_branch_stall_cycles),
    O("stats", "lll_pred_loads", st_lll_pred_loads),
    O("stats", "lll_pred_correct", st_lll_pred_correct),
    O("stats", "lll_pred_miss_actual", st_lll_pred_miss_actual),
    O("stats", "lll_pred_miss_correct", st_lll_pred_miss_correct),
    O("core_stats", "resource_stall_cycles", cs_resource_stall_cycles),
    O("instr", "pc", in_pc), O("instr", "dest", in_dest),
    O("instr", "srcs", in_srcs), O("instr", "addr", in_addr),
    O("instr", "taken", in_taken), O("instr", "has_dest", in_has_dest),
    O("instr", "dest_fp", in_dest_fp), O("instr", "is_load", in_is_load),
    O("instr", "is_store", in_is_store),
    O("instr", "is_branch", in_is_branch),
    O("instr", "op_i", in_op_i), O("instr", "fp_queue", in_fp_queue),
    O("instr", "latency", in_latency),
    O("result", "complete_cycle", ar_complete_cycle),
    O("result", "detect_cycle", ar_detect_cycle),
    O("result", "level", ar_level),
    O("result", "long_latency", ar_long_latency),
    O("result", "trigger", ar_trigger),
    O("result", "fill_line", ar_fill_line),
};

#undef O

/* Flag constants double-checked against the Python source of truth. */
static const struct {
    const char *name;
    long long value;
} FLAG_SPECS[] = {
    {"F_IN_IQ", F_IN_IQ}, {"F_IQ_FP", F_IQ_FP}, {"F_ISSUED", F_ISSUED},
    {"F_COMPLETED", F_COMPLETED}, {"F_HAS_DEST", F_HAS_DEST},
    {"F_DEST_FP", F_DEST_FP}, {"F_SQUASHED", F_SQUASHED},
    {"F_IS_LOAD", F_IS_LOAD}, {"F_IS_STORE", F_IS_STORE},
    {"F_IS_BRANCH", F_IS_BRANCH}, {"F_IS_LL", F_IS_LL},
    {"F_INV", F_INV}, {"F_LL_DEP", F_LL_DEP}, {"F_RETIRED", F_RETIRED},
    {"F_IN_DETECTS", F_IN_DETECTS}, {"F_FREED", F_FREED},
    {"SLOT_SHIFT", SLOT_SHIFT},
};

static PyObject *intern_or_null(const char *s)
{
    return PyUnicode_InternFromString(s);
}

static PyObject *setup(PyObject *self, PyObject *ns)
{
    (void)self;
    if (!PyDict_Check(ns)) {
        PyErr_SetString(PyExc_TypeError, "setup() expects a dict");
        return NULL;
    }
    /* slot offsets via member descriptors */
    size_t n_specs = sizeof(SPECS) / sizeof(SPECS[0]);
    for (size_t i = 0; i < n_specs; i++) {
        PyObject *cls = PyDict_GetItemString(ns, SPECS[i].cls);
        if (cls == NULL) {
            PyErr_Format(PyExc_KeyError, "setup(): missing class %s",
                         SPECS[i].cls);
            return NULL;
        }
        PyObject *descr = PyObject_GetAttrString(cls, SPECS[i].name);
        if (descr == NULL)
            return NULL;
        if (!PyObject_TypeCheck(descr, &PyMemberDescr_Type)) {
            Py_DECREF(descr);
            PyErr_Format(PyExc_TypeError,
                         "%s.%s is not a slot member descriptor",
                         SPECS[i].cls, SPECS[i].name);
            return NULL;
        }
        Py_ssize_t off =
            ((PyMemberDescrObject *)descr)->d_member->offset;
        Py_DECREF(descr);
        *(Py_ssize_t *)((char *)&g.off + SPECS[i].field) = off;
    }
    /* flag-word constants: fail loudly if the Python side drifts */
    PyObject *flags = PyDict_GetItemString(ns, "flags");
    if (flags == NULL || !PyDict_Check(flags)) {
        PyErr_SetString(PyExc_KeyError, "setup(): missing flags dict");
        return NULL;
    }
    size_t n_flags = sizeof(FLAG_SPECS) / sizeof(FLAG_SPECS[0]);
    for (size_t i = 0; i < n_flags; i++) {
        PyObject *v = PyDict_GetItemString(flags, FLAG_SPECS[i].name);
        if (v == NULL) {
            PyErr_Format(PyExc_KeyError, "setup(): missing flag %s",
                         FLAG_SPECS[i].name);
            return NULL;
        }
        if (PyLong_AsLongLong(v) != FLAG_SPECS[i].value) {
            PyErr_Format(PyExc_ValueError,
                         "setup(): flag %s drifted from the C copy",
                         FLAG_SPECS[i].name);
            return NULL;
        }
    }
    PyObject *view_cls = PyDict_GetItemString(ns, "view_cls");
    PyObject *limit_exc = PyDict_GetItemString(ns, "limit_exc");
    PyObject *l1_level = PyDict_GetItemString(ns, "l1_level");
    if (view_cls == NULL || limit_exc == NULL || l1_level == NULL) {
        PyErr_SetString(PyExc_KeyError,
                        "setup(): missing view_cls/limit_exc/l1_level");
        return NULL;
    }
    Py_INCREF(view_cls);
    Py_XSETREF(g.view_cls, view_cls);
    Py_INCREF(limit_exc);
    Py_XSETREF(g.limit_exc, limit_exc);
    Py_INCREF(l1_level);
    Py_XSETREF(g.l1_level, l1_level);
    /* small-int table + interned method names (idempotent) */
    if (g.small_ints[0] == NULL) {
        for (long long i = 0; i < SMALL_INT_LIMIT; i++) {
            g.small_ints[i] = PyLong_FromLongLong(i);
            if (g.small_ints[i] == NULL)
                return NULL;
        }
        g.neg_one = PyLong_FromLong(-1);
        if (g.neg_one == NULL)
            return NULL;
        if ((g.s_append = intern_or_null("append")) == NULL
            || (g.s_popleft = intern_or_null("popleft")) == NULL
            || (g.s_update = intern_or_null("update")) == NULL
            || (g.s_lookup = intern_or_null("lookup")) == NULL
            || (g.s_insert = intern_or_null("insert")) == NULL
            || (g.s_train = intern_or_null("train")) == NULL
            || (g.s_on_ll_detect =
                    intern_or_null("on_ll_detect")) == NULL
            || (g.s_soa_grow = intern_or_null("_soa_grow")) == NULL
            || (g.s_next_cycle = intern_or_null("_next_cycle")) == NULL
            || (g.s_compute_fetch_wake =
                    intern_or_null("_compute_fetch_wake")) == NULL
            || (g.s_sync_policy_stall =
                    intern_or_null("_sync_policy_stall")) == NULL
            || (g.s_soa_drain_events =
                    intern_or_null("_soa_drain_events")) == NULL
            || (g.s_fetch_thread =
                    intern_or_null("_fetch_thread")) == NULL)
            return NULL;
    }
    g.ready = 1;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* module definition                                                   */
/* ------------------------------------------------------------------ */

static PyMethodDef cext_methods[] = {
    {"setup", setup, METH_O,
     "Resolve slot offsets and constants from the driver's class table."},
    {"run_until", (PyCFunction)(void (*)(void))run_until, METH_FASTCALL,
     "run_until(core, max_commits, limit, stage_mask) -> None"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef cext_module = {
    PyModuleDef_HEAD_INIT,
    "repro.pipeline._cext_engine",
    "Compiled stage bodies for the SoA engine (see cext.py).",
    -1,
    cext_methods,
    NULL, NULL, NULL, NULL,
};

PyMODINIT_FUNC PyInit__cext_engine(void)
{
    PyObject *m = PyModule_Create(&cext_module);
    if (m == NULL)
        return NULL;
    if (PyModule_AddIntConstant(m, "API_VERSION", CEXT_API_VERSION) < 0
        || PyModule_AddIntConstant(m, "ST_DRAIN", ST_DRAIN) < 0
        || PyModule_AddIntConstant(m, "ST_COMMIT", ST_COMMIT) < 0
        || PyModule_AddIntConstant(m, "ST_ISSUE", ST_ISSUE) < 0
        || PyModule_AddIntConstant(m, "ST_DISPATCH", ST_DISPATCH) < 0
        || PyModule_AddIntConstant(m, "ST_FETCH", ST_FETCH) < 0
        || PyModule_AddIntConstant(
               m, "ALL_STAGES",
               ST_DRAIN | ST_COMMIT | ST_ISSUE | ST_DISPATCH
                   | ST_FETCH) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
