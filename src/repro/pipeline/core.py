"""The cycle-level SMT out-of-order core.

Models the Table IV machine: ICOUNT-style fetch of up to ``fetch_width``
instructions from up to ``fetch_max_threads`` threads per cycle, a front-end
pipeline of ``frontend_depth`` cycles, register renaming against shared
int/fp rename-register pools, shared ROB/LSQ and per-class issue queues,
oldest-first issue to the functional-unit pools, a shared write buffer that
stores drain through after commit, and per-thread commit with a shared
commit-width budget.

Fetch policies plug in through :class:`repro.policies.base.FetchPolicy`
hooks; flushes squash a thread's youngest instructions, undo the rename map
from per-instruction records, release all held resources, and rewind the
thread's (stateless, regenerable) trace index.

Branch handling is trace-driven: wrong-path instructions are never fetched;
a mispredicted branch instead blocks its thread's fetch until the branch
resolves, and the front-end refill supplies the redirect penalty.

The engine optionally *fast-forwards* over cycles in which provably nothing
can happen (no fetch-eligible thread, empty ready queues, no dispatchable or
committable instruction) by jumping to the next scheduled event; tests
verify cycle-exact equivalence with the naive loop.

Implementation notes (perf): this file is the simulator's hot loop — every
experiment bottoms out in :meth:`SMTCore.step`.  The stage methods hoist
attribute lookups and bound methods into locals, per-op tuples replace the
enum-keyed ISA dicts, config limits are snapshotted onto the core at
construction (``SMTConfig`` is frozen, so they cannot drift), branch-stall
cycles are accounted event-wise instead of by a per-cycle all-threads scan,
and the fast-forward probe asks the policy a boolean ``fetch_pending``
question instead of materializing a sorted fetch order twice per cycle.
The golden-stats matrix (``tests/test_golden_stats.py``) pins this
machinery to the pre-optimization core cycle-for-cycle.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING

from repro.branch import BTB, GShare
from repro.config import SMTConfig
from repro.isa import EXEC_LATENCY_BY_OP, FU_CLASS_BY_OP, FuClass, Op
from repro.memory.hierarchy import MemoryHierarchy, ServiceLevel
from repro.pipeline.dyninstr import DynInstr
from repro.pipeline.stats import CoreStats
from repro.pipeline.thread_state import ThreadState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.policies.base import FetchPolicy
    from repro.workloads.trace import SyntheticTrace


class SimulationDeadlock(RuntimeError):
    """Raised when no future event can ever change pipeline state."""


class SimulationLimitExceeded(RuntimeError):
    """Raised when the cycle budget runs out before the commit target."""


class SMTCore:
    """One simulated SMT processor instance (single run, single workload)."""

    def __init__(self, cfg: SMTConfig, traces: list["SyntheticTrace"],
                 policy: "FetchPolicy",
                 hierarchy: MemoryHierarchy | None = None):
        if len(traces) != cfg.num_threads:
            raise ValueError(
                f"expected {cfg.num_threads} traces, got {len(traces)}")
        self.cfg = cfg
        self.hierarchy = hierarchy or MemoryHierarchy(cfg.memory)
        self.threads = tuple(ThreadState(tid, trace, cfg)
                             for tid, trace in enumerate(traces))
        self.policy = policy
        self.gshare = GShare(cfg.gshare_entries, cfg.num_threads)
        self.btb = BTB(cfg.btb_entries, cfg.btb_assoc)
        self.cycle = 0
        self._gseq = 0
        self._events: list[tuple[int, int, DynInstr]] = []   # completions
        self._detects: list[tuple[int, int, DynInstr]] = []  # LL detections
        self._ready: dict[FuClass, list[tuple[int, DynInstr]]] = {
            FuClass.INT_ALU: [], FuClass.LDST: [], FuClass.FP: []}
        #: The same ready queues, addressable by ``int(op)`` with a single
        #: tuple index (hot path) instead of two enum-keyed dict lookups.
        self._ready_by_op: tuple[list, ...] = tuple(
            self._ready[FU_CLASS_BY_OP[i]] for i in range(len(FU_CLASS_BY_OP)))
        # The three FU-pool ready queues and their slot counts as direct
        # attributes: the issue stage and the fast-forward probe touch
        # them every cycle.
        self._ready_int = self._ready[FuClass.INT_ALU]
        self._ready_ldst = self._ready[FuClass.LDST]
        self._ready_fp = self._ready[FuClass.FP]
        self._num_int_alu = cfg.num_int_alu
        self._num_ldst = cfg.num_ldst
        self._num_fp = cfg.num_fp
        self._wb: list[int] = []                             # drain cycles
        self.rob_used = 0
        self.lsq_used = 0
        self.iq_used = 0
        self.fq_used = 0
        self.int_regs_used = 0
        self.fp_regs_used = 0
        # The front-end queue must hold frontend_depth cycles of in-flight
        # instructions *plus* headroom for new fetch groups, or fetch
        # stalls every other cycle at full throughput.
        self._fe_capacity = (cfg.frontend_depth + 2) * cfg.fetch_width
        self.stats = CoreStats(threads=[ts.stats for ts in self.threads])
        self._line_shift = cfg.memory.line_size.bit_length() - 1
        self._measure_start = 0
        self._track_ll_dep = cfg.predictors.dependence_aware
        # Config limits snapshotted off the frozen dataclass: plain slots
        # on self are one attribute hop instead of two in the stage loops.
        self._rob_size = cfg.rob_size
        self._lsq_size = cfg.lsq_size
        self._int_iq_size = cfg.int_iq_size
        self._fp_iq_size = cfg.fp_iq_size
        self._int_rename_regs = cfg.int_rename_regs
        self._fp_rename_regs = cfg.fp_rename_regs
        self._commit_width = cfg.commit_width
        self._decode_width = cfg.decode_width
        self._fetch_width = cfg.fetch_width
        self._fetch_max_threads = cfg.fetch_max_threads
        self._frontend_depth = cfg.frontend_depth
        self._wb_entries = cfg.write_buffer_entries
        self._fast_forward = cfg.fast_forward
        # Precomputed commit/dispatch rotation orders: _rotations[s] is the
        # thread list starting at thread s, so the per-cycle rotation is a
        # single tuple index instead of n modulo operations.
        n = cfg.num_threads
        self._rotations = tuple(
            tuple(self.threads[(s + i) % n] for i in range(n))
            for s in range(n))
        policy.attach(self)
        # Bound-method hoists for the two policy calls made every cycle.
        # The policy is attached exactly once, at construction.
        self._policy_fetch_order = policy.fetch_order
        self._policy_fetch_pending = policy.fetch_pending

    # ------------------------------------------------------------------ #
    # top-level driving
    # ------------------------------------------------------------------ #

    def run(self, max_commits: int, max_cycles: int | None = None,
            warmup: int = 0) -> CoreStats:
        """Simulate until any thread commits ``max_commits`` instructions.

        This is the paper's multiprogram methodology (Section 5): the run
        stops when the first program reaches its instruction budget.  With
        ``warmup`` > 0, the run first executes until some thread commits
        that many instructions, then resets all measurements (caches,
        predictors and branch state stay warm) before the measured phase.
        """
        if warmup > 0:
            try:
                self._run_until(warmup, max_cycles)
            finally:
                self._settle_branch_stalls()
            self.reset_measurement()
        try:
            self._run_until(max_commits, max_cycles)
        finally:
            self._settle_branch_stalls()
        self.stats.cycles = self.cycle - self._measure_start
        self.stats.ll_intervals = self.hierarchy.ll_intervals
        return self.stats

    def _run_until(self, max_commits: int, max_cycles: int | None) -> None:
        limit = max_cycles if max_cycles is not None else self.cfg.max_cycles
        # ``reset_measurement`` swaps the ThreadStats objects only between
        # _run_until phases, so the commit counters can be hoisted here.
        stats_list = [ts.stats for ts in self.threads]
        step = self.step
        while True:
            step()
            for st in stats_list:
                if st.committed >= max_commits:
                    return
            if self.cycle >= limit:
                raise SimulationLimitExceeded(
                    f"exceeded {limit} cycles without reaching "
                    f"{max_commits} commits")

    def _settle_branch_stalls(self) -> None:
        """Credit the still-open branch-wait intervals up to ``cycle``.

        Branch-stall cycles are accounted at wait *end* (resolve, squash);
        a run that stops mid-wait settles the open tail here so the total
        matches the per-cycle scan it replaced, cycle for cycle.
        """
        cycle = self.cycle
        for ts in self.threads:
            if ts.waiting_branch is not None:
                ts.stats.branch_stall_cycles += cycle - ts.branch_wait_since
                ts.branch_wait_since = cycle

    def reset_measurement(self) -> None:
        """Zero all statistics while keeping microarchitectural state warm.

        Used to discard cold-start transients (cold caches and TLBs, empty
        predictors) from measurements; the pipeline contents, predictor
        tables and cache state are untouched.
        """
        from repro.pipeline.stats import ThreadStats

        for i, ts in enumerate(self.threads):
            fresh = ThreadStats()
            ts.stats = fresh
            self.stats.threads[i] = fresh
            if ts.commit_cycles is not None:
                ts.commit_cycles = []
            if ts.waiting_branch is not None:
                # The open branch wait straddles the measurement boundary;
                # only its measured-phase tail may count.
                ts.branch_wait_since = self.cycle
            # The LLSR's register stays warm but its *sample log* is
            # measurement state: cold-start compulsory misses would
            # otherwise pollute the Figure 4 distance distribution.
            ts.llsr.measured = []
            ts.llsr.suppressed = 0
        self.stats.resource_stall_cycles = 0
        hierarchy = self.hierarchy
        hierarchy.ll_intervals = []
        hierarchy.ll_loads_per_thread = {}
        hierarchy.demand_loads = 0
        hierarchy.merged_loads = 0
        hierarchy.prefetch_covered = 0
        self._measure_start = self.cycle

    def step(self) -> None:
        """Advance one cycle (or fast-forward to the next event)."""
        cycle = self.cycle
        events = self._events
        detects = self._detects
        if (events and events[0][0] <= cycle) or (
                detects and detects[0][0] <= cycle):
            self._process_events(cycle)
        wb = self._wb   # drain the write buffer
        while wb and wb[0] <= cycle:
            heappop(wb)
        self._commit(cycle)
        if self._ready_int or self._ready_ldst or self._ready_fp:
            self._issue(cycle)
        self._dispatch(cycle)
        # fetch (inlined driver; _fetch_thread does the per-thread work)
        order = self._policy_fetch_order(cycle)
        if order:
            budget = self._fetch_width
            remaining_threads = self._fetch_max_threads
            fetch_thread = self._fetch_thread
            for ts, ignore_stall in order:
                if remaining_threads == 0 or budget == 0:
                    break
                remaining_threads -= 1
                budget -= fetch_thread(ts, budget, cycle, ignore_stall)
        for ts in self.threads:
            allowed_end = ts.allowed_end
            if allowed_end is not None and ts.fetch_index > allowed_end:
                ts.stats.policy_stall_cycles += 1
        nxt = cycle + 1
        if self._fast_forward:
            # Fast path of the fast-forward probe: if next cycle can fetch
            # or issue, there is nothing to skip and no need to build the
            # candidate list in _next_cycle.
            if (self._policy_fetch_pending(nxt) or self._ready_int
                    or self._ready_ldst or self._ready_fp):
                self.cycle = nxt
            else:
                self.cycle = self._next_cycle(cycle)
        else:
            self.cycle = nxt

    # ------------------------------------------------------------------ #
    # events (execution completions, long-latency detections)
    # ------------------------------------------------------------------ #

    def _process_events(self, cycle: int) -> None:
        events = self._events
        if events and events[0][0] <= cycle:
            complete = self._complete
            while events and events[0][0] <= cycle:
                _, _, di = heappop(events)
                complete(di, cycle)
        detects = self._detects
        if detects and detects[0][0] <= cycle:
            on_ll_detect = self.policy.on_ll_detect
            threads = self.threads
            while detects and detects[0][0] <= cycle:
                _, _, di = heappop(detects)
                if di.squashed or di.completed:
                    continue
                on_ll_detect(di, threads[di.thread])

    def _complete(self, di: DynInstr, cycle: int) -> None:
        ts = self.threads[di.thread]
        if di.is_load and di.pending == -1:  # counted as outstanding miss
            ts.outstanding_misses -= 1
        if di.squashed:
            return
        di.completed = True
        di.complete_cycle = cycle
        waiters = di.waiters
        if waiters:
            ready_by_op = self._ready_by_op
            for w in waiters:
                w.pending -= 1
                if w.pending == 0 and not w.squashed and w.in_iq and not w.issued:
                    heappush(ready_by_op[w.instr.op], (w.gseq, w))
            di.waiters = None
        if di.is_branch and ts.waiting_branch is di:
            ts.waiting_branch = None
            ts.stats.branch_stall_cycles += cycle - ts.branch_wait_since
            if ts.fetch_blocked_until < cycle + 1:
                ts.fetch_blocked_until = cycle + 1
        if di.is_load:
            self.policy.on_load_complete(di, ts)

    # ------------------------------------------------------------------ #
    # commit
    # ------------------------------------------------------------------ #

    def _commit(self, cycle: int) -> None:
        # The inlined head checks (window non-empty, head completed) repeat
        # _commit_one's first two rejects so the common nothing-committable
        # cycle costs no method call.  RunaheadCore overrides _commit with
        # the plain rotation loop: its _commit_one can make progress on
        # heads these checks would skip (runahead entry, pseudo-retire).
        threads = self.threads
        n = len(threads)
        budget = self._commit_width
        commit_one = self._commit_one
        if n == 1:
            ts = threads[0]
            window = ts.window
            while budget > 0 and window:
                if not window[0].completed or not commit_one(ts, cycle):
                    break
                budget -= 1
            return
        # Rotate by cycle number (not by call count) so fast-forwarded and
        # naive runs stay cycle-exact.
        order = self._rotations[cycle % n]
        while budget > 0:
            progress = False
            for ts in order:
                if budget == 0:
                    break
                window = ts.window
                if not window or not window[0].completed:
                    continue
                if commit_one(ts, cycle):
                    budget -= 1
                    progress = True
            if not progress:
                break

    def _commit_one(self, ts: ThreadState, cycle: int) -> bool:
        window = ts.window
        if not window:
            return False
        di = window[0]
        if not di.completed:
            return False
        instr = di.instr
        if di.is_store:
            wb = self._wb
            if len(wb) >= self._wb_entries:
                return False
            result = self.hierarchy.store(ts.tid, instr.pc, instr.addr, cycle)
            heappush(wb, result.complete_cycle)
        window.popleft()
        ts.rob_count -= 1
        self.rob_used -= 1
        if di.is_load or di.is_store:
            ts.lsq_count -= 1
            self.lsq_used -= 1
        if di.has_dest:
            if di.dest_fp:
                ts.fp_regs -= 1
                self.fp_regs_used -= 1
            else:
                ts.int_regs -= 1
                self.int_regs_used -= 1
        ts.stats.committed += 1
        if ts.commit_cycles is not None:
            ts.commit_cycles.append(cycle - self._measure_start)
        dependent = False
        parents = di.ll_parents
        if parents is not None:
            # Producers committed before us, so their long-latency outcome
            # and inherited dependence are final by now.
            dependent = any(p.is_ll or p.ll_dep for p in parents)
            di.ll_dep = dependent
            di.ll_parents = None
        ts.llsr.commit(di.is_load and di.is_ll, instr.pc,
                       dependent=dependent)
        return True

    # ------------------------------------------------------------------ #
    # issue / execute
    # ------------------------------------------------------------------ #

    def _issue(self, cycle: int) -> None:
        # self._execute is looked up per call (not bound at construction)
        # on purpose: RunaheadCore overrides it, and tests monkeypatch it
        # on instances to spy on the issue stream.
        execute = self._execute
        queue = self._ready_int
        if queue:
            slots = self._num_int_alu
            while queue and slots > 0:
                _, di = heappop(queue)
                if di.squashed or di.issued or di.completed:
                    continue
                execute(di, cycle)
                slots -= 1
        queue = self._ready_ldst
        if queue:
            slots = self._num_ldst
            while queue and slots > 0:
                _, di = heappop(queue)
                if di.squashed or di.issued or di.completed:
                    continue
                execute(di, cycle)
                slots -= 1
        queue = self._ready_fp
        if queue:
            slots = self._num_fp
            while queue and slots > 0:
                _, di = heappop(queue)
                if di.squashed or di.issued or di.completed:
                    continue
                execute(di, cycle)
                slots -= 1

    def _execute(self, di: DynInstr, cycle: int) -> None:
        ts = self.threads[di.thread]
        di.issued = True
        if di.in_iq:
            di.in_iq = False
            if di.iq_is_fp:
                ts.fq_count -= 1
                self.fq_used -= 1
            else:
                ts.iq_count -= 1
                self.iq_used -= 1
            ts.icount -= 1
        instr = di.instr
        op = instr.op
        if di.is_load:
            result = self.hierarchy.load(
                ts.tid, instr.pc, instr.addr, cycle + EXEC_LATENCY_BY_OP[op])
            completion = result.complete_cycle
            is_ll = result.long_latency
            di.is_ll = is_ll
            di.level = result.level
            stats = ts.stats
            stats.loads_executed += 1
            ts.lll_pred.train(instr.pc, is_ll)
            predicted = di.predicted_ll
            if predicted is not None:
                stats.lll_pred_loads += 1
                if predicted == is_ll:
                    stats.lll_pred_correct += 1
                if is_ll:
                    stats.lll_pred_miss_actual += 1
                    if predicted:
                        stats.lll_pred_miss_correct += 1
            if is_ll:
                stats.ll_loads += 1
            if result.trigger:
                heappush(self._detects,
                         (result.detect_cycle, di.gseq, di))
            di.fill_line = result.fill_line
            if result.level is not ServiceLevel.L1:
                ts.outstanding_misses += 1
                di.pending = -1  # marks "counted as outstanding miss"
        else:
            completion = cycle + EXEC_LATENCY_BY_OP[op]
        heappush(self._events, (completion, di.gseq, di))

    # ------------------------------------------------------------------ #
    # dispatch (rename + resource allocation)
    # ------------------------------------------------------------------ #

    def _dispatch(self, cycle: int) -> None:
        # The resource gates and the rename/allocate sequence are the body
        # of _try_dispatch, inlined: dispatch attempts run every cycle and
        # mostly *reject* (a full shared structure blocks the head for
        # hundreds of cycles during a memory stall), so the method call
        # per attempt was pure overhead.  _try_dispatch remains the
        # overridable/self-contained form; RunaheadCore overrides
        # _dispatch with the plain per-attempt loop because its
        # _try_dispatch must observe every attempt to propagate INV.
        budget = self._decode_width
        any_ready = False
        blocked_by_resource = False
        dispatched = 0
        n = len(self.threads)
        # The gates below read self._* limits lazily (at most one read per
        # rejected attempt) rather than hoisting them all up front: most
        # cycles either dispatch nothing or reject on the first gate, so
        # an eager 10-local prologue would dominate the stage's cost.
        for ts in self._rotations[(cycle + 1) % n]:  # offset from commit
            if budget == 0:
                break
            fe = ts.fe_queue
            while budget > 0 and fe:
                di = fe[0]
                if di.fe_ready > cycle:
                    break
                any_ready = True
                # Shared-resource gates (block => resource stall).
                if self.rob_used >= self._rob_size:
                    blocked_by_resource = True
                    break
                instr = di.instr
                is_mem = di.is_load or di.is_store
                if is_mem and self.lsq_used >= self._lsq_size:
                    blocked_by_resource = True
                    break
                op = instr.op
                fp_queue = op is Op.FALU or op is Op.FMUL
                if fp_queue:
                    if self.fq_used >= self._fp_iq_size:
                        blocked_by_resource = True
                        break
                elif self.iq_used >= self._int_iq_size:
                    blocked_by_resource = True
                    break
                if di.has_dest:
                    if di.dest_fp:
                        if self.fp_regs_used >= self._fp_rename_regs:
                            blocked_by_resource = True
                            break
                    elif self.int_regs_used >= self._int_rename_regs:
                        blocked_by_resource = True
                        break
                if not self.policy.can_dispatch(ts, di):
                    break  # policy cap, not a resource stall
                # All checks passed: allocate and rename.
                self.rob_used += 1
                ts.rob_count += 1
                if is_mem:
                    self.lsq_used += 1
                    ts.lsq_count += 1
                if fp_queue:
                    self.fq_used += 1
                    ts.fq_count += 1
                else:
                    self.iq_used += 1
                    ts.iq_count += 1
                di.in_iq = True
                di.iq_is_fp = fp_queue
                rename_map = ts.rename_map
                rename_get = rename_map.get
                track_dep = self._track_ll_dep
                parents: list[DynInstr] | None = [] if track_dep else None
                # Runahead INV instructions carry bogus values: they
                # neither wait for producers nor execute for real.
                wait = not di.inv
                for src in instr.srcs:
                    prod = rename_get(src)
                    if prod is None:
                        continue
                    if track_dep and (prod.is_load
                                      or prod.ll_parents is not None
                                      or prod.ll_dep):
                        parents.append(prod)
                    if wait and not prod.completed:
                        di.pending += 1
                        if prod.waiters is None:
                            prod.waiters = [di]
                        else:
                            prod.waiters.append(di)
                if parents:
                    di.ll_parents = tuple(parents)
                if di.has_dest:
                    dest = instr.dest
                    di.old_map = rename_get(dest)
                    rename_map[dest] = di
                    if di.dest_fp:
                        self.fp_regs_used += 1
                        ts.fp_regs += 1
                    else:
                        self.int_regs_used += 1
                        ts.int_regs += 1
                ts.window.append(di)
                if di.pending == 0:
                    heappush(self._ready_by_op[op], (di.gseq, di))
                fe.popleft()
                budget -= 1
                dispatched += 1
        if any_ready and dispatched == 0 and blocked_by_resource:
            self.stats.resource_stall_cycles += 1
            self.policy.on_resource_stall(cycle)

    def _try_dispatch(self, ts: ThreadState, di: DynInstr) -> bool | None:
        """Dispatch ``di``; returns None on success, else whether the block
        was caused by a full shared resource (vs. a policy cap)."""
        if self.rob_used >= self._rob_size:
            return True
        instr = di.instr
        is_mem = di.is_load or di.is_store
        if is_mem and self.lsq_used >= self._lsq_size:
            return True
        op = instr.op
        fp_queue = op is Op.FALU or op is Op.FMUL
        if fp_queue:
            if self.fq_used >= self._fp_iq_size:
                return True
        elif self.iq_used >= self._int_iq_size:
            return True
        if di.has_dest:
            if di.dest_fp:
                if self.fp_regs_used >= self._fp_rename_regs:
                    return True
            elif self.int_regs_used >= self._int_rename_regs:
                return True
        if not self.policy.can_dispatch(ts, di):
            return False
        # All checks passed: allocate and rename.
        self.rob_used += 1
        ts.rob_count += 1
        if is_mem:
            self.lsq_used += 1
            ts.lsq_count += 1
        if fp_queue:
            self.fq_used += 1
            ts.fq_count += 1
        else:
            self.iq_used += 1
            ts.iq_count += 1
        di.in_iq = True
        di.iq_is_fp = fp_queue
        rename_map = ts.rename_map
        rename_get = rename_map.get
        track_dep = self._track_ll_dep
        parents: list[DynInstr] | None = [] if track_dep else None
        # Runahead INV instructions carry bogus values: they neither wait
        # for producers nor execute for real (see repro.runahead.core).
        wait = not di.inv
        for src in instr.srcs:
            prod = rename_get(src)
            if prod is None:
                continue
            if track_dep and (prod.is_load or prod.ll_parents is not None
                              or prod.ll_dep):
                parents.append(prod)
            if wait and not prod.completed:
                di.pending += 1
                if prod.waiters is None:
                    prod.waiters = [di]
                else:
                    prod.waiters.append(di)
        if parents:
            di.ll_parents = tuple(parents)
        if di.has_dest:
            dest = instr.dest
            di.old_map = rename_get(dest)
            rename_map[dest] = di
            if di.dest_fp:
                self.fp_regs_used += 1
                ts.fp_regs += 1
            else:
                self.int_regs_used += 1
                ts.int_regs += 1
        ts.window.append(di)
        if di.pending == 0:
            heappush(self._ready_by_op[op], (di.gseq, di))
        return None

    # ------------------------------------------------------------------ #
    # fetch
    # ------------------------------------------------------------------ #

    def fetchable(self, ts: ThreadState, cycle: int) -> bool:
        """Base (policy-independent) fetch eligibility for ``ts``."""
        return (ts.fetch_blocked_until <= cycle
                and ts.waiting_branch is None
                and len(ts.fe_queue) < self._fe_capacity)

    def in_runahead(self, ts: ThreadState) -> bool:
        """Whether ``ts`` is speculating past a blocked long-latency load.

        Always False on the base core; :class:`repro.runahead.RunaheadCore`
        overrides this.  Policies consult it to suppress fetch-window
        bookkeeping during runahead episodes.
        """
        return False

    def _fetch_thread(self, ts: ThreadState, budget: int, cycle: int,
                      ignore_stall: bool) -> int:
        trace = ts.trace
        trace_get = trace.get
        pc_address = trace.pc_address
        on_fetch = self.policy.on_fetch
        fe_queue = ts.fe_queue
        fe_append = fe_queue.append
        line_shift = self._line_shift
        fe_ready = cycle + self._frontend_depth
        tid = ts.tid
        gseq = self._gseq
        allowed_end = ts.allowed_end
        count = 0
        limit = self._fe_capacity - len(fe_queue)
        if budget < limit:
            limit = budget
        while count < limit:
            fetch_index = ts.fetch_index
            if not ignore_stall and allowed_end is not None \
                    and fetch_index > allowed_end:
                break
            instr = trace_get(fetch_index)
            pc_addr = pc_address(instr.pc)
            line = pc_addr >> line_shift
            if line != ts.last_ifetch_line:
                done = self.hierarchy.ifetch(tid, pc_addr, cycle)
                ts.last_ifetch_line = line
                if done > cycle:
                    ts.fetch_blocked_until = done
                    break
            gseq += 1
            di = DynInstr(instr, tid, fetch_index, gseq, fe_ready)
            fe_append(di)
            ts.fetch_index = fetch_index + 1
            ts.icount += 1
            ts.stats.fetched += 1
            count += 1
            if di.is_load:
                di.predicted_ll = ts.lll_pred.predict(instr.pc)
            if di.is_branch:
                taken = instr.taken
                prediction = self.gshare.update(instr.pc, taken, tid)
                target_known = True
                if taken:
                    target_known = self.btb.lookup(instr.pc)
                    self.btb.insert(instr.pc)
                if prediction != taken or not target_known:
                    di.mispredicted = True
                    ts.waiting_branch = di
                    ts.branch_wait_since = cycle
                    on_fetch(di, ts)
                    break
                on_fetch(di, ts)
                if taken:
                    # A correctly-predicted taken branch ends the block.
                    break
            else:
                on_fetch(di, ts)
            allowed_end = ts.allowed_end  # policy may have updated it
        self._gseq = gseq
        return count

    # ------------------------------------------------------------------ #
    # flush (policy-triggered squash)
    # ------------------------------------------------------------------ #

    def flush_thread(self, ts: ThreadState, after_seq: int,
                     cancel_fills: bool | None = None) -> int:
        """Squash all of ``ts``'s instructions younger than ``after_seq``.

        Rewinds fetch to ``after_seq + 1``; returns the number of squashed
        instructions.  ``cancel_fills`` overrides the configured squash
        semantics: ``False`` lets in-flight cache fills of squashed loads
        continue (runahead exit — the fills *are* the prefetches), ``None``
        defers to ``cfg.memory.cancel_squashed_fills``.
        """
        squashed = 0
        fe = ts.fe_queue
        icount_delta = 0
        while fe and fe[-1].seq > after_seq:
            di = fe.pop()
            di.squashed = True
            icount_delta += 1
            squashed += 1
        if cancel_fills is None:
            cancel_fills = self.cfg.memory.cancel_squashed_fills
        window = ts.window
        rename_map = ts.rename_map
        ll_owners = ts.ll_owners
        cycle = self.cycle
        # Per-resource releases are tallied locally and applied once after
        # the loop; a deep flush (up to a ROB slice) would otherwise do
        # six read-modify-writes per squashed instruction.  Nothing inside
        # the loop observes the shared counters (clear_owner touches only
        # the policy-stall bookkeeping, cancel_fill only the hierarchy).
        rob_delta = lsq_delta = iq_delta = fq_delta = 0
        int_regs_delta = fp_regs_delta = 0
        while window and window[-1].seq > after_seq:
            di = window.pop()
            di.squashed = True
            squashed += 1
            if cancel_fills and di.fill_line is not None and not di.completed:
                self.hierarchy.cancel_fill(di.fill_line, di.instr.addr,
                                           cycle)
            rob_delta += 1
            if di.is_load or di.is_store:
                lsq_delta += 1
            if di.in_iq:
                di.in_iq = False
                icount_delta += 1
                if di.iq_is_fp:
                    fq_delta += 1
                else:
                    iq_delta += 1
            if di.has_dest:
                rename_map[di.instr.dest] = di.old_map
                if di.dest_fp:
                    fp_regs_delta += 1
                else:
                    int_regs_delta += 1
            if di in ll_owners:
                ts.clear_owner(di, cycle)
        if rob_delta:
            ts.rob_count -= rob_delta
            self.rob_used -= rob_delta
        if lsq_delta:
            ts.lsq_count -= lsq_delta
            self.lsq_used -= lsq_delta
        if iq_delta:
            ts.iq_count -= iq_delta
            self.iq_used -= iq_delta
        if fq_delta:
            ts.fq_count -= fq_delta
            self.fq_used -= fq_delta
        if int_regs_delta:
            ts.int_regs -= int_regs_delta
            self.int_regs_used -= int_regs_delta
        if fp_regs_delta:
            ts.fp_regs -= fp_regs_delta
            self.fp_regs_used -= fp_regs_delta
        if icount_delta:
            ts.icount -= icount_delta
        if ts.waiting_branch is not None and ts.waiting_branch.squashed:
            ts.waiting_branch = None
            ts.stats.branch_stall_cycles += self.cycle - ts.branch_wait_since
        ts.fetch_index = after_seq + 1
        ts.last_ifetch_line = -1
        ts.stats.squashed += squashed
        ts.stats.flushes += 1
        return squashed

    # ------------------------------------------------------------------ #
    # fast-forward
    # ------------------------------------------------------------------ #

    def _head_retirable(self, ts: ThreadState, wb_full: bool) -> bool:
        """Can ``ts``'s ROB head make commit-stage progress next cycle?

        Part of the fast-forward probe; :class:`repro.runahead.RunaheadCore`
        overrides it because pseudo-retirement and runahead entry can make
        progress on heads the base commit stage would stall on.
        """
        window = ts.window
        if not window or not window[0].completed:
            return False
        return not window[0].is_store or not wb_full

    def _next_cycle(self, cycle: int) -> int:
        # step() has already established that nothing can fetch or issue
        # at ``nxt``; find the earliest future cycle where anything can
        # happen, or prove the pipeline is wedged.
        nxt = cycle + 1
        candidates = []
        wb = self._wb
        wb_full = len(wb) >= self._wb_entries
        head_retirable = self._head_retirable
        for ts in self.threads:
            if head_retirable(ts, wb_full):
                return nxt
            fe = ts.fe_queue
            if fe:
                head_ready = fe[0].fe_ready
                if head_ready <= nxt:
                    return nxt
                candidates.append(head_ready)
            if ts.fetch_blocked_until > nxt:
                candidates.append(ts.fetch_blocked_until)
        if self._events:
            candidates.append(self._events[0][0])
        if self._detects:
            candidates.append(self._detects[0][0])
        if wb:
            candidates.append(wb[0])
        if not candidates:
            raise SimulationDeadlock(
                f"no future events at cycle {cycle}; pipeline is wedged")
        target = min(candidates)
        if target <= nxt:
            return nxt
        skipped = target - nxt
        for ts in self.threads:
            allowed_end = ts.allowed_end
            if allowed_end is not None and ts.fetch_index > allowed_end:
                ts.stats.policy_stall_cycles += skipped
        return target
