"""The cycle-level SMT out-of-order core.

Models the Table IV machine: ICOUNT-style fetch of up to ``fetch_width``
instructions from up to ``fetch_max_threads`` threads per cycle, a front-end
pipeline of ``frontend_depth`` cycles, register renaming against shared
int/fp rename-register pools, shared ROB/LSQ and per-class issue queues,
oldest-first issue to the functional-unit pools, a shared write buffer that
stores drain through after commit, and per-thread commit with a shared
commit-width budget.

Fetch policies plug in through :class:`repro.policies.base.FetchPolicy`
hooks; flushes squash a thread's youngest instructions, undo the rename map
from per-instruction records, release all held resources, and rewind the
thread's (stateless, regenerable) trace index.

Branch handling is trace-driven: wrong-path instructions are never fetched;
a mispredicted branch instead blocks its thread's fetch until the branch
resolves, and the front-end refill supplies the redirect penalty.

The engine optionally *fast-forwards* over cycles in which provably nothing
can happen (no fetch-eligible thread, empty ready queues, no dispatchable or
committable instruction) by jumping to the next scheduled event; tests
verify cycle-exact equivalence with the naive loop.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.branch import BTB, GShare
from repro.config import SMTConfig
from repro.isa import EXEC_LATENCY, FU_CLASS, FuClass, Op
from repro.memory.hierarchy import MemoryHierarchy, ServiceLevel
from repro.pipeline.dyninstr import DynInstr
from repro.pipeline.stats import CoreStats
from repro.pipeline.thread_state import ThreadState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.policies.base import FetchPolicy
    from repro.workloads.trace import SyntheticTrace


class SimulationDeadlock(RuntimeError):
    """Raised when no future event can ever change pipeline state."""


class SimulationLimitExceeded(RuntimeError):
    """Raised when the cycle budget runs out before the commit target."""


class SMTCore:
    """One simulated SMT processor instance (single run, single workload)."""

    def __init__(self, cfg: SMTConfig, traces: list["SyntheticTrace"],
                 policy: "FetchPolicy",
                 hierarchy: MemoryHierarchy | None = None):
        if len(traces) != cfg.num_threads:
            raise ValueError(
                f"expected {cfg.num_threads} traces, got {len(traces)}")
        self.cfg = cfg
        self.hierarchy = hierarchy or MemoryHierarchy(cfg.memory)
        self.threads = [ThreadState(tid, trace, cfg)
                        for tid, trace in enumerate(traces)]
        self.policy = policy
        self.gshare = GShare(cfg.gshare_entries, cfg.num_threads)
        self.btb = BTB(cfg.btb_entries, cfg.btb_assoc)
        self.cycle = 0
        self._gseq = 0
        self._events: list[tuple[int, int, DynInstr]] = []   # completions
        self._detects: list[tuple[int, int, DynInstr]] = []  # LL detections
        self._ready: dict[FuClass, list[tuple[int, DynInstr]]] = {
            FuClass.INT_ALU: [], FuClass.LDST: [], FuClass.FP: []}
        self._wb: list[int] = []                             # drain cycles
        self.rob_used = 0
        self.lsq_used = 0
        self.iq_used = 0
        self.fq_used = 0
        self.int_regs_used = 0
        self.fp_regs_used = 0
        # The front-end queue must hold frontend_depth cycles of in-flight
        # instructions *plus* headroom for new fetch groups, or fetch
        # stalls every other cycle at full throughput.
        self._fe_capacity = (cfg.frontend_depth + 2) * cfg.fetch_width
        self.stats = CoreStats(threads=[ts.stats for ts in self.threads])
        self._line_shift = cfg.memory.line_size.bit_length() - 1
        self._measure_start = 0
        self._track_ll_dep = cfg.predictors.dependence_aware
        policy.attach(self)

    # ------------------------------------------------------------------ #
    # top-level driving
    # ------------------------------------------------------------------ #

    def run(self, max_commits: int, max_cycles: int | None = None,
            warmup: int = 0) -> CoreStats:
        """Simulate until any thread commits ``max_commits`` instructions.

        This is the paper's multiprogram methodology (Section 5): the run
        stops when the first program reaches its instruction budget.  With
        ``warmup`` > 0, the run first executes until some thread commits
        that many instructions, then resets all measurements (caches,
        predictors and branch state stay warm) before the measured phase.
        """
        if warmup > 0:
            self._run_until(warmup, max_cycles)
            self.reset_measurement()
        self._run_until(max_commits, max_cycles)
        self.stats.cycles = self.cycle - self._measure_start
        self.stats.ll_intervals = self.hierarchy.ll_intervals
        return self.stats

    def _run_until(self, max_commits: int, max_cycles: int | None) -> None:
        limit = max_cycles if max_cycles is not None else self.cfg.max_cycles
        threads = self.threads
        while True:
            self.step()
            if any(ts.stats.committed >= max_commits for ts in threads):
                return
            if self.cycle >= limit:
                raise SimulationLimitExceeded(
                    f"exceeded {limit} cycles without reaching "
                    f"{max_commits} commits")

    def reset_measurement(self) -> None:
        """Zero all statistics while keeping microarchitectural state warm.

        Used to discard cold-start transients (cold caches and TLBs, empty
        predictors) from measurements; the pipeline contents, predictor
        tables and cache state are untouched.
        """
        from repro.pipeline.stats import ThreadStats

        for i, ts in enumerate(self.threads):
            fresh = ThreadStats()
            ts.stats = fresh
            self.stats.threads[i] = fresh
            if ts.commit_cycles is not None:
                ts.commit_cycles = []
            # The LLSR's register stays warm but its *sample log* is
            # measurement state: cold-start compulsory misses would
            # otherwise pollute the Figure 4 distance distribution.
            ts.llsr.measured = []
            ts.llsr.suppressed = 0
        self.stats.resource_stall_cycles = 0
        hierarchy = self.hierarchy
        hierarchy.ll_intervals = []
        hierarchy.ll_loads_per_thread = {}
        hierarchy.demand_loads = 0
        hierarchy.merged_loads = 0
        hierarchy.prefetch_covered = 0
        self._measure_start = self.cycle

    def step(self) -> None:
        """Advance one cycle (or fast-forward to the next event)."""
        cycle = self.cycle
        self._process_events(cycle)
        self._drain_write_buffer(cycle)
        self._commit(cycle)
        self._issue(cycle)
        self._dispatch(cycle)
        self._fetch(cycle)
        for ts in self.threads:
            if ts.policy_stalled:
                ts.stats.policy_stall_cycles += 1
            if ts.waiting_branch is not None:
                ts.stats.branch_stall_cycles += 1
        if self.cfg.fast_forward:
            self.cycle = self._next_cycle(cycle)
        else:
            self.cycle = cycle + 1

    # ------------------------------------------------------------------ #
    # events (execution completions, long-latency detections)
    # ------------------------------------------------------------------ #

    def _process_events(self, cycle: int) -> None:
        events = self._events
        while events and events[0][0] <= cycle:
            _, _, di = heapq.heappop(events)
            self._complete(di, cycle)
        detects = self._detects
        while detects and detects[0][0] <= cycle:
            _, _, di = heapq.heappop(detects)
            if di.squashed or di.completed:
                continue
            self.policy.on_ll_detect(di, self.threads[di.thread])

    def _complete(self, di: DynInstr, cycle: int) -> None:
        ts = self.threads[di.thread]
        if di.is_load and di.pending == -1:  # counted as outstanding miss
            ts.outstanding_misses -= 1
        if di.squashed:
            return
        di.completed = True
        di.complete_cycle = cycle
        waiters = di.waiters
        if waiters:
            ready = self._ready
            for w in waiters:
                w.pending -= 1
                if w.pending == 0 and not w.squashed and w.in_iq and not w.issued:
                    heapq.heappush(
                        ready[FU_CLASS[w.instr.op]], (w.gseq, w))
            di.waiters = None
        if di.is_branch and ts.waiting_branch is di:
            ts.waiting_branch = None
            if ts.fetch_blocked_until < cycle + 1:
                ts.fetch_blocked_until = cycle + 1
        if di.is_load:
            self.policy.on_load_complete(di, ts)

    # ------------------------------------------------------------------ #
    # commit
    # ------------------------------------------------------------------ #

    def _drain_write_buffer(self, cycle: int) -> None:
        wb = self._wb
        while wb and wb[0] <= cycle:
            heapq.heappop(wb)

    def _commit(self, cycle: int) -> None:
        threads = self.threads
        n = len(threads)
        budget = self.cfg.commit_width
        # Rotate by cycle number (not by call count) so fast-forwarded and
        # naive runs stay cycle-exact.
        start = cycle % n
        while budget > 0:
            progress = False
            for i in range(n):
                if budget == 0:
                    break
                if self._commit_one(threads[(start + i) % n], cycle):
                    budget -= 1
                    progress = True
            if not progress:
                break

    def _commit_one(self, ts: ThreadState, cycle: int) -> bool:
        window = ts.window
        if not window:
            return False
        di = window[0]
        if not di.completed:
            return False
        instr = di.instr
        if di.is_store:
            if len(self._wb) >= self.cfg.write_buffer_entries:
                return False
            result = self.hierarchy.store(ts.tid, instr.pc, instr.addr, cycle)
            heapq.heappush(self._wb, result.complete_cycle)
        window.popleft()
        ts.rob_count -= 1
        self.rob_used -= 1
        if di.is_load or di.is_store:
            ts.lsq_count -= 1
            self.lsq_used -= 1
        if di.has_dest:
            if di.dest_fp:
                ts.fp_regs -= 1
                self.fp_regs_used -= 1
            else:
                ts.int_regs -= 1
                self.int_regs_used -= 1
        ts.stats.committed += 1
        if ts.commit_cycles is not None:
            ts.commit_cycles.append(cycle - self._measure_start)
        dependent = False
        parents = di.ll_parents
        if parents is not None:
            # Producers committed before us, so their long-latency outcome
            # and inherited dependence are final by now.
            dependent = any(p.is_ll or p.ll_dep for p in parents)
            di.ll_dep = dependent
            di.ll_parents = None
        ts.llsr.commit(di.is_load and di.is_ll, instr.pc,
                       dependent=dependent)
        return True

    # ------------------------------------------------------------------ #
    # issue / execute
    # ------------------------------------------------------------------ #

    _FU_COUNTS = ((FuClass.INT_ALU, "num_int_alu"),
                  (FuClass.LDST, "num_ldst"),
                  (FuClass.FP, "num_fp"))

    def _issue(self, cycle: int) -> None:
        cfg = self.cfg
        ready = self._ready
        for fu, attr in self._FU_COUNTS:
            queue = ready[fu]
            slots = getattr(cfg, attr)
            while queue and slots > 0:
                _, di = heapq.heappop(queue)
                if di.squashed or di.issued or di.completed:
                    continue
                self._execute(di, cycle)
                slots -= 1

    def _execute(self, di: DynInstr, cycle: int) -> None:
        ts = self.threads[di.thread]
        di.issued = True
        if di.in_iq:
            di.in_iq = False
            if di.iq_is_fp:
                ts.fq_count -= 1
                self.fq_used -= 1
            else:
                ts.iq_count -= 1
                self.iq_used -= 1
            ts.icount -= 1
        instr = di.instr
        op = instr.op
        if op is Op.LOAD:
            result = self.hierarchy.load(
                ts.tid, instr.pc, instr.addr, cycle + EXEC_LATENCY[op])
            completion = result.complete_cycle
            is_ll = result.long_latency
            di.is_ll = is_ll
            di.level = result.level
            stats = ts.stats
            stats.loads_executed += 1
            ts.lll_pred.train(instr.pc, is_ll)
            predicted = di.predicted_ll
            if predicted is not None:
                stats.lll_pred_loads += 1
                if predicted == is_ll:
                    stats.lll_pred_correct += 1
                if is_ll:
                    stats.lll_pred_miss_actual += 1
                    if predicted:
                        stats.lll_pred_miss_correct += 1
            if is_ll:
                stats.ll_loads += 1
            if result.trigger:
                heapq.heappush(self._detects,
                               (result.detect_cycle, di.gseq, di))
            di.fill_line = result.fill_line
            if result.level is not ServiceLevel.L1:
                ts.outstanding_misses += 1
                di.pending = -1  # marks "counted as outstanding miss"
        else:
            completion = cycle + EXEC_LATENCY[op]
        heapq.heappush(self._events, (completion, di.gseq, di))

    # ------------------------------------------------------------------ #
    # dispatch (rename + resource allocation)
    # ------------------------------------------------------------------ #

    def _dispatch(self, cycle: int) -> None:
        cfg = self.cfg
        budget = cfg.decode_width
        any_ready = False
        blocked_by_resource = False
        dispatched = 0
        threads = self.threads
        n = len(threads)
        start = (cycle + 1) % n  # offset from commit's rotation
        for i in range(n):
            ts = threads[(start + i) % n]
            if budget == 0:
                break
            fe = ts.fe_queue
            while budget > 0 and fe:
                di = fe[0]
                if di.fe_ready > cycle:
                    break
                any_ready = True
                outcome = self._try_dispatch(ts, di)
                if outcome is None:
                    fe.popleft()
                    budget -= 1
                    dispatched += 1
                    continue
                if outcome:
                    blocked_by_resource = True
                break
        if any_ready and dispatched == 0 and blocked_by_resource:
            self.stats.resource_stall_cycles += 1
            self.policy.on_resource_stall(cycle)

    def _try_dispatch(self, ts: ThreadState, di: DynInstr) -> bool | None:
        """Dispatch ``di``; returns None on success, else whether the block
        was caused by a full shared resource (vs. a policy cap)."""
        cfg = self.cfg
        if self.rob_used >= cfg.rob_size:
            return True
        instr = di.instr
        is_mem = di.is_load or di.is_store
        if is_mem and self.lsq_used >= cfg.lsq_size:
            return True
        fp_queue = instr.op is Op.FALU or instr.op is Op.FMUL
        if fp_queue:
            if self.fq_used >= cfg.fp_iq_size:
                return True
        elif self.iq_used >= cfg.int_iq_size:
            return True
        if di.has_dest:
            if di.dest_fp:
                if self.fp_regs_used >= cfg.fp_rename_regs:
                    return True
            elif self.int_regs_used >= cfg.int_rename_regs:
                return True
        if not self.policy.can_dispatch(ts, di):
            return False
        # All checks passed: allocate and rename.
        self.rob_used += 1
        ts.rob_count += 1
        if is_mem:
            self.lsq_used += 1
            ts.lsq_count += 1
        if fp_queue:
            self.fq_used += 1
            ts.fq_count += 1
        else:
            self.iq_used += 1
            ts.iq_count += 1
        di.in_iq = True
        di.iq_is_fp = fp_queue
        rename_map = ts.rename_map
        track_dep = self._track_ll_dep
        parents: list[DynInstr] | None = [] if track_dep else None
        # Runahead INV instructions carry bogus values: they neither wait
        # for producers nor execute for real (see repro.runahead.core).
        wait = not di.inv
        for src in instr.srcs:
            prod = rename_map.get(src)
            if prod is None:
                continue
            if track_dep and (prod.is_load or prod.ll_parents is not None
                              or prod.ll_dep):
                parents.append(prod)
            if wait and not prod.completed:
                di.pending += 1
                if prod.waiters is None:
                    prod.waiters = [di]
                else:
                    prod.waiters.append(di)
        if parents:
            di.ll_parents = tuple(parents)
        if di.has_dest:
            dest = instr.dest
            di.old_map = rename_map.get(dest)
            rename_map[dest] = di
            if di.dest_fp:
                self.fp_regs_used += 1
                ts.fp_regs += 1
            else:
                self.int_regs_used += 1
                ts.int_regs += 1
        ts.window.append(di)
        if di.pending == 0:
            heapq.heappush(self._ready[FU_CLASS[instr.op]], (di.gseq, di))
        return None

    # ------------------------------------------------------------------ #
    # fetch
    # ------------------------------------------------------------------ #

    def fetchable(self, ts: ThreadState, cycle: int) -> bool:
        """Base (policy-independent) fetch eligibility for ``ts``."""
        return (ts.fetch_blocked_until <= cycle
                and ts.waiting_branch is None
                and len(ts.fe_queue) < self._fe_capacity)

    def in_runahead(self, ts: ThreadState) -> bool:
        """Whether ``ts`` is speculating past a blocked long-latency load.

        Always False on the base core; :class:`repro.runahead.RunaheadCore`
        overrides this.  Policies consult it to suppress fetch-window
        bookkeeping during runahead episodes.
        """
        return False

    def _fetch(self, cycle: int) -> None:
        order = self.policy.fetch_order(cycle)
        if not order:
            return
        cfg = self.cfg
        budget = cfg.fetch_width
        for ts, ignore_stall in order[:cfg.fetch_max_threads]:
            if budget == 0:
                break
            budget -= self._fetch_thread(ts, budget, cycle, ignore_stall)

    def _fetch_thread(self, ts: ThreadState, budget: int, cycle: int,
                      ignore_stall: bool) -> int:
        cfg = self.cfg
        trace = ts.trace
        allowed_end = ts.allowed_end
        count = 0
        fe_room = self._fe_capacity - len(ts.fe_queue)
        while count < budget and fe_room > 0:
            if not ignore_stall and allowed_end is not None \
                    and ts.fetch_index > allowed_end:
                break
            instr = trace.get(ts.fetch_index)
            pc_addr = trace.pc_address(instr.pc)
            line = pc_addr >> self._line_shift
            if line != ts.last_ifetch_line:
                done = self.hierarchy.ifetch(ts.tid, pc_addr, cycle)
                ts.last_ifetch_line = line
                if done > cycle:
                    ts.fetch_blocked_until = done
                    break
            self._gseq += 1
            di = DynInstr(instr, ts.tid, ts.fetch_index, self._gseq,
                          cycle + cfg.frontend_depth)
            ts.fe_queue.append(di)
            ts.fetch_index += 1
            ts.icount += 1
            ts.stats.fetched += 1
            count += 1
            fe_room -= 1
            if di.is_load:
                di.predicted_ll = ts.lll_pred.predict(instr.pc)
            if di.is_branch:
                taken = instr.taken
                prediction = self.gshare.update(instr.pc, taken, ts.tid)
                target_known = True
                if taken:
                    target_known = self.btb.lookup(instr.pc)
                    self.btb.insert(instr.pc)
                if prediction != taken or not target_known:
                    di.mispredicted = True
                    ts.waiting_branch = di
                    self.policy.on_fetch(di, ts)
                    break
            self.policy.on_fetch(di, ts)
            if taken_branch_ends_block(di):
                break
            allowed_end = ts.allowed_end  # policy may have updated it
        return count

    # ------------------------------------------------------------------ #
    # flush (policy-triggered squash)
    # ------------------------------------------------------------------ #

    def flush_thread(self, ts: ThreadState, after_seq: int,
                     cancel_fills: bool | None = None) -> int:
        """Squash all of ``ts``'s instructions younger than ``after_seq``.

        Rewinds fetch to ``after_seq + 1``; returns the number of squashed
        instructions.  ``cancel_fills`` overrides the configured squash
        semantics: ``False`` lets in-flight cache fills of squashed loads
        continue (runahead exit — the fills *are* the prefetches), ``None``
        defers to ``cfg.memory.cancel_squashed_fills``.
        """
        squashed = 0
        fe = ts.fe_queue
        while fe and fe[-1].seq > after_seq:
            di = fe.pop()
            di.squashed = True
            ts.icount -= 1
            squashed += 1
        if cancel_fills is None:
            cancel_fills = self.cfg.memory.cancel_squashed_fills
        window = ts.window
        while window and window[-1].seq > after_seq:
            di = window.pop()
            di.squashed = True
            squashed += 1
            if cancel_fills and di.fill_line is not None and not di.completed:
                self.hierarchy.cancel_fill(di.fill_line, di.instr.addr,
                                           self.cycle)
            ts.rob_count -= 1
            self.rob_used -= 1
            if di.is_load or di.is_store:
                ts.lsq_count -= 1
                self.lsq_used -= 1
            if di.in_iq:
                di.in_iq = False
                ts.icount -= 1
                if di.iq_is_fp:
                    ts.fq_count -= 1
                    self.fq_used -= 1
                else:
                    ts.iq_count -= 1
                    self.iq_used -= 1
            if di.has_dest:
                ts.rename_map[di.instr.dest] = di.old_map
                if di.dest_fp:
                    ts.fp_regs -= 1
                    self.fp_regs_used -= 1
                else:
                    ts.int_regs -= 1
                    self.int_regs_used -= 1
            if di in ts.ll_owners:
                ts.clear_owner(di, self.cycle)
        if ts.waiting_branch is not None and ts.waiting_branch.squashed:
            ts.waiting_branch = None
        ts.fetch_index = after_seq + 1
        ts.last_ifetch_line = -1
        ts.stats.squashed += squashed
        ts.stats.flushes += 1
        return squashed

    # ------------------------------------------------------------------ #
    # fast-forward
    # ------------------------------------------------------------------ #

    def _head_retirable(self, ts: ThreadState, wb_full: bool) -> bool:
        """Can ``ts``'s ROB head make commit-stage progress next cycle?

        Part of the fast-forward probe; :class:`repro.runahead.RunaheadCore`
        overrides it because pseudo-retirement and runahead entry can make
        progress on heads the base commit stage would stall on.
        """
        window = ts.window
        if not window or not window[0].completed:
            return False
        return not window[0].is_store or not wb_full

    def _next_cycle(self, cycle: int) -> int:
        nxt = cycle + 1
        if self.policy.fetch_order(nxt):
            return nxt
        ready = self._ready
        if ready[FuClass.INT_ALU] or ready[FuClass.LDST] or ready[FuClass.FP]:
            return nxt
        candidates = []
        wb_full = len(self._wb) >= self.cfg.write_buffer_entries
        for ts in self.threads:
            if self._head_retirable(ts, wb_full):
                return nxt
            if ts.fe_queue:
                head_ready = ts.fe_queue[0].fe_ready
                if head_ready <= nxt:
                    return nxt
                candidates.append(head_ready)
            if ts.fetch_blocked_until > nxt:
                candidates.append(ts.fetch_blocked_until)
        if self._events:
            candidates.append(self._events[0][0])
        if self._detects:
            candidates.append(self._detects[0][0])
        if self._wb:
            candidates.append(self._wb[0])
        if not candidates:
            raise SimulationDeadlock(
                f"no future events at cycle {cycle}; pipeline is wedged")
        target = min(candidates)
        if target <= nxt:
            return nxt
        skipped = target - nxt
        for ts in self.threads:
            if ts.policy_stalled:
                ts.stats.policy_stall_cycles += skipped
            if ts.waiting_branch is not None:
                ts.stats.branch_stall_cycles += skipped
        return target


def taken_branch_ends_block(di: DynInstr) -> bool:
    """A correctly-predicted taken branch ends the thread's fetch block."""
    return di.is_branch and di.instr.taken and not di.mispredicted
