"""The cycle-level SMT out-of-order core.

Models the Table IV machine: ICOUNT-style fetch of up to ``fetch_width``
instructions from up to ``fetch_max_threads`` threads per cycle, a front-end
pipeline of ``frontend_depth`` cycles, register renaming against shared
int/fp rename-register pools, shared ROB/LSQ and per-class issue queues,
oldest-first issue to the functional-unit pools, a shared write buffer that
stores drain through after commit, and per-thread commit with a shared
commit-width budget.

Fetch policies plug in through :class:`repro.policies.base.FetchPolicy`
hooks; flushes squash a thread's youngest instructions, undo the rename map
from per-instruction records, release all held resources, and rewind the
thread's (stateless, regenerable) trace index.

Branch handling is trace-driven: wrong-path instructions are never fetched;
a mispredicted branch instead blocks its thread's fetch until the branch
resolves, and the front-end refill supplies the redirect penalty.

The engine optionally *fast-forwards* over cycles in which provably nothing
can happen (no fetch-eligible thread, empty ready queues, no dispatchable or
committable instruction) by jumping to the next scheduled event; tests
verify cycle-exact equivalence with the naive loop.

Implementation notes (perf): this file is the simulator's hot loop — every
experiment bottoms out in :meth:`SMTCore.step` (or its fused copy inside
:meth:`SMTCore._run_until`).  Beyond the usual local/bound-method hoists,
per-op tables and config snapshotting, the engine is *event-driven where
the original was per-cycle*: fetch eligibility lives in an incrementally
maintained candidate list updated only on stall/unstall transitions
(``ThreadState._sync_policy_stall``), branch- and policy-stall cycles are
accounted as wait intervals, dispatch latches rejected heads against a
resource-release epoch and head-ready times (and replays a proven
all-blocked stall verdict without re-scanning while that epoch holds),
the commit stage runs behind an exact head-completion gate, whole-stage
wake latches skip provably idle fetch/dispatch cycles, and retired
``DynInstr`` records are pool-recycled under explicit reference
accounting.  The data layout is scan-free where the original was
scan-heavy: completions/detections/write-buffer drains ride cycle-bucketed
calendar queues (see the event wheels in ``__init__``) instead of tuple
heaps, each thread's rename map is a flat array indexed by the dense
architectural register number, and the dispatch/commit rotations are
filtered through activity bitmasks (``_fe_mask``/``_heads_mask``) with a
lazily built per-(mask, start) rotation cache.  Several bodies are
deliberately duplicated for speed (``step``/the fused loop,
``_commit``/``_commit_one``, ``_dispatch``/``_try_dispatch``,
``_complete``/its inlined copies, the base fetch_order/fetch_pending and
non-memory ``_execute`` bodies inlined into the fused loop and
``_issue``) — keep them in sync; the golden-stats matrix
(``tests/test_golden_stats.py``, {1,2,4,8} threads x all eight paper
policies plus runahead) pins every copy to the pre-optimization core
cycle-for-cycle.
"""

from __future__ import annotations

from heapq import heappop, heappush
from operator import attrgetter
from typing import TYPE_CHECKING

from repro.branch import BTB, GShare
from repro.config import SMTConfig
from repro.isa import FU_CLASS_BY_OP, FuClass
from repro.memory.hierarchy import MemoryHierarchy, ServiceLevel
from repro.pipeline.dyninstr import DynInstr
from repro.pipeline.stats import CoreStats
from repro.pipeline.thread_state import ThreadState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.policies.base import FetchPolicy
    from repro.workloads.trace import SyntheticTrace


#: Upper bound on pooled DynInstr records; enough to absorb the live
#: population of the largest configured window plus fetch queues.
_DI_POOL_CAP = 4096

#: Age order for draining a multi-entry wheel bucket (see the calendar
#: queues in :meth:`SMTCore.__init__`): sorting by ``gseq`` reproduces
#: the old heaps' (cycle, age) pop order exactly.
_BY_GSEQ = attrgetter("gseq")

#: ICOUNT priority for the fetch-order fast path inlined into the fused
#: run loop (keep in sync with :mod:`repro.policies.base`).
_BY_ICOUNT = attrgetter("icount")


class SimulationDeadlock(RuntimeError):
    """Raised when no future event can ever change pipeline state."""


class SimulationLimitExceeded(RuntimeError):
    """Raised when the cycle budget runs out before the commit target."""


class SMTCore:
    """One simulated SMT processor instance (single run, single workload)."""

    # The hot loop reads dozens of core attributes per cycle; with ~55
    # instance attributes the CPython inline-values optimization does not
    # hold, so slots keep every ``self.X`` a fixed-offset load.  The
    # trailing ``__dict__`` keeps ad-hoc attribute assignment (tests spy
    # by monkeypatching instance methods) working.
    __slots__ = (
        "cfg", "hierarchy", "threads", "policy", "gshare", "btb", "cycle",
        "_gseq", "_ready", "_ready_by_op",
        "_ready_int", "_ready_ldst", "_ready_fp",
        "_num_int_alu", "_num_ldst", "_num_fp",
        "_wheel_mask", "_ev_buckets", "_ev_marks", "_ev_over",
        "_dt_buckets", "_dt_marks", "_dt_over",
        "_wb_buckets", "_wb_marks", "_wb_over", "_wb_used",
        "rob_used", "lsq_used", "iq_used", "fq_used",
        "int_regs_used", "fp_regs_used",
        "_fe_capacity", "stats", "_line_shift", "_measure_start",
        "_track_ll_dep", "_rob_size", "_lsq_size", "_int_iq_size",
        "_fp_iq_size", "_int_rename_regs", "_fp_rename_regs",
        "_commit_width", "_decode_width", "_fetch_width",
        "_fetch_max_threads", "_frontend_depth", "_wb_entries",
        "_fast_forward", "_rotations", "_fetch_candidates",
        "_fe_mask", "_heads_mask", "_rot_cache", "_full_mask",
        "_policy_on_resource_stall",
        "_release_epoch", "_committed_watermark", "_commit_pending",
        "_di_pool", "_policy_fetch_order", "_policy_fetch_pending",
        "_policy_can_dispatch", "_policy_on_fetch", "_policy_on_fetch_load",
        "_policy_on_load_complete", "_commit_stage", "_dispatch_stage",
        "_issue_stage", "_complete_is_base", "_execute_is_base",
        "_hier_load", "_hier_ifetch", "_hier_store", "_n_threads",
        "_fetch_wake", "_fetch_order_is_base", "_dispatch_wake",
        "_stall_latch_until", "_stall_latch_epoch",
        "__dict__",
    )

    def __init__(self, cfg: SMTConfig, traces: list[SyntheticTrace],
                 policy: FetchPolicy,
                 hierarchy: MemoryHierarchy | None = None):
        if len(traces) != cfg.num_threads:
            raise ValueError(
                f"expected {cfg.num_threads} traces, got {len(traces)}")
        self.cfg = cfg
        self.hierarchy = hierarchy or MemoryHierarchy(cfg.memory)
        # Hot hierarchy entry points as single-hop bound methods.
        self._hier_load = self.hierarchy.load
        self._hier_ifetch = self.hierarchy.ifetch
        self._hier_store = self.hierarchy.store
        self._n_threads = cfg.num_threads
        self.threads = tuple(ThreadState(tid, trace, cfg)
                             for tid, trace in enumerate(traces))
        self.policy = policy
        self.gshare = GShare(cfg.gshare_entries, cfg.num_threads)
        self.btb = BTB(cfg.btb_entries, cfg.btb_assoc)
        self.cycle = 0
        self._gseq = 0
        # Calendar ("event wheel") queues for completions, long-latency
        # detections and write-buffer drains, replacing three heaps: a
        # ring of per-cycle buckets indexed by ``when & _wheel_mask``
        # absorbs every in-horizon event hop with a plain list append
        # instead of a ``(cycle, seq, di)`` tuple heappush; an int heap
        # of *armed bucket cycles* (``*_marks``, one entry per distinct
        # pending cycle) keeps the O(1) earliest-event peek the
        # fast-forward probe needs; and a spill heap (``*_over``) takes
        # the rare past-horizon schedule (``serialize_long_latency`` can
        # defer completions arbitrarily far).  A bucket is drained
        # exactly at its own cycle — fast-forward jumps are bounded by
        # the armed marks, so an armed cycle is never skipped — and is
        # sorted by ``gseq`` only when it holds several records, keeping
        # the heap's (cycle, age) pop order exact.  The write-buffer
        # wheel stores plain per-cycle drain *counts* with the occupancy
        # tracked in ``_wb_used``.
        mem_cfg = cfg.memory
        horizon = 2 * (mem_cfg.mem_latency + mem_cfg.tlb_miss_penalty) + 512
        wheel = max(1024, min(1 << horizon.bit_length(), 1 << 16))
        self._wheel_mask = wheel - 1
        # Bucket lists materialize lazily (None until a slot's first use):
        # a fresh core allocates two flat None-arrays instead of thousands
        # of empty lists, and the steady state reuses the same few hot
        # buckets.  ``None`` and ``[]`` are both "empty" at the drains.
        self._ev_buckets: list[list[DynInstr] | None] = [None] * wheel
        self._ev_marks: list[int] = []
        self._ev_over: list[tuple[int, int, DynInstr]] = []
        self._dt_buckets: list[list[DynInstr] | None] = [None] * wheel
        self._dt_marks: list[int] = []
        self._dt_over: list[tuple[int, int, DynInstr]] = []
        self._wb_buckets: list[int] = [0] * wheel
        self._wb_marks: list[int] = []
        self._wb_over: list[int] = []
        self._wb_used = 0
        self._ready: dict[FuClass, list[tuple[int, DynInstr]]] = {
            FuClass.INT_ALU: [], FuClass.LDST: [], FuClass.FP: []}
        #: The same ready queues, addressable by ``int(op)`` with a single
        #: tuple index (hot path) instead of two enum-keyed dict lookups.
        self._ready_by_op: tuple[list, ...] = tuple(
            self._ready[FU_CLASS_BY_OP[i]] for i in range(len(FU_CLASS_BY_OP)))
        # The three FU-pool ready queues and their slot counts as direct
        # attributes: the issue stage and the fast-forward probe touch
        # them every cycle.
        self._ready_int = self._ready[FuClass.INT_ALU]
        self._ready_ldst = self._ready[FuClass.LDST]
        self._ready_fp = self._ready[FuClass.FP]
        self._num_int_alu = cfg.num_int_alu
        self._num_ldst = cfg.num_ldst
        self._num_fp = cfg.num_fp
        self.rob_used = 0
        self.lsq_used = 0
        self.iq_used = 0
        self.fq_used = 0
        self.int_regs_used = 0
        self.fp_regs_used = 0
        # The front-end queue must hold frontend_depth cycles of in-flight
        # instructions *plus* headroom for new fetch groups, or fetch
        # stalls every other cycle at full throughput.
        self._fe_capacity = (cfg.frontend_depth + 2) * cfg.fetch_width
        self.stats = CoreStats(threads=[ts.stats for ts in self.threads])
        self._line_shift = cfg.memory.line_size.bit_length() - 1
        self._measure_start = 0
        self._track_ll_dep = cfg.predictors.dependence_aware
        # Config limits snapshotted off the frozen dataclass: plain slots
        # on self are one attribute hop instead of two in the stage loops.
        self._rob_size = cfg.rob_size
        self._lsq_size = cfg.lsq_size
        self._int_iq_size = cfg.int_iq_size
        self._fp_iq_size = cfg.fp_iq_size
        self._int_rename_regs = cfg.int_rename_regs
        self._fp_rename_regs = cfg.fp_rename_regs
        self._commit_width = cfg.commit_width
        self._decode_width = cfg.decode_width
        self._fetch_width = cfg.fetch_width
        self._fetch_max_threads = cfg.fetch_max_threads
        self._frontend_depth = cfg.frontend_depth
        self._wb_entries = cfg.write_buffer_entries
        self._fast_forward = cfg.fast_forward
        # Precomputed commit/dispatch rotation orders: _rotations[s] is the
        # thread list starting at thread s, so the per-cycle rotation is a
        # single tuple index instead of n modulo operations.
        n = cfg.num_threads
        self._rotations = tuple(
            tuple(self.threads[(s + i) % n] for i in range(n))
            for s in range(n))
        # Activity bitmasks over the thread set: ``_fe_mask`` holds the
        # threads with a non-empty front-end queue (maintained at fetch
        # appends, dispatch pops and flushes), ``_heads_mask`` the
        # threads whose ROB head is completed (the ``head_ready``
        # transitions).  ``_rot_cache[mask * n + start]`` lazily
        # materializes the rotation order starting at ``start`` filtered
        # to the mask's threads, so the per-cycle dispatch/commit scans
        # iterate only the threads that can possibly act — at 8 threads
        # the full-rotation scans were >60% provably idle hops.  The
        # cache covers n <= 8 (the table is n * 2^n entries); larger
        # machines fall back to the plain full rotations.
        self._fe_mask = 0
        self._heads_mask = 0
        self._full_mask = (1 << n) - 1
        self._rot_cache: list | None = (
            [None] * (n << n) if n <= 8 else None)
        # Event-maintained fetch-eligibility structure: the policy-unstalled
        # threads in tid order, re-derived only on stall/unstall transitions
        # (ThreadState._sync_policy_stall) instead of per cycle.  An empty
        # list means every thread is policy-stalled (the COT case).
        for ts in self.threads:
            ts.core = self
        self._fetch_candidates: list[ThreadState] = list(self.threads)
        # Shared-resource release epoch: bumped whenever any shared counter
        # (ROB/LSQ/IQ/regs) *decreases*.  The dispatch stage latches a
        # head rejected by a resource gate against the epoch and re-asserts
        # the rejection without re-proving it while the epoch is unchanged.
        self._release_epoch = 0
        # Highest per-thread committed count this measurement phase; lets
        # the run loop stop-check in O(1) instead of scanning every thread
        # every cycle.
        self._committed_watermark = 0
        # Event-driven commit gate: set by _complete (a completed record
        # may be or become a ROB head) and kept set by _commit while a
        # budget-limited pass or a write-buffer-blocked store head could
        # still make progress; cleared only when a full pass proves every
        # head is absent or incomplete.  RunaheadCore never clears it —
        # its commit stage can make progress on incomplete heads.
        self._commit_pending = False
        # Retired-DynInstr free list (None disables pooling — RunaheadCore
        # opts out because INV/pseudo-retire state can outlive commit).
        self._di_pool: list[DynInstr] | None = []
        policy.attach(self)
        # Bound-method hoists for the two policy calls made every cycle.
        # The policy is attached exactly once, at construction.
        self._policy_fetch_order = policy.fetch_order
        self._policy_fetch_pending = policy.fetch_pending
        # Per-instruction hooks elided when the policy keeps the marked
        # no-op defaults (None means "skip the call").
        cls = type(policy)
        self._policy_can_dispatch = (
            None if getattr(cls.can_dispatch, "_is_default_hook", False)
            else policy.can_dispatch)
        fetch_hook = (
            None if getattr(cls.on_fetch, "_is_default_hook", False)
            else policy.on_fetch)
        if fetch_hook is not None and cls.on_fetch_loads_only:
            # The policy declares its hook a no-op for non-loads: route
            # it to the loads-only call site in _fetch_thread.
            self._policy_on_fetch = None
            self._policy_on_fetch_load = fetch_hook
        else:
            self._policy_on_fetch = fetch_hook
            self._policy_on_fetch_load = None
        self._policy_on_load_complete = (
            None if getattr(cls.on_load_complete, "_is_default_hook", False)
            else policy.on_load_complete)
        self._policy_on_resource_stall = (
            None if getattr(cls.on_resource_stall, "_is_default_hook", False)
            else policy.on_resource_stall)
        # Stage methods bound once (subclass overrides resolve here); saves
        # a method lookup per stage per cycle in step().
        self._commit_stage = self._commit
        self._dispatch_stage = self._dispatch
        self._issue_stage = self._issue
        # step() inlines the completion-event loop only when _complete is
        # not overridden (RunaheadCore adds exit-runahead handling there).
        self._complete_is_base = type(self)._complete is SMTCore._complete
        # _issue inlines _execute's non-memory fast path only while the
        # class implementation is the base one (instance monkeypatches
        # are re-checked per stage call against ``__dict__``).
        self._execute_is_base = type(self)._execute is SMTCore._execute
        # Fetch-wake latch: earliest cycle fetch_order could be non-empty
        # again after returning empty (0 = probe every cycle).  Armed only
        # for the marked base eligibility rules; disarmed (reset to 0) by
        # branch resolution, front-end pops, flushes and candidate
        # rebuilds — the only non-time-bound eligibility changes.
        self._fetch_wake = 0
        self._fetch_order_is_base = (
            getattr(cls.fetch_order, "_is_base_impl", False)
            and getattr(cls.fetch_pending, "_is_base_impl", False))
        # Dispatch-wake latch: armed by the base dispatch stage when a
        # full pass saw no ready head anywhere (so no resource-stall
        # accounting can be owed) — the stage call is skipped until the
        # earliest observed head-ready time, a fetch into an empty queue,
        # or a flush.
        self._dispatch_wake = 0
        # Stall-verdict latch: armed when a full dispatch pass concluded
        # "every ready head is blocked by a full shared resource" under a
        # policy whose ``on_resource_stall`` hook is the marked no-op and
        # with no dispatch cap.  While the release epoch is unchanged and
        # no absent head can have arrived by time (``_stall_latch_until``
        # bounds that; fetch into an empty queue and flushes disarm), the
        # verdict — one resource-stall cycle — is replayed without
        # re-running the scan.
        self._stall_latch_until = 0
        self._stall_latch_epoch = -1

    # ------------------------------------------------------------------ #
    # top-level driving
    # ------------------------------------------------------------------ #

    def run(self, max_commits: int, max_cycles: int | None = None,
            warmup: int = 0) -> CoreStats:
        """Simulate until any thread commits ``max_commits`` instructions.

        This is the paper's multiprogram methodology (Section 5): the run
        stops when the first program reaches its instruction budget.  With
        ``warmup`` > 0, the run first executes until some thread commits
        that many instructions, then resets all measurements (caches,
        predictors and branch state stay warm) before the measured phase.
        """
        self.begin_measurement(warmup, max_cycles)
        self.advance_to(max_commits, max_cycles)
        return self.stats

    def begin_measurement(self, warmup: int,
                          max_cycles: int | None = None) -> None:
        """Execute the warmup phase (if any) and zero the measurements.

        Half of the :meth:`run` protocol, exposed so incremental drivers
        (:meth:`repro.api.Session.iter_intervals`) share the exact
        warmup/settle/reset sequence instead of re-implementing it.
        """
        if warmup > 0:
            try:
                self._run_until(warmup, max_cycles)
            finally:
                self._settle_stall_accounting()
            self.reset_measurement()

    def advance_to(self, commits: int,
                   max_cycles: int | None = None) -> bool:
        """Resume the measured phase until ``commits`` is reached.

        The other half of the :meth:`run` protocol, resumable: call with
        increasing targets to step one simulation in increments.  Settles
        open stall intervals and refreshes ``stats.cycles`` /
        ``stats.ll_intervals`` on every return, so the statistics are
        consistent at each boundary; returns True once some thread has
        committed ``commits`` instructions.
        """
        if self._committed_watermark < commits:
            try:
                self._run_until(commits, max_cycles)
            finally:
                self._settle_stall_accounting()
        self.stats.cycles = self.cycle - self._measure_start
        self.stats.ll_intervals = self.hierarchy.ll_intervals
        return self._committed_watermark >= commits

    def _run_until(self, max_commits: int, max_cycles: int | None) -> None:
        limit = max_cycles if max_cycles is not None else self.cfg.max_cycles
        # The commit watermark is maintained by the commit stage and reset
        # with the measurement phase, so the stop check is O(1) per cycle
        # instead of a per-thread scan.
        if type(self).step is not SMTCore.step or not self._complete_is_base:
            # A subclass changed per-cycle behavior: drive it generically.
            step = self.step
            while True:
                step()
                if self._committed_watermark >= max_commits:
                    return
                if self.cycle >= limit:
                    raise SimulationLimitExceeded(
                        f"exceeded {limit} cycles without reaching "
                        f"{max_commits} commits")
        # step(), fused into the driving loop so the run-lifetime
        # invariants (event/ready/write-buffer structures, stage bindings,
        # policy hooks, fetch limits) are hoisted once per run instead of
        # re-read every cycle.  This is the third copy of the cycle body
        # (step() and _complete() remain the canonical, overridable
        # forms); the golden-stats matrix pins all of them to identical
        # architectural behavior.  Keep them in sync.
        mask = self._wheel_mask
        ev_buckets = self._ev_buckets
        ev_marks = self._ev_marks
        ev_over = self._ev_over
        dt_buckets = self._dt_buckets
        dt_marks = self._dt_marks
        dt_over = self._dt_over
        wb_buckets = self._wb_buckets
        wb_marks = self._wb_marks
        wb_over = self._wb_over
        ready_int = self._ready_int
        ready_ldst = self._ready_ldst
        ready_fp = self._ready_fp
        ready_by_op = self._ready_by_op
        threads = self.threads
        commit_stage = self._commit_stage
        dispatch_stage = self._dispatch_stage
        issue_stage = self._issue_stage
        fetch_thread = self._fetch_thread
        next_cycle = self._next_cycle
        policy_fetch_order = self._policy_fetch_order
        policy_fetch_pending = self._policy_fetch_pending
        on_load_complete = self._policy_on_load_complete
        on_ll_detect = self.policy.on_ll_detect
        fetch_width = self._fetch_width
        fetch_max_threads = self._fetch_max_threads
        fast_forward = self._fast_forward
        fetch_order_is_base = self._fetch_order_is_base
        fe_capacity = self._fe_capacity
        can_fetch_one = fetch_max_threads >= 1 and fetch_width >= 1
        # Stable for the run: the candidate list is edited in place by
        # the stall/unstall transitions, never replaced.
        fetch_candidates = self._fetch_candidates
        while True:
            cycle = self.cycle
            bucket = ev_buckets[cycle & mask]
            if bucket or (ev_over and ev_over[0][0] <= cycle):
                # completion loop — keep in sync with step()/_complete()
                if bucket is None:
                    bucket = ev_buckets[cycle & mask] = []
                while ev_over and ev_over[0][0] <= cycle:
                    bucket.append(heappop(ev_over)[2])
                while ev_marks and ev_marks[0] <= cycle:
                    heappop(ev_marks)
                n_due = len(bucket)
                if n_due > 1:
                    if n_due == 2:
                        a, b = bucket
                        if b.gseq < a.gseq:   # age order, no key array
                            bucket[0] = b
                            bucket[1] = a
                    else:
                        bucket.sort(key=_BY_GSEQ)
                for di in bucket:
                    ts = threads[di.thread]
                    if di.is_load and di.pending == -1:
                        ts.outstanding_misses -= 1
                    if di.squashed:
                        continue
                    di.completed = True
                    window = ts.window
                    if window and window[0] is di:
                        # Only a completed *head* can unblock commit: the
                        # gate and the head mask move together.
                        ts.head_ready = True
                        self._heads_mask |= ts.tid_bit
                        self._commit_pending = True
                    w = di.waiter0
                    if w is not None:
                        di.waiter0 = None
                        w.pending -= 1
                        if (w.pending == 0 and not w.squashed
                                and w.in_iq and not w.issued):
                            heappush(ready_by_op[w.instr.op_i],
                                     (w.gseq, w))
                        waiters = di.waiters
                        if waiters is not None:
                            di.waiters = None
                            for w in waiters:
                                w.pending -= 1
                                if (w.pending == 0 and not w.squashed
                                        and w.in_iq and not w.issued):
                                    heappush(ready_by_op[w.instr.op_i],
                                             (w.gseq, w))
                    if di.is_branch and ts.waiting_branch is di:
                        ts.waiting_branch = None
                        ts.stats.branch_stall_cycles += \
                            cycle - ts.branch_wait_since
                        if ts.fetch_blocked_until < cycle + 1:
                            ts.fetch_blocked_until = cycle + 1
                        self._fetch_wake = 0
                    if di.is_load and on_load_complete is not None:
                        on_load_complete(di, ts)
                bucket.clear()
            bucket = dt_buckets[cycle & mask]
            if bucket or (dt_over and dt_over[0][0] <= cycle):
                if bucket is None:
                    bucket = dt_buckets[cycle & mask] = []
                while dt_over and dt_over[0][0] <= cycle:
                    bucket.append(heappop(dt_over)[2])
                while dt_marks and dt_marks[0] <= cycle:
                    heappop(dt_marks)
                n_due = len(bucket)
                if n_due > 1:
                    if n_due == 2:
                        a, b = bucket
                        if b.gseq < a.gseq:   # age order, no key array
                            bucket[0] = b
                            bucket[1] = a
                    else:
                        bucket.sort(key=_BY_GSEQ)
                for di in bucket:
                    di.in_detects = False
                    if di.squashed or di.completed:
                        continue
                    on_ll_detect(di, threads[di.thread])
                bucket.clear()
            wcnt = wb_buckets[cycle & mask]
            if wcnt:
                wb_buckets[cycle & mask] = 0
                self._wb_used -= wcnt
                while wb_marks and wb_marks[0] <= cycle:
                    heappop(wb_marks)
            if wb_over and wb_over[0] <= cycle:
                while wb_over and wb_over[0] <= cycle:
                    heappop(wb_over)
                    self._wb_used -= 1
            if self._commit_pending:
                commit_stage(cycle)
            if ready_int or ready_ldst or ready_fp:
                issue_stage(cycle)
            if cycle >= self._dispatch_wake:
                if (cycle < self._stall_latch_until
                        and self._stall_latch_epoch == self._release_epoch):
                    # Proven stall verdict still holds: account the cycle
                    # without re-running the scan (hook is a no-op).
                    self.stats.resource_stall_cycles += 1
                else:
                    dispatch_stage(cycle)
            if cycle >= self._fetch_wake:
                if fetch_order_is_base:
                    # Base ICOUNT eligibility, inlined from
                    # FetchPolicy.fetch_order (keep in sync): candidates
                    # are event-maintained, only time-varying conditions
                    # are probed, and the single-eligible case — the
                    # overwhelmingly common shape — drives the fetch
                    # burst directly without materializing an order.
                    candidates = fetch_candidates
                    if candidates:
                        first = None
                        rest = None
                        for ts in candidates:
                            if (ts.fetch_blocked_until <= cycle
                                    and ts.waiting_branch is None
                                    and len(ts.fe_queue) < fe_capacity):
                                if first is None:
                                    first = ts
                                elif rest is None:
                                    rest = [first, ts]
                                else:
                                    rest.append(ts)
                        if rest is None:
                            if first is None:
                                self._fetch_wake = \
                                    self._compute_fetch_wake(cycle)
                            elif can_fetch_one:
                                fetch_thread(first, fetch_width, cycle,
                                             False)
                        else:
                            if len(rest) == 2:
                                a, b = rest
                                # Matches the stable sort: ties keep
                                # tid order.
                                if b.icount < a.icount:
                                    rest[0] = b
                                    rest[1] = a
                            else:
                                rest.sort(key=_BY_ICOUNT)
                            budget = fetch_width
                            remaining_threads = fetch_max_threads
                            for ts in rest:
                                if remaining_threads == 0 or budget == 0:
                                    break
                                remaining_threads -= 1
                                budget -= fetch_thread(ts, budget, cycle,
                                                       False)
                    else:
                        # COT (every thread policy-stalled): cold path,
                        # through the policy method.
                        order = policy_fetch_order(cycle)
                        if order:
                            budget = fetch_width
                            remaining_threads = fetch_max_threads
                            for ts, ignore_stall in order:
                                if remaining_threads == 0 or budget == 0:
                                    break
                                remaining_threads -= 1
                                budget -= fetch_thread(ts, budget, cycle,
                                                       ignore_stall)
                        else:
                            self._fetch_wake = \
                                self._compute_fetch_wake(cycle)
                else:
                    order = policy_fetch_order(cycle)
                    if order:
                        budget = fetch_width
                        remaining_threads = fetch_max_threads
                        for ts, ignore_stall in order:
                            if remaining_threads == 0 or budget == 0:
                                break
                            remaining_threads -= 1
                            budget -= fetch_thread(ts, budget, cycle,
                                                   ignore_stall)
            nxt = cycle + 1
            if not fast_forward or ready_int or ready_ldst or ready_fp:
                self.cycle = nxt
            elif nxt < self._fetch_wake:
                self.cycle = nxt = next_cycle(cycle)
            elif fetch_order_is_base:
                # Base fetch_pending, inlined (keep in sync): would any
                # thread be fetch-eligible next cycle?
                pending = False
                for ts in (fetch_candidates or threads):
                    if (ts.fetch_blocked_until <= nxt
                            and ts.waiting_branch is None
                            and len(ts.fe_queue) < fe_capacity):
                        pending = True
                        break
                if pending:
                    self.cycle = nxt
                else:
                    self.cycle = nxt = next_cycle(cycle)
            elif policy_fetch_pending(nxt):
                self.cycle = nxt
            else:
                self.cycle = nxt = next_cycle(cycle)
            if self._committed_watermark >= max_commits:
                return
            if nxt >= limit:
                raise SimulationLimitExceeded(
                    f"exceeded {limit} cycles without reaching "
                    f"{max_commits} commits")

    def _settle_stall_accounting(self) -> None:
        """Credit the still-open branch/policy-wait intervals up to ``cycle``.

        Branch-stall and policy-stall cycles are accounted at wait *end*
        (resolve, squash, unstall); a run that stops mid-wait settles the
        open tails here so the totals match the per-cycle scans they
        replaced, cycle for cycle.
        """
        cycle = self.cycle
        for ts in self.threads:
            if ts.waiting_branch is not None:
                ts.stats.branch_stall_cycles += cycle - ts.branch_wait_since
                ts.branch_wait_since = cycle
            if ts.policy_stalled_flag:
                ts.stats.policy_stall_cycles += cycle - ts.policy_stall_since
                ts.policy_stall_since = cycle

    def reset_measurement(self) -> None:
        """Zero all statistics while keeping microarchitectural state warm.

        Used to discard cold-start transients (cold caches and TLBs, empty
        predictors) from measurements; the pipeline contents, predictor
        tables and cache state are untouched.
        """
        from repro.pipeline.stats import ThreadStats

        for i, ts in enumerate(self.threads):
            fresh = ThreadStats()
            ts.stats = fresh
            self.stats.threads[i] = fresh
            if ts.commit_cycles is not None:
                ts.commit_cycles = []
            if ts.waiting_branch is not None:
                # The open branch wait straddles the measurement boundary;
                # only its measured-phase tail may count.
                ts.branch_wait_since = self.cycle
            if ts.policy_stalled_flag:
                # Same for an open policy stall.
                ts.policy_stall_since = self.cycle
            # The LLSR's register stays warm but its *sample log* is
            # measurement state: cold-start compulsory misses would
            # otherwise pollute the Figure 4 distance distribution.
            ts.llsr.measured = []
            ts.llsr.suppressed = 0
        self.stats.resource_stall_cycles = 0
        hierarchy = self.hierarchy
        hierarchy.ll_intervals = []
        hierarchy.ll_loads_per_thread = {}
        hierarchy.demand_loads = 0
        hierarchy.merged_loads = 0
        hierarchy.prefetch_covered = 0
        self._committed_watermark = 0
        self._measure_start = self.cycle

    def step(self) -> None:
        """Advance one cycle (or fast-forward to the next event)."""
        cycle = self.cycle
        mask = self._wheel_mask
        ev_bucket = self._ev_buckets[cycle & mask]
        ev_over = self._ev_over
        dt_bucket = self._dt_buckets[cycle & mask]
        dt_over = self._dt_over
        if (ev_bucket or dt_bucket
                or (ev_over and ev_over[0][0] <= cycle)
                or (dt_over and dt_over[0][0] <= cycle)):
            if not self._complete_is_base:
                self._process_events(cycle)
            else:
                # _process_events/_complete, inlined (the completion loop
                # runs nearly every active cycle and the two calls per
                # event were measurable).  Keep in sync with _complete.
                if ev_bucket or (ev_over and ev_over[0][0] <= cycle):
                    threads = self.threads
                    on_load_complete = self._policy_on_load_complete
                    ev_marks = self._ev_marks
                    if ev_bucket is None:
                        ev_bucket = self._ev_buckets[cycle & mask] = []
                    while ev_over and ev_over[0][0] <= cycle:
                        ev_bucket.append(heappop(ev_over)[2])
                    while ev_marks and ev_marks[0] <= cycle:
                        heappop(ev_marks)
                    n_due = len(ev_bucket)
                    if n_due > 1:
                        if n_due == 2:
                            a, b = ev_bucket
                            if b.gseq < a.gseq:   # age order, no key array
                                ev_bucket[0] = b
                                ev_bucket[1] = a
                        else:
                            ev_bucket.sort(key=_BY_GSEQ)
                    for di in ev_bucket:
                        ts = threads[di.thread]
                        if di.is_load and di.pending == -1:
                            ts.outstanding_misses -= 1
                        if di.squashed:
                            continue
                        di.completed = True
                        window = ts.window
                        if window and window[0] is di:
                            ts.head_ready = True
                            self._heads_mask |= ts.tid_bit
                            self._commit_pending = True
                        w = di.waiter0
                        if w is not None:
                            di.waiter0 = None
                            ready_by_op = self._ready_by_op
                            w.pending -= 1
                            if (w.pending == 0 and not w.squashed
                                    and w.in_iq and not w.issued):
                                heappush(ready_by_op[w.instr.op_i],
                                         (w.gseq, w))
                            waiters = di.waiters
                            if waiters is not None:
                                di.waiters = None
                                for w in waiters:
                                    w.pending -= 1
                                    if (w.pending == 0 and not w.squashed
                                            and w.in_iq and not w.issued):
                                        heappush(ready_by_op[w.instr.op_i],
                                                 (w.gseq, w))
                        if di.is_branch and ts.waiting_branch is di:
                            ts.waiting_branch = None
                            ts.stats.branch_stall_cycles += \
                                cycle - ts.branch_wait_since
                            if ts.fetch_blocked_until < cycle + 1:
                                ts.fetch_blocked_until = cycle + 1
                            self._fetch_wake = 0
                        if di.is_load and on_load_complete is not None:
                            on_load_complete(di, ts)
                    ev_bucket.clear()
                if dt_bucket or (dt_over and dt_over[0][0] <= cycle):
                    on_ll_detect = self.policy.on_ll_detect
                    threads = self.threads
                    dt_marks = self._dt_marks
                    if dt_bucket is None:
                        dt_bucket = self._dt_buckets[cycle & mask] = []
                    while dt_over and dt_over[0][0] <= cycle:
                        dt_bucket.append(heappop(dt_over)[2])
                    while dt_marks and dt_marks[0] <= cycle:
                        heappop(dt_marks)
                    n_due = len(dt_bucket)
                    if n_due > 1:
                        if n_due == 2:
                            a, b = dt_bucket
                            if b.gseq < a.gseq:   # age order, no key array
                                dt_bucket[0] = b
                                dt_bucket[1] = a
                        else:
                            dt_bucket.sort(key=_BY_GSEQ)
                    for di in dt_bucket:
                        di.in_detects = False
                        if di.squashed or di.completed:
                            continue
                        on_ll_detect(di, threads[di.thread])
                    dt_bucket.clear()
        # drain the write buffer
        wcnt = self._wb_buckets[cycle & mask]
        if wcnt:
            self._wb_buckets[cycle & mask] = 0
            self._wb_used -= wcnt
            wb_marks = self._wb_marks
            while wb_marks and wb_marks[0] <= cycle:
                heappop(wb_marks)
        wb_over = self._wb_over
        if wb_over and wb_over[0] <= cycle:
            while wb_over and wb_over[0] <= cycle:
                heappop(wb_over)
                self._wb_used -= 1
        if self._commit_pending:
            self._commit_stage(cycle)
        if self._ready_int or self._ready_ldst or self._ready_fp:
            self._issue_stage(cycle)
        if cycle >= self._dispatch_wake:
            if (cycle < self._stall_latch_until
                    and self._stall_latch_epoch == self._release_epoch):
                # Proven stall verdict still holds (see _dispatch).
                self.stats.resource_stall_cycles += 1
            else:
                self._dispatch_stage(cycle)
        # fetch (inlined driver; _fetch_thread does the per-thread work)
        if cycle >= self._fetch_wake:
            order = self._policy_fetch_order(cycle)
            if order:
                budget = self._fetch_width
                remaining_threads = self._fetch_max_threads
                fetch_thread = self._fetch_thread
                for ts, ignore_stall in order:
                    if remaining_threads == 0 or budget == 0:
                        break
                    remaining_threads -= 1
                    budget -= fetch_thread(ts, budget, cycle, ignore_stall)
            elif self._fetch_order_is_base:
                self._fetch_wake = self._compute_fetch_wake(cycle)
        # (policy-stall cycles are accounted as stall intervals by
        # ThreadState._sync_policy_stall / _settle_stall_accounting, not by
        # an all-threads scan here.)
        nxt = cycle + 1
        if self._fast_forward:
            # Fast path of the fast-forward probe: if next cycle can issue
            # or fetch, there is nothing to skip and no need to build the
            # candidate list in _next_cycle.  Ready-queue checks come
            # first — three slot loads against a policy call.
            if (self._ready_int or self._ready_ldst or self._ready_fp
                    or (nxt >= self._fetch_wake
                        and self._policy_fetch_pending(nxt))):
                self.cycle = nxt
            else:
                self.cycle = self._next_cycle(cycle)
        else:
            self.cycle = nxt

    # ------------------------------------------------------------------ #
    # events (execution completions, long-latency detections)
    # ------------------------------------------------------------------ #

    def _process_events(self, cycle: int) -> None:
        mask = self._wheel_mask
        bucket = self._ev_buckets[cycle & mask]
        ev_over = self._ev_over
        if bucket or (ev_over and ev_over[0][0] <= cycle):
            ev_marks = self._ev_marks
            if bucket is None:
                bucket = self._ev_buckets[cycle & mask] = []
            while ev_over and ev_over[0][0] <= cycle:
                bucket.append(heappop(ev_over)[2])
            while ev_marks and ev_marks[0] <= cycle:
                heappop(ev_marks)
            n_due = len(bucket)
            if n_due > 1:
                if n_due == 2:
                    a, b = bucket
                    if b.gseq < a.gseq:   # age order, no key array
                        bucket[0] = b
                        bucket[1] = a
                else:
                    bucket.sort(key=_BY_GSEQ)
            complete = self._complete
            for di in bucket:
                complete(di, cycle)
            bucket.clear()
        bucket = self._dt_buckets[cycle & mask]
        dt_over = self._dt_over
        if bucket or (dt_over and dt_over[0][0] <= cycle):
            dt_marks = self._dt_marks
            if bucket is None:
                bucket = self._dt_buckets[cycle & mask] = []
            while dt_over and dt_over[0][0] <= cycle:
                bucket.append(heappop(dt_over)[2])
            while dt_marks and dt_marks[0] <= cycle:
                heappop(dt_marks)
            n_due = len(bucket)
            if n_due > 1:
                if n_due == 2:
                    a, b = bucket
                    if b.gseq < a.gseq:   # age order, no key array
                        bucket[0] = b
                        bucket[1] = a
                else:
                    bucket.sort(key=_BY_GSEQ)
            on_ll_detect = self.policy.on_ll_detect
            threads = self.threads
            for di in bucket:
                di.in_detects = False
                if di.squashed or di.completed:
                    continue
                on_ll_detect(di, threads[di.thread])
            bucket.clear()

    def _complete(self, di: DynInstr, cycle: int) -> None:
        ts = self.threads[di.thread]
        if di.is_load and di.pending == -1:  # counted as outstanding miss
            ts.outstanding_misses -= 1
        if di.squashed:
            return
        di.completed = True
        self._commit_pending = True   # unconditional: RunaheadCore's commit
        #                               stage acts on incomplete heads too
        window = ts.window
        if window and window[0] is di:
            ts.head_ready = True
            self._heads_mask |= ts.tid_bit
        w = di.waiter0
        if w is not None:
            di.waiter0 = None
            ready_by_op = self._ready_by_op
            w.pending -= 1
            if w.pending == 0 and not w.squashed and w.in_iq and not w.issued:
                heappush(ready_by_op[w.instr.op_i], (w.gseq, w))
            waiters = di.waiters
            if waiters is not None:
                di.waiters = None
                for w in waiters:
                    w.pending -= 1
                    if (w.pending == 0 and not w.squashed
                            and w.in_iq and not w.issued):
                        heappush(ready_by_op[w.instr.op_i], (w.gseq, w))
        if di.is_branch and ts.waiting_branch is di:
            ts.waiting_branch = None
            ts.stats.branch_stall_cycles += cycle - ts.branch_wait_since
            if ts.fetch_blocked_until < cycle + 1:
                ts.fetch_blocked_until = cycle + 1
            self._fetch_wake = 0
        if di.is_load:
            on_load_complete = self._policy_on_load_complete
            if on_load_complete is not None:
                on_load_complete(di, ts)

    # ------------------------------------------------------------------ #
    # commit
    # ------------------------------------------------------------------ #

    def _commit(self, cycle: int) -> None:
        # The full _commit_one body runs inline: every instruction retires
        # through this loop, and the method call per commit plus the
        # re-hoisting of shared state per attempt was measurable.
        # _commit_one remains the overridable, self-contained form;
        # RunaheadCore overrides _commit with the plain rotation loop
        # because its _commit_one can make progress on heads the inline
        # checks would skip (runahead entry, pseudo-retire).  Keep the two
        # bodies in sync.
        threads = self.threads
        n = self._n_threads
        budget = self._commit_width
        heads_mask = self._heads_mask
        # Rotate by cycle number (not by call count) so fast-forwarded and
        # naive runs stay cycle-exact; the rotation is filtered to the
        # ready-head mask so idle threads are never even iterated.
        if n == 1:
            order = threads
        else:
            rot_cache = self._rot_cache
            if rot_cache is None:
                order = self._rotations[cycle % n]
            else:
                slot = heads_mask * n + cycle % n
                order = rot_cache[slot]
                if order is None:
                    order = tuple(
                        ts for ts in self._rotations[cycle % n]
                        if heads_mask >> ts.tid & 1)
                    rot_cache[slot] = order
        wb_entries = self._wb_entries
        pool = self._di_pool
        # Per-retire bookkeeping is batched across the pass
        # (TODO(perf/commit-bookkeeping), closed): the shared resource
        # counters, the watermark, and the release epoch live in locals
        # for the whole stage (nothing inside the loop observes them),
        # and consecutive non-long-latency retires advance each thread's
        # LLSR as one staged zero run (``ts.llsr_zeros``), coalesced into
        # a single ``commit_zeros`` ring advance — flushed before any
        # same-thread long-latency commit and again after the loop, so
        # LLSR order and every measurement it fires are exactly the
        # per-retire sequence's.
        rob_used = self.rob_used
        lsq_used = self.lsq_used
        int_regs_used = self.int_regs_used
        fp_regs_used = self.fp_regs_used
        watermark = self._committed_watermark
        measure_start = self._measure_start
        # A thread's head only changes when that thread commits, so after
        # the first rotation pass another lap is owed only while some
        # thread is still making progress; ``head_ready`` makes re-probing
        # a stale thread two cheap ops, so the lap re-walks the (already
        # mask-filtered) order instead of building per-pass recheck lists.
        while budget > 0:
            progress = False
            for ts in order:
                if budget == 0:
                    break
                if not ts.head_ready:
                    continue
                window = ts.window
                di = window[0]
                instr = di.instr
                if di.is_store:
                    if self._wb_used >= wb_entries:
                        # Write buffer full: the head stays completed, so
                        # its ``heads_mask`` bit keeps the commit gate set
                        # and the retry happens by time.
                        continue
                    result = self._hier_store(ts.tid, instr.pc,
                                              instr.addr, cycle)
                    self._schedule_wb_drain(result.complete_cycle, cycle)
                window.popleft()
                if not window or not window[0].completed:
                    ts.head_ready = False
                    heads_mask &= ~ts.tid_bit
                rob_used -= 1
                ts.rob_count -= 1
                st = ts.stats
                committed = st.committed + 1
                st.committed = committed
                if committed > watermark:
                    watermark = committed
                if ts.commit_cycles is not None:
                    ts.commit_cycles.append(cycle - measure_start)
                if di.is_load or di.is_store:
                    ts.lsq_count -= 1
                    lsq_used -= 1
                if di.has_dest:
                    if di.dest_fp:
                        ts.fp_regs -= 1
                        fp_regs_used -= 1
                    else:
                        ts.int_regs -= 1
                        int_regs_used -= 1
                dependent = False
                parents = di.ll_parents
                if parents is not None:
                    dependent = any(p.is_ll or p.ll_dep for p in parents)
                    di.ll_dep = dependent
                    di.ll_parents = None
                    for p in parents:
                        p.refs -= 1
                        if (p.retired and not p.refs and pool is not None
                                and len(pool) < _DI_POOL_CAP
                                and not p.in_detects
                                and p not in ts.ll_owners):
                            pool.append(p)
                if di.is_load and di.is_ll:
                    z = ts.llsr_zeros
                    if z:
                        ts.llsr_zeros = 0
                        ts.llsr_commit_zeros(z)
                    ts.llsr_commit(True, instr.pc, dependent)
                else:
                    ts.llsr_zeros += 1
                old = di.old_map
                if old is not None:
                    di.old_map = None
                    old.refs -= 1
                    if (old.retired and not old.refs and pool is not None
                            and len(pool) < _DI_POOL_CAP
                            and not old.in_detects
                            and old not in ts.ll_owners):
                        pool.append(old)
                di.retired = True
                if (not di.refs and pool is not None
                        and len(pool) < _DI_POOL_CAP and not di.in_detects
                        and di not in ts.ll_owners):
                    pool.append(di)
                budget -= 1
                progress = True
            if not progress:
                break
        if budget < self._commit_width:   # at least one retire happened
            for ts in order:
                z = ts.llsr_zeros
                if z:
                    ts.llsr_zeros = 0
                    ts.llsr_commit_zeros(z)
            self._committed_watermark = watermark
            self._release_epoch += 1
            self.rob_used = rob_used
            self.lsq_used = lsq_used
            self.int_regs_used = int_regs_used
            self.fp_regs_used = fp_regs_used
            self._heads_mask = heads_mask
        # Keep the gate set exactly while leftover progress is possible:
        # a non-zero head mask means a budget-limited pass left
        # committable heads, or a write-buffer-blocked store head (which
        # unblocks by time) is still ready.
        self._commit_pending = heads_mask != 0

    def _commit_one(self, ts: ThreadState, cycle: int) -> bool:
        window = ts.window
        if not window:
            return False
        di = window[0]
        if not di.completed:
            return False
        instr = di.instr
        if di.is_store:
            if self._wb_used >= self._wb_entries:
                return False
            result = self.hierarchy.store(ts.tid, instr.pc, instr.addr, cycle)
            self._schedule_wb_drain(result.complete_cycle, cycle)
        window.popleft()
        if window and window[0].completed:
            ts.head_ready = True
            self._heads_mask |= ts.tid_bit
        else:
            ts.head_ready = False
            self._heads_mask &= ~ts.tid_bit
        ts.rob_count -= 1
        self.rob_used -= 1
        if di.is_load or di.is_store:
            ts.lsq_count -= 1
            self.lsq_used -= 1
        if di.has_dest:
            if di.dest_fp:
                ts.fp_regs -= 1
                self.fp_regs_used -= 1
            else:
                ts.int_regs -= 1
                self.int_regs_used -= 1
        self._release_epoch += 1
        st = ts.stats
        committed = st.committed + 1
        st.committed = committed
        if committed > self._committed_watermark:
            self._committed_watermark = committed
        if ts.commit_cycles is not None:
            ts.commit_cycles.append(cycle - self._measure_start)
        dependent = False
        parents = di.ll_parents
        if parents is not None:
            # Producers committed before us, so their long-latency outcome
            # and inherited dependence are final by now.
            dependent = any(p.is_ll or p.ll_dep for p in parents)
            di.ll_dep = dependent
            di.ll_parents = None
            for p in parents:
                p.refs -= 1
                if p.retired and not p.refs:
                    self._maybe_recycle(p, ts)
        ts.llsr.commit(di.is_load and di.is_ll, instr.pc,
                       dependent=dependent)
        # Retire the record.  The rename-undo backref it held dies with
        # the commit (a committed instruction can never be flushed), and
        # the record itself returns to the pool once nothing long-lived
        # (rename-current entry, a younger old_map, captured ll_parents)
        # still points at it — usually via the backref decrement of the
        # next same-register writer's commit.
        old = di.old_map
        if old is not None:
            di.old_map = None
            old.refs -= 1
            if old.retired and not old.refs:
                self._maybe_recycle(old, ts)
        di.retired = True
        if not di.refs:
            self._maybe_recycle(di, ts)
        return True

    def _maybe_recycle(self, di: DynInstr, ts: ThreadState) -> None:
        """Return a retired, unreferenced instruction record to the pool.

        Callers guarantee ``di.retired and di.refs == 0``; the remaining
        guards exclude the rare records with a still-queued long-latency
        detection event or a live fetch-gating ownership (both keyed on
        object identity, so reuse would alias them).  Records that fail a
        guard are simply left to the garbage collector.
        """
        pool = self._di_pool
        if (pool is not None and len(pool) < _DI_POOL_CAP
                and not di.in_detects and di not in ts.ll_owners):
            pool.append(di)

    # ------------------------------------------------------------------ #
    # event-wheel scheduling (cold-path forms; the hot paths inline the
    # same pushes — keep them in sync)
    # ------------------------------------------------------------------ #

    def _schedule_completion(self, di: DynInstr, when: int,
                             cycle: int) -> None:
        """Queue ``di``'s completion event at ``when``.

        Heap-equivalent semantics: a ``when`` at or before the current
        cycle lands at ``cycle + 1`` — exactly when the old heap would
        have popped it (the drain for ``cycle`` has already run).
        """
        if when <= cycle:
            when = cycle + 1
        mask = self._wheel_mask
        if when - cycle <= mask:
            idx = when & mask
            bucket = self._ev_buckets[idx]
            if bucket:
                bucket.append(di)
            else:
                if bucket is None:
                    self._ev_buckets[idx] = [di]
                else:
                    bucket.append(di)
                heappush(self._ev_marks, when)
        else:
            heappush(self._ev_over, (when, di.gseq, di))

    def _schedule_wb_drain(self, when: int, cycle: int) -> None:
        """Occupy one write-buffer entry until ``when``."""
        if when <= cycle:
            when = cycle + 1
        mask = self._wheel_mask
        if when - cycle <= mask:
            idx = when & mask
            if not self._wb_buckets[idx]:
                heappush(self._wb_marks, when)
            self._wb_buckets[idx] += 1
        else:
            heappush(self._wb_over, when)
        self._wb_used += 1

    # ------------------------------------------------------------------ #
    # issue / execute
    # ------------------------------------------------------------------ #

    def _issue(self, cycle: int) -> None:
        # self._execute is looked up per call (not bound at construction)
        # on purpose: RunaheadCore overrides it, and tests monkeypatch it
        # on instances to spy on the issue stream.  The non-memory fast
        # path (fixed-latency completion, no hierarchy, no predictors) is
        # additionally inlined below — one wheel push instead of a Python
        # call per ALU/FP/store instruction — but only when ``_execute``
        # is provably unshadowed: neither overridden on the class
        # (RunaheadCore) nor monkeypatched on the instance (test spies).
        execute = self._execute
        inline = (self._execute_is_base
                  and "_execute" not in self.__dict__)
        threads = self.threads
        ev_buckets = self._ev_buckets
        ev_marks = self._ev_marks
        mask = self._wheel_mask
        issued = False
        queue = self._ready_int
        if queue:
            slots = self._num_int_alu
            while queue and slots > 0:
                _, di = heappop(queue)
                if di.squashed or di.issued or di.completed:
                    continue
                if inline:
                    # _execute's non-load body — keep in sync.
                    ts = threads[di.thread]
                    di.issued = True
                    if di.in_iq:
                        di.in_iq = False
                        if di.iq_is_fp:
                            ts.fq_count -= 1
                            self.fq_used -= 1
                        else:
                            ts.iq_count -= 1
                            self.iq_used -= 1
                        ts.icount -= 1
                    completion = cycle + di.instr.latency
                    idx = completion & mask   # always in-horizon (<= 4)
                    bucket = ev_buckets[idx]
                    if bucket:
                        bucket.append(di)
                    else:
                        if bucket is None:
                            ev_buckets[idx] = [di]
                        else:
                            bucket.append(di)
                        heappush(ev_marks, completion)
                else:
                    execute(di, cycle)
                slots -= 1
                issued = True
        queue = self._ready_ldst
        if queue:
            slots = self._num_ldst
            while queue and slots > 0:
                _, di = heappop(queue)
                if di.squashed or di.issued or di.completed:
                    continue
                if inline and not di.is_load:
                    # Stores at execute are address generation only; the
                    # memory access happens at commit via the write
                    # buffer.  Same non-load body as above.
                    ts = threads[di.thread]
                    di.issued = True
                    if di.in_iq:
                        di.in_iq = False
                        if di.iq_is_fp:
                            ts.fq_count -= 1
                            self.fq_used -= 1
                        else:
                            ts.iq_count -= 1
                            self.iq_used -= 1
                        ts.icount -= 1
                    completion = cycle + di.instr.latency
                    idx = completion & mask
                    bucket = ev_buckets[idx]
                    if bucket:
                        bucket.append(di)
                    else:
                        if bucket is None:
                            ev_buckets[idx] = [di]
                        else:
                            bucket.append(di)
                        heappush(ev_marks, completion)
                else:
                    execute(di, cycle)
                slots -= 1
                issued = True
        queue = self._ready_fp
        if queue:
            slots = self._num_fp
            while queue and slots > 0:
                _, di = heappop(queue)
                if di.squashed or di.issued or di.completed:
                    continue
                if inline:
                    ts = threads[di.thread]
                    di.issued = True
                    if di.in_iq:
                        di.in_iq = False
                        if di.iq_is_fp:
                            ts.fq_count -= 1
                            self.fq_used -= 1
                        else:
                            ts.iq_count -= 1
                            self.iq_used -= 1
                        ts.icount -= 1
                    completion = cycle + di.instr.latency
                    idx = completion & mask
                    bucket = ev_buckets[idx]
                    if bucket:
                        bucket.append(di)
                    else:
                        if bucket is None:
                            ev_buckets[idx] = [di]
                        else:
                            bucket.append(di)
                        heappush(ev_marks, completion)
                else:
                    execute(di, cycle)
                slots -= 1
                issued = True
        if issued:
            # Issuing freed IQ slots (every executed instruction held one):
            # one epoch bump covers the whole stage.
            self._release_epoch += 1

    def _execute(self, di: DynInstr, cycle: int) -> None:
        ts = self.threads[di.thread]
        di.issued = True
        if di.in_iq:
            di.in_iq = False
            if di.iq_is_fp:
                ts.fq_count -= 1
                self.fq_used -= 1
            else:
                ts.iq_count -= 1
                self.iq_used -= 1
            ts.icount -= 1
            # (the release-epoch bump for the IQ slot is batched at the
            # end of _issue — nothing reads the epoch mid-issue.)
        instr = di.instr
        if di.is_load:
            result = self._hier_load(
                ts.tid, instr.pc, instr.addr, cycle + instr.latency)
            completion = result.complete_cycle
            is_ll = result.long_latency
            di.is_ll = is_ll
            di.level = result.level
            stats = ts.stats
            stats.loads_executed += 1
            ts.lll_pred.train(instr.pc, is_ll)
            predicted = di.predicted_ll
            if predicted is not None:
                stats.lll_pred_loads += 1
                if predicted == is_ll:
                    stats.lll_pred_correct += 1
                if is_ll:
                    stats.lll_pred_miss_actual += 1
                    if predicted:
                        stats.lll_pred_miss_correct += 1
            if is_ll:
                stats.ll_loads += 1
            if result.trigger:
                di.in_detects = True
                # Detection wheel push (detect horizons are L2-bounded,
                # but the spill guard keeps odd configs exact).
                when = result.detect_cycle
                if when <= cycle:
                    when = cycle + 1
                mask = self._wheel_mask
                if when - cycle <= mask:
                    idx = when & mask
                    bucket = self._dt_buckets[idx]
                    if bucket:
                        bucket.append(di)
                    else:
                        if bucket is None:
                            self._dt_buckets[idx] = [di]
                        else:
                            bucket.append(di)
                        heappush(self._dt_marks, when)
                else:
                    heappush(self._dt_over, (when, di.gseq, di))
            di.fill_line = result.fill_line
            if result.level is not ServiceLevel.L1:
                ts.outstanding_misses += 1
                di.pending = -1  # marks "counted as outstanding miss"
        else:
            completion = cycle + instr.latency
        # Completion wheel push (every path lands strictly after
        # ``cycle``, so no clamp is needed here — see _schedule_completion
        # for the cold-path form with the clamp).
        mask = self._wheel_mask
        if completion - cycle <= mask:
            idx = completion & mask
            bucket = self._ev_buckets[idx]
            if bucket:
                bucket.append(di)
            else:
                if bucket is None:
                    self._ev_buckets[idx] = [di]
                else:
                    bucket.append(di)
                heappush(self._ev_marks, completion)
        else:
            heappush(self._ev_over, (completion, di.gseq, di))

    # ------------------------------------------------------------------ #
    # dispatch (rename + resource allocation)
    # ------------------------------------------------------------------ #

    def _dispatch(self, cycle: int) -> None:
        # The resource gates and the rename/allocate sequence are the body
        # of _try_dispatch, inlined: dispatch attempts run every cycle and
        # mostly *reject* (a full shared structure blocks the head for
        # hundreds of cycles during a memory stall), so the method call
        # per attempt was pure overhead.  _try_dispatch remains the
        # overridable/self-contained form; RunaheadCore overrides
        # _dispatch with the plain per-attempt loop because its
        # _try_dispatch must observe every attempt to propagate INV.
        #
        # A head rejected by a *shared-resource* gate is latched against
        # the release epoch: with the same head and no release since, the
        # same gate must fail again (shared counters only grew), so the
        # rejection is re-asserted without re-proving it.  Policy-cap
        # rejections (can_dispatch) are never latched — their verdict may
        # change with any co-runner state.
        budget = self._decode_width
        any_ready = False
        blocked_by_resource = False
        dispatched = 0
        n = self._n_threads
        release_epoch = self._release_epoch
        hoisted = False
        # The rotation (offset from commit) is filtered to the threads
        # with a non-empty front-end queue: nothing below can act on an
        # empty one, and at high thread counts most rotation hops were
        # exactly that.
        if n == 1:
            order = self.threads
        else:
            rot_cache = self._rot_cache
            slot = (cycle + 1) % n
            fe_mask = self._fe_mask
            if rot_cache is None or fe_mask == self._full_mask:
                order = self._rotations[slot]
            else:
                key = fe_mask * n + slot
                order = rot_cache[key]
                if order is None:
                    order = tuple(
                        ts for ts in self._rotations[slot]
                        if fe_mask >> ts.tid & 1)
                    rot_cache[key] = order
        for ts in order:
            if budget == 0:
                break
            if cycle < ts.dispatch_wait_until:
                continue  # head not through the front end yet
            fe = ts.fe_queue
            if not fe:
                continue
            head = fe[0]
            if head is ts.dispatch_blocked_head:
                if ts.dispatch_blocked_epoch == release_epoch:
                    any_ready = True
                    blocked_by_resource = True
                    continue
                ts.dispatch_blocked_head = None
            if head.fe_ready > cycle:
                ts.dispatch_wait_until = head.fe_ready
                continue
            if not hoisted:
                hoisted = True
                # Shared counters as locals for the whole stage: nothing
                # between individual dispatches observes them
                # (can_dispatch reads only per-thread counts), so batching
                # the read-modify-writes is observationally identical;
                # they are written back before the resource-stall hook,
                # which may flush.  Hoisted lazily: most cycles skip every
                # thread and would waste the nine-local prologue.
                rob_used = self.rob_used
                lsq_used = self.lsq_used
                iq_used = self.iq_used
                fq_used = self.fq_used
                int_regs_used = self.int_regs_used
                fp_regs_used = self.fp_regs_used
                track_dep = self._track_ll_dep
                can_dispatch = self._policy_can_dispatch  # None: allow-all
                ready_by_op = self._ready_by_op
                rob_size = self._rob_size
                lsq_size = self._lsq_size
                int_iq_size = self._int_iq_size
                fp_iq_size = self._fp_iq_size
                int_rename_regs = self._int_rename_regs
                fp_rename_regs = self._fp_rename_regs
                fe_capacity = self._fe_capacity
                # When every shared structure has at least ``budget``
                # slots of headroom, no per-instruction resource gate can
                # fail anywhere in this stage call (dispatches consume at
                # most one slot per structure each, and ``budget`` bounds
                # the total), so the whole gate block is skipped.
                gates_free = (
                    rob_size - rob_used >= budget
                    and lsq_size - lsq_used >= budget
                    and int_iq_size - iq_used >= budget
                    and fp_iq_size - fq_used >= budget
                    and int_rename_regs - int_regs_used >= budget
                    and fp_rename_regs - fp_regs_used >= budget)
            rename_map = ts.rename_map
            window_append = ts.window.append
            fe_was_full = len(fe) >= fe_capacity
            # Per-thread counters as locals for this thread's burst;
            # flushed back before any can_dispatch call (the one consumer
            # that may read them mid-burst) and at burst end.
            tl_rob = ts.rob_count
            tl_lsq = ts.lsq_count
            tl_iq = ts.iq_count
            tl_fq = ts.fq_count
            tl_ir = ts.int_regs
            tl_fr = ts.fp_regs
            tl_dirty = False
            while budget > 0 and fe:
                di = fe[0]
                if di.fe_ready > cycle:
                    ts.dispatch_wait_until = di.fe_ready
                    break
                any_ready = True
                instr = di.instr
                is_mem = di.is_load or di.is_store
                fp_queue = instr.fp_queue
                if not gates_free:
                    # Shared-resource gates (block => resource stall).
                    if rob_used >= rob_size:
                        ts.dispatch_blocked_head = di
                        ts.dispatch_blocked_epoch = release_epoch
                        blocked_by_resource = True
                        break
                    if is_mem and lsq_used >= lsq_size:
                        ts.dispatch_blocked_head = di
                        ts.dispatch_blocked_epoch = release_epoch
                        blocked_by_resource = True
                        break
                    if fp_queue:
                        if fq_used >= fp_iq_size:
                            ts.dispatch_blocked_head = di
                            ts.dispatch_blocked_epoch = release_epoch
                            blocked_by_resource = True
                            break
                    elif iq_used >= int_iq_size:
                        ts.dispatch_blocked_head = di
                        ts.dispatch_blocked_epoch = release_epoch
                        blocked_by_resource = True
                        break
                    if di.has_dest:
                        if di.dest_fp:
                            if fp_regs_used >= fp_rename_regs:
                                ts.dispatch_blocked_head = di
                                ts.dispatch_blocked_epoch = release_epoch
                                blocked_by_resource = True
                                break
                        elif int_regs_used >= int_rename_regs:
                            ts.dispatch_blocked_head = di
                            ts.dispatch_blocked_epoch = release_epoch
                            blocked_by_resource = True
                            break
                if can_dispatch is not None:
                    if tl_dirty:
                        tl_dirty = False
                        ts.rob_count = tl_rob
                        ts.lsq_count = tl_lsq
                        ts.iq_count = tl_iq
                        ts.fq_count = tl_fq
                        ts.int_regs = tl_ir
                        ts.fp_regs = tl_fr
                    if not can_dispatch(ts, di):
                        break  # policy cap, not a resource stall
                # All checks passed: allocate and rename.  (No ``di.inv``
                # handling here: only RunaheadCore produces INV records,
                # and it dispatches through _try_dispatch.)
                rob_used += 1
                tl_rob += 1
                tl_dirty = True
                if is_mem:
                    lsq_used += 1
                    tl_lsq += 1
                if fp_queue:
                    fq_used += 1
                    tl_fq += 1
                else:
                    iq_used += 1
                    tl_iq += 1
                di.in_iq = True
                di.iq_is_fp = fp_queue
                parents: list[DynInstr] | None = [] if track_dep else None
                for src in instr.srcs:
                    prod = rename_map[src]
                    if prod is None:
                        continue
                    if track_dep and (prod.is_load
                                      or prod.ll_parents is not None
                                      or prod.ll_dep):
                        parents.append(prod)
                        prod.refs += 1
                    if not prod.completed:
                        di.pending += 1
                        if prod.waiter0 is None:
                            prod.waiter0 = di
                        elif prod.waiters is None:
                            prod.waiters = [di]
                        else:
                            prod.waiters.append(di)
                if parents:
                    di.ll_parents = tuple(parents)
                if di.has_dest:
                    dest = instr.dest
                    di.old_map = rename_map[dest]
                    rename_map[dest] = di
                    di.refs += 1  # rename-current; the old entry's ref
                    #              transfers to the old_map backref
                    if di.dest_fp:
                        fp_regs_used += 1
                        tl_fr += 1
                    else:
                        int_regs_used += 1
                        tl_ir += 1
                window_append(di)
                if di.pending == 0:
                    heappush(ready_by_op[instr.op_i], (di.gseq, di))
                fe.popleft()
                budget -= 1
                dispatched += 1
            if tl_dirty:
                ts.rob_count = tl_rob
                ts.lsq_count = tl_lsq
                ts.iq_count = tl_iq
                ts.fq_count = tl_fq
                ts.int_regs = tl_ir
                ts.fp_regs = tl_fr
            if fe_was_full and len(fe) < fe_capacity:
                # Pops opened fetch-queue headroom: eligibility changed.
                self._fetch_wake = 0
            if not fe:
                self._fe_mask &= ~ts.tid_bit
        if dispatched:
            self.rob_used = rob_used
            self.lsq_used = lsq_used
            self.iq_used = iq_used
            self.fq_used = fq_used
            self.int_regs_used = int_regs_used
            self.fp_regs_used = fp_regs_used
        elif not any_ready and self._policy_can_dispatch is None:
            # No head anywhere was through the front end: nothing to
            # dispatch (and no resource-stall cycle to account) before the
            # earliest observed head-ready time.  Empty queues re-arm via
            # the fetch stage; a policy with a dispatch cap must be probed
            # every cycle, so the latch stays disarmed for it.
            wake = cycle + (1 << 30)
            for ts in self.threads:
                wait_until = ts.dispatch_wait_until
                if cycle < wait_until < wake:
                    wake = wait_until
            self._dispatch_wake = wake
        if any_ready and dispatched == 0 and blocked_by_resource:
            self.stats.resource_stall_cycles += 1
            on_resource_stall = self._policy_on_resource_stall
            if on_resource_stall is not None:   # None: marked no-op hook
                on_resource_stall(cycle)
            elif self._policy_can_dispatch is None:
                # Every ready head hit a full shared resource, the hook
                # is a no-op and there is no dispatch cap: the verdict
                # repeats until a release (epoch, captured *before* any
                # hook could flush), a head arriving through the front
                # end by time, or a fetch/flush invalidation.
                wake = cycle + (1 << 30)
                for ts in self.threads:
                    wait_until = ts.dispatch_wait_until
                    if cycle < wait_until < wake:
                        wake = wait_until
                self._stall_latch_until = wake
                self._stall_latch_epoch = release_epoch

    def _try_dispatch(self, ts: ThreadState, di: DynInstr) -> bool | None:
        """Dispatch ``di``; returns None on success, else whether the block
        was caused by a full shared resource (vs. a policy cap)."""
        if self.rob_used >= self._rob_size:
            return True
        instr = di.instr
        is_mem = di.is_load or di.is_store
        if is_mem and self.lsq_used >= self._lsq_size:
            return True
        fp_queue = instr.fp_queue
        if fp_queue:
            if self.fq_used >= self._fp_iq_size:
                return True
        elif self.iq_used >= self._int_iq_size:
            return True
        if di.has_dest:
            if di.dest_fp:
                if self.fp_regs_used >= self._fp_rename_regs:
                    return True
            elif self.int_regs_used >= self._int_rename_regs:
                return True
        if not self.policy.can_dispatch(ts, di):
            return False
        # All checks passed: allocate and rename.
        self.rob_used += 1
        ts.rob_count += 1
        if is_mem:
            self.lsq_used += 1
            ts.lsq_count += 1
        if fp_queue:
            self.fq_used += 1
            ts.fq_count += 1
        else:
            self.iq_used += 1
            ts.iq_count += 1
        di.in_iq = True
        di.iq_is_fp = fp_queue
        rename_map = ts.rename_map
        track_dep = self._track_ll_dep
        parents: list[DynInstr] | None = [] if track_dep else None
        # Runahead INV instructions carry bogus values: they neither wait
        # for producers nor execute for real (see repro.runahead.core).
        wait = not di.inv
        for src in instr.srcs:
            prod = rename_map[src]
            if prod is None:
                continue
            if track_dep and (prod.is_load or prod.ll_parents is not None
                              or prod.ll_dep):
                parents.append(prod)
                prod.refs += 1
            if wait and not prod.completed:
                di.pending += 1
                if prod.waiter0 is None:
                    prod.waiter0 = di
                elif prod.waiters is None:
                    prod.waiters = [di]
                else:
                    prod.waiters.append(di)
        if parents:
            di.ll_parents = tuple(parents)
        if di.has_dest:
            dest = instr.dest
            di.old_map = rename_map[dest]
            rename_map[dest] = di
            di.refs += 1  # rename-current; the old entry's ref transfers
            #              to the old_map backref
            if di.dest_fp:
                self.fp_regs_used += 1
                ts.fp_regs += 1
            else:
                self.int_regs_used += 1
                ts.int_regs += 1
        ts.window.append(di)
        if di.pending == 0:
            heappush(self._ready_by_op[instr.op_i], (di.gseq, di))
        return None

    # ------------------------------------------------------------------ #
    # fetch
    # ------------------------------------------------------------------ #

    def fetchable(self, ts: ThreadState, cycle: int) -> bool:
        """Base (policy-independent) fetch eligibility for ``ts``."""
        return (ts.fetch_blocked_until <= cycle
                and ts.waiting_branch is None
                and len(ts.fe_queue) < self._fe_capacity)

    def _rebuild_fetch_candidates(self) -> None:
        """Re-derive the policy-unstalled thread list (tid order).

        Normal operation maintains the list *incrementally* (a remove or
        tid-ordered insert per stall/unstall transition — see
        :meth:`ThreadState._sync_policy_stall`); this full rebuild is the
        recovery form for tests and tools that mutate stall state behind
        the transition function's back.  The list object's identity is
        stable for the core's lifetime (the fused run loop hoists it), so
        the rebuild mutates in place.
        """
        self._fetch_candidates[:] = [ts for ts in self.threads
                                     if not ts.policy_stalled_flag]
        self._fetch_wake = 0

    def _compute_fetch_wake(self, cycle: int) -> int:
        """Earliest cycle an empty fetch order could refill by *time*.

        Called right after fetch_order returned empty.  Threads blocked on
        I-fetch or redirect refill unblock at a known cycle; every other
        blocker (branch wait, full fetch queue, policy stall) clears
        through an event that resets the latch to 0.  A far-future result
        is fine: the fast-forward machinery still bounds progress and
        diagnoses genuine wedges.
        """
        wake = cycle + (1 << 30)
        for ts in self.threads:
            blocked_until = ts.fetch_blocked_until
            if cycle < blocked_until < wake:
                wake = blocked_until
        return wake

    def in_runahead(self, ts: ThreadState) -> bool:
        """Whether ``ts`` is speculating past a blocked long-latency load.

        Always False on the base core; :class:`repro.runahead.RunaheadCore`
        overrides this.  Policies consult it to suppress fetch-window
        bookkeeping during runahead episodes.
        """
        return False

    def _fetch_thread(self, ts: ThreadState, budget: int, cycle: int,
                      ignore_stall: bool) -> int:
        trace_get = ts.trace_get
        trace_static = ts.trace_static   # None: duck-typed stub trace
        body_len = ts.trace_body_len
        # pc_address(), inlined: every trace maps PCs affinely at 4 bytes
        # per instruction ("code region, 4 bytes per static instruction"),
        # so the cached origin folds the constant part and the
        # per-instruction cost is arithmetic rather than a method call.
        pc_origin = ts.pc_origin
        on_fetch = self._policy_on_fetch       # None: no-op for all instrs
        on_fetch_load = self._policy_on_fetch_load  # None: not loads-only
        fe_queue = ts.fe_queue
        fe_append = ts.fe_append
        line_shift = self._line_shift
        fe_ready = cycle + self._frontend_depth
        tid = ts.tid
        gseq = self._gseq
        allowed_end = ts.allowed_end
        count = 0
        fe_was_empty = not fe_queue
        limit = self._fe_capacity - len(fe_queue)
        if budget < limit:
            limit = budget
        pool = self._di_pool
        while count < limit:
            fetch_index = ts.fetch_index
            if not ignore_stall and allowed_end is not None \
                    and fetch_index > allowed_end:
                break
            if trace_static is not None:
                # get(), fast half inlined: iteration-invariant slots are
                # pre-materialized; only varying slots pay the call.
                instr = trace_static[fetch_index % body_len]
                if instr is None:
                    instr = trace_get(fetch_index)
            else:
                instr = trace_get(fetch_index)
            pc_addr = pc_origin + instr.pc * 4
            line = pc_addr >> line_shift
            if line != ts.last_ifetch_line:
                done = self._hier_ifetch(tid, pc_addr, cycle)
                ts.last_ifetch_line = line
                if done > cycle:
                    ts.fetch_blocked_until = done
                    break
            gseq += 1
            if pool:
                di = pool.pop()
                # DynInstr.reinit, inlined (one call per fetched
                # instruction was measurable) — keep in sync.
                di.instr = instr
                di.thread = tid
                di.seq = fetch_index
                di.gseq = gseq
                di.pending = 0
                di.fe_ready = fe_ready
                di.issued = False
                di.completed = False
                di.has_dest = instr.has_dest
                di.dest_fp = instr.dest_fp
                di.is_load = instr.is_load
                di.is_store = instr.is_store
                di.is_branch = instr.is_branch
                di.is_ll = False
                di.fill_line = None
                di.ll_dep = False
                di.retired = False
            else:
                di = DynInstr(instr, tid, fetch_index, gseq, fe_ready)
            fe_append(di)
            ts.fetch_index = fetch_index + 1
            ts.icount += 1
            count += 1
            if di.is_load:
                di.predicted_ll = ts.lll_predict(instr.pc)
                if on_fetch_load is not None:
                    on_fetch_load(di, ts)
                    allowed_end = ts.allowed_end  # the hook may update it
            if di.is_branch:
                taken = instr.taken
                prediction = self.gshare.update(instr.pc, taken, tid)
                target_known = True
                if taken:
                    target_known = self.btb.lookup(instr.pc)
                    self.btb.insert(instr.pc)
                if prediction != taken or not target_known:
                    ts.waiting_branch = di
                    ts.branch_wait_since = cycle
                    if on_fetch is not None:
                        on_fetch(di, ts)
                    break
                if on_fetch is not None:
                    on_fetch(di, ts)
                if taken:
                    # A correctly-predicted taken branch ends the block.
                    break
            elif on_fetch is not None:
                on_fetch(di, ts)
            if on_fetch is not None:
                allowed_end = ts.allowed_end  # the hook may update it
        self._gseq = gseq
        if count:
            # Batched: nothing inside the burst reads the fetched counter.
            ts.stats.fetched += count
            if fe_was_empty:
                # A fresh head exists where dispatch saw nothing.
                self._dispatch_wake = 0
                self._stall_latch_until = 0
                self._fe_mask |= 1 << tid
        # The fetch index may have crossed allowed_end mid-burst; fold the
        # transition into the event-driven stall state.
        ts._sync_policy_stall(cycle)
        return count

    # ------------------------------------------------------------------ #
    # flush (policy-triggered squash)
    # ------------------------------------------------------------------ #

    def flush_thread(self, ts: ThreadState, after_seq: int,
                     cancel_fills: bool | None = None) -> int:
        """Squash all of ``ts``'s instructions younger than ``after_seq``.

        Rewinds fetch to ``after_seq + 1``; returns the number of squashed
        instructions.  ``cancel_fills`` overrides the configured squash
        semantics: ``False`` lets in-flight cache fills of squashed loads
        continue (runahead exit — the fills *are* the prefetches), ``None``
        defers to ``cfg.memory.cancel_squashed_fills``.
        """
        squashed = 0
        fe = ts.fe_queue
        icount_delta = 0
        while fe and fe[-1].seq > after_seq:
            di = fe.pop()
            di.squashed = True
            icount_delta += 1
            squashed += 1
        if cancel_fills is None:
            cancel_fills = self.cfg.memory.cancel_squashed_fills
        window = ts.window
        rename_map = ts.rename_map
        ll_owners = ts.ll_owners
        cycle = self.cycle
        # Per-resource releases are tallied locally and applied once after
        # the loop; a deep flush (up to a ROB slice) would otherwise do
        # six read-modify-writes per squashed instruction.  Nothing inside
        # the loop observes the shared counters (clear_owner touches only
        # the policy-stall bookkeeping, cancel_fill only the hierarchy).
        rob_delta = lsq_delta = iq_delta = fq_delta = 0
        int_regs_delta = fp_regs_delta = 0
        while window and window[-1].seq > after_seq:
            di = window.pop()
            di.squashed = True
            squashed += 1
            if cancel_fills and di.fill_line is not None and not di.completed:
                self.hierarchy.cancel_fill(di.fill_line, di.instr.addr,
                                           cycle)
            rob_delta += 1
            if di.is_load or di.is_store:
                lsq_delta += 1
            if di.in_iq:
                di.in_iq = False
                icount_delta += 1
                if di.iq_is_fp:
                    fq_delta += 1
                else:
                    iq_delta += 1
            if di.has_dest:
                # Undo the rename: the old mapping's backref transfers
                # back to being the current entry; the squashed record
                # drops its own current-entry ref.
                rename_map[di.instr.dest] = di.old_map
                di.refs -= 1
                if di.dest_fp:
                    fp_regs_delta += 1
                else:
                    int_regs_delta += 1
            parents = di.ll_parents
            if parents is not None:
                di.ll_parents = None
                for p in parents:
                    p.refs -= 1
                    if p.retired and not p.refs:
                        self._maybe_recycle(p, ts)
            if di in ll_owners:
                ts.clear_owner(di, cycle)
        if rob_delta:
            ts.rob_count -= rob_delta
            self.rob_used -= rob_delta
        if lsq_delta:
            ts.lsq_count -= lsq_delta
            self.lsq_used -= lsq_delta
        if iq_delta:
            ts.iq_count -= iq_delta
            self.iq_used -= iq_delta
        if fq_delta:
            ts.fq_count -= fq_delta
            self.fq_used -= fq_delta
        if int_regs_delta:
            ts.int_regs -= int_regs_delta
            self.int_regs_used -= int_regs_delta
        if fp_regs_delta:
            ts.fp_regs -= fp_regs_delta
            self.fp_regs_used -= fp_regs_delta
        if icount_delta:
            ts.icount -= icount_delta
        if ts.waiting_branch is not None and ts.waiting_branch.squashed:
            ts.waiting_branch = None
            ts.stats.branch_stall_cycles += self.cycle - ts.branch_wait_since
        ts.fetch_index = after_seq + 1
        ts.last_ifetch_line = -1
        # The squash may have removed the ROB head (or the whole window)
        # and may have emptied the front-end queue; re-derive the
        # event-maintained head flag and both activity masks.
        bit = ts.tid_bit
        if window and window[0].completed:
            ts.head_ready = True
            self._heads_mask |= bit
        else:
            ts.head_ready = False
            self._heads_mask &= ~bit
        if fe:
            self._fe_mask |= bit
        else:
            self._fe_mask &= ~bit
        ts.stats.squashed += squashed
        ts.stats.flushes += 1
        # Squashing released shared resources and rewound the fetch index:
        # invalidate dispatch and fetch latches, re-derive the stall state.
        self._release_epoch += 1
        self._fetch_wake = 0
        self._dispatch_wake = 0
        self._stall_latch_until = 0
        ts._sync_policy_stall(cycle)
        return squashed

    # ------------------------------------------------------------------ #
    # fast-forward
    # ------------------------------------------------------------------ #

    def _head_retirable(self, ts: ThreadState, wb_full: bool) -> bool:
        """Can ``ts``'s ROB head make commit-stage progress next cycle?

        Part of the fast-forward probe; :class:`repro.runahead.RunaheadCore`
        overrides it because pseudo-retirement and runahead entry can make
        progress on heads the base commit stage would stall on.
        """
        window = ts.window
        if not window or not window[0].completed:
            return False
        return not window[0].is_store or not wb_full

    def _next_cycle(self, cycle: int) -> int:
        # step() has already established that nothing can fetch or issue
        # at ``nxt``; find the earliest future cycle where anything can
        # happen, or prove the pipeline is wedged.  The wheel mark heaps
        # are exact indexes of the pending bucket cycles (one int per
        # armed cycle, stale marks popped at drain), so the earliest-
        # event peeks stay O(1) without the old tuple heaps.
        nxt = cycle + 1
        candidates = []
        wb_full = self._wb_used >= self._wb_entries
        head_retirable = self._head_retirable
        for ts in self.threads:
            if head_retirable(ts, wb_full):
                return nxt
            fe = ts.fe_queue
            if fe:
                head_ready = fe[0].fe_ready
                if head_ready <= nxt:
                    return nxt
                candidates.append(head_ready)
            if ts.fetch_blocked_until > nxt:
                candidates.append(ts.fetch_blocked_until)
        if self._ev_marks:
            candidates.append(self._ev_marks[0])
        if self._ev_over:
            candidates.append(self._ev_over[0][0])
        if self._dt_marks:
            candidates.append(self._dt_marks[0])
        if self._dt_over:
            candidates.append(self._dt_over[0][0])
        if self._wb_marks:
            candidates.append(self._wb_marks[0])
        if self._wb_over:
            candidates.append(self._wb_over[0])
        if not candidates:
            raise SimulationDeadlock(
                f"no future events at cycle {cycle}; pipeline is wedged")
        target = min(candidates)
        if target <= nxt:
            return nxt
        # (skipped policy-stall cycles are covered by the open stall
        # intervals — no transition can occur in a skipped cycle.)
        return target
