"""Struct-of-arrays engine backend: the ``soa`` entry in ``backends``.

:class:`SoACore` re-implements every hot body of :class:`repro.pipeline.
core.SMTCore` over parallel flat columns indexed by *arena slot* (see
:mod:`repro.pipeline.dyninstr` for the column schema and the packed
heap/wheel entry encoding).  The architectural contract is the object
engine's, bit for bit: the golden-stats matrix runs under both backends
and asserts identical counters cell by cell (``tests/test_golden_stats.
py``), which is what licenses selecting the backend per
:class:`repro.api.RunSpec` without touching result semantics.

What changes relative to the object engine, and why it is faster:

* **No per-instruction objects on the hot path.**  A dynamic instruction
  is a slot number; its fields live in parallel Python lists, so the
  stage loops do list indexing (a C-level fast path on small ints)
  instead of attribute loads through ``__slots__`` descriptors, and the
  eleven per-record booleans collapse into single-mask tests against one
  ``flags`` word.
* **Packed int heap/wheel entries.**  Ready queues and the event wheels
  hold ``(gseq << SLOT_SHIFT) | slot`` ints: heap pushes allocate no
  ``(gseq, di)`` tuples, bucket age-sorts are key-less int sorts, and
  the embedded age stamp doubles as the generation check that replaces
  the object engine's reliance on GC liveness.
* **Explicit slot reclamation.**  The object engine pools retired
  records and lets the GC keep squashed ones alive for any straggling
  reference (queued events, waiter lists, policy-retained records).  The
  arena instead frees a slot at the *last* point the engine itself can
  reach it — retire with no live references, flush, or the drain of the
  final queued event — and every stale reference is defused either by
  the generation check (packed entries), the ``F_FREED`` guard bit
  (reclaim sites), or the dead-view tombstone (policy-retained
  :class:`~repro.pipeline.dyninstr.SoAView` proxies).
* **Pristine free-list discipline.**  Mirroring ``DynInstr.reinit``'s
  pool invariant, every free site leaves its slot with ``pending == 0``,
  ``refs == 0``, ``waiter0 == -1``, ``waiters``/``old_map``/
  ``ll_parents``/``fill_line``/``view`` cleared — most of which the
  retire path gets for free from the commit/drain invariants — so the
  per-fetch allocation writes only the six columns that actually vary
  (instr, thread, seq, gseq, fe_ready, flags).

Views are created lazily, only when a policy hook or test actually
touches a record, so hook-free policies (plain ICOUNT) allocate nothing
per instruction at all.

Deliberately unsupported: :class:`repro.runahead.RunaheadCore`-style
subclassing of the commit/dispatch internals.  Policies that declare a
``core_class`` keep riding the object engine (``experiments.runner.
build_core`` gives ``core_class`` precedence over the backend), and the
overridable object-engine extension points (``_complete``, ``_execute``,
``_commit_one``, ``_try_dispatch``) raise loudly here instead of
silently desynchronizing.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING

from repro.isa import NUM_ARCH_REGS
from repro.memory.hierarchy import MemoryHierarchy, ServiceLevel
from repro.pipeline.core import (
    SimulationDeadlock,
    SimulationLimitExceeded,
    SMTCore,
)
from repro.pipeline.dyninstr import (
    F_COMPLETED,
    F_DEST_FP,
    F_FREED,
    F_HAS_DEST,
    F_IN_DETECTS,
    F_IN_IQ,
    F_IQ_FP,
    F_IS_BRANCH,
    F_IS_LL,
    F_IS_LOAD,
    F_IS_STORE,
    F_ISSUED,
    F_LL_DEP,
    F_RETIRED,
    F_SQUASHED,
    SLOT_MASK,
    SLOT_SHIFT,
    SoAView,
    instr_flags,
)
from repro.pipeline.thread_state import ThreadState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import SMTConfig
    from repro.policies.base import FetchPolicy
    from repro.workloads.trace import SyntheticTrace

#: Initial arena capacity (slots); the arena doubles on demand, bounded
#: by the packed-entry slot width.
_INITIAL_CAPACITY = 2048

_F_MEM = F_IS_LOAD | F_IS_STORE
_F_DEAD_OR_DONE = F_SQUASHED | F_ISSUED | F_COMPLETED
_F_NO_WAKE = F_SQUASHED | F_ISSUED
_F_RETIRED_FREED = F_RETIRED | F_FREED


class SoACore(SMTCore):
    """The struct-of-arrays engine (cycle-exact with :class:`SMTCore`)."""

    __slots__ = (
        "_capacity", "_free",
        "_col_instr", "_col_thread", "_col_seq", "_col_gseq",
        "_col_packed",
        "_col_pending", "_col_fe_ready", "_col_flags", "_col_refs",
        "_col_waiter0", "_col_waiters", "_col_old_map", "_col_ll_parents",
        "_col_pred_ll", "_col_fill_line", "_col_level", "_col_views",
    )

    def __init__(self, cfg: SMTConfig, traces: list[SyntheticTrace],
                 policy: FetchPolicy,
                 hierarchy: MemoryHierarchy | None = None):
        super().__init__(cfg, traces, policy, hierarchy)
        # Object-record pooling is meaningless here (no records).
        self._di_pool = None
        cap = _INITIAL_CAPACITY
        self._capacity = cap
        self._col_instr: list = [None] * cap
        self._col_thread = [0] * cap
        self._col_seq = [0] * cap
        # -1 never matches a packed entry's stamp (gseq starts at 1), so
        # an unallocated slot defuses every stale reference.
        self._col_gseq = [-1] * cap
        # The slot's own packed stamp ``(gseq << SLOT_SHIFT) | slot``,
        # written once at allocation: generation checks become one
        # allocation-free int equality against the queued entry instead
        # of a shift (whose result CPython would have to box per check),
        # and re-pushing a slot reuses the stamp.  0 never matches a
        # queued entry (their gseq is >= 1).
        self._col_packed = [0] * cap
        self._col_pending = [0] * cap
        self._col_fe_ready = [0] * cap
        self._col_flags = [F_FREED] * cap
        self._col_refs = [0] * cap
        self._col_waiter0 = [-1] * cap
        self._col_waiters: list = [None] * cap
        self._col_old_map = [-1] * cap
        self._col_ll_parents: list = [None] * cap
        self._col_pred_ll: list = [None] * cap
        self._col_fill_line: list = [None] * cap
        self._col_level: list = [None] * cap
        self._col_views: list = [None] * cap
        # Free-list stack, seeded so pop() hands out slot 0 first.  Every
        # slot on it is *pristine* (see the module docstring): the alloc
        # path relies on pending/refs/waiter0/waiters/old_map/ll_parents/
        # fill_line/view being clear and does not re-write them.
        self._free = list(range(cap - 1, -1, -1))
        for ts in self.threads:
            # The rename map holds slot numbers (-1 = no in-flight
            # producer) instead of record references.
            ts.rename_map = [-1] * NUM_ARCH_REGS
            trace_static = ts.trace_static
            if trace_static is not None:
                ts.trace_flags = [
                    None if instr is None else instr_flags(instr)
                    for instr in trace_static]

    # ------------------------------------------------------------------ #
    # arena
    # ------------------------------------------------------------------ #

    def view(self, slot: int) -> SoAView:
        """The (cached, generation-stamped) view of ``slot``'s occupant."""
        v = self._col_views[slot]
        if v is None:
            v = self._col_views[slot] = SoAView(self, slot,
                                                self._col_gseq[slot])
        return v

    def _soa_grow(self) -> None:
        """Double the arena in place (cold; all columns keep identity)."""
        old = self._capacity
        new = old * 2
        if new > (1 << SLOT_SHIFT):
            raise RuntimeError(
                f"SoA arena cannot grow past {1 << SLOT_SHIFT} slots")
        self._col_instr.extend([None] * old)
        self._col_thread.extend([0] * old)
        self._col_seq.extend([0] * old)
        self._col_gseq.extend([-1] * old)
        self._col_packed.extend([0] * old)
        self._col_pending.extend([0] * old)
        self._col_fe_ready.extend([0] * old)
        self._col_flags.extend([F_FREED] * old)
        self._col_refs.extend([0] * old)
        self._col_waiter0.extend([-1] * old)
        self._col_waiters.extend([None] * old)
        self._col_old_map.extend([-1] * old)
        self._col_ll_parents.extend([None] * old)
        self._col_pred_ll.extend([None] * old)
        self._col_fill_line.extend([None] * old)
        self._col_level.extend([None] * old)
        self._col_views.extend([None] * old)
        self._free.extend(range(new - 1, old - 1, -1))
        self._capacity = new

    # ------------------------------------------------------------------ #
    # object-engine extension points that cannot apply here
    # ------------------------------------------------------------------ #

    def _complete(self, di, cycle):  # pragma: no cover - guard
        raise NotImplementedError(
            "SoACore inlines completion handling; subclass the object "
            "engine (backend 'object') instead")

    def _process_events(self, cycle):  # pragma: no cover - guard
        raise NotImplementedError(
            "SoACore inlines event draining; subclass the object engine "
            "(backend 'object') instead")

    def _execute(self, di, cycle):  # pragma: no cover - guard
        raise NotImplementedError(
            "SoACore inlines execution in _issue; subclass the object "
            "engine (backend 'object') instead")

    def _commit_one(self, ts, cycle):  # pragma: no cover - guard
        raise NotImplementedError(
            "SoACore has no per-record commit path; subclass the object "
            "engine (backend 'object') instead")

    def _try_dispatch(self, ts, di):  # pragma: no cover - guard
        raise NotImplementedError(
            "SoACore has no per-record dispatch path; subclass the "
            "object engine (backend 'object') instead")

    # ------------------------------------------------------------------ #
    # top-level driving
    # ------------------------------------------------------------------ #

    def _run_until(self, max_commits: int, max_cycles: int | None) -> None:
        limit = max_cycles if max_cycles is not None else self.cfg.max_cycles
        if type(self).step is not SoACore.step:
            # A subclass changed per-cycle behavior: drive it generically.
            step = self.step
            while True:
                step()
                if self._committed_watermark >= max_commits:
                    return
                if self.cycle >= limit:
                    raise SimulationLimitExceeded(
                        f"exceeded {limit} cycles without reaching "
                        f"{max_commits} commits")
        # The fused copy of step(), mirroring SMTCore._run_until body for
        # body on the columns — keep the two engines in sync; the golden
        # matrix pins them to identical architectural behavior.
        mask = self._wheel_mask
        ev_buckets = self._ev_buckets
        ev_marks = self._ev_marks
        ev_over = self._ev_over
        dt_buckets = self._dt_buckets
        dt_marks = self._dt_marks
        dt_over = self._dt_over
        wb_buckets = self._wb_buckets
        wb_marks = self._wb_marks
        wb_over = self._wb_over
        ready_int = self._ready_int
        ready_ldst = self._ready_ldst
        ready_fp = self._ready_fp
        ready_by_op = self._ready_by_op
        threads = self.threads
        commit_stage = self._commit_stage
        dispatch_stage = self._dispatch_stage
        issue_stage = self._issue_stage
        fetch_thread = self._fetch_thread
        next_cycle = self._next_cycle
        policy_fetch_order = self._policy_fetch_order
        policy_fetch_pending = self._policy_fetch_pending
        on_load_complete = self._policy_on_load_complete
        olc_cleanup_only = getattr(
            type(self.policy).on_load_complete,
            "_identity_keyed_cleanup", False)
        on_ll_detect = self.policy.on_ll_detect
        ll_detect_is_base = getattr(
            type(self.policy).on_ll_detect, "_is_default_hook", False)
        fetch_width = self._fetch_width
        fetch_max_threads = self._fetch_max_threads
        fast_forward = self._fast_forward
        fetch_order_is_base = self._fetch_order_is_base
        fe_capacity = self._fe_capacity
        can_fetch_one = fetch_max_threads >= 1 and fetch_width >= 1
        fetch_candidates = self._fetch_candidates
        col_instr = self._col_instr
        col_thread = self._col_thread
        col_gseq = self._col_gseq
        col_packed = self._col_packed
        col_pending = self._col_pending
        col_flags = self._col_flags
        col_refs = self._col_refs
        col_waiter0 = self._col_waiter0
        col_waiters = self._col_waiters
        col_views = self._col_views
        free = self._free
        view = self.view
        while True:
            cycle = self.cycle
            bucket = ev_buckets[cycle & mask]
            if bucket or (ev_over and ev_over[0][0] <= cycle):
                # completion loop — keep in sync with step()
                if bucket is None:
                    bucket = ev_buckets[cycle & mask] = []
                while ev_over and ev_over[0][0] <= cycle:
                    bucket.append(heappop(ev_over)[1])
                while ev_marks and ev_marks[0] <= cycle:
                    heappop(ev_marks)
                n_due = len(bucket)
                if n_due > 1:
                    if n_due == 2:
                        a, b = bucket
                        if b < a:   # packed ints sort in age order
                            bucket[0] = b
                            bucket[1] = a
                    else:
                        bucket.sort()
                for packed in bucket:
                    s = packed & SLOT_MASK
                    if col_packed[s] != packed:
                        continue   # slot reclaimed and refetched
                    fl = col_flags[s]
                    ts = threads[col_thread[s]]
                    if fl & F_IS_LOAD and col_pending[s] == -1:
                        # The outstanding-miss count drops even for a
                        # squashed load (object-engine semantics); clear
                        # the marker so the slot becomes reclaimable.
                        ts.outstanding_misses -= 1
                        col_pending[s] = 0
                    if fl & F_SQUASHED:
                        if not fl & (F_FREED | F_IN_DETECTS) \
                                and not col_refs[s] \
                                and not col_pending[s]:
                            v = col_views[s]
                            if v is None or v not in ts.ll_owners:
                                # Flush skipped this slot (its miss was
                                # still counted); restore the pristine
                                # invariant flush couldn't.
                                col_waiter0[s] = -1
                                col_waiters[s] = None
                                self._col_old_map[s] = -1
                                self._col_fill_line[s] = None
                                col_views[s] = None
                                col_flags[s] = fl | F_FREED
                                free.append(s)
                        continue
                    fl |= F_COMPLETED
                    col_flags[s] = fl
                    window = ts.window
                    if window and window[0] == s:
                        ts.head_ready = True
                        self._heads_mask |= ts.tid_bit
                        self._commit_pending = True
                    w0 = col_waiter0[s]
                    if w0 >= 0:
                        col_waiter0[s] = -1
                        ws = w0 & SLOT_MASK
                        if col_packed[ws] == w0:
                            # A flush-freed waiter still gen-matches until
                            # realloc; F_FREED keeps its pristine columns
                            # untouched on the free list.
                            wfl = col_flags[ws]
                            if not wfl & F_FREED:
                                p = col_pending[ws] - 1
                                col_pending[ws] = p
                                if (not p and not wfl & _F_NO_WAKE
                                        and wfl & F_IN_IQ):
                                    heappush(
                                        ready_by_op[col_instr[ws].op_i],
                                        w0)
                        wl = col_waiters[s]
                        if wl is not None:
                            col_waiters[s] = None
                            for w in wl:
                                ws = w & SLOT_MASK
                                if col_packed[ws] != w:
                                    continue
                                wfl = col_flags[ws]
                                if wfl & F_FREED:
                                    continue
                                p = col_pending[ws] - 1
                                col_pending[ws] = p
                                if (not p and not wfl & _F_NO_WAKE
                                        and wfl & F_IN_IQ):
                                    heappush(
                                        ready_by_op[col_instr[ws].op_i],
                                        w)
                    if fl & F_IS_BRANCH and ts.waiting_branch == s:
                        ts.waiting_branch = None
                        ts.stats.branch_stall_cycles += \
                            cycle - ts.branch_wait_since
                        if ts.fetch_blocked_until < cycle + 1:
                            ts.fetch_blocked_until = cycle + 1
                        self._fetch_wake = 0
                    if fl & F_IS_LOAD and on_load_complete is not None:
                        v = col_views[s]
                        if v is not None:
                            on_load_complete(v, ts)
                        elif not olc_cleanup_only:
                            # A cleanup-only hook is a no-op for a record
                            # it was never handed; skip materializing one.
                            v = col_views[s] = SoAView(self, s,
                                                       col_gseq[s])
                            on_load_complete(v, ts)
                bucket.clear()
            bucket = dt_buckets[cycle & mask]
            if bucket or (dt_over and dt_over[0][0] <= cycle):
                if bucket is None:
                    bucket = dt_buckets[cycle & mask] = []
                while dt_over and dt_over[0][0] <= cycle:
                    bucket.append(heappop(dt_over)[1])
                while dt_marks and dt_marks[0] <= cycle:
                    heappop(dt_marks)
                n_due = len(bucket)
                if n_due > 1:
                    if n_due == 2:
                        a, b = bucket
                        if b < a:
                            bucket[0] = b
                            bucket[1] = a
                    else:
                        bucket.sort()
                for packed in bucket:
                    # F_IN_DETECTS pins the slot: no generation check.
                    s = packed & SLOT_MASK
                    fl = col_flags[s] & ~F_IN_DETECTS
                    col_flags[s] = fl
                    if fl & (F_SQUASHED | F_COMPLETED):
                        if (fl & (F_SQUASHED | F_RETIRED)
                                and not fl & F_FREED and not col_refs[s]
                                and col_pending[s] != -1):
                            ts = threads[col_thread[s]]
                            v = col_views[s]
                            if v is None or v not in ts.ll_owners:
                                col_waiter0[s] = -1
                                col_waiters[s] = None
                                self._col_old_map[s] = -1
                                self._col_fill_line[s] = None
                                col_views[s] = None
                                col_flags[s] = fl | F_FREED
                                free.append(s)
                        continue
                    if not ll_detect_is_base:
                        on_ll_detect(view(s), threads[col_thread[s]])
                bucket.clear()
            wcnt = wb_buckets[cycle & mask]
            if wcnt:
                wb_buckets[cycle & mask] = 0
                self._wb_used -= wcnt
                while wb_marks and wb_marks[0] <= cycle:
                    heappop(wb_marks)
            if wb_over and wb_over[0] <= cycle:
                while wb_over and wb_over[0] <= cycle:
                    heappop(wb_over)
                    self._wb_used -= 1
            if self._commit_pending:
                commit_stage(cycle)
            if ready_int or ready_ldst or ready_fp:
                issue_stage(cycle)
            if cycle >= self._dispatch_wake:
                if (cycle < self._stall_latch_until
                        and self._stall_latch_epoch == self._release_epoch):
                    self.stats.resource_stall_cycles += 1
                else:
                    dispatch_stage(cycle)
            if cycle >= self._fetch_wake:
                if fetch_order_is_base:
                    candidates = fetch_candidates
                    if candidates:
                        first = None
                        rest = None
                        for ts in candidates:
                            if (ts.fetch_blocked_until <= cycle
                                    and ts.waiting_branch is None
                                    and len(ts.fe_queue) < fe_capacity):
                                if first is None:
                                    first = ts
                                elif rest is None:
                                    rest = [first, ts]
                                else:
                                    rest.append(ts)
                        if rest is None:
                            if first is None:
                                self._fetch_wake = \
                                    self._compute_fetch_wake(cycle)
                            elif can_fetch_one:
                                fetch_thread(first, fetch_width, cycle,
                                             False)
                        else:
                            if len(rest) == 2:
                                a, b = rest
                                if b.icount < a.icount:
                                    rest[0] = b
                                    rest[1] = a
                            else:
                                rest.sort(key=_by_icount)
                            budget = fetch_width
                            remaining_threads = fetch_max_threads
                            for ts in rest:
                                if remaining_threads == 0 or budget == 0:
                                    break
                                remaining_threads -= 1
                                budget -= fetch_thread(ts, budget, cycle,
                                                       False)
                    else:
                        order = policy_fetch_order(cycle)
                        if order:
                            budget = fetch_width
                            remaining_threads = fetch_max_threads
                            for ts, ignore_stall in order:
                                if remaining_threads == 0 or budget == 0:
                                    break
                                remaining_threads -= 1
                                budget -= fetch_thread(ts, budget, cycle,
                                                       ignore_stall)
                        else:
                            self._fetch_wake = \
                                self._compute_fetch_wake(cycle)
                else:
                    order = policy_fetch_order(cycle)
                    if order:
                        budget = fetch_width
                        remaining_threads = fetch_max_threads
                        for ts, ignore_stall in order:
                            if remaining_threads == 0 or budget == 0:
                                break
                            remaining_threads -= 1
                            budget -= fetch_thread(ts, budget, cycle,
                                                   ignore_stall)
            nxt = cycle + 1
            if not fast_forward or ready_int or ready_ldst or ready_fp:
                self.cycle = nxt
            elif nxt < self._fetch_wake:
                self.cycle = nxt = next_cycle(cycle)
            elif fetch_order_is_base:
                pending = False
                for ts in (fetch_candidates or threads):
                    if (ts.fetch_blocked_until <= nxt
                            and ts.waiting_branch is None
                            and len(ts.fe_queue) < fe_capacity):
                        pending = True
                        break
                if pending:
                    self.cycle = nxt
                else:
                    self.cycle = nxt = next_cycle(cycle)
            elif policy_fetch_pending(nxt):
                self.cycle = nxt
            else:
                self.cycle = nxt = next_cycle(cycle)
            if self._committed_watermark >= max_commits:
                return
            if nxt >= limit:
                raise SimulationLimitExceeded(
                    f"exceeded {limit} cycles without reaching "
                    f"{max_commits} commits")

    def step(self) -> None:
        """Advance one cycle (or fast-forward to the next event).

        The standalone form of one fused-loop iteration; incremental
        drivers and tests step through here, measured runs take
        :meth:`_run_until`.
        """
        cycle = self.cycle
        mask = self._wheel_mask
        ev_bucket = self._ev_buckets[cycle & mask]
        dt_bucket = self._dt_buckets[cycle & mask]
        if (ev_bucket or dt_bucket
                or (self._ev_over and self._ev_over[0][0] <= cycle)
                or (self._dt_over and self._dt_over[0][0] <= cycle)):
            self._soa_drain_events(cycle)
        wcnt = self._wb_buckets[cycle & mask]
        if wcnt:
            self._wb_buckets[cycle & mask] = 0
            self._wb_used -= wcnt
            wb_marks = self._wb_marks
            while wb_marks and wb_marks[0] <= cycle:
                heappop(wb_marks)
        wb_over = self._wb_over
        if wb_over and wb_over[0] <= cycle:
            while wb_over and wb_over[0] <= cycle:
                heappop(wb_over)
                self._wb_used -= 1
        if self._commit_pending:
            self._commit_stage(cycle)
        if self._ready_int or self._ready_ldst or self._ready_fp:
            self._issue_stage(cycle)
        if cycle >= self._dispatch_wake:
            if (cycle < self._stall_latch_until
                    and self._stall_latch_epoch == self._release_epoch):
                self.stats.resource_stall_cycles += 1
            else:
                self._dispatch_stage(cycle)
        if cycle >= self._fetch_wake:
            order = self._policy_fetch_order(cycle)
            if order:
                budget = self._fetch_width
                remaining_threads = self._fetch_max_threads
                fetch_thread = self._fetch_thread
                for ts, ignore_stall in order:
                    if remaining_threads == 0 or budget == 0:
                        break
                    remaining_threads -= 1
                    budget -= fetch_thread(ts, budget, cycle, ignore_stall)
            elif self._fetch_order_is_base:
                self._fetch_wake = self._compute_fetch_wake(cycle)
        nxt = cycle + 1
        if self._fast_forward:
            if (self._ready_int or self._ready_ldst or self._ready_fp
                    or (nxt >= self._fetch_wake
                        and self._policy_fetch_pending(nxt))):
                self.cycle = nxt
            else:
                self.cycle = self._next_cycle(cycle)
        else:
            self.cycle = nxt

    def _soa_drain_events(self, cycle: int) -> None:
        """Completion + detection drains for :meth:`step` (cold form).

        Same body as the fused loop's inline drains — keep in sync.
        """
        mask = self._wheel_mask
        threads = self.threads
        col_instr = self._col_instr
        col_thread = self._col_thread
        col_gseq = self._col_gseq
        col_packed = self._col_packed
        col_pending = self._col_pending
        col_flags = self._col_flags
        col_refs = self._col_refs
        col_waiter0 = self._col_waiter0
        col_waiters = self._col_waiters
        col_views = self._col_views
        ready_by_op = self._ready_by_op
        free = self._free
        view = self.view
        on_load_complete = self._policy_on_load_complete
        olc_cleanup_only = getattr(
            type(self.policy).on_load_complete,
            "_identity_keyed_cleanup", False)
        bucket = self._ev_buckets[cycle & mask]
        ev_over = self._ev_over
        if bucket or (ev_over and ev_over[0][0] <= cycle):
            ev_marks = self._ev_marks
            if bucket is None:
                bucket = self._ev_buckets[cycle & mask] = []
            while ev_over and ev_over[0][0] <= cycle:
                bucket.append(heappop(ev_over)[1])
            while ev_marks and ev_marks[0] <= cycle:
                heappop(ev_marks)
            if len(bucket) > 1:
                bucket.sort()
            for packed in bucket:
                s = packed & SLOT_MASK
                if col_packed[s] != packed:
                    continue
                fl = col_flags[s]
                ts = threads[col_thread[s]]
                if fl & F_IS_LOAD and col_pending[s] == -1:
                    ts.outstanding_misses -= 1
                    col_pending[s] = 0
                if fl & F_SQUASHED:
                    if not fl & (F_FREED | F_IN_DETECTS) \
                            and not col_refs[s] and not col_pending[s]:
                        v = col_views[s]
                        if v is None or v not in ts.ll_owners:
                            col_waiter0[s] = -1
                            col_waiters[s] = None
                            self._col_old_map[s] = -1
                            self._col_fill_line[s] = None
                            col_views[s] = None
                            col_flags[s] = fl | F_FREED
                            free.append(s)
                    continue
                fl |= F_COMPLETED
                col_flags[s] = fl
                window = ts.window
                if window and window[0] == s:
                    ts.head_ready = True
                    self._heads_mask |= ts.tid_bit
                    self._commit_pending = True
                w0 = col_waiter0[s]
                if w0 >= 0:
                    col_waiter0[s] = -1
                    ws = w0 & SLOT_MASK
                    if col_packed[ws] == w0:
                        wfl = col_flags[ws]
                        if not wfl & F_FREED:
                            p = col_pending[ws] - 1
                            col_pending[ws] = p
                            if (not p and not wfl & _F_NO_WAKE
                                    and wfl & F_IN_IQ):
                                heappush(
                                    ready_by_op[col_instr[ws].op_i], w0)
                    wl = col_waiters[s]
                    if wl is not None:
                        col_waiters[s] = None
                        for w in wl:
                            ws = w & SLOT_MASK
                            if col_packed[ws] != w:
                                continue
                            wfl = col_flags[ws]
                            if wfl & F_FREED:
                                continue
                            p = col_pending[ws] - 1
                            col_pending[ws] = p
                            if (not p and not wfl & _F_NO_WAKE
                                    and wfl & F_IN_IQ):
                                heappush(
                                    ready_by_op[col_instr[ws].op_i], w)
                if fl & F_IS_BRANCH and ts.waiting_branch == s:
                    ts.waiting_branch = None
                    ts.stats.branch_stall_cycles += \
                        cycle - ts.branch_wait_since
                    if ts.fetch_blocked_until < cycle + 1:
                        ts.fetch_blocked_until = cycle + 1
                    self._fetch_wake = 0
                if fl & F_IS_LOAD and on_load_complete is not None:
                    v = col_views[s]
                    if v is not None:
                        on_load_complete(v, ts)
                    elif not olc_cleanup_only:
                        on_load_complete(view(s), ts)
            bucket.clear()
        bucket = self._dt_buckets[cycle & mask]
        dt_over = self._dt_over
        if bucket or (dt_over and dt_over[0][0] <= cycle):
            dt_marks = self._dt_marks
            if bucket is None:
                bucket = self._dt_buckets[cycle & mask] = []
            while dt_over and dt_over[0][0] <= cycle:
                bucket.append(heappop(dt_over)[1])
            while dt_marks and dt_marks[0] <= cycle:
                heappop(dt_marks)
            if len(bucket) > 1:
                bucket.sort()
            on_ll_detect = self.policy.on_ll_detect
            for packed in bucket:
                s = packed & SLOT_MASK
                fl = col_flags[s] & ~F_IN_DETECTS
                col_flags[s] = fl
                if fl & (F_SQUASHED | F_COMPLETED):
                    if (fl & (F_SQUASHED | F_RETIRED)
                            and not fl & F_FREED and not col_refs[s]
                            and col_pending[s] != -1):
                        ts = threads[col_thread[s]]
                        v = col_views[s]
                        if v is None or v not in ts.ll_owners:
                            col_waiter0[s] = -1
                            col_waiters[s] = None
                            self._col_old_map[s] = -1
                            self._col_fill_line[s] = None
                            col_views[s] = None
                            col_flags[s] = fl | F_FREED
                            free.append(s)
                    continue
                on_ll_detect(view(s), threads[col_thread[s]])
            bucket.clear()

    # ------------------------------------------------------------------ #
    # commit
    # ------------------------------------------------------------------ #

    def _commit(self, cycle: int) -> None:
        # Mirrors SMTCore._commit on the columns — keep in sync.
        threads = self.threads
        n = self._n_threads
        budget = self._commit_width
        heads_mask = self._heads_mask
        if n == 1:
            order = threads
        else:
            rot_cache = self._rot_cache
            if rot_cache is None:
                order = self._rotations[cycle % n]
            else:
                slot = heads_mask * n + cycle % n
                order = rot_cache[slot]
                if order is None:
                    order = tuple(
                        ts for ts in self._rotations[cycle % n]
                        if heads_mask >> ts.tid & 1)
                    rot_cache[slot] = order
        wb_entries = self._wb_entries
        col_instr = self._col_instr
        col_flags = self._col_flags
        col_refs = self._col_refs
        col_old_map = self._col_old_map
        col_ll_parents = self._col_ll_parents
        col_fill_line = self._col_fill_line
        col_views = self._col_views
        free = self._free
        rob_used = self.rob_used
        lsq_used = self.lsq_used
        int_regs_used = self.int_regs_used
        fp_regs_used = self.fp_regs_used
        watermark = self._committed_watermark
        measure_start = self._measure_start
        while budget > 0:
            progress = False
            for ts in order:
                if budget == 0:
                    break
                if not ts.head_ready:
                    continue
                window = ts.window
                s = window[0]
                fl = col_flags[s]
                instr = col_instr[s]
                if fl & F_IS_STORE:
                    if self._wb_used >= wb_entries:
                        continue
                    result = self._hier_store(ts.tid, instr.pc,
                                              instr.addr, cycle)
                    self._schedule_wb_drain(result.complete_cycle, cycle)
                window.popleft()
                if not window or not col_flags[window[0]] & F_COMPLETED:
                    ts.head_ready = False
                    heads_mask &= ~ts.tid_bit
                rob_used -= 1
                ts.rob_count -= 1
                st = ts.stats
                committed = st.committed + 1
                st.committed = committed
                if committed > watermark:
                    watermark = committed
                if ts.commit_cycles is not None:
                    ts.commit_cycles.append(cycle - measure_start)
                if fl & _F_MEM:
                    ts.lsq_count -= 1
                    lsq_used -= 1
                if fl & F_HAS_DEST:
                    if fl & F_DEST_FP:
                        ts.fp_regs -= 1
                        fp_regs_used -= 1
                    else:
                        ts.int_regs -= 1
                        int_regs_used -= 1
                dependent = False
                parents = col_ll_parents[s]
                if parents is not None:
                    col_ll_parents[s] = None
                    ll_owners = ts.ll_owners
                    for p in parents:
                        if col_flags[p] & (F_IS_LL | F_LL_DEP):
                            dependent = True
                            break
                    if dependent:
                        fl |= F_LL_DEP
                        col_flags[s] = fl
                    for p in parents:
                        r = col_refs[p] - 1
                        col_refs[p] = r
                        if not r:
                            pfl = col_flags[p]
                            if (pfl & F_RETIRED
                                    and not pfl & (F_IN_DETECTS | F_FREED)):
                                v = col_views[p]
                                if v is None or v not in ll_owners:
                                    # Retire left the slot pristine but
                                    # for these two (see module docstring).
                                    col_fill_line[p] = None
                                    col_views[p] = None
                                    col_flags[p] = pfl | F_FREED
                                    free.append(p)
                # F_IS_LL is only ever set in the issue load body, so it
                # implies F_IS_LOAD (the object engine tests both).
                if fl & F_IS_LL:
                    z = ts.llsr_zeros
                    if z:
                        ts.llsr_zeros = 0
                        ts.llsr_commit_zeros(z)
                    ts.llsr_commit(True, instr.pc, dependent)
                else:
                    ts.llsr_zeros += 1
                old = col_old_map[s]
                if old >= 0:
                    col_old_map[s] = -1
                    r = col_refs[old] - 1
                    col_refs[old] = r
                    if not r:
                        ofl = col_flags[old]
                        if (ofl & F_RETIRED
                                and not ofl & (F_IN_DETECTS | F_FREED)):
                            v = col_views[old]
                            if v is None or v not in ts.ll_owners:
                                col_fill_line[old] = None
                                col_views[old] = None
                                col_flags[old] = ofl | F_FREED
                                free.append(old)
                freed = False
                if not col_refs[s] and not fl & F_IN_DETECTS:
                    v = col_views[s]
                    if v is None or v not in ts.ll_owners:
                        col_fill_line[s] = None
                        col_views[s] = None
                        free.append(s)
                        freed = True
                # One merged store boxes a single result int instead of
                # two (|= then |=).
                col_flags[s] = fl | (_F_RETIRED_FREED if freed
                                     else F_RETIRED)
                budget -= 1
                progress = True
            if not progress:
                break
        if budget < self._commit_width:   # at least one retire happened
            for ts in order:
                z = ts.llsr_zeros
                if z:
                    ts.llsr_zeros = 0
                    ts.llsr_commit_zeros(z)
            self._committed_watermark = watermark
            self._release_epoch += 1
            self.rob_used = rob_used
            self.lsq_used = lsq_used
            self.int_regs_used = int_regs_used
            self.fp_regs_used = fp_regs_used
            self._heads_mask = heads_mask
        self._commit_pending = heads_mask != 0

    # ------------------------------------------------------------------ #
    # event-wheel scheduling (cold-path form; hot paths inline the push)
    # ------------------------------------------------------------------ #

    def _schedule_completion(self, di, when: int, cycle: int) -> None:
        """Queue a completion for ``di`` (a view or a slot number)."""
        s = di if isinstance(di, int) else di._slot
        packed = self._col_packed[s]
        if when <= cycle:
            when = cycle + 1
        mask = self._wheel_mask
        if when - cycle <= mask:
            idx = when & mask
            bucket = self._ev_buckets[idx]
            if bucket:
                bucket.append(packed)
            else:
                if bucket is None:
                    self._ev_buckets[idx] = [packed]
                else:
                    bucket.append(packed)
                heappush(self._ev_marks, when)
        else:
            heappush(self._ev_over, (when, packed))

    # ------------------------------------------------------------------ #
    # issue / execute
    # ------------------------------------------------------------------ #

    def _issue(self, cycle: int) -> None:
        # Mirrors SMTCore._issue with _execute's body (both branches)
        # inlined — keep in sync.  There is no _execute dispatch here:
        # SoACore does not support overriding execution.
        threads = self.threads
        ev_buckets = self._ev_buckets
        ev_marks = self._ev_marks
        mask = self._wheel_mask
        col_instr = self._col_instr
        col_thread = self._col_thread
        col_packed = self._col_packed
        col_flags = self._col_flags
        issued = False
        queue = self._ready_int
        if queue:
            slots = self._num_int_alu
            while queue and slots > 0:
                packed = heappop(queue)
                s = packed & SLOT_MASK
                if col_packed[s] != packed:
                    continue
                fl = col_flags[s]
                if fl & _F_DEAD_OR_DONE:
                    continue
                if fl & F_IN_IQ:
                    ts = threads[col_thread[s]]
                    if fl & F_IQ_FP:
                        ts.fq_count -= 1
                        self.fq_used -= 1
                    else:
                        ts.iq_count -= 1
                        self.iq_used -= 1
                    ts.icount -= 1
                    fl &= ~F_IN_IQ
                col_flags[s] = fl | F_ISSUED
                completion = cycle + col_instr[s].latency
                idx = completion & mask   # always in-horizon (<= 4)
                bucket = ev_buckets[idx]
                if bucket:
                    bucket.append(packed)
                else:
                    if bucket is None:
                        ev_buckets[idx] = [packed]
                    else:
                        bucket.append(packed)
                    heappush(ev_marks, completion)
                slots -= 1
                issued = True
        queue = self._ready_ldst
        if queue:
            slots = self._num_ldst
            while queue and slots > 0:
                packed = heappop(queue)
                s = packed & SLOT_MASK
                if col_packed[s] != packed:
                    continue
                fl = col_flags[s]
                if fl & _F_DEAD_OR_DONE:
                    continue
                ts = threads[col_thread[s]]
                if fl & F_IN_IQ:
                    if fl & F_IQ_FP:
                        ts.fq_count -= 1
                        self.fq_used -= 1
                    else:
                        ts.iq_count -= 1
                        self.iq_used -= 1
                    ts.icount -= 1
                    fl &= ~F_IN_IQ
                fl |= F_ISSUED
                instr = col_instr[s]
                if fl & F_IS_LOAD:
                    # _execute's load body, columnized.
                    result = self._hier_load(
                        ts.tid, instr.pc, instr.addr, cycle + instr.latency)
                    completion = result.complete_cycle
                    is_ll = result.long_latency
                    if is_ll:
                        fl |= F_IS_LL
                    self._col_level[s] = result.level
                    stats = ts.stats
                    stats.loads_executed += 1
                    ts.lll_pred.train(instr.pc, is_ll)
                    predicted = self._col_pred_ll[s]
                    if predicted is not None:
                        stats.lll_pred_loads += 1
                        if predicted == is_ll:
                            stats.lll_pred_correct += 1
                        if is_ll:
                            stats.lll_pred_miss_actual += 1
                            if predicted:
                                stats.lll_pred_miss_correct += 1
                    if is_ll:
                        stats.ll_loads += 1
                    if result.trigger:
                        fl |= F_IN_DETECTS
                        when = result.detect_cycle
                        if when <= cycle:
                            when = cycle + 1
                        if when - cycle <= mask:
                            idx = when & mask
                            bucket = self._dt_buckets[idx]
                            if bucket:
                                bucket.append(packed)
                            else:
                                if bucket is None:
                                    self._dt_buckets[idx] = [packed]
                                else:
                                    bucket.append(packed)
                                heappush(self._dt_marks, when)
                        else:
                            heappush(self._dt_over, (when, packed))
                    self._col_fill_line[s] = result.fill_line
                    if result.level is not ServiceLevel.L1:
                        ts.outstanding_misses += 1
                        self._col_pending[s] = -1
                    col_flags[s] = fl
                    if completion - cycle <= mask:
                        idx = completion & mask
                        bucket = ev_buckets[idx]
                        if bucket:
                            bucket.append(packed)
                        else:
                            if bucket is None:
                                ev_buckets[idx] = [packed]
                            else:
                                bucket.append(packed)
                            heappush(ev_marks, completion)
                    else:
                        heappush(self._ev_over, (completion, packed))
                else:
                    # Stores: address generation only; memory access
                    # happens at commit via the write buffer.
                    col_flags[s] = fl
                    completion = cycle + instr.latency
                    idx = completion & mask
                    bucket = ev_buckets[idx]
                    if bucket:
                        bucket.append(packed)
                    else:
                        if bucket is None:
                            ev_buckets[idx] = [packed]
                        else:
                            bucket.append(packed)
                        heappush(ev_marks, completion)
                slots -= 1
                issued = True
        queue = self._ready_fp
        if queue:
            slots = self._num_fp
            while queue and slots > 0:
                packed = heappop(queue)
                s = packed & SLOT_MASK
                if col_packed[s] != packed:
                    continue
                fl = col_flags[s]
                if fl & _F_DEAD_OR_DONE:
                    continue
                if fl & F_IN_IQ:
                    ts = threads[col_thread[s]]
                    if fl & F_IQ_FP:
                        ts.fq_count -= 1
                        self.fq_used -= 1
                    else:
                        ts.iq_count -= 1
                        self.iq_used -= 1
                    ts.icount -= 1
                    fl &= ~F_IN_IQ
                col_flags[s] = fl | F_ISSUED
                completion = cycle + col_instr[s].latency
                idx = completion & mask
                bucket = ev_buckets[idx]
                if bucket:
                    bucket.append(packed)
                else:
                    if bucket is None:
                        ev_buckets[idx] = [packed]
                    else:
                        bucket.append(packed)
                    heappush(ev_marks, completion)
                slots -= 1
                issued = True
        if issued:
            self._release_epoch += 1

    # ------------------------------------------------------------------ #
    # dispatch (rename + resource allocation)
    # ------------------------------------------------------------------ #

    def _dispatch(self, cycle: int) -> None:
        # Mirrors SMTCore._dispatch on the columns — keep in sync.
        budget = self._decode_width
        any_ready = False
        blocked_by_resource = False
        dispatched = 0
        n = self._n_threads
        release_epoch = self._release_epoch
        # Only the ready-probe column eagerly; the rest hoist on the first
        # thread that actually has a dispatchable head, so idle probes pay
        # one attribute load instead of ten.
        hoisted = False
        col_fe_ready = self._col_fe_ready
        if n == 1:
            order = self.threads
        else:
            rot_cache = self._rot_cache
            slot = (cycle + 1) % n
            fe_mask = self._fe_mask
            if rot_cache is None or fe_mask == self._full_mask:
                order = self._rotations[slot]
            else:
                key = fe_mask * n + slot
                order = rot_cache[key]
                if order is None:
                    order = tuple(
                        ts for ts in self._rotations[slot]
                        if fe_mask >> ts.tid & 1)
                    rot_cache[key] = order
        for ts in order:
            if budget == 0:
                break
            if cycle < ts.dispatch_wait_until:
                continue  # head not through the front end yet
            fe = ts.fe_queue
            if not fe:
                continue
            head = fe[0]
            # The latch holds a bare slot: within one release epoch the
            # head cannot change (only a dispatch or a flush moves it,
            # and both invalidate the latch), so a slot match is an
            # instruction match.
            if head == ts.dispatch_blocked_head:
                if ts.dispatch_blocked_epoch == release_epoch:
                    any_ready = True
                    blocked_by_resource = True
                    continue
                ts.dispatch_blocked_head = None
            if col_fe_ready[head] > cycle:
                ts.dispatch_wait_until = col_fe_ready[head]
                continue
            if not hoisted:
                hoisted = True
                col_instr = self._col_instr
                col_gseq = self._col_gseq
                col_packed = self._col_packed
                col_pending = self._col_pending
                col_flags = self._col_flags
                col_refs = self._col_refs
                col_waiter0 = self._col_waiter0
                col_waiters = self._col_waiters
                col_old_map = self._col_old_map
                col_ll_parents = self._col_ll_parents
                col_views = self._col_views
                rob_used = self.rob_used
                lsq_used = self.lsq_used
                iq_used = self.iq_used
                fq_used = self.fq_used
                int_regs_used = self.int_regs_used
                fp_regs_used = self.fp_regs_used
                track_dep = self._track_ll_dep
                can_dispatch = self._policy_can_dispatch  # None: allow-all
                ready_by_op = self._ready_by_op
                rob_size = self._rob_size
                lsq_size = self._lsq_size
                int_iq_size = self._int_iq_size
                fp_iq_size = self._fp_iq_size
                int_rename_regs = self._int_rename_regs
                fp_rename_regs = self._fp_rename_regs
                fe_capacity = self._fe_capacity
                gates_free = (
                    rob_size - rob_used >= budget
                    and lsq_size - lsq_used >= budget
                    and int_iq_size - iq_used >= budget
                    and fp_iq_size - fq_used >= budget
                    and int_rename_regs - int_regs_used >= budget
                    and fp_rename_regs - fp_regs_used >= budget)
            rename_map = ts.rename_map
            window_append = ts.window.append
            fe_was_full = len(fe) >= fe_capacity
            tl_rob = ts.rob_count
            tl_lsq = ts.lsq_count
            tl_iq = ts.iq_count
            tl_fq = ts.fq_count
            tl_ir = ts.int_regs
            tl_fr = ts.fp_regs
            tl_dirty = False
            while budget > 0 and fe:
                s = fe[0]
                if col_fe_ready[s] > cycle:
                    ts.dispatch_wait_until = col_fe_ready[s]
                    break
                any_ready = True
                instr = col_instr[s]
                fl = col_flags[s]
                is_mem = fl & _F_MEM
                fp_queue = instr.fp_queue
                if not gates_free:
                    if rob_used >= rob_size:
                        ts.dispatch_blocked_head = s
                        ts.dispatch_blocked_epoch = release_epoch
                        blocked_by_resource = True
                        break
                    if is_mem and lsq_used >= lsq_size:
                        ts.dispatch_blocked_head = s
                        ts.dispatch_blocked_epoch = release_epoch
                        blocked_by_resource = True
                        break
                    if fp_queue:
                        if fq_used >= fp_iq_size:
                            ts.dispatch_blocked_head = s
                            ts.dispatch_blocked_epoch = release_epoch
                            blocked_by_resource = True
                            break
                    elif iq_used >= int_iq_size:
                        ts.dispatch_blocked_head = s
                        ts.dispatch_blocked_epoch = release_epoch
                        blocked_by_resource = True
                        break
                    if fl & F_HAS_DEST:
                        if fl & F_DEST_FP:
                            if fp_regs_used >= fp_rename_regs:
                                ts.dispatch_blocked_head = s
                                ts.dispatch_blocked_epoch = release_epoch
                                blocked_by_resource = True
                                break
                        elif int_regs_used >= int_rename_regs:
                            ts.dispatch_blocked_head = s
                            ts.dispatch_blocked_epoch = release_epoch
                            blocked_by_resource = True
                            break
                if can_dispatch is not None:
                    if tl_dirty:
                        tl_dirty = False
                        ts.rob_count = tl_rob
                        ts.lsq_count = tl_lsq
                        ts.iq_count = tl_iq
                        ts.fq_count = tl_fq
                        ts.int_regs = tl_ir
                        ts.fp_regs = tl_fr
                    v = col_views[s]
                    if v is None:
                        v = col_views[s] = SoAView(self, s, col_gseq[s])
                    if not can_dispatch(ts, v):
                        break  # policy cap, not a resource stall
                # All checks passed: allocate and rename.
                rob_used += 1
                tl_rob += 1
                tl_dirty = True
                if is_mem:
                    lsq_used += 1
                    tl_lsq += 1
                if fp_queue:
                    fq_used += 1
                    tl_fq += 1
                    fl |= F_IN_IQ | F_IQ_FP
                else:
                    iq_used += 1
                    tl_iq += 1
                    fl |= F_IN_IQ
                packed_s = col_packed[s]
                pending = 0
                parents = [] if track_dep else None
                for src in instr.srcs:
                    prod = rename_map[src]
                    if prod < 0:
                        continue
                    pfl = col_flags[prod]
                    if track_dep and (pfl & (F_IS_LOAD | F_LL_DEP)
                                      or col_ll_parents[prod] is not None):
                        parents.append(prod)
                        col_refs[prod] += 1
                    if not pfl & F_COMPLETED:
                        pending += 1
                        if col_waiter0[prod] < 0:
                            col_waiter0[prod] = packed_s
                        else:
                            wl = col_waiters[prod]
                            if wl is None:
                                col_waiters[prod] = [packed_s]
                            else:
                                wl.append(packed_s)
                if pending:
                    col_pending[s] = pending
                if parents:
                    col_ll_parents[s] = tuple(parents)
                if fl & F_HAS_DEST:
                    dest = instr.dest
                    col_old_map[s] = rename_map[dest]
                    rename_map[dest] = s
                    col_refs[s] += 1  # rename-current; the old entry's
                    #                   ref transfers to the old_map slot
                    if fl & F_DEST_FP:
                        fp_regs_used += 1
                        tl_fr += 1
                    else:
                        int_regs_used += 1
                        tl_ir += 1
                col_flags[s] = fl
                window_append(s)
                if not pending:
                    heappush(ready_by_op[instr.op_i], packed_s)
                fe.popleft()
                budget -= 1
                dispatched += 1
            if tl_dirty:
                ts.rob_count = tl_rob
                ts.lsq_count = tl_lsq
                ts.iq_count = tl_iq
                ts.fq_count = tl_fq
                ts.int_regs = tl_ir
                ts.fp_regs = tl_fr
            if fe_was_full and len(fe) < fe_capacity:
                self._fetch_wake = 0
            if not fe:
                self._fe_mask &= ~ts.tid_bit
        if dispatched:
            self.rob_used = rob_used
            self.lsq_used = lsq_used
            self.iq_used = iq_used
            self.fq_used = fq_used
            self.int_regs_used = int_regs_used
            self.fp_regs_used = fp_regs_used
        elif not any_ready and self._policy_can_dispatch is None:
            wake = cycle + (1 << 30)
            for ts in self.threads:
                wait_until = ts.dispatch_wait_until
                if cycle < wait_until < wake:
                    wake = wait_until
            self._dispatch_wake = wake
        if any_ready and dispatched == 0 and blocked_by_resource:
            self.stats.resource_stall_cycles += 1
            on_resource_stall = self._policy_on_resource_stall
            if on_resource_stall is not None:   # None: marked no-op hook
                on_resource_stall(cycle)
            elif self._policy_can_dispatch is None:
                wake = cycle + (1 << 30)
                for ts in self.threads:
                    wait_until = ts.dispatch_wait_until
                    if cycle < wait_until < wake:
                        wake = wait_until
                self._stall_latch_until = wake
                self._stall_latch_epoch = release_epoch

    # ------------------------------------------------------------------ #
    # fetch
    # ------------------------------------------------------------------ #

    def _fetch_thread(self, ts: ThreadState, budget: int, cycle: int,
                      ignore_stall: bool) -> int:
        # Mirrors SMTCore._fetch_thread; the DynInstr allocation/reinit
        # becomes a free-list pop plus column writes.  Keep in sync.
        trace_get = ts.trace_get
        trace_static = ts.trace_static   # None: duck-typed stub trace
        trace_flags = ts.trace_flags
        body_len = ts.trace_body_len
        pc_origin = ts.pc_origin
        on_fetch = self._policy_on_fetch       # None: no-op for all instrs
        on_fetch_load = self._policy_on_fetch_load  # None: not loads-only
        fe_queue = ts.fe_queue
        fe_append = ts.fe_append
        line_shift = self._line_shift
        fe_ready = cycle + self._frontend_depth
        tid = ts.tid
        gseq = self._gseq
        allowed_end = ts.allowed_end
        count = 0
        fe_was_empty = not fe_queue
        limit = self._fe_capacity - len(fe_queue)
        if budget < limit:
            limit = budget
        free = self._free
        col_instr = self._col_instr
        col_thread = self._col_thread
        col_seq = self._col_seq
        col_gseq = self._col_gseq
        col_packed = self._col_packed
        col_fe_ready = self._col_fe_ready
        col_flags = self._col_flags
        col_pred_ll = self._col_pred_ll
        col_views = self._col_views
        while count < limit:
            fetch_index = ts.fetch_index
            if not ignore_stall and allowed_end is not None \
                    and fetch_index > allowed_end:
                break
            if trace_static is not None:
                i = fetch_index % body_len
                instr = trace_static[i]
                if instr is None:
                    instr = trace_get(fetch_index)
                    flags = instr_flags(instr)
                else:
                    flags = trace_flags[i]
            else:
                instr = trace_get(fetch_index)
                flags = instr_flags(instr)
            pc_addr = pc_origin + instr.pc * 4
            line = pc_addr >> line_shift
            if line != ts.last_ifetch_line:
                done = self._hier_ifetch(tid, pc_addr, cycle)
                ts.last_ifetch_line = line
                if done > cycle:
                    ts.fetch_blocked_until = done
                    break
            gseq += 1
            if not free:
                self._soa_grow()   # extends ``free`` in place
            # The popped slot is pristine (see the free-list invariant in
            # __init__): only the varying columns are written here.  The
            # packed stamp is boxed once per instruction; every later
            # generation check compares against it allocation-free.
            s = free.pop()
            col_instr[s] = instr
            col_thread[s] = tid
            col_seq[s] = fetch_index
            col_gseq[s] = gseq
            col_packed[s] = (gseq << SLOT_SHIFT) | s
            col_fe_ready[s] = fe_ready
            col_flags[s] = flags
            fe_append(s)
            ts.fetch_index = fetch_index + 1
            ts.icount += 1
            count += 1
            if flags & F_IS_LOAD:
                col_pred_ll[s] = ts.lll_predict(instr.pc)
                if on_fetch_load is not None:
                    v = col_views[s]
                    if v is None:
                        v = col_views[s] = SoAView(self, s, gseq)
                    on_fetch_load(v, ts)
                    allowed_end = ts.allowed_end  # the hook may update it
            if flags & F_IS_BRANCH:
                taken = instr.taken
                prediction = self.gshare.update(instr.pc, taken, tid)
                target_known = True
                if taken:
                    target_known = self.btb.lookup(instr.pc)
                    self.btb.insert(instr.pc)
                if prediction != taken or not target_known:
                    ts.waiting_branch = s
                    ts.branch_wait_since = cycle
                    if on_fetch is not None:
                        on_fetch(self.view(s), ts)
                    break
                if on_fetch is not None:
                    on_fetch(self.view(s), ts)
                if taken:
                    # A correctly-predicted taken branch ends the block.
                    break
            elif on_fetch is not None:
                v = col_views[s]
                if v is None:
                    v = col_views[s] = SoAView(self, s, gseq)
                on_fetch(v, ts)
            if on_fetch is not None:
                allowed_end = ts.allowed_end  # the hook may update it
        self._gseq = gseq
        if count:
            ts.stats.fetched += count
            if fe_was_empty:
                self._dispatch_wake = 0
                self._stall_latch_until = 0
                self._fe_mask |= 1 << tid
        ts._sync_policy_stall(cycle)
        return count

    # ------------------------------------------------------------------ #
    # flush (policy-triggered squash)
    # ------------------------------------------------------------------ #

    def flush_thread(self, ts: ThreadState, after_seq: int,
                     cancel_fills: bool | None = None) -> int:
        # Mirrors SMTCore.flush_thread; squashed slots are reclaimed here
        # unless a queued event (completion of a counted miss, a pending
        # detection) or a policy ownership still needs them — those free
        # at their respective drains.  Keep in sync.
        squashed = 0
        fe = ts.fe_queue
        icount_delta = 0
        col_instr = self._col_instr
        col_seq = self._col_seq
        col_pending = self._col_pending
        col_flags = self._col_flags
        col_refs = self._col_refs
        col_waiter0 = self._col_waiter0
        col_waiters = self._col_waiters
        col_old_map = self._col_old_map
        col_ll_parents = self._col_ll_parents
        col_fill_line = self._col_fill_line
        col_views = self._col_views
        free = self._free
        ll_owners = ts.ll_owners
        while fe and col_seq[fe[-1]] > after_seq:
            s = fe.pop()
            fl = col_flags[s] | F_SQUASHED
            icount_delta += 1
            squashed += 1
            # Never dispatched: no references, no queued events — still
            # pristine but for a possible hook-created view.  Only a
            # policy fetch-gating ownership can still reach the slot.
            v = col_views[s]
            if v is None or v not in ll_owners:
                col_views[s] = None
                col_flags[s] = fl | F_FREED
                free.append(s)
            else:
                col_flags[s] = fl
        if cancel_fills is None:
            cancel_fills = self.cfg.memory.cancel_squashed_fills
        window = ts.window
        rename_map = ts.rename_map
        cycle = self.cycle
        rob_delta = lsq_delta = iq_delta = fq_delta = 0
        int_regs_delta = fp_regs_delta = 0
        while window and col_seq[window[-1]] > after_seq:
            s = window.pop()
            fl = col_flags[s] | F_SQUASHED
            squashed += 1
            if cancel_fills and col_fill_line[s] is not None \
                    and not fl & F_COMPLETED:
                self.hierarchy.cancel_fill(col_fill_line[s],
                                           col_instr[s].addr, cycle)
            rob_delta += 1
            if fl & _F_MEM:
                lsq_delta += 1
            if fl & F_IN_IQ:
                fl &= ~F_IN_IQ
                icount_delta += 1
                if fl & F_IQ_FP:
                    fq_delta += 1
                else:
                    iq_delta += 1
            if fl & F_HAS_DEST:
                # Undo the rename: the old mapping becomes current again;
                # the squashed slot drops its own current-entry ref.
                rename_map[col_instr[s].dest] = col_old_map[s]
                col_refs[s] -= 1
                if fl & F_DEST_FP:
                    fp_regs_delta += 1
                else:
                    int_regs_delta += 1
            parents = col_ll_parents[s]
            if parents is not None:
                col_ll_parents[s] = None
                for p in parents:
                    r = col_refs[p] - 1
                    col_refs[p] = r
                    if not r:
                        pfl = col_flags[p]
                        if (pfl & F_RETIRED
                                and not pfl & (F_IN_DETECTS | F_FREED)):
                            v = col_views[p]
                            if v is None or v not in ll_owners:
                                col_fill_line[p] = None
                                col_views[p] = None
                                col_flags[p] = pfl | F_FREED
                                free.append(p)
            v = col_views[s]
            if v is not None and v in ll_owners:
                ts.clear_owner(v, cycle)
            # Reclaim unless a queued event still needs the slot: a
            # counted outstanding miss (pending == -1, cleared at its
            # completion drain) or a pending detection (freed at the
            # detect drain).  Restore the pristine invariant; a live
            # producer may still hold this slot's waiter registration,
            # which the drains defuse on the F_FREED bit.
            if (not col_refs[s] and col_pending[s] != -1
                    and not fl & (F_IN_DETECTS | F_FREED)):
                col_pending[s] = 0
                col_waiter0[s] = -1
                col_waiters[s] = None
                col_old_map[s] = -1
                col_fill_line[s] = None
                col_views[s] = None
                col_flags[s] = fl | F_FREED
                free.append(s)
            else:
                col_flags[s] = fl
        if rob_delta:
            ts.rob_count -= rob_delta
            self.rob_used -= rob_delta
        if lsq_delta:
            ts.lsq_count -= lsq_delta
            self.lsq_used -= lsq_delta
        if iq_delta:
            ts.iq_count -= iq_delta
            self.iq_used -= iq_delta
        if fq_delta:
            ts.fq_count -= fq_delta
            self.fq_used -= fq_delta
        if int_regs_delta:
            ts.int_regs -= int_regs_delta
            self.int_regs_used -= int_regs_delta
        if fp_regs_delta:
            ts.fp_regs -= fp_regs_delta
            self.fp_regs_used -= fp_regs_delta
        if icount_delta:
            ts.icount -= icount_delta
        wb = ts.waiting_branch
        if wb is not None and col_flags[wb] & F_SQUASHED:
            ts.waiting_branch = None
            ts.stats.branch_stall_cycles += self.cycle - ts.branch_wait_since
        ts.fetch_index = after_seq + 1
        ts.last_ifetch_line = -1
        bit = ts.tid_bit
        if window and col_flags[window[0]] & F_COMPLETED:
            ts.head_ready = True
            self._heads_mask |= bit
        else:
            ts.head_ready = False
            self._heads_mask &= ~bit
        if fe:
            self._fe_mask |= bit
        else:
            self._fe_mask &= ~bit
        ts.stats.squashed += squashed
        ts.stats.flushes += 1
        self._release_epoch += 1
        self._fetch_wake = 0
        self._dispatch_wake = 0
        self._stall_latch_until = 0
        ts._sync_policy_stall(cycle)
        return squashed

    # ------------------------------------------------------------------ #
    # fast-forward
    # ------------------------------------------------------------------ #

    def _head_retirable(self, ts: ThreadState, wb_full: bool) -> bool:
        window = ts.window
        if not window:
            return False
        fl = self._col_flags[window[0]]
        if not fl & F_COMPLETED:
            return False
        return not fl & F_IS_STORE or not wb_full

    def _next_cycle(self, cycle: int) -> int:
        nxt = cycle + 1
        candidates = []
        wb_full = self._wb_used >= self._wb_entries
        head_retirable = self._head_retirable
        col_fe_ready = self._col_fe_ready
        for ts in self.threads:
            if head_retirable(ts, wb_full):
                return nxt
            fe = ts.fe_queue
            if fe:
                head_ready = col_fe_ready[fe[0]]
                if head_ready <= nxt:
                    return nxt
                candidates.append(head_ready)
            if ts.fetch_blocked_until > nxt:
                candidates.append(ts.fetch_blocked_until)
        if self._ev_marks:
            candidates.append(self._ev_marks[0])
        if self._ev_over:
            candidates.append(self._ev_over[0][0])
        if self._dt_marks:
            candidates.append(self._dt_marks[0])
        if self._dt_over:
            candidates.append(self._dt_over[0][0])
        if self._wb_marks:
            candidates.append(self._wb_marks[0])
        if self._wb_over:
            candidates.append(self._wb_over[0])
        if not candidates:
            raise SimulationDeadlock(
                f"no future events at cycle {cycle}; pipeline is wedged")
        target = min(candidates)
        if target <= nxt:
            return nxt
        return target


def _by_icount(ts: ThreadState) -> int:
    return ts.icount
