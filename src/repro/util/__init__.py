"""Small shared utilities (deterministic hashing, math helpers)."""

from repro.util.hashing import mix64, uniform_double, bounded

__all__ = ["mix64", "uniform_double", "bounded"]
