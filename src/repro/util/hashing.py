"""Stateless deterministic pseudo-randomness.

Trace generation must be a pure function of ``(seed, pc, iteration)`` so a
flushed thread can re-fetch *exactly* the same instructions after a pipeline
squash, without replaying generator state.  A splitmix64-style finalizer
gives high-quality 64-bit hashes from structured keys.
"""

from __future__ import annotations

_MASK = (1 << 64) - 1


def mix64(*keys: int) -> int:
    """Hash one or more integers into a well-mixed 64-bit value."""
    h = 0x9E3779B97F4A7C15
    for k in keys:
        h = (h + (k & _MASK)) & _MASK
        h ^= h >> 30
        h = (h * 0xBF58476D1CE4E5B9) & _MASK
        h ^= h >> 27
        h = (h * 0x94D049BB133111EB) & _MASK
        h ^= h >> 31
    return h


def uniform_double(*keys: int) -> float:
    """Deterministic uniform float in [0, 1) derived from ``keys``."""
    return mix64(*keys) / float(1 << 64)


def bounded(n: int, *keys: int) -> int:
    """Deterministic integer in [0, n) derived from ``keys``."""
    if n <= 0:
        raise ValueError("bound must be positive")
    return mix64(*keys) % n
