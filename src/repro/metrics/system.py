"""STP and ANTT (Eyerman & Eeckhout, IEEE Micro 2008) — Section 5.

For ``n`` programs co-running on the SMT processor::

    STP  = sum_i  CPI_ST_i / CPI_MT_i      (higher is better; jobs/unit time;
                                            the weighted speedup of Snavely &
                                            Tullsen)
    ANTT = (1/n) sum_i CPI_MT_i / CPI_ST_i (lower is better; mean user-
                                            perceived slowdown; reciprocal of
                                            the hmean metric of Luo et al.)

Following John (2006) and the paper, averages across workloads use the
harmonic mean for STP and the arithmetic mean for ANTT.
"""

from __future__ import annotations

from collections.abc import Sequence


def _validate(st_cpis: Sequence[float], mt_cpis: Sequence[float]) -> None:
    if len(st_cpis) != len(mt_cpis):
        raise ValueError("need one single-threaded CPI per program")
    if not st_cpis:
        raise ValueError("need at least one program")
    if any(c <= 0 for c in st_cpis) or any(c <= 0 for c in mt_cpis):
        raise ValueError("CPIs must be positive")


def stp(st_cpis: Sequence[float], mt_cpis: Sequence[float]) -> float:
    """System throughput: sum of per-program single-thread/multithread CPI."""
    _validate(st_cpis, mt_cpis)
    return sum(st / mt for st, mt in zip(st_cpis, mt_cpis))


def antt(st_cpis: Sequence[float], mt_cpis: Sequence[float]) -> float:
    """Average normalized turnaround time (mean per-program slowdown)."""
    _validate(st_cpis, mt_cpis)
    n = len(st_cpis)
    return sum(mt / st for st, mt in zip(st_cpis, mt_cpis)) / n


def harmonic_mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def arithmetic_mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    return sum(values) / len(values)


def summarize_stp(per_workload_stp: Sequence[float]) -> float:
    """Average STP across workloads (harmonic mean, per the paper)."""
    return harmonic_mean(per_workload_stp)


def summarize_antt(per_workload_antt: Sequence[float]) -> float:
    """Average ANTT across workloads (arithmetic mean, per the paper)."""
    return arithmetic_mean(per_workload_antt)
