"""System-level multiprogram performance metrics."""

from repro.metrics.system import (
    antt,
    arithmetic_mean,
    harmonic_mean,
    stp,
    summarize_antt,
    summarize_stp,
)

__all__ = [
    "antt",
    "arithmetic_mean",
    "harmonic_mean",
    "stp",
    "summarize_antt",
    "summarize_stp",
]
