"""Coarse-grained multithreading switch policies (paper §7.3).

Coarse-grained multithreading (CGMT) runs one thread at a time and context
switches — in tens of cycles — when the running thread hits a long-latency
load.  Tune et al.'s *balanced multithreading* grafts this onto an SMT
pipeline; the paper observes that the MLP insight carries over: "a context
switch should not be done for all long-latency loads, but should rather be
performed at isolated long-latency loads and at the last long-latency load
in a burst," and proposes driving that decision with its MLP predictor.

Both policies below run on the SMT core with a single *active* thread that
owns the fetch stage; the others' in-flight instructions drain naturally:

* :class:`CGMTPolicy` — classic switch-on-miss: as soon as the active
  thread *detects* a long-latency load, its post-miss instructions are
  flushed and fetch moves to another thread after ``switch_penalty``
  cycles.  Independent misses behind the trigger load are serialized,
  exactly the failure mode the paper describes.
* :class:`MLPAwareCGMTPolicy` — predicts the MLP distance ``m`` at the
  first miss of a burst; an isolated miss (m = 0) switches immediately,
  otherwise the thread keeps fetching ``m`` more instructions so all the
  overlapping misses enter the window, and the switch happens *at the last
  long-latency load in the burst* — the paper's proposed mechanism.

The switch penalty is charged to the incoming thread's fetch (pipeline
refill + thread-select latency).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.policies.base import LongLatencyAwarePolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.dyninstr import DynInstr
    from repro.pipeline.thread_state import ThreadState


class CGMTPolicy(LongLatencyAwarePolicy):
    """Switch-on-miss coarse-grained multithreading."""

    __slots__ = ("switch_penalty", "flush_on_switch", "quantum", "active_tid",
                 "switches", "_last_active", "_active_since")

    name = "cgmt"

    def __init__(self, switch_penalty: int = 30, flush_on_switch: bool = True,
                 quantum: int = 2_000):
        super().__init__()
        if switch_penalty < 0:
            raise ValueError("switch penalty cannot be negative")
        if quantum < 1:
            raise ValueError("quantum must be positive")
        self.switch_penalty = switch_penalty
        self.flush_on_switch = flush_on_switch
        #: Fairness timeslice: a thread that runs ``quantum`` cycles without
        #: missing is switched out anyway, so a never-missing co-runner
        #: cannot monopolize the machine (cf. switch-on-timeout in real
        #: coarse-grained designs such as the IBM RS64 series).
        self.quantum = quantum
        self.active_tid = 0
        self.switches = 0
        self._last_active: list[int] = []
        self._active_since = 0

    def attach(self, core):
        super().attach(core)
        self.active_tid = 0
        self.switches = 0
        self._last_active = [0] * core.cfg.num_threads
        self._active_since = core.cycle

    # ------------------------------------------------------------------ #
    # fetch selection: only the active thread fetches
    # ------------------------------------------------------------------ #

    def fetch_order(self, cycle: int):
        core = self.core
        ts = core.threads[self.active_tid]
        if not core.fetchable(ts, cycle):
            return []
        if not ts.policy_stalled:
            return [(ts, False)]
        if all(t.policy_stalled for t in core.threads):
            return [(ts, True)]  # COT: the active thread resumes first
        return []

    def fetch_pending(self, cycle: int) -> bool:
        return bool(self.fetch_order(cycle))

    # ------------------------------------------------------------------ #
    # switching
    # ------------------------------------------------------------------ #

    def _switch_from(self, ts: ThreadState) -> None:
        core = self.core
        threads = core.threads
        if len(threads) == 1:
            return
        cycle = core.cycle
        self._last_active[ts.tid] = cycle
        others = [t for t in threads if t.tid != ts.tid]
        ready = [t for t in others if not t.policy_stalled]
        if ready:
            # Least-recently-active ready thread (round-robin fairness).
            target = min(ready, key=lambda t: self._last_active[t.tid])
        else:
            # Everyone is miss-stalled: run whoever stalled first (COT).
            target = min(others, key=lambda t: t.stall_start)
        self.active_tid = target.tid
        self._active_since = cycle
        self.switches += 1
        penalty_end = cycle + self.switch_penalty
        if target.fetch_blocked_until < penalty_end:
            target.fetch_blocked_until = penalty_end

    def _quantum_expired(self) -> bool:
        return self.core.cycle - self._active_since >= self.quantum

    def on_ll_detect(self, di: DynInstr, ts: ThreadState) -> None:
        if ts.tid != self.active_tid or ts.ll_owners:
            return
        ts.set_owner(di, di.seq, self.core.cycle)
        if self.flush_on_switch:
            self._flush_to(ts, di.seq)
        self._switch_from(ts)

    def on_fetch(self, di: DynInstr, ts: ThreadState) -> None:
        if ts.tid == self.active_tid and self._quantum_expired():
            self._switch_from(ts)


class MLPAwareCGMTPolicy(CGMTPolicy):
    """CGMT that switches at the *last* long-latency load of a burst."""

    __slots__ = ()

    name = "mlp_cgmt"

    def on_ll_detect(self, di: DynInstr, ts: ThreadState) -> None:
        if ts.tid != self.active_tid or ts.ll_owners:
            return
        distance = ts.mlp_pred.predict(di.instr.pc)
        end = di.seq + distance
        ts.set_owner(di, end, self.core.cycle)
        if distance == 0:
            # Isolated miss: nothing to expose, switch right away.
            if self.flush_on_switch:
                self._flush_to(ts, end)
            self._switch_from(ts)

    def on_fetch(self, di: DynInstr, ts: ThreadState) -> None:
        if ts.tid != self.active_tid:
            return
        # The MLP window just filled: all overlapping misses are in flight,
        # so this is "the last long-latency load in the burst" — switch.
        if ts.policy_stalled and ts.ll_owners:
            self._switch_from(ts)
        elif self._quantum_expired():
            self._switch_from(ts)
