"""Predictive stall fetch (Cazorla et al. 2004a).

Extends the stall policy by predicting long-latency loads in the front end
with the miss pattern predictor: a predicted-long load fetch-stalls its
thread immediately (no need to wait ~L2+L3 lookup latency for detection).
Loads the predictor misses are still caught by detection, as in the stall
policy.  A falsely-predicted load resolves quickly and the stall is lifted
when it completes.
"""

from __future__ import annotations

from repro.policies.base import LongLatencyAwarePolicy


class PredictiveStallPolicy(LongLatencyAwarePolicy):
    """Fetch-stall on front-end-predicted misses (Cazorla et al. 2004a)."""

    __slots__ = ()

    name = "pred_stall"
    on_fetch_loads_only = True  # on_fetch acts only on predicted-LL loads

    def on_fetch(self, di, ts):
        if di.is_load and di.predicted_ll:
            ts.set_owner(di, di.seq, self.core.cycle)

    def on_ll_detect(self, di, ts):
        if di not in ts.ll_owners:
            ts.set_owner(di, di.seq, self.core.cycle)
