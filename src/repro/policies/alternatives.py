"""The alternative MLP-aware fetch policies of Section 6.5 / Figure 19.

The five schemes compared there are:

  (a) flush                      — :class:`repro.policies.flush.FlushPolicy`
  (b) MLP distance + flush       — :class:`repro.policies.mlp_flush.MLPFlushPolicy`
  (c) binary MLP + flush         — :class:`BinaryMLPFlushPolicy`
  (d) MLP distance + flush at resource stall
                                 — :class:`MLPDistanceFlushAtStallPolicy`
  (e) binary MLP + flush at resource stall
                                 — :class:`BinaryMLPFlushAtStallPolicy`

This module implements (c), (d) and (e).
"""

from __future__ import annotations

from repro.policies.base import LongLatencyAwarePolicy


class BinaryMLPFlushPolicy(LongLatencyAwarePolicy):
    """(c): a 1-bit MLP predictor decides flush vs. business-as-usual.

    No MLP predicted → flush past the long-latency load and stall until the
    data returns.  MLP predicted → no flush, no stall; fetching continues
    past long-latency loads following plain ICOUNT.
    """

    __slots__ = ()

    name = "binary_mlp_flush"

    def on_ll_detect(self, di, ts):
        if ts.binary_mlp.predict(di.instr.pc):
            return
        self._flush_to(ts, di.seq)
        ts.set_owner(di, di.seq, self.core.cycle)


class MLPDistanceFlushAtStallPolicy(LongLatencyAwarePolicy):
    """(d): stall after the predicted MLP distance; flush on resource stall.

    On detection, the thread may fetch up to the predicted MLP distance and
    then fetch-stalls — but nothing is flushed yet.  If the machine later
    hits a resource stall (no thread can dispatch because a shared structure
    is full), the stalled thread is flushed past the *initial* long-latency
    load, freeing everything while the already-issued independent misses
    keep filling the caches (the refetch then hits: a prefetching effect).
    """

    __slots__ = ()

    name = "mlp_flush_rs"
    reacts_to_resource_stall = True

    def on_ll_detect(self, di, ts):
        if ts.ll_owners:  # episode already anchored at the initial load
            return
        distance = ts.mlp_pred.predict(di.instr.pc)
        ts.set_owner(di, di.seq + distance, self.core.cycle)

    def _holds_meaningful_share(self, ts) -> bool:
        """Is this thread actually part of the resource-stall problem?

        The flush-at-resource-stall rationale is "free resources to be
        used by other threads"; a stalled thread holding well under its
        fair ROB share has nothing worth freeing, and flushing it anyway
        livelocks it against a fast co-runner that saturates the machine
        on its own (every refetch of the window dies to the next stall).
        """
        fair = self.core.cfg.rob_size / self.core.cfg.num_threads
        return ts.rob_count >= fair / 2

    def _flush_keeping_fills(self, ts, after_seq) -> None:
        """Flush, but let in-flight fills run to completion.

        This is the mechanism the paper states for these alternatives:
        "independent long-latency loads most likely will have started
        execution and their latencies will overlap.  When the initial
        long-latency load returns, fetching resumes and the load ...
        is likely going to be a hit — there is a prefetching effect."
        Cancelling the fills (the squash semantics used for the plain
        flush policies) would delete exactly that effect.
        """
        if ts.fetch_index - 1 > after_seq:
            self.core.flush_thread(ts, after_seq, cancel_fills=False)

    def on_resource_stall(self, cycle):
        for ts in self.core.threads:
            if not ts.policy_stalled or not self._holds_meaningful_share(ts):
                continue
            owner = ts.oldest_owner()
            if owner is None:
                continue
            self._flush_keeping_fills(ts, owner.seq)
            # The flush may have squashed younger owners; re-pin the stall
            # to the surviving initial load.
            ts.set_owner(owner, owner.seq, cycle)


class BinaryMLPFlushAtStallPolicy(LongLatencyAwarePolicy):
    """(e): binary MLP predictor + flush at resource stall.

    No MLP predicted → flush immediately (as in (c)).  MLP predicted → keep
    fetching past the load with no distance limit; when a resource stall
    occurs, flush past the load and stall until it resolves.  Fetching past
    the *last* load of a burst causes more resource stalls — and therefore
    more refetch overhead — than (d), which is the paper's explanation for
    (d) outperforming (e).
    """

    __slots__ = ()

    name = "binary_mlp_flush_rs"
    reacts_to_resource_stall = True

    _holds_meaningful_share = MLPDistanceFlushAtStallPolicy._holds_meaningful_share
    _flush_keeping_fills = MLPDistanceFlushAtStallPolicy._flush_keeping_fills

    def attach(self, core):
        super().attach(core)
        for ts in core.threads:
            ts.policy_data["episodes"] = {}

    def on_ll_detect(self, di, ts):
        if ts.binary_mlp.predict(di.instr.pc):
            ts.policy_data["episodes"][di] = True
            return
        self._flush_to(ts, di.seq)
        ts.set_owner(di, di.seq, self.core.cycle)

    def on_load_complete(self, di, ts):
        ts.policy_data["episodes"].pop(di, None)
        super().on_load_complete(di, ts)

    # Episode anchors and owner grants are both identity-keyed, so the
    # SoA engine may skip the call for never-seen records (see
    # repro.policies.base).
    on_load_complete._identity_keyed_cleanup = True

    def on_resource_stall(self, cycle):
        for ts in self.core.threads:
            if not self._holds_meaningful_share(ts):
                continue
            episodes = ts.policy_data["episodes"]
            live = [di for di in episodes if not di.squashed and not di.completed]
            if not live:
                continue
            oldest = min(live, key=lambda di: di.seq)
            self._flush_keeping_fills(ts, oldest.seq)
            ts.set_owner(oldest, oldest.seq, cycle)
            episodes.clear()
