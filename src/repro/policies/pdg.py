"""Data-miss gating fetch policies (El-Moursy & Albonesi, HPCA 2003).

Section 7.2 of the paper describes these as the L1-miss-driven relatives of
the long-latency-aware policies: instead of reacting to L3/TLB misses, they
bound the number of *outstanding L1 data-cache misses* per thread, fetch
gating the thread whenever the bound is exceeded.  The original goal was
issue-queue occupancy (and therefore energy), but they double as a fairness
baseline for the paper's comparison space.

Two schemes:

* **DG (data miss gating)** — counts L1D misses as loads *execute*; the
  thread is gated while more than ``threshold`` misses are outstanding.
  The count reacts late (a burst of loads can slip into the pipeline before
  the first miss is noticed), which is exactly the delay PDG targets.
* **PDG (predictive data miss gating)** — predicts L1D misses in the front
  end with a PC-indexed 2-bit saturating-counter table and gates on the
  number of *predicted-miss loads currently in flight*, closing the
  observe-to-gate window.

Neither scheme is MLP-aware: a gated thread cannot fetch the independent
misses that would have overlapped with the outstanding ones — the same
serialization the paper criticizes stall/flush for.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.memory.hierarchy import ServiceLevel
from repro.policies.base import FetchPolicy
from repro.predictors import TwoBitMissPredictor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.dyninstr import DynInstr
    from repro.pipeline.thread_state import ThreadState


class DataGatingPolicy(FetchPolicy):
    """DG: gate fetch while a thread has > ``threshold`` L1D misses out."""

    __slots__ = ("threshold",)

    name = "dg"

    def __init__(self, threshold: int = 2):
        super().__init__()
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold

    def _gated(self, ts: ThreadState) -> bool:
        return ts.outstanding_misses > self.threshold

    def fetch_order(self, cycle: int):
        core = self.core
        eligible = [ts for ts in core.threads
                    if core.fetchable(ts, cycle) and not self._gated(ts)]
        eligible.sort(key=lambda ts: ts.icount)
        return [(ts, False) for ts in eligible]

    def fetch_pending(self, cycle: int) -> bool:
        core = self.core
        return any(core.fetchable(ts, cycle) and not self._gated(ts)
                   for ts in core.threads)


class PredictiveDataGatingPolicy(FetchPolicy):
    """PDG: gate on the number of predicted-miss loads in flight."""

    __slots__ = ("threshold", "_predictor_entries", "_miss_pred", "_inflight")

    name = "pdg"
    on_fetch_loads_only = True  # on_fetch tracks predicted-miss loads

    def __init__(self, threshold: int = 2, predictor_entries: int = 2048):
        super().__init__()
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold
        self._predictor_entries = predictor_entries
        #: per-thread PC-indexed 2-bit L1D-miss predictors
        self._miss_pred: list[TwoBitMissPredictor] = []
        #: per-thread set of in-flight loads predicted to miss
        self._inflight: list[set[DynInstr]] = []

    def attach(self, core):
        super().attach(core)
        self._miss_pred = [TwoBitMissPredictor(self._predictor_entries)
                           for _ in core.threads]
        self._inflight = [set() for _ in core.threads]

    def _gated(self, ts: ThreadState) -> bool:
        # Count without mutating: fetch_order must stay side-effect free.
        live = sum(1 for di in self._inflight[ts.tid]
                   if not di.squashed and not di.completed)
        return live > self.threshold

    def fetch_order(self, cycle: int):
        core = self.core
        eligible = [ts for ts in core.threads
                    if core.fetchable(ts, cycle) and not self._gated(ts)]
        eligible.sort(key=lambda ts: ts.icount)
        return [(ts, False) for ts in eligible]

    def fetch_pending(self, cycle: int) -> bool:
        core = self.core
        return any(core.fetchable(ts, cycle) and not self._gated(ts)
                   for ts in core.threads)

    def on_fetch(self, di: DynInstr, ts: ThreadState) -> None:
        if di.is_load and self._miss_pred[ts.tid].predict(di.instr.pc):
            self._inflight[ts.tid].add(di)

    def on_load_complete(self, di: DynInstr, ts: ThreadState) -> None:
        if di.level is not None:
            self._miss_pred[ts.tid].train(
                di.instr.pc, di.level is not ServiceLevel.L1)
        inflight = self._inflight[ts.tid]
        inflight.discard(di)
        # Squashed members never complete; prune them here (a side-effectful
        # hook) so the set stays small.
        if len(inflight) > 4 * self.threshold:
            inflight.difference_update(
                [d for d in inflight if d.squashed or d.completed])
