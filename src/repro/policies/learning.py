"""Learning-based resource partitioning (Choi & Yeung, ISCA 2006).

The paper's introduction contrasts its MLP-aware policies against this
scheme: instead of inferring resource needs from microarchitectural events,
the partitioner *learns* them through performance feedback.  Time is sliced
into epochs; the partitioner runs a hill-climbing search over the per-thread
share vector, trialling a small perturbation in favour of each thread in
turn and permanently adopting the best-performing direction.

Because every decision waits for at least ``num_threads + 1`` epochs of
feedback, the scheme reacts slowly to phase changes — the paper's argument
for why MLP-aware fetch policies are "more responsive to dynamic workload
behavior than learning-based resource partitioning."

The shares cap each thread's occupancy of every shared buffer (ROB, LSQ,
issue queues, rename registers) via the dispatch hook, the same enforcement
point DCRA uses.  The epoch metric is configurable:

* ``"throughput"`` — total instructions committed per cycle (their IPC-sum
  policy);
* ``"hmean"``      — harmonic mean of per-thread IPCs (their fairness-
  oriented variant).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.isa import Op
from repro.policies.base import FetchPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.dyninstr import DynInstr
    from repro.pipeline.thread_state import ThreadState

_METRICS = ("throughput", "hmean")


class LearningPartitionPolicy(FetchPolicy):
    """Hill-climbing epoch-based resource partitioning."""

    __slots__ = ("epoch_cycles", "step", "metric", "min_share", "shares",
                 "epochs_run", "adopted", "_trial", "_trial_scores",
                 "_base_shares", "_epoch_start_cycle",
                 "_epoch_start_commits")

    name = "learning"

    def __init__(self, epoch_cycles: int = 2_000, step: float = 0.05,
                 metric: str = "throughput", min_share: float = 0.10):
        super().__init__()
        if epoch_cycles < 10:
            raise ValueError("epoch must be at least 10 cycles")
        if not 0.0 < step < 0.5:
            raise ValueError("step must be in (0, 0.5)")
        if metric not in _METRICS:
            raise ValueError(f"metric must be one of {_METRICS}")
        if not 0.0 < min_share <= 0.5:
            raise ValueError("min_share must be in (0, 0.5]")
        self.epoch_cycles = epoch_cycles
        self.step = step
        self.metric = metric
        self.min_share = min_share
        self.shares: list[float] = []
        self.epochs_run = 0
        self.adopted: list[tuple[float, ...]] = []
        # Hill-climbing trial state: which thread's boost is being trialled
        # (-1 = measuring the incumbent share vector).
        self._trial = -1
        self._trial_scores: list[float] = []
        self._base_shares: list[float] = []
        self._epoch_start_cycle = 0
        self._epoch_start_commits: list[int] = []

    # ------------------------------------------------------------------ #
    # epoch machinery
    # ------------------------------------------------------------------ #

    def attach(self, core):
        super().attach(core)
        n = core.cfg.num_threads
        self.shares = [1.0 / n] * n
        self._base_shares = list(self.shares)
        self._trial = -1
        self._trial_scores = []
        self._epoch_start_cycle = core.cycle
        self._epoch_start_commits = [ts.stats.committed
                                     for ts in core.threads]

    def _epoch_score(self) -> float:
        core = self.core
        cycles = max(core.cycle - self._epoch_start_cycle, 1)
        ipcs = [(ts.stats.committed - base) / cycles
                for ts, base in zip(core.threads,
                                    self._epoch_start_commits)]
        if self.metric == "throughput":
            return sum(ipcs)
        if any(ipc <= 0.0 for ipc in ipcs):
            return 0.0
        return len(ipcs) / sum(1.0 / ipc for ipc in ipcs)

    def _boosted(self, favoured: int) -> list[float]:
        """The incumbent share vector perturbed in favour of one thread."""
        n = len(self._base_shares)
        shares = list(self._base_shares)
        give = self.step
        shares[favoured] += give
        for t in range(n):
            if t != favoured:
                shares[t] -= give / (n - 1)
        # Clamp and renormalize so no thread starves outright.
        shares = [max(s, self.min_share) for s in shares]
        total = sum(shares)
        return [s / total for s in shares]

    def _advance_epoch(self) -> None:
        score = self._epoch_score()
        self._trial_scores.append(score)
        n = len(self.shares)
        if self._trial + 1 < n:
            # Next trial: boost the next thread.
            self._trial += 1
            self.shares = self._boosted(self._trial)
        else:
            # All trials measured: adopt the best direction permanently.
            best = max(range(len(self._trial_scores)),
                       key=self._trial_scores.__getitem__)
            if best > 0:  # 0 is the incumbent vector
                self._base_shares = self._boosted(best - 1)
            self.shares = list(self._base_shares)
            self.adopted.append(tuple(self._base_shares))
            self._trial = -1
            self._trial_scores = []
        self.epochs_run += 1
        core = self.core
        self._epoch_start_cycle = core.cycle
        self._epoch_start_commits = [ts.stats.committed
                                     for ts in core.threads]

    # ------------------------------------------------------------------ #
    # enforcement
    # ------------------------------------------------------------------ #

    def can_dispatch(self, ts: ThreadState, di: DynInstr) -> bool:
        core = self.core
        if core.cycle - self._epoch_start_cycle >= self.epoch_cycles:
            self._advance_epoch()
        share = self.shares[ts.tid]
        cfg = core.cfg
        if ts.rob_count >= cfg.rob_size * share:
            return False
        if (di.is_load or di.is_store) and ts.lsq_count >= cfg.lsq_size * share:
            return False
        op = di.instr.op
        if op is Op.FALU or op is Op.FMUL:
            if ts.fq_count >= cfg.fp_iq_size * share:
                return False
        elif ts.iq_count >= cfg.int_iq_size * share:
            return False
        if di.has_dest:
            if di.dest_fp:
                if ts.fp_regs >= cfg.fp_rename_regs * share:
                    return False
            elif ts.int_regs >= cfg.int_rename_regs * share:
                return False
        return True
