"""MLP-aware flush — the paper's headline policy (Section 4.3).

On a *detected* long-latency load (no prediction involved), predict the MLP
distance ``m``:

* if more than ``m`` instructions were already fetched past the load, flush
  the excess (keeping exactly the ``m`` instructions needed to expose the
  available MLP), and fetch-stall;
* if fewer, keep fetching until ``m`` instructions past the load, then
  fetch-stall.

Either way the thread resumes fetching when the miss data returns.  With an
isolated miss (m = 0) this degenerates to the Tullsen & Brown flush policy;
with MLP it keeps just enough resources to let the independent misses
overlap.
"""

from __future__ import annotations

from repro.policies.base import LongLatencyAwarePolicy


class MLPFlushPolicy(LongLatencyAwarePolicy):
    """Flush/stall at the predicted MLP distance (the paper's headline)."""

    __slots__ = ()

    name = "mlp_flush"

    def on_ll_detect(self, di, ts):
        # Episode anchoring: the *initial* long-latency load of a miss
        # episode defines the MLP window.  Loads detected while the window
        # is active are the very companions the window exists to expose —
        # they do not extend it (otherwise a stream of overlapping misses
        # would slide the window forever and the thread would never yield
        # its resources).  A new episode starts once the anchor's data has
        # returned and fetch has resumed.
        if ts.ll_owners:
            return
        distance = ts.mlp_pred.predict(di.instr.pc)
        end = di.seq + distance
        ts.set_owner(di, end, self.core.cycle)
        self._flush_to(ts, end)
