"""SMT fetch policies and resource-partitioning schemes.

======================  =============================================
name                    policy
======================  =============================================
icount                  ICOUNT 2.4 baseline (Tullsen et al. 1996)
stall                   stall fetch on detected LL load (T&B 2001)
pred_stall              predictive stall fetch (Cazorla et al. 2004a)
mlp_stall               MLP-aware stall fetch (this paper)
flush                   flush on detected LL load (T&B 2001, TM/next)
mlp_flush               MLP-aware flush (this paper, headline policy)
binary_mlp_flush        alternative (c): binary MLP + flush
mlp_flush_rs            alternative (d): MLP distance + flush at
                        resource stall
binary_mlp_flush_rs     alternative (e): binary MLP + flush at
                        resource stall
static                  static 1/n resource partitioning
dcra                    dynamically controlled resource allocation
dg                      data miss gating (El-Moursy & Albonesi 2003)
pdg                     predictive data miss gating (same)
learning                hill-climbing resource partitioning
                        (Choi & Yeung 2006)
mlp_dcra                MLP-aware DCRA (paper §7.2 future work)
cgmt                    coarse-grained switch-on-miss (paper §7.3)
mlp_cgmt                MLP-aware CGMT switching (paper §7.3)
runahead                runahead threads (Ramirez et al. 2008)
mlp_runahead            MLP-distance-gated runahead (paper §7.2)
======================  =============================================
"""

from repro.policies.alternatives import (
    BinaryMLPFlushAtStallPolicy,
    BinaryMLPFlushPolicy,
    MLPDistanceFlushAtStallPolicy,
)
from repro.policies.base import FetchPolicy, LongLatencyAwarePolicy
from repro.policies.cgmt import CGMTPolicy, MLPAwareCGMTPolicy
from repro.policies.dcra import DCRAPolicy
from repro.policies.flush import FlushPolicy
from repro.policies.icount import ICountPolicy
from repro.policies.learning import LearningPartitionPolicy
from repro.policies.mlp_dcra import MLPAwareDCRAPolicy
from repro.policies.mlp_flush import MLPFlushPolicy
from repro.policies.mlp_stall import MLPStallPolicy
from repro.policies.pdg import DataGatingPolicy, PredictiveDataGatingPolicy
from repro.policies.predictive_stall import PredictiveStallPolicy
from repro.policies.stall import StallPolicy
from repro.policies.static_partition import StaticPartitionPolicy
from repro.runahead.policy import MLPRunaheadPolicy, RunaheadPolicy

POLICIES: dict[str, type[FetchPolicy]] = {
    cls.name: cls
    for cls in (
        ICountPolicy,
        StallPolicy,
        PredictiveStallPolicy,
        MLPStallPolicy,
        FlushPolicy,
        MLPFlushPolicy,
        BinaryMLPFlushPolicy,
        MLPDistanceFlushAtStallPolicy,
        BinaryMLPFlushAtStallPolicy,
        StaticPartitionPolicy,
        DCRAPolicy,
        DataGatingPolicy,
        PredictiveDataGatingPolicy,
        LearningPartitionPolicy,
        MLPAwareDCRAPolicy,
        CGMTPolicy,
        MLPAwareCGMTPolicy,
        RunaheadPolicy,
        MLPRunaheadPolicy,
    )
}

#: The six policies compared in Figures 9/10/13/14, in plot order.
MAIN_COMPARISON = ("icount", "stall", "pred_stall", "mlp_stall",
                   "flush", "mlp_flush")

#: The five alternatives of Figures 20/21, in plot order (a)–(e).
ALTERNATIVES = ("flush", "mlp_flush", "binary_mlp_flush",
                "mlp_flush_rs", "binary_mlp_flush_rs")

#: Related-work baselines and extensions beyond the paper's headline set.
EXTENSIONS = ("dg", "pdg", "learning", "mlp_dcra", "cgmt", "mlp_cgmt",
              "runahead", "mlp_runahead")


def make_policy(name: str, **kwargs) -> FetchPolicy:
    """Instantiate a policy by its registered name.

    Lookup goes through :data:`repro.registry.policies` (seeded from
    :data:`POLICIES`), so policies registered at runtime resolve here
    too.  Raises ``KeyError`` for unknown names; for construction-time
    kwarg validation with a friendlier error, build a
    :class:`repro.api.RunSpec` instead.
    """
    from repro import registry     # late: registry seeds itself from here
    cls = registry.policies.get(name)
    return cls(**kwargs)


__all__ = [
    "ALTERNATIVES",
    "BinaryMLPFlushAtStallPolicy",
    "BinaryMLPFlushPolicy",
    "CGMTPolicy",
    "DCRAPolicy",
    "DataGatingPolicy",
    "EXTENSIONS",
    "FetchPolicy",
    "FlushPolicy",
    "ICountPolicy",
    "LearningPartitionPolicy",
    "LongLatencyAwarePolicy",
    "MAIN_COMPARISON",
    "MLPAwareCGMTPolicy",
    "MLPAwareDCRAPolicy",
    "MLPDistanceFlushAtStallPolicy",
    "MLPFlushPolicy",
    "MLPRunaheadPolicy",
    "MLPStallPolicy",
    "POLICIES",
    "PredictiveDataGatingPolicy",
    "PredictiveStallPolicy",
    "RunaheadPolicy",
    "StallPolicy",
    "StaticPartitionPolicy",
    "make_policy",
]
