"""Fetch-policy interface and the shared ICOUNT + COT machinery.

Every policy in the paper extends ICOUNT (Tullsen et al. 1996): each cycle,
fetch goes to the threads with the fewest instructions in the front-end
pipeline and issue queues.  All long-latency-aware policies additionally
implement COT — *continue the oldest thread* (Cazorla et al. 2004a): when
every thread is stalled on a long-latency load, the thread that stalled
first is allowed to keep allocating, because its data will return first.

Policies restrict fetch through the per-thread ``allowed_end`` mechanism
(see :class:`repro.pipeline.thread_state.ThreadState`): each unresolved
long-latency "owner" load grants fetch up to some per-thread sequence
number; the thread fetch-stalls past the maximum grant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.core import SMTCore
    from repro.pipeline.dyninstr import DynInstr
    from repro.pipeline.thread_state import ThreadState


class FetchPolicy:
    """Base class: plain ICOUNT with COT support for subclasses."""

    name = "icount"
    #: Set by subclasses that must observe every resource-stall cycle
    #: (disables fast-forwarding past dispatch-blocked cycles).
    reacts_to_resource_stall = False
    #: Core implementation this policy requires; ``None`` means the plain
    #: :class:`repro.pipeline.core.SMTCore`.  Runahead policies point this
    #: at :class:`repro.runahead.RunaheadCore`; the experiment runner
    #: honours it when constructing simulations.
    core_class: type | None = None

    def __init__(self) -> None:
        self.core: SMTCore | None = None

    def attach(self, core: "SMTCore") -> None:
        self.core = core

    # ------------------------------------------------------------------ #
    # fetch selection (ICOUNT order + COT)
    # ------------------------------------------------------------------ #

    def fetch_order(self, cycle: int) -> list[tuple["ThreadState", bool]]:
        """Threads allowed to fetch this cycle, best first.

        Returns ``(thread, ignore_stall)`` pairs; ``ignore_stall`` marks a
        COT grant that overrides the thread's own policy stall.  Must be
        side-effect free (the engine also calls it when probing whether a
        future cycle can do useful work).
        """
        core = self.core
        eligible = [ts for ts in core.threads
                    if core.fetchable(ts, cycle) and not ts.policy_stalled]
        if eligible:
            eligible.sort(key=lambda ts: ts.icount)
            return [(ts, False) for ts in eligible]
        # COT applies only when *every* thread is stalled because of a
        # long-latency load — a thread that is merely back-pressured (full
        # fetch queue, unresolved branch) will resume by itself, and
        # granting a stalled thread fetch in the meantime would defeat the
        # stall/flush policy.
        if not all(ts.policy_stalled for ts in core.threads):
            return []
        stalled = [ts for ts in core.threads if core.fetchable(ts, cycle)]
        if not stalled:
            return []
        oldest = min(stalled, key=lambda ts: ts.stall_start)
        return [(oldest, True)]

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #

    def on_fetch(self, di: "DynInstr", ts: "ThreadState") -> None:
        """Called for every instruction the front end fetches."""

    def on_ll_detect(self, di: "DynInstr", ts: "ThreadState") -> None:
        """Called when a load is *observed* to be long-latency (post-L3)."""

    def on_load_complete(self, di: "DynInstr", ts: "ThreadState") -> None:
        """Called when any load's data arrives."""

    def can_dispatch(self, ts: "ThreadState", di: "DynInstr") -> bool:
        """Resource-partitioning hook; False blocks dispatch this cycle."""
        return True

    def on_resource_stall(self, cycle: int) -> None:
        """Called on cycles where dispatch is blocked by a full resource."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class LongLatencyAwarePolicy(FetchPolicy):
    """Shared helper for policies keyed on long-latency owner loads."""

    def on_load_complete(self, di: "DynInstr", ts: "ThreadState") -> None:
        ts.clear_owner(di, self.core.cycle)

    def _flush_to(self, ts: "ThreadState", after_seq: int) -> None:
        """Flush ``ts`` past ``after_seq`` if anything newer was fetched."""
        if ts.fetch_index - 1 > after_seq:
            self.core.flush_thread(ts, after_seq)
