"""Fetch-policy interface and the shared ICOUNT + COT machinery.

Every policy in the paper extends ICOUNT (Tullsen et al. 1996): each cycle,
fetch goes to the threads with the fewest instructions in the front-end
pipeline and issue queues.  All long-latency-aware policies additionally
implement COT — *continue the oldest thread* (Cazorla et al. 2004a): when
every thread is stalled on a long-latency load, the thread that stalled
first is allowed to keep allocating, because its data will return first.

Policies restrict fetch through the per-thread ``allowed_end`` mechanism
(see :class:`repro.pipeline.thread_state.ThreadState`): each unresolved
long-latency "owner" load grants fetch up to some per-thread sequence
number; the thread fetch-stalls past the maximum grant.
"""

from __future__ import annotations

from operator import attrgetter
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.core import SMTCore
    from repro.pipeline.dyninstr import DynInstr
    from repro.pipeline.thread_state import ThreadState

_BY_ICOUNT = attrgetter("icount")

#: Shared empty fetch order.  A tuple so an accidental mutation by a
#: caller raises instead of corrupting every later empty result.
_EMPTY_ORDER: tuple = ()


class FetchPolicy:
    """Base class: plain ICOUNT with COT support for subclasses."""

    __slots__ = ("core",)

    name = "icount"
    #: Set by subclasses that must observe every resource-stall cycle
    #: (disables fast-forwarding past dispatch-blocked cycles).
    reacts_to_resource_stall = False
    #: Declares that :meth:`on_fetch` is a no-op for anything but loads
    #: (its body is guarded by ``di.is_load``).  The core then skips the
    #: per-instruction call for non-loads — exact by declaration.
    on_fetch_loads_only = False
    #: Core implementation this policy requires; ``None`` means the plain
    #: :class:`repro.pipeline.core.SMTCore`.  Runahead policies point this
    #: at :class:`repro.runahead.RunaheadCore`; the experiment runner
    #: honours it when constructing simulations.
    core_class: type | None = None

    def __init__(self) -> None:
        self.core: SMTCore | None = None

    def attach(self, core: SMTCore) -> None:
        self.core = core

    # ------------------------------------------------------------------ #
    # fetch selection (ICOUNT order + COT)
    # ------------------------------------------------------------------ #

    def fetch_order(self, cycle: int) -> list[tuple[ThreadState, bool]]:
        """Threads allowed to fetch this cycle, best first.

        Returns ``(thread, ignore_stall)`` pairs; ``ignore_stall`` marks a
        COT grant that overrides the thread's own policy stall.  Must be
        side-effect free.  Subclasses that change the *eligibility* rules
        here must override :meth:`fetch_pending` to match.

        Eligibility is read off the core's event-maintained candidate
        list (``core._fetch_candidates``: the policy-unstalled threads,
        re-derived only on stall/unstall transitions) instead of
        re-proving the ``allowed_end`` predicate for every thread every
        cycle; only the genuinely time-varying conditions (I-fetch block,
        branch wait, fetch-queue headroom) are checked here.  The common
        result shapes allocate nothing: a single eligible thread returns
        its interned one-entry order, and the ICOUNT sort only runs when
        two or more threads compete.
        """
        core = self.core
        candidates = core._fetch_candidates
        fe_capacity = core._fe_capacity
        if candidates:
            first = None
            rest = None
            for ts in candidates:
                if (ts.fetch_blocked_until <= cycle
                        and ts.waiting_branch is None
                        and len(ts.fe_queue) < fe_capacity):
                    if first is None:
                        first = ts
                    elif rest is None:
                        rest = [first, ts]
                    else:
                        rest.append(ts)
            if rest is None:
                return _EMPTY_ORDER if first is None else first.fetch_one
            if len(rest) == 2:
                a, b = rest
                # Matches the stable sort: ties keep tid order.
                if b.icount < a.icount:
                    return [b.fetch_entry, a.fetch_entry]
                return [a.fetch_entry, b.fetch_entry]
            rest.sort(key=_BY_ICOUNT)
            return [ts.fetch_entry for ts in rest]
        # Every thread is policy-stalled on a long-latency load: COT.  COT
        # applies only in that case — a thread that is merely
        # back-pressured (full fetch queue, unresolved branch) will resume
        # by itself, and granting a stalled thread fetch in the meantime
        # would defeat the stall/flush policy.
        oldest = None
        for ts in core.threads:
            if (ts.fetch_blocked_until <= cycle
                    and ts.waiting_branch is None
                    and len(ts.fe_queue) < fe_capacity
                    and (oldest is None
                         or ts.stall_start < oldest.stall_start)):
                oldest = ts
        return _EMPTY_ORDER if oldest is None else [(oldest, True)]

    def fetch_pending(self, cycle: int) -> bool:
        """Would :meth:`fetch_order` be non-empty at ``cycle``?

        The fast-forward probe calls this every cycle; the default mirrors
        the base :meth:`fetch_order` truthiness without building or
        sorting the candidate list.  Subclasses that override
        :meth:`fetch_order` with different eligibility rules must override
        this too (``return bool(self.fetch_order(cycle))`` is always a
        correct, if slower, implementation).
        """
        core = self.core
        fe_capacity = core._fe_capacity
        # An empty candidate list means all threads are policy-stalled, in
        # which case COT grants fetch to any fetchable thread.
        for ts in (core._fetch_candidates or core.threads):
            if (ts.fetch_blocked_until <= cycle
                    and ts.waiting_branch is None
                    and len(ts.fe_queue) < fe_capacity):
                return True
        return False

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #

    def on_fetch(self, di: DynInstr, ts: ThreadState) -> None:
        """Called for every instruction the front end fetches."""

    def on_ll_detect(self, di: DynInstr, ts: ThreadState) -> None:
        """Called when a load is *observed* to be long-latency (post-L3)."""

    def on_load_complete(self, di: DynInstr, ts: ThreadState) -> None:
        """Called when any load's data arrives."""

    def can_dispatch(self, ts: ThreadState, di: DynInstr) -> bool:
        """Resource-partitioning hook; False blocks dispatch this cycle."""
        return True

    def on_resource_stall(self, cycle: int) -> None:
        """Called on cycles where dispatch is blocked by a full resource."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


# Markers for the no-op default hooks: the core skips the per-instruction
# calls entirely for policies that do not override them (the marker is on
# the function object, so any override — which is a different function —
# is automatically unmarked).
FetchPolicy.can_dispatch._is_default_hook = True
FetchPolicy.on_fetch._is_default_hook = True
FetchPolicy.on_ll_detect._is_default_hook = True
FetchPolicy.on_load_complete._is_default_hook = True
FetchPolicy.on_resource_stall._is_default_hook = True
# Marks the base eligibility rules: with these implementations the core
# may cache "no thread can fetch before cycle X" (the fetch-wake latch),
# because every eligibility change is either time-bound
# (fetch_blocked_until) or flows through an invalidation the core owns
# (branch resolution, front-end pop, flush, candidate rebuild).  Policies
# that override fetch_order/fetch_pending lose the marker automatically
# and are probed every cycle.
FetchPolicy.fetch_order._is_base_impl = True
FetchPolicy.fetch_pending._is_base_impl = True


class LongLatencyAwarePolicy(FetchPolicy):
    """Shared helper for policies keyed on long-latency owner loads."""

    __slots__ = ()

    def on_load_complete(self, di: DynInstr, ts: ThreadState) -> None:
        ts.clear_owner(di, self.core.cycle)

    def _flush_to(self, ts: ThreadState, after_seq: int) -> None:
        """Flush ``ts`` past ``after_seq`` if anything newer was fetched."""
        if ts.fetch_index - 1 > after_seq:
            self.core.flush_thread(ts, after_seq)


# Marks on_load_complete implementations that only *de-register* state
# keyed by record identity (owner grants, episode anchors): for a record
# the policy was never handed, the call is provably a no-op.  The SoA
# engine uses this to skip both the call and the view materialization for
# loads that never reached a policy hook; the object engine ignores it.
# Like the default-hook markers above, the marker lives on the function
# object, so any unmarked override is automatically excluded.
LongLatencyAwarePolicy.on_load_complete._identity_keyed_cleanup = True
