"""Fetch-policy interface and the shared ICOUNT + COT machinery.

Every policy in the paper extends ICOUNT (Tullsen et al. 1996): each cycle,
fetch goes to the threads with the fewest instructions in the front-end
pipeline and issue queues.  All long-latency-aware policies additionally
implement COT — *continue the oldest thread* (Cazorla et al. 2004a): when
every thread is stalled on a long-latency load, the thread that stalled
first is allowed to keep allocating, because its data will return first.

Policies restrict fetch through the per-thread ``allowed_end`` mechanism
(see :class:`repro.pipeline.thread_state.ThreadState`): each unresolved
long-latency "owner" load grants fetch up to some per-thread sequence
number; the thread fetch-stalls past the maximum grant.
"""

from __future__ import annotations

from operator import attrgetter
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.core import SMTCore
    from repro.pipeline.dyninstr import DynInstr
    from repro.pipeline.thread_state import ThreadState

_BY_ICOUNT = attrgetter("icount")


class FetchPolicy:
    """Base class: plain ICOUNT with COT support for subclasses."""

    name = "icount"
    #: Set by subclasses that must observe every resource-stall cycle
    #: (disables fast-forwarding past dispatch-blocked cycles).
    reacts_to_resource_stall = False
    #: Core implementation this policy requires; ``None`` means the plain
    #: :class:`repro.pipeline.core.SMTCore`.  Runahead policies point this
    #: at :class:`repro.runahead.RunaheadCore`; the experiment runner
    #: honours it when constructing simulations.
    core_class: type | None = None

    def __init__(self) -> None:
        self.core: SMTCore | None = None

    def attach(self, core: "SMTCore") -> None:
        self.core = core

    # ------------------------------------------------------------------ #
    # fetch selection (ICOUNT order + COT)
    # ------------------------------------------------------------------ #

    def fetch_order(self, cycle: int) -> list[tuple["ThreadState", bool]]:
        """Threads allowed to fetch this cycle, best first.

        Returns ``(thread, ignore_stall)`` pairs; ``ignore_stall`` marks a
        COT grant that overrides the thread's own policy stall.  Must be
        side-effect free.  Subclasses that change the *eligibility* rules
        here must override :meth:`fetch_pending` to match.
        """
        core = self.core
        threads = core.threads
        fe_capacity = core._fe_capacity  # fetchable(), inlined: this runs
        eligible = []                    # for every thread, every cycle
        any_fetchable = False
        for ts in threads:
            if (ts.fetch_blocked_until <= cycle
                    and ts.waiting_branch is None
                    and len(ts.fe_queue) < fe_capacity):
                any_fetchable = True
                allowed_end = ts.allowed_end
                if allowed_end is None or ts.fetch_index <= allowed_end:
                    eligible.append(ts)
        if eligible:
            if len(eligible) > 1:
                eligible.sort(key=_BY_ICOUNT)
            return [ts.fetch_entry for ts in eligible]
        if not any_fetchable:
            return []
        # COT applies only when *every* thread is stalled because of a
        # long-latency load — a thread that is merely back-pressured (full
        # fetch queue, unresolved branch) will resume by itself, and
        # granting a stalled thread fetch in the meantime would defeat the
        # stall/flush policy.
        oldest = None
        for ts in threads:
            allowed_end = ts.allowed_end
            if allowed_end is None or ts.fetch_index <= allowed_end:
                return []
        fetchable = core.fetchable
        for ts in threads:
            if fetchable(ts, cycle) and (
                    oldest is None or ts.stall_start < oldest.stall_start):
                oldest = ts
        return [] if oldest is None else [(oldest, True)]

    def fetch_pending(self, cycle: int) -> bool:
        """Would :meth:`fetch_order` be non-empty at ``cycle``?

        The fast-forward probe calls this every cycle; the default mirrors
        the base :meth:`fetch_order` truthiness without building or
        sorting the candidate list.  Subclasses that override
        :meth:`fetch_order` with different eligibility rules must override
        this too (``return bool(self.fetch_order(cycle))`` is always a
        correct, if slower, implementation).
        """
        core = self.core
        threads = core.threads
        fe_capacity = core._fe_capacity
        any_fetchable = False
        for ts in threads:
            if (ts.fetch_blocked_until <= cycle
                    and ts.waiting_branch is None
                    and len(ts.fe_queue) < fe_capacity):
                allowed_end = ts.allowed_end
                if allowed_end is None or ts.fetch_index <= allowed_end:
                    return True
                any_fetchable = True
        if not any_fetchable:
            return False
        for ts in threads:
            allowed_end = ts.allowed_end
            if allowed_end is None or ts.fetch_index <= allowed_end:
                return False
        return True

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #

    def on_fetch(self, di: "DynInstr", ts: "ThreadState") -> None:
        """Called for every instruction the front end fetches."""

    def on_ll_detect(self, di: "DynInstr", ts: "ThreadState") -> None:
        """Called when a load is *observed* to be long-latency (post-L3)."""

    def on_load_complete(self, di: "DynInstr", ts: "ThreadState") -> None:
        """Called when any load's data arrives."""

    def can_dispatch(self, ts: "ThreadState", di: "DynInstr") -> bool:
        """Resource-partitioning hook; False blocks dispatch this cycle."""
        return True

    def on_resource_stall(self, cycle: int) -> None:
        """Called on cycles where dispatch is blocked by a full resource."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class LongLatencyAwarePolicy(FetchPolicy):
    """Shared helper for policies keyed on long-latency owner loads."""

    def on_load_complete(self, di: "DynInstr", ts: "ThreadState") -> None:
        ts.clear_owner(di, self.core.cycle)

    def _flush_to(self, ts: "ThreadState", after_seq: int) -> None:
        """Flush ``ts`` past ``after_seq`` if anything newer was fetched."""
        if ts.fetch_index - 1 > after_seq:
            self.core.flush_thread(ts, after_seq)
