"""Dynamically Controlled Resource Allocation (Cazorla et al., MICRO 2004).

DCRA classifies threads as *fast* or *slow* each cycle — slow means the
thread has at least one outstanding L1 data-cache miss — and gives slow
(memory-intensive) threads a multiplicatively larger share of every shared
buffer resource, on the premise that they need the extra entries to expose
memory parallelism.  A thread at its share cannot dispatch further
instructions into that resource.

The crucial contrast with the paper's MLP-aware policies (Section 6.6): the
slow-thread share is *fixed* regardless of how much MLP actually exists, so
DCRA over-allocates for isolated misses and under-allocates for long MLP
distances.

``slow_weight`` is the sharing factor C (slow threads receive C× a fast
thread's share); 2 reproduces the published behaviour well.
"""

from __future__ import annotations

from repro.isa import Op
from repro.policies.base import FetchPolicy


class DCRAPolicy(FetchPolicy):
    """Dynamically controlled resource allocation (Cazorla et al. 2004b)."""

    __slots__ = ("slow_weight",)

    name = "dcra"

    def __init__(self, slow_weight: float = 2.0):
        super().__init__()
        if slow_weight < 1.0:
            raise ValueError("slow threads cannot get less than a fast share")
        self.slow_weight = slow_weight

    def _limits(self, ts) -> tuple[float, ...]:
        threads = self.core.threads
        weights = [self.slow_weight if t.outstanding_misses > 0 else 1.0
                   for t in threads]
        total = sum(weights)
        share = weights[ts.tid] / total
        cfg = self.core.cfg
        return (cfg.rob_size * share,
                cfg.lsq_size * share,
                cfg.int_iq_size * share,
                cfg.fp_iq_size * share,
                cfg.int_rename_regs * share,
                cfg.fp_rename_regs * share)

    def can_dispatch(self, ts, di):
        rob, lsq, iq, fq, int_regs, fp_regs = self._limits(ts)
        if ts.rob_count >= rob:
            return False
        if (di.is_load or di.is_store) and ts.lsq_count >= lsq:
            return False
        op = di.instr.op
        if op is Op.FALU or op is Op.FMUL:
            if ts.fq_count >= fq:
                return False
        elif ts.iq_count >= iq:
            return False
        if di.has_dest:
            if di.dest_fp:
                if ts.fp_regs >= fp_regs:
                    return False
            elif ts.int_regs >= int_regs:
                return False
        return True
