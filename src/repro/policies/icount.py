"""ICOUNT 2.4 (Tullsen et al. 1996): the baseline fetch policy.

Fetches from the threads least represented in the front-end pipeline and the
instruction queues; no long-latency awareness at all.
"""

from __future__ import annotations

from repro.policies.base import FetchPolicy


class ICountPolicy(FetchPolicy):
    """ICOUNT 2.4 baseline: balance front-end occupancy, nothing else."""

    __slots__ = ()

    name = "icount"
