"""Flush on detected long-latency loads (Tullsen & Brown 2001).

The "TM/next" configuration the paper compares against: trigger on a
detected long-latency miss and flush starting from the instruction *after*
the long-latency load, freeing all resources the stalled thread held; the
thread fetch-stalls until the data returns, then refetches.  In-flight
misses of flushed instructions are not cancelled, which gives refetched
loads a prefetching effect.
"""

from __future__ import annotations

from repro.policies.base import LongLatencyAwarePolicy


class FlushPolicy(LongLatencyAwarePolicy):
    """Flush past every detected long-latency load (T&B 2001, TM/next)."""

    __slots__ = ()

    name = "flush"

    def on_ll_detect(self, di, ts):
        self._flush_to(ts, di.seq)
        ts.set_owner(di, di.seq, self.core.cycle)
