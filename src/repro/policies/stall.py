"""Stall fetch on detected long-latency loads (Tullsen & Brown 2001).

As soon as a load is observed to miss beyond the L3 (or D-TLB), its thread
stops fetching until the data returns.  Instructions already fetched past
the load keep their resources (no flush).
"""

from __future__ import annotations

from repro.policies.base import LongLatencyAwarePolicy


class StallPolicy(LongLatencyAwarePolicy):
    """Fetch-stall on every detected long-latency load (T&B 2001)."""

    __slots__ = ()

    name = "stall"

    def on_ll_detect(self, di, ts):
        ts.set_owner(di, di.seq, self.core.cycle)
