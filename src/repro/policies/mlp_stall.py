"""MLP-aware stall fetch (the paper, Section 4.3).

In the front end, a load predicted long-latency consults the MLP distance
predictor: the thread may fetch ``m`` further instructions — just enough to
expose the predicted MLP — and then fetch-stalls until the load's data
returns.  An isolated miss (m = 0) stalls immediately, handing all further
resources to the co-scheduled threads.
"""

from __future__ import annotations

from repro.policies.base import LongLatencyAwarePolicy


class MLPStallPolicy(LongLatencyAwarePolicy):
    """Fetch-stall at the predicted MLP distance (the paper, §4.3)."""

    __slots__ = ()

    name = "mlp_stall"
    on_fetch_loads_only = True  # on_fetch acts only on predicted-LL loads

    def on_fetch(self, di, ts):
        if di.is_load and di.predicted_ll and not ts.ll_owners:
            # Episode anchoring, as in the MLP-aware flush policy: the
            # first predicted long-latency load opens the window; predicted
            # companions inside it do not extend it.
            distance = ts.mlp_pred.predict(di.instr.pc)
            ts.set_owner(di, di.seq + distance, self.core.cycle)
