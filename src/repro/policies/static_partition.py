"""Static resource partitioning (Raasch & Reinhardt 2003; Pentium-4 style).

Every buffer resource (ROB, load/store queue, issue queues, rename register
files) is split 1/n per thread; a thread can never allocate beyond its
share.  The functional units remain shared.  Fetch itself follows ICOUNT.
"""

from __future__ import annotations

from repro.isa import Op
from repro.policies.base import FetchPolicy


class StaticPartitionPolicy(FetchPolicy):
    """Equal 1/n static split of every shared buffer resource."""

    __slots__ = ("_rob_share", "_lsq_share", "_iq_share", "_fq_share",
                 "_int_share", "_fp_share")

    name = "static"

    def attach(self, core):
        super().attach(core)
        cfg = core.cfg
        n = cfg.num_threads
        self._rob_share = cfg.rob_size // n
        self._lsq_share = cfg.lsq_size // n
        self._iq_share = cfg.int_iq_size // n
        self._fq_share = cfg.fp_iq_size // n
        self._int_share = cfg.int_rename_regs // n
        self._fp_share = cfg.fp_rename_regs // n

    def can_dispatch(self, ts, di):
        if ts.rob_count >= self._rob_share:
            return False
        if (di.is_load or di.is_store) and ts.lsq_count >= self._lsq_share:
            return False
        op = di.instr.op
        if op is Op.FALU or op is Op.FMUL:
            if ts.fq_count >= self._fq_share:
                return False
        elif ts.iq_count >= self._iq_share:
            return False
        if di.has_dest:
            if di.dest_fp:
                if ts.fp_regs >= self._fp_share:
                    return False
            elif ts.int_regs >= self._int_share:
                return False
        return True
