"""MLP-aware dynamic resource partitioning (paper §7.2 future work).

Section 7.2 closes with: "An interesting avenue for future work may be to
make these explicit resource partitioning mechanisms MLP-aware."  This
module implements that suggestion on top of DCRA.

Plain DCRA gives every *slow* thread (one with an outstanding L1D miss) the
same fixed multiplicative share bonus, "irrespective of the amount of MLP".
Here the bonus instead scales with the thread's recent *predicted MLP
distance*: a thread whose misses are isolated (distance ≈ 0) receives no
bonus at all — its stalled instructions would hold entries for nothing —
while a thread whose misses cluster across most of its ROB share receives
the full ``slow_weight`` bonus, because it genuinely needs the window to
expose its MLP.

The per-thread MLP-need signal is an exponential moving average of the MLP
distance predictions made at each long-latency detection, normalized by the
per-thread LLSR length (the maximum observable distance).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.policies.dcra import DCRAPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.dyninstr import DynInstr
    from repro.pipeline.thread_state import ThreadState


class MLPAwareDCRAPolicy(DCRAPolicy):
    """DCRA whose slow-thread bonus tracks predicted MLP distance."""

    __slots__ = ("ema_alpha", "_mlp_need")

    name = "mlp_dcra"

    def __init__(self, slow_weight: float = 2.0, ema_alpha: float = 0.25):
        super().__init__(slow_weight=slow_weight)
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        self.ema_alpha = ema_alpha
        self._mlp_need: list[float] = []

    def attach(self, core):
        super().attach(core)
        self._mlp_need = [0.0] * core.cfg.num_threads

    def on_ll_detect(self, di: DynInstr, ts: ThreadState) -> None:
        distance = ts.mlp_pred.predict(di.instr.pc)
        need = distance / max(self.core.cfg.llsr_length - 1, 1)
        alpha = self.ema_alpha
        self._mlp_need[ts.tid] = (
            alpha * need + (1.0 - alpha) * self._mlp_need[ts.tid])

    def _limits(self, ts: ThreadState) -> tuple[float, ...]:
        threads = self.core.threads
        bonus = self.slow_weight - 1.0
        weights = [
            1.0 + bonus * min(self._mlp_need[t.tid], 1.0)
            if t.outstanding_misses > 0 else 1.0
            for t in threads
        ]
        total = sum(weights)
        share = weights[ts.tid] / total
        cfg = self.core.cfg
        return (cfg.rob_size * share,
                cfg.lsq_size * share,
                cfg.int_iq_size * share,
                cfg.fp_iq_size * share,
                cfg.int_rename_regs * share,
                cfg.fp_rename_regs * share)
