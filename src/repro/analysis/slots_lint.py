"""slots-lint: hot classes declare ``__slots__`` and write only slots.

Every class in the engine packages (:data:`~repro.analysis.base.ENGINE_PACKAGES`)
must either declare ``__slots__`` (a literal of strings), be a
``@dataclass(slots=True)``, be an exception type, or appear on the
explicit allowlist.  Additionally every ``self.X`` assignment anywhere
in a class must resolve to a slot declared by the class or one of its
(in-scope) bases — the mistake this catches is the stray attribute that
silently re-grows a ``__dict__``-free class a per-instance dict, or dies
with ``AttributeError`` only on a cold path.

A ``"__dict__"`` entry anywhere in the slots chain is a deliberate
wildcard (``SMTCore`` uses it so tests can monkeypatch instance
methods): the declaration requirement still applies, the per-assignment
resolution is skipped.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import (Finding, dotted_name, package_files,
                                 parse_file, rel, string_elements,
                                 walk_classes)

CHECKER = "slots-lint"

#: Classes intentionally left with a ``__dict__``, name -> reason.
#: Kept empty on purpose: the tree is clean today, and a new entry needs
#: a review arguing why the class can afford a per-instance dict.
ALLOWED_DICT_CLASSES: dict[str, str] = {}

#: Builtin bases that do not hand their subclasses a ``__dict__``.
_SLOTTED_BUILTINS = {"object", "list", "dict", "tuple", "int", "str"}

_EXCEPTION_BUILTINS = {
    "BaseException", "Exception", "ArithmeticError", "AssertionError",
    "AttributeError", "KeyError", "LookupError", "NotImplementedError",
    "RuntimeError", "TypeError", "ValueError",
}


@dataclass
class _ClassInfo:
    name: str
    path: Path
    line: int
    bases: list[str]
    slots: list[str] | None = None      # None: no literal __slots__
    has_slots_stmt: bool = False        # a __slots__ assignment exists
    is_dataclass: bool = False
    dataclass_slots: bool = False
    fields: list[str] = field(default_factory=list)
    self_writes: list[tuple[str, int]] = field(default_factory=list)


def _is_dataclass_decorator(dec: ast.expr) -> tuple[bool, bool]:
    """(is a dataclass decorator, has slots=True) for one decorator."""
    call = dec if isinstance(dec, ast.Call) else None
    target = call.func if call is not None else dec
    name = dotted_name(target)
    if name is None or name.split(".")[-1] != "dataclass":
        return False, False
    slots = False
    if call is not None:
        for kw in call.keywords:
            if kw.arg == "slots" and isinstance(kw.value, ast.Constant):
                slots = bool(kw.value.value)
    return True, slots


def _collect_self_writes(body: Iterable[ast.stmt],
                         out: list[tuple[str, int]]) -> None:
    """All ``self.X`` stores under ``body``, skipping nested classes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.ClassDef):
            continue                     # a nested class has its own self
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        tstack = list(targets)
        while tstack:
            t = tstack.pop()
            if isinstance(t, (ast.Tuple, ast.List)):
                tstack.extend(t.elts)
            elif isinstance(t, ast.Starred):
                tstack.append(t.value)
            elif (isinstance(t, ast.Attribute)
                  and isinstance(t.value, ast.Name)
                  and t.value.id == "self"):
                out.append((t.attr, t.lineno))
        stack.extend(ast.iter_child_nodes(node))


def _class_info(cls: ast.ClassDef, path: Path) -> _ClassInfo:
    info = _ClassInfo(
        name=cls.name, path=path, line=cls.lineno,
        bases=[n for n in (dotted_name(b) for b in cls.bases)
               if n is not None])
    for dec in cls.decorator_list:
        is_dc, slots = _is_dataclass_decorator(dec)
        if is_dc:
            info.is_dataclass = True
            info.dataclass_slots = slots
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name) and tgt.id == "__slots__":
                    info.has_slots_stmt = True
                    info.slots = string_elements(stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            tgt = stmt.target
            if isinstance(tgt, ast.Name):
                if tgt.id == "__slots__":
                    info.has_slots_stmt = True
                    if stmt.value is not None:
                        info.slots = string_elements(stmt.value)
                elif info.is_dataclass:
                    ann = ast.unparse(stmt.annotation)
                    if "ClassVar" not in ann:
                        info.fields.append(tgt.id)
    _collect_self_writes(
        [s for s in cls.body
         if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))],
        info.self_writes)
    return info


def _is_exception(info: _ClassInfo, table: dict[str, _ClassInfo],
                  seen: frozenset[str] = frozenset()) -> bool:
    for base in info.bases:
        tail = base.split(".")[-1]
        if tail in _EXCEPTION_BUILTINS or tail.endswith("Error"):
            return True
        parent = table.get(tail)
        if parent is not None and tail not in seen:
            if _is_exception(parent, table, seen | {tail}):
                return True
    return False


def _slot_chain(info: _ClassInfo, table: dict[str, _ClassInfo],
                ) -> tuple[set[str], bool]:
    """(union of declared slots/fields up the chain, chain is wildcard).

    The chain is a wildcard — assignment checks are meaningless — when
    any ancestor keeps a ``__dict__``: an explicit ``"__dict__"`` slot,
    a computed ``__slots__``, an allowlisted class, or an unknown
    external base that is not a slot-free builtin.
    """
    names: set[str] = set()
    wildcard = False
    stack, seen = [info.name], set()
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        ci = table.get(cur)
        if ci is None:
            if cur.split(".")[-1] not in _SLOTTED_BUILTINS:
                wildcard = True
            continue
        if ci.name in ALLOWED_DICT_CLASSES:
            wildcard = True
        if ci.is_dataclass:
            names.update(ci.fields)
            if not ci.dataclass_slots:
                wildcard = True
        elif ci.has_slots_stmt:
            if ci.slots is None or "__dict__" in ci.slots:
                wildcard = True
            else:
                names.update(ci.slots)
        else:
            wildcard = True
        stack.extend(b.split(".")[-1] for b in ci.bases)
    return names, wildcard


def check(files: Sequence[Path] | None = None) -> list[Finding]:
    """Run slots-lint over ``files`` (default: the engine packages)."""
    if files is None:
        files = package_files()
    table: dict[str, _ClassInfo] = {}
    order: list[_ClassInfo] = []
    for path in files:
        for cls in walk_classes(parse_file(path)):
            info = _class_info(cls, path)
            table[info.name] = info
            order.append(info)

    findings: list[Finding] = []
    for info in order:
        if info.name in ALLOWED_DICT_CLASSES or _is_exception(info, table):
            continue
        if info.is_dataclass:
            if not info.dataclass_slots:
                findings.append(Finding(
                    CHECKER, rel(info.path), info.line,
                    f"dataclass {info.name} must pass slots=True "
                    f"(or be allowlisted)"))
                continue
        elif not info.has_slots_stmt:
            findings.append(Finding(
                CHECKER, rel(info.path), info.line,
                f"class {info.name} does not declare __slots__"))
            continue
        slots, wildcard = _slot_chain(info, table)
        if wildcard:
            continue
        for attr, line in info.self_writes:
            if attr not in slots:
                findings.append(Finding(
                    CHECKER, rel(info.path), line,
                    f"{info.name}.{attr} is assigned but is not a "
                    f"declared slot of {info.name} or its bases"))
    return findings
